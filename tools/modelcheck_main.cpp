// aeep_modelcheck — differential model checker for the protection schemes.
//
// Default mode runs the full campaign on a tiny 4-set x 2-way x 2-word L2:
// for every scheme (uniform / non-uniform / shared k=1 / shared k=2), both
// clean and fault-injected, seeded-random op sequences execute under the
// runtime invariant auditor with a golden-memory cross-check after every
// op; the same sequences also run differentially across all three schemes,
// and a bounded exhaustive enumeration sweeps every short op sequence.
// Exit status 0 means zero violations and zero divergences.
//
//   ./aeep_modelcheck [--ops=50000] [--seeds=4] [--exhaustive-len=4]
//   ./aeep_modelcheck --replay='w5.0:07,r13' --scheme=shared --entries=2
//   ./aeep_modelcheck --demo-broken          # seeded-bug fixtures must fail
//
// On any failure the sequence is shrunk to a minimal counterexample and a
// ready-to-run --replay command line is printed.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "verify/broken.hpp"
#include "verify/modelcheck.hpp"

using namespace aeep;
using verify::ModelCheckConfig;
using verify::Op;
using verify::RunReport;

namespace {

struct Campaign {
  u64 total_ops = 0;
  u64 total_faults = 0;
  unsigned configs_run = 0;
  unsigned failures = 0;
};

std::string replay_command(const ModelCheckConfig& cfg,
                           std::span<const Op> ops) {
  std::string cmd = "./aeep_modelcheck --replay='" +
                    verify::encode_ops(ops) + "'";
  switch (cfg.scheme) {
    case protect::SchemeKind::kUniformEcc: cmd += " --scheme=uniform"; break;
    case protect::SchemeKind::kNonUniform:
      cmd += " --scheme=nonuniform";
      break;
    case protect::SchemeKind::kSharedEccArray:
      cmd += " --scheme=shared --entries=" +
             std::to_string(cfg.entries_per_set);
      break;
  }
  if (cfg.inject_faults)
    cmd += " --faults=1 --seed=" + std::to_string(cfg.seed);
  if (cfg.cleaning_interval)
    cmd += " --cleaning=" + std::to_string(cfg.cleaning_interval);
  return cmd;
}

/// Shrink, then report a failing sequence with its replay command line.
void report_failure(const ModelCheckConfig& cfg, std::vector<Op> ops,
                    const RunReport& report) {
  std::printf("  FAIL [%s] after op %zu (%s):\n    %s\n",
              cfg.scheme_label().c_str(), report.failure->op_index,
              report.failure->kind.c_str(), report.failure->detail.c_str());
  const std::vector<Op> minimal = verify::shrink(cfg, std::move(ops));
  const RunReport mini = verify::run_sequence(cfg, minimal);
  std::printf("  minimized to %zu op(s): %s\n", minimal.size(),
              verify::encode_ops(minimal).c_str());
  if (mini.failure)
    std::printf("    -> %s: %s\n", mini.failure->kind.c_str(),
                mini.failure->detail.c_str());
  std::printf("  replay: %s\n", replay_command(cfg, minimal).c_str());
}

/// One campaign cell: `seeds` random sequences of `ops_per_seed` ops.
bool run_cell(Campaign& campaign, const ModelCheckConfig& cfg,
              unsigned seeds, std::size_t ops_per_seed) {
  ++campaign.configs_run;
  u64 cell_ops = 0, cell_faults = 0, cell_audits = 0;
  for (unsigned s = 0; s < seeds; ++s) {
    ModelCheckConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + s;
    std::vector<Op> ops =
        verify::random_ops(run_cfg, run_cfg.seed * 7919 + 1, ops_per_seed);
    const RunReport report = verify::run_sequence(run_cfg, ops);
    cell_ops += report.ops_run;
    cell_faults += report.faults_injected;
    cell_audits += report.audits;
    campaign.total_ops += report.ops_run;
    campaign.total_faults += report.faults_injected;
    if (!report.ok) {
      ++campaign.failures;
      report_failure(run_cfg, std::move(ops), report);
      return false;
    }
  }
  std::printf("  ok   [%-22s] %8llu ops, %6llu faults, %8llu audits\n",
              cfg.scheme_label().c_str(),
              static_cast<unsigned long long>(cell_ops),
              static_cast<unsigned long long>(cell_faults),
              static_cast<unsigned long long>(cell_audits));
  return true;
}

bool run_differential_suite(Campaign& campaign, unsigned seeds,
                            std::size_t ops_per_seed) {
  std::printf("differential (uniform vs non-uniform vs shared):\n");
  bool ok = true;
  for (unsigned s = 0; s < seeds; ++s) {
    ModelCheckConfig cfg;
    cfg.entries_per_set = 1 + s % 2;
    cfg.cleaning_interval = (s % 2) ? 0 : 400;
    cfg.seed = 1000 + s;
    const std::vector<Op> ops =
        verify::random_ops(cfg, cfg.seed * 104729 + 3, ops_per_seed);
    const verify::DiffReport diff = verify::run_differential(cfg, ops);
    for (const RunReport& r : diff.runs) campaign.total_ops += r.ops_run;
    if (!diff.ok) {
      ++campaign.failures;
      ok = false;
      std::printf("  FAIL seed=%llu: %s\n",
                  static_cast<unsigned long long>(cfg.seed),
                  diff.detail.c_str());
    }
  }
  if (ok)
    std::printf("  ok   %u seed(s) x %zu ops, k in {1,2}, all observables"
                " agree\n",
                seeds, ops_per_seed);
  return ok;
}

bool run_exhaustive(Campaign& campaign, unsigned lines, unsigned len) {
  std::printf("exhaustive (all %u-op sequences over %u lines):\n", len,
              lines);
  bool ok = true;
  for (const protect::SchemeKind kind :
       {protect::SchemeKind::kUniformEcc, protect::SchemeKind::kNonUniform,
        protect::SchemeKind::kSharedEccArray}) {
    ModelCheckConfig cfg;
    cfg.scheme = kind;
    const verify::ExhaustiveReport report =
        verify::exhaustive_check(cfg, lines, len);
    campaign.total_ops += report.ops;
    if (report.counterexample) {
      ++campaign.failures;
      ok = false;
      const RunReport rerun = verify::run_sequence(cfg, *report.counterexample);
      report_failure(cfg, *report.counterexample, rerun);
    } else {
      std::printf("  ok   [%-22s] %llu sequences, %llu ops\n",
                  cfg.scheme_label().c_str(),
                  static_cast<unsigned long long>(report.sequences),
                  static_cast<unsigned long long>(report.ops));
    }
  }
  return ok;
}

/// The seeded-bug fixtures MUST fail, and must shrink to a short replayable
/// counterexample — this exercises the whole detect/shrink/replay pipeline.
bool run_demo_broken() {
  std::printf("demo-broken (seeded bugs; every fixture must be caught):\n");
  bool all_caught = true;
  for (const verify::BrokenKind kind :
       {verify::BrokenKind::kOverCommit, verify::BrokenKind::kLeakEntry,
        verify::BrokenKind::kStaleParity}) {
    ModelCheckConfig cfg;
    cfg.scheme = protect::SchemeKind::kSharedEccArray;
    cfg.entries_per_set = 1;
    cfg.cleaning_interval = 400;
    cfg.scheme_factory = verify::broken_scheme_factory(kind, 1);
    cfg.label = std::string("broken-") + verify::to_string(kind);

    bool caught = false;
    for (u64 seed = 1; seed <= 8 && !caught; ++seed) {
      std::vector<Op> ops = verify::random_ops(cfg, seed * 31 + 7, 400);
      const RunReport report = verify::run_sequence(cfg, ops);
      if (report.ok) continue;
      caught = true;
      const std::vector<Op> minimal = verify::shrink(cfg, std::move(ops));
      const RunReport mini = verify::run_sequence(cfg, minimal);
      std::printf("  ok   [%-22s] caught as '%s', minimized %zu op(s): %s\n",
                  cfg.scheme_label().c_str(),
                  mini.failure ? mini.failure->kind.c_str() : "?",
                  minimal.size(), verify::encode_ops(minimal).c_str());
    }
    if (!caught) {
      all_caught = false;
      std::printf("  FAIL [%-22s] seeded bug escaped the checker\n",
                  cfg.scheme_label().c_str());
    }
  }
  return all_caught;
}

int run_replay(const CliArgs& args, const std::string& replay) {
  const auto ops = verify::decode_ops(replay);
  if (!ops) {
    std::printf("error: cannot parse --replay sequence '%s'\n",
                replay.c_str());
    return 2;
  }
  ModelCheckConfig cfg;
  const std::string scheme = args.get("scheme", "shared");
  if (scheme == "uniform") {
    cfg.scheme = protect::SchemeKind::kUniformEcc;
  } else if (scheme == "nonuniform") {
    cfg.scheme = protect::SchemeKind::kNonUniform;
  } else if (scheme == "shared") {
    cfg.scheme = protect::SchemeKind::kSharedEccArray;
  } else {
    std::printf("error: unknown --scheme '%s'\n", scheme.c_str());
    return 2;
  }
  cfg.entries_per_set = static_cast<unsigned>(args.get_u64("entries", 1));
  cfg.cleaning_interval = args.get_u64("cleaning", 0);
  cfg.inject_faults = args.get_bool("faults", false);
  cfg.seed = args.get_u64("seed", 1);
  const std::string broken = args.get("broken", "");
  if (broken == "overcommit")
    cfg.scheme_factory = verify::broken_scheme_factory(
        verify::BrokenKind::kOverCommit, cfg.entries_per_set);
  else if (broken == "leak")
    cfg.scheme_factory = verify::broken_scheme_factory(
        verify::BrokenKind::kLeakEntry, cfg.entries_per_set);
  else if (broken == "staleparity")
    cfg.scheme_factory = verify::broken_scheme_factory(
        verify::BrokenKind::kStaleParity, cfg.entries_per_set);

  const RunReport report = verify::run_sequence(cfg, *ops);
  std::printf("replayed %llu op(s) under %s: %s\n",
              static_cast<unsigned long long>(report.ops_run),
              cfg.scheme_label().c_str(), report.ok ? "clean" : "FAILED");
  if (!report.ok)
    std::printf("  op %zu (%s): %s\n", report.failure->op_index,
                report.failure->kind.c_str(), report.failure->detail.c_str());
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);

  const std::string replay = args.get("replay", "");
  if (!replay.empty()) return run_replay(args, replay);

  if (args.get_bool("demo-broken", false))
    return run_demo_broken() ? 0 : 1;

  const std::size_t ops_per_seed = args.get_u64("ops", 50'000);
  const unsigned seeds = static_cast<unsigned>(args.get_u64("seeds", 2));
  const unsigned exhaustive_len =
      static_cast<unsigned>(args.get_u64("exhaustive-len", 4));
  const unsigned exhaustive_lines =
      static_cast<unsigned>(args.get_u64("exhaustive-lines", 3));

  Campaign campaign;
  bool ok = true;

  std::printf("campaign (4 sets x 2 ways x 2-word lines, %u seed(s) x %zu"
              " ops per cell):\n",
              seeds, ops_per_seed);
  struct Cell {
    protect::SchemeKind scheme;
    unsigned entries;
    Cycle cleaning;
    bool faults;
  };
  const Cell cells[] = {
      {protect::SchemeKind::kUniformEcc, 1, 0, false},
      {protect::SchemeKind::kUniformEcc, 1, 400, true},
      {protect::SchemeKind::kNonUniform, 1, 400, false},
      {protect::SchemeKind::kNonUniform, 1, 0, true},
      {protect::SchemeKind::kSharedEccArray, 1, 0, false},
      {protect::SchemeKind::kSharedEccArray, 1, 400, true},
      {protect::SchemeKind::kSharedEccArray, 2, 400, false},
      {protect::SchemeKind::kSharedEccArray, 2, 0, true},
  };
  u64 seed_base = 1;
  for (const Cell& cell : cells) {
    ModelCheckConfig cfg;
    cfg.scheme = cell.scheme;
    cfg.entries_per_set = cell.entries;
    cfg.cleaning_interval = cell.cleaning;
    cfg.inject_faults = cell.faults;
    cfg.seed = seed_base;
    seed_base += seeds;
    ok = run_cell(campaign, cfg, seeds, ops_per_seed) && ok;
  }

  ok = run_differential_suite(campaign, 4, ops_per_seed / 10) && ok;
  if (exhaustive_len > 0)
    ok = run_exhaustive(campaign, exhaustive_lines, exhaustive_len) && ok;

  std::printf("\ntotal: %llu ops across %u configs, %llu faults injected,"
              " %u failure(s)\n",
              static_cast<unsigned long long>(campaign.total_ops),
              campaign.configs_run,
              static_cast<unsigned long long>(campaign.total_faults),
              campaign.failures);
  return ok ? 0 : 1;
}
