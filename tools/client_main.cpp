// aeep_client — submit experiments to a running aeep_served.
//
//   aeep_client ping    [--host=127.0.0.1 --port=7421]
//   aeep_client traces  — list the traces the server will replay by name
//   aeep_client stats   — queue depth, counters, uptime
//   aeep_client metrics — per-stage latency histograms + counters
//                         (also reachable as `aeep_client --metrics`)
//   aeep_client health  — liveness + drain state (what the fabric probes)
//   aeep_client drain   — ask the server to stop accepting new jobs
//   aeep_client submit  [job flags]            -> prints the job id
//   aeep_client status  --job=N
//   aeep_client result  --job=N [--wait-ms=60000]
//   aeep_client run     [job flags] [--json=FILE]   — submit + wait inline
//
// Connection flags: --retries=N (re-attempt a refused connection N more
// times) and --backoff-ms=MS (base of the jittered exponential backoff
// between attempts — the same fabric::Backoff schedule the coordinator
// uses). A server that stays unreachable exits 6 with a plain-language
// message, not a raw errno.
//
// Output flags (any reply-printing command): --field=a.b.c extracts one
// value from the reply JSON by dot-path and prints it raw (strings
// unquoted, so `--field=metrics.ipc` or `--field=state` drop straight
// into shell variables; a missing path exits 4); --quiet suppresses the
// reply entirely — the exit code is the answer.
//
// Auth: --token=SECRET attaches the shared token to every request; a
// server started with --token refuses everything but ping without it
// (exit 7).
//
// Job flags: --benchmark=gzip --frontend=exec|trace --scheme=uniform-ecc|
// non-uniform|shared-ecc-array --cleaning-policy=written-bit|naive|
// decay-counter|eager-idle --interval=N --decay-threshold=N --entries=N
// --instructions=N --warmup=N --seed=N --maintain-codes --trace=NAME
// --timeout-ms=N
//
// `run --json=FILE` writes the bench pipeline's schema-v1 document (one
// cell, tag "server"), so a remote run diffs key-for-key against a local
// bench cell. Exit codes: 0 ok, 2 usage, 3 busy (backpressure), 4 not
// found, 5 job timeout, 6 cannot connect, 7 unauthorized, 1 anything else.
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "fabric/backoff.hpp"
#include "json_reporter.hpp"
#include "server/client.hpp"

using namespace aeep;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: aeep_client "
      "<ping|traces|stats|metrics|health|drain|submit|status|result|run> "
      "[--host=127.0.0.1] [--port=7421] [--retries=N] [--backoff-ms=MS] "
      "[--token=SECRET] [--flags]\n"
      "  submit/run job flags: --benchmark --frontend=exec|trace --scheme "
      "--cleaning-policy --interval --decay-threshold --entries "
      "--instructions --warmup --seed --maintain-codes --trace --timeout-ms\n"
      "  status/result: --job=N [--wait-ms=MS]   run: [--json=FILE]\n"
      "  output: --field=a.b.c (print one reply value, raw) --quiet\n");
  return 2;
}

/// Connect, retrying a refused/unreachable server on the fabric's jittered
/// backoff schedule. A fleet of clients pointed at the same recovering
/// server therefore does not reconnect in lockstep. Exits 6 (with a
/// human-readable message, not a bare errno) when every attempt fails.
server::Client connect_or_exit(const std::string& host, u16 port,
                               unsigned retries, u64 backoff_base_ms) {
  fabric::BackoffPolicy policy;
  policy.base_ms = backoff_base_ms == 0 ? 1 : backoff_base_ms;
  fabric::Backoff backoff(policy, /*seed=*/1);
  for (unsigned attempt = 0;; ++attempt) {
    try {
      return server::Client(host, port);
    } catch (const server::ServerError& e) {
      if (attempt >= retries) {
        std::fprintf(stderr,
                     "aeep_client: cannot connect to %s:%u after %u "
                     "attempt(s) — is aeep_served running there?\n"
                     "  (%s)\n",
                     host.c_str(), unsigned{port}, attempt + 1, e.what());
        std::exit(6);
      }
      std::fprintf(stderr,
                   "aeep_client: connect to %s:%u failed (attempt %u of %u), "
                   "backing off...\n",
                   host.c_str(), unsigned{port}, attempt + 1, retries + 1);
      fabric::backoff_sleep(backoff);
    }
  }
}

void check_flags(const CliArgs& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& k : unused) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\naccepted flags:");
    for (const auto& k : args.queried())
      std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

server::JobSpec parse_job(const CliArgs& args) {
  server::JobSpec spec;
  spec.benchmark = args.get("benchmark", spec.benchmark);
  spec.frontend = server::frontend_from_string(args.get("frontend", "exec"));
  spec.scheme =
      server::scheme_from_string(args.get("scheme", "uniform-ecc"));
  spec.cleaning_policy = server::cleaning_policy_from_string(
      args.get("cleaning-policy", "written-bit"));
  spec.cleaning_interval = args.get_u64("interval", spec.cleaning_interval);
  spec.decay_threshold = static_cast<unsigned>(
      args.get_u64("decay-threshold", spec.decay_threshold));
  spec.ecc_entries_per_set = static_cast<unsigned>(
      args.get_u64("entries", spec.ecc_entries_per_set));
  spec.instructions = args.get_u64("instructions", spec.instructions);
  spec.warmup = args.get_u64("warmup", spec.warmup);
  spec.seed = args.get_u64("seed", spec.seed);
  spec.maintain_codes = args.get_bool("maintain-codes", spec.maintain_codes);
  spec.trace = args.get("trace", spec.trace);
  spec.timeout_ms = args.get_u64("timeout-ms", spec.timeout_ms);
  return spec;
}

/// How replies reach stdout: full pretty JSON (default), one dot-path
/// extracted value (--field), or nothing at all (--quiet).
struct OutputOptions {
  bool quiet = false;
  std::string field;
};

/// Walk `root` down a dot-separated key path ("metrics.ipc"). nullptr when
/// any hop is missing or a non-object is descended into.
const JsonValue* descend(const JsonValue& root, const std::string& path) {
  const JsonValue* cur = &root;
  std::size_t start = 0;
  while (true) {
    const std::size_t dot = path.find('.', start);
    const std::string key =
        path.substr(start, dot == std::string::npos ? std::string::npos
                                                    : dot - start);
    if (key.empty() || !cur->is_object()) return nullptr;
    cur = cur->find(key);
    if (!cur) return nullptr;
    if (dot == std::string::npos) return cur;
    start = dot + 1;
  }
}

int print_reply(const JsonValue& reply, const OutputOptions& out) {
  if (!out.field.empty()) {
    const JsonValue* v = descend(reply, out.field);
    if (!v) {
      std::fprintf(stderr, "aeep_client: reply has no field '%s'\n",
                   out.field.c_str());
      return 4;
    }
    // Strings print raw (no quotes) so values drop into shell variables;
    // everything else prints as compact JSON.
    if (v->is_string()) std::printf("%s\n", v->as_string().c_str());
    else std::printf("%s\n", v->dump(0).c_str());
    return 0;
  }
  if (!out.quiet) std::printf("%s\n", reply.dump(2).c_str());
  return 0;
}

int run_command(server::Client& client, const CliArgs& args,
                const OutputOptions& out) {
  const server::JobSpec spec = parse_job(args);
  const std::string json_path = args.get("json", "");
  check_flags(args);
  const JsonValue reply = client.run(spec);
  const JsonValue* metrics = reply.find("metrics");
  if (!json_path.empty() && metrics) {
    bench::CommonOptions o;
    o.instructions = spec.instructions;
    o.warmup = spec.warmup;
    o.seed = spec.seed;
    o.suite = spec.benchmark;
    o.frontend = sim::to_string(spec.frontend);
    bench::JsonReporter reporter("server_run", o, 0);
    reporter.set_config("scheme",
                        JsonValue::string(protect::to_string(spec.scheme)));
    reporter.set_config("wall_ms",
                        JsonValue::number(reply.get_double("wall_ms", 0.0)));
    reporter.add_cell(spec.benchmark, "server", *metrics);
    if (!reporter.write(json_path)) return 1;
  }
  return print_reply(reply, out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help") {
    usage();
    return 0;
  }
  // `aeep_client --metrics` is the documented spelling for "dump the
  // server's telemetry"; normalise it to the metrics command.
  int arg_offset = 1;
  if (cmd == "--metrics") {
    cmd = "metrics";
  } else if (cmd.rfind("--", 0) == 0) {
    // A flag where the command should be: let parse_cli see it and fail
    // with the usual unknown-flag message via check_flags below.
    arg_offset = 0;
    cmd = "";
  }
  const CliArgs args =
      parse_cli_or_exit(argc - arg_offset, argv + arg_offset);
  const std::string host = args.get("host", "127.0.0.1");
  const u16 port = static_cast<u16>(args.get_u64("port", 7421));
  const unsigned retries =
      static_cast<unsigned>(args.get_u64("retries", 0));
  const u64 backoff_ms = args.get_u64("backoff-ms", 100);
  const std::string token = args.get("token", "");
  OutputOptions out;
  out.quiet = args.get_bool("quiet", false);
  out.field = args.get("field", "");
  if (cmd.empty()) return usage();
  try {
    server::Client client = connect_or_exit(host, port, retries, backoff_ms);
    if (!token.empty()) client.set_token(token);
    if (cmd == "ping") {
      check_flags(args);
      return print_reply(client.ping(), out);
    } else if (cmd == "traces") {
      check_flags(args);
      for (const auto& name : client.traces())
        std::printf("%s\n", name.c_str());
    } else if (cmd == "stats") {
      check_flags(args);
      return print_reply(client.stats(), out);
    } else if (cmd == "metrics") {
      check_flags(args);
      return print_reply(client.metrics(), out);
    } else if (cmd == "health") {
      check_flags(args);
      return print_reply(client.health(), out);
    } else if (cmd == "drain") {
      check_flags(args);
      return print_reply(client.drain(), out);
    } else if (cmd == "submit") {
      const server::JobSpec spec = parse_job(args);
      check_flags(args);
      const u64 id = client.submit(spec);
      if (!out.quiet)
        std::printf("job %llu queued\n", static_cast<unsigned long long>(id));
    } else if (cmd == "status") {
      const u64 id = args.get_u64("job", 0);
      check_flags(args);
      return print_reply(client.status(id), out);
    } else if (cmd == "result") {
      const u64 id = args.get_u64("job", 0);
      const u64 wait_ms = args.get_u64("wait-ms", 60'000);
      check_flags(args);
      return print_reply(client.result(id, /*wait=*/true, wait_ms), out);
    } else if (cmd == "run") {
      return run_command(client, args, out);
    } else {
      return usage();
    }
  } catch (const server::ServerError& e) {
    std::fprintf(stderr, "aeep_client: %s\n", e.what());
    switch (e.kind()) {
      case server::ServerErrorKind::kBusy: return 3;
      case server::ServerErrorKind::kNotFound: return 4;
      case server::ServerErrorKind::kTimeout: return 5;
      case server::ServerErrorKind::kUnauthorized: return 7;
      default: return 1;
    }
  }
  return 0;
}
