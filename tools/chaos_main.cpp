// aeep_chaos — a standalone ChaosProxy: sits between clients and one
// aeep_served worker, relays length-prefixed frames, and injects seeded
// faults so the fabric's recovery paths are exercised under real processes
// (the CI chaos smoke job), not just in-process tests.
//
//   aeep_chaos --upstream=127.0.0.1:7501 --listen-port=7601
//              --corrupt=0.05 --seed=7
//
// Flags: --upstream=HOST:PORT (required), --listen-port (0 = pick one),
// --kill --drop --truncate --corrupt --delay (per-frame probabilities),
// --delay-ms (sleep per delayed frame), --seed (fault draws derive from
// it — same seed + same connection order = same fault schedule).
// SIGTERM/SIGINT stop the proxy and dump the per-fault counters as one
// JSON object on stdout, so scripts can assert faults actually fired.
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "fabric/chaos.hpp"
#include "fabric/registry.hpp"

using namespace aeep;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const std::string upstream = args.get("upstream", "");
  const u16 listen_port = static_cast<u16>(args.get_u64("listen-port", 0));
  fabric::ChaosPolicy policy;
  policy.kill = args.get_double("kill", policy.kill);
  policy.drop = args.get_double("drop", policy.drop);
  policy.truncate = args.get_double("truncate", policy.truncate);
  policy.corrupt = args.get_double("corrupt", policy.corrupt);
  policy.delay = args.get_double("delay", policy.delay);
  policy.delay_ms = args.get_u64("delay-ms", policy.delay_ms);
  policy.seed = args.get_u64("seed", policy.seed);
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& k : unused) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\naccepted flags:");
    for (const auto& k : args.queried())
      std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  if (upstream.empty()) {
    std::fprintf(stderr, "aeep_chaos: need --upstream=HOST:PORT\n");
    return 2;
  }

  fabric::WorkerEndpoint up;
  try {
    up = fabric::parse_endpoint(upstream);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aeep_chaos: %s\n", e.what());
    return 2;
  }

  fabric::ChaosProxy proxy(up.host, up.port, policy, listen_port);
  try {
    proxy.start();
  } catch (const server::ServerError& e) {
    std::fprintf(stderr, "aeep_chaos: %s\n", e.what());
    return 1;
  }
  // Resolved listen port on stdout so scripts using --listen-port=0 can
  // read where to connect (counters also land on stdout, at exit).
  std::printf("aeep_chaos listening on 127.0.0.1:%u -> %s:%u\n",
              unsigned{proxy.port()}, up.host.c_str(), unsigned{up.port});
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (g_signal == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const fabric::ChaosStats s = proxy.stats();
  proxy.stop();
  JsonValue j = JsonValue::object();
  j.set("connections", JsonValue::number(s.connections));
  j.set("upstream_failures", JsonValue::number(s.upstream_failures));
  j.set("frames_forwarded", JsonValue::number(s.frames_forwarded));
  j.set("killed", JsonValue::number(s.killed));
  j.set("dropped", JsonValue::number(s.dropped));
  j.set("truncated", JsonValue::number(s.truncated));
  j.set("corrupted", JsonValue::number(s.corrupted));
  j.set("delayed", JsonValue::number(s.delayed));
  std::printf("%s\n", j.dump(0).c_str());
  return 0;
}
