#!/usr/bin/env python3
"""Compare the key structure of two bench --json files.

CI runs a short smoke sweep and diffs its JSON *shape* against the committed
BENCH_sweep.json so schema drift (renamed metrics, dropped config keys, a
changed cells layout) fails the build even though the metric *values*
legitimately differ between machines and runs.

Usage: check_bench_schema.py BASELINE.json FRESH.json

Rules:
  - Objects must have exactly the same key sets, recursively.
  - Arrays are compared element-wise against the baseline's first element
    (cells all share one shape; an empty fresh array is a failure when the
    baseline has elements).
  - Leaf types must match (number vs string vs bool vs null), except that a
    baseline number matches any fresh number.
Exits 0 when the shapes match, 1 with a per-path diff otherwise.
"""

import json
import sys


def type_name(v):
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"
    if isinstance(v, str):
        return "string"
    if v is None:
        return "null"
    if isinstance(v, list):
        return "array"
    if isinstance(v, dict):
        return "object"
    return type(v).__name__


def diff_shapes(base, fresh, path, errors):
    bt, ft = type_name(base), type_name(fresh)
    if bt != ft:
        errors.append(f"{path}: baseline is {bt}, fresh is {ft}")
        return
    if bt == "object":
        missing = sorted(set(base) - set(fresh))
        extra = sorted(set(fresh) - set(base))
        if missing:
            errors.append(f"{path}: fresh is missing keys {missing}")
        if extra:
            errors.append(f"{path}: fresh has unexpected keys {extra}")
        for key in sorted(set(base) & set(fresh)):
            diff_shapes(base[key], fresh[key], f"{path}.{key}", errors)
    elif bt == "array":
        if base and not fresh:
            errors.append(f"{path}: baseline has elements, fresh is empty")
        elif base:
            for i, elem in enumerate(fresh):
                diff_shapes(base[0], elem, f"{path}[{i}]", errors)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} BASELINE.json FRESH.json", file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        base = json.load(f)
    with open(argv[2]) as f:
        fresh = json.load(f)
    errors = []
    diff_shapes(base, fresh, "$", errors)
    if errors:
        print(f"bench schema drift vs {argv[1]}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"bench schema matches {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
