#!/usr/bin/env python3
"""Compare the key structure of two bench --json files.

CI runs a short smoke sweep and diffs its JSON *shape* against the committed
BENCH_sweep.json so schema drift (renamed metrics, dropped config keys, a
changed cells layout) fails the build even though the metric *values*
legitimately differ between machines and runs.

Usage: check_bench_schema.py BASELINE.json FRESH.json
       check_bench_schema.py --self-test

Rules:
  - Both files must declare schema_version == EXPECTED_SCHEMA_VERSION (2:
    v2 added the per-cell wall_clock_seconds field). Values are pinned for
    this key only — everywhere else values may differ.
  - Objects must have exactly the same key sets, recursively. Every missing
    or unexpected key is reported on its own line with its exact full path
    (e.g. `$.config.frontend: missing in fresh`), so the offending key can
    be grepped straight out of the bench source.
  - Arrays are compared element-wise against the baseline's first element
    (cells all share one shape; an empty fresh array is a failure when the
    baseline has elements).
  - Leaf types must match (number vs string vs bool vs null), except that a
    baseline number matches any fresh number.
Exits 0 when the shapes match, 1 with a per-path diff otherwise.
`--self-test` runs the checker against built-in fixtures (CI invokes it so
a broken checker cannot silently wave drift through).
"""

import json
import sys

EXPECTED_SCHEMA_VERSION = 2


def type_name(v):
    if isinstance(v, bool):
        return "bool"
    if isinstance(v, (int, float)):
        return "number"
    if isinstance(v, str):
        return "string"
    if v is None:
        return "null"
    if isinstance(v, list):
        return "array"
    if isinstance(v, dict):
        return "object"
    return type(v).__name__


def diff_shapes(base, fresh, path, errors):
    bt, ft = type_name(base), type_name(fresh)
    if bt != ft:
        errors.append(f"{path}: baseline is {bt}, fresh is {ft}")
        return
    if bt == "object":
        for key in sorted(set(base) - set(fresh)):
            errors.append(f"{path}.{key}: missing in fresh")
        for key in sorted(set(fresh) - set(base)):
            errors.append(f"{path}.{key}: unexpected in fresh")
        for key in sorted(set(base) & set(fresh)):
            diff_shapes(base[key], fresh[key], f"{path}.{key}", errors)
    elif bt == "array":
        if base and not fresh:
            errors.append(f"{path}: baseline has elements, fresh is empty")
        elif base:
            for i, elem in enumerate(fresh):
                diff_shapes(base[0], elem, f"{path}[{i}]", errors)


def check_schema_version(doc, label, errors):
    v = doc.get("schema_version") if isinstance(doc, dict) else None
    if v != EXPECTED_SCHEMA_VERSION:
        errors.append(
            f"$.schema_version: {label} declares {v!r}, "
            f"expected {EXPECTED_SCHEMA_VERSION}"
        )


def self_test():
    """Fixture pairs: (baseline, fresh, expected error lines)."""
    cases = [
        ({"a": 1, "b": "x"}, {"a": 2.5, "b": "y"}, []),
        ({"a": 1}, {"a": "s"}, ["$.a: baseline is number, fresh is string"]),
        (
            {"config": {"seed": 1, "frontend": "exec"}},
            {"config": {"seed": 1}},
            ["$.config.frontend: missing in fresh"],
        ),
        (
            {"config": {"seed": 1}},
            {"config": {"seed": 1, "bogus": 0}},
            ["$.config.bogus: unexpected in fresh"],
        ),
        (
            {"cells": [{"tag": "a", "m": {"ipc": 1.0}}]},
            {"cells": [{"tag": "b", "m": {"ipc": 2.0}},
                       {"tag": "c", "m": {}}]},
            ["$.cells[1].m.ipc: missing in fresh"],
        ),
        ({"cells": [1]}, {"cells": []},
         ["$.cells: baseline has elements, fresh is empty"]),
        (
            {"x": {"deep": {"gone": 1, "also_gone": 2}}},
            {"x": {"deep": {"added": 3}}},
            [
                "$.x.deep.also_gone: missing in fresh",
                "$.x.deep.gone: missing in fresh",
                "$.x.deep.added: unexpected in fresh",
            ],
        ),
        # v2: every cell carries its own wall_clock_seconds; a bench that
        # drops it (or adds surprise keys) is schema drift like any other.
        (
            {"cells": [{"tag": "a", "wall_clock_seconds": 0.5,
                        "metrics": {"ipc": 1.0}}]},
            {"cells": [{"tag": "a", "metrics": {"ipc": 1.0}}]},
            ["$.cells[0].wall_clock_seconds: missing in fresh"],
        ),
    ]
    version_cases = [
        ({"schema_version": 2}, "baseline", []),
        (
            {"schema_version": 1},
            "fresh",
            ["$.schema_version: fresh declares 1, expected 2"],
        ),
        (
            {"cells": []},
            "baseline",
            ["$.schema_version: baseline declares None, expected 2"],
        ),
    ]
    failed = 0
    for i, (base, fresh, expected) in enumerate(cases):
        errors = []
        diff_shapes(base, fresh, "$", errors)
        if errors != expected:
            failed += 1
            print(f"self-test case {i} FAILED:", file=sys.stderr)
            print(f"  expected: {expected}", file=sys.stderr)
            print(f"  got:      {errors}", file=sys.stderr)
    for i, (doc, label, expected) in enumerate(version_cases):
        errors = []
        check_schema_version(doc, label, errors)
        if errors != expected:
            failed += 1
            print(f"self-test version case {i} FAILED:", file=sys.stderr)
            print(f"  expected: {expected}", file=sys.stderr)
            print(f"  got:      {errors}", file=sys.stderr)
    total = len(cases) + len(version_cases)
    if failed:
        print(f"self-test: {failed}/{total} cases failed", file=sys.stderr)
        return 1
    print(f"self-test: all {total} cases pass")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} BASELINE.json FRESH.json | --self-test",
              file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        base = json.load(f)
    with open(argv[2]) as f:
        fresh = json.load(f)
    errors = []
    check_schema_version(base, "baseline", errors)
    check_schema_version(fresh, "fresh", errors)
    diff_shapes(base, fresh, "$", errors)
    if errors:
        print(f"bench schema drift vs {argv[1]}:")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"bench schema matches {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
