// aeep_metrics — dump and diff telemetry snapshots from a running
// aeep_served.
//
//   aeep_metrics dump [--host=127.0.0.1 --port=7421] [--token=SECRET]
//                     [--out=FILE]
//   aeep_metrics diff OLD.json NEW.json
//
// `dump` fetches the server's metrics registry snapshot (histograms with
// raw log2 buckets + counters) and prints it as JSON — or writes it to
// --out for a later diff. `diff` loads two dump files from the *same*
// server and prints the interval between them: for every histogram the
// bucket-wise difference (what HistogramSnapshot::diff_since computes),
// for every counter the numeric delta. That turns two cheap snapshots
// into a per-stage latency profile of exactly the traffic in between —
// the before/after workflow EXPERIMENTS.md E28 uses.
//
// A histogram that was reset between the two dumps cannot be diffed
// (bucket counts would go negative); it is reported as "reset" and
// skipped rather than failing the whole diff.
//
// Exit codes: 0 ok, 1 error (unreadable file, malformed snapshot),
// 2 usage, 6 cannot connect, 7 unauthorized.
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "metrics/histogram.hpp"
#include "server/client.hpp"

using namespace aeep;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: aeep_metrics dump [--host=127.0.0.1] [--port=7421] "
      "[--token=SECRET] [--out=FILE]\n"
      "       aeep_metrics diff OLD.json NEW.json\n");
  return 2;
}

/// Slurp a dump file back in. nullopt (with a message) on any failure.
std::optional<JsonValue> read_snapshot_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");  // aeep-lint: allow(raw-fs-call)
  if (!f) {
    std::fprintf(stderr, "aeep_metrics: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  // aeep-lint: allow(raw-file-io) — tool-local text slurp, not trace I/O
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::optional<JsonValue> doc = json_parse(text);
  if (!doc || !doc->is_object() || doc->find("histograms") == nullptr) {
    std::fprintf(stderr,
                 "aeep_metrics: %s is not a metrics snapshot "
                 "(expected {\"histograms\": ..., \"counters\": ...})\n",
                 path.c_str());
    return std::nullopt;
  }
  return doc;
}

int dump_command(const CliArgs& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const u16 port = static_cast<u16>(args.get_u64("port", 7421));
  const std::string token = args.get("token", "");
  const std::string out_path = args.get("out", "");
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& k : unused) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  JsonValue snapshot;
  try {
    server::Client client(host, port);
    if (!token.empty()) client.set_token(token);
    const JsonValue reply = client.metrics();
    const JsonValue* m = reply.find("metrics");
    if (!m) {
      std::fprintf(stderr, "aeep_metrics: reply carried no metrics object\n");
      return 1;
    }
    snapshot = *m;
  } catch (const server::ServerError& e) {
    std::fprintf(stderr, "aeep_metrics: %s\n", e.what());
    if (e.kind() == server::ServerErrorKind::kUnauthorized) return 7;
    if (e.kind() == server::ServerErrorKind::kIo) return 6;
    return 1;
  }

  const std::string text = snapshot.dump(2) + "\n";
  if (out_path.empty()) {
    std::printf("%s", text.c_str());
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");  // aeep-lint: allow(raw-fs-call)
  if (!f) {
    std::fprintf(stderr, "aeep_metrics: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);  // aeep-lint: allow(raw-file-io)
  std::fclose(f);
  return 0;
}

void print_interval(const std::string& name,
                    const metrics::HistogramSnapshot& d) {
  std::printf("%-32s count %-8llu p50 %-10.0f p99 %-10.0f max %llu\n",
              name.c_str(), static_cast<unsigned long long>(d.count),
              d.percentile(50.0), d.percentile(99.0),
              static_cast<unsigned long long>(d.max));
}

int diff_command(const std::string& old_path, const std::string& new_path) {
  const std::optional<JsonValue> older = read_snapshot_file(old_path);
  const std::optional<JsonValue> newer = read_snapshot_file(new_path);
  if (!older || !newer) return 1;

  std::printf("interval %s -> %s\n", old_path.c_str(), new_path.c_str());
  std::printf("histograms (interval population, us):\n");
  const JsonValue* new_hists = newer->find("histograms");
  const JsonValue* old_hists = older->find("histograms");
  for (const auto& [name, doc] : new_hists->members()) {
    const std::optional<metrics::HistogramSnapshot> after =
        metrics::HistogramSnapshot::from_json(doc);
    if (!after) {
      std::fprintf(stderr, "aeep_metrics: malformed histogram '%s' in %s\n",
                   name.c_str(), new_path.c_str());
      return 1;
    }
    const JsonValue* old_doc =
        old_hists != nullptr ? old_hists->find(name) : nullptr;
    if (!old_doc) {
      // Born after the first dump: the whole history is the interval.
      print_interval(name + " (new)", *after);
      continue;
    }
    const std::optional<metrics::HistogramSnapshot> before =
        metrics::HistogramSnapshot::from_json(*old_doc);
    if (!before) {
      std::fprintf(stderr, "aeep_metrics: malformed histogram '%s' in %s\n",
                   name.c_str(), old_path.c_str());
      return 1;
    }
    const std::optional<metrics::HistogramSnapshot> interval =
        after->diff_since(*before);
    if (!interval) {
      std::printf("%-32s (reset between snapshots; not diffable)\n",
                  name.c_str());
      continue;
    }
    if (interval->empty()) continue;  // no traffic this interval
    print_interval(name, *interval);
  }

  std::printf("counters (delta):\n");
  const JsonValue* new_counts = newer->find("counters");
  const JsonValue* old_counts = older->find("counters");
  if (new_counts != nullptr) {
    for (const auto& [name, v] : new_counts->members()) {
      const u64 after = v.as_u64();
      const JsonValue* old_v =
          old_counts != nullptr ? old_counts->find(name) : nullptr;
      const u64 before = old_v != nullptr ? old_v->as_u64() : 0;
      if (after == before) continue;
      if (after < before) {
        std::printf("%-32s (reset between snapshots)\n", name.c_str());
        continue;
      }
      std::printf("%-32s +%llu\n", name.c_str(),
                  static_cast<unsigned long long>(after - before));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help") {
    usage();
    return 0;
  }
  if (cmd == "dump") {
    const CliArgs args = parse_cli_or_exit(argc - 1, argv + 1);
    return dump_command(args);
  }
  if (cmd == "diff") {
    // Two positional paths, no flags.
    std::vector<std::string> paths;
    for (int i = 2; i < argc; ++i) paths.emplace_back(argv[i]);
    if (paths.size() != 2) return usage();
    return diff_command(paths[0], paths[1]);
  }
  return usage();
}
