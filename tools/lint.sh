#!/usr/bin/env bash
# Repo-specific lint gate (runs in CI; no compiler needed).
#
# Four rules, each born from a real bug class in this codebase:
#
#  1. No raw rand()/srand(): all stochastic behaviour must flow from the
#     seeded Xorshift64Star so every run is exactly reproducible.
#  2. No unchecked `).value()` on optionals: dereference with a checked
#     pattern (`if (auto v = ...)`) instead. The stats-registry Counter
#     accessor (`reg.counter("...").value()`) is explicitly exempt — it
#     returns a plain integer, not an optional.
#  3. Every header that declares a `struct ...Stats` must also declare a
#     reset path (`reset_stats` / `reset_metrics`, or expose a non-const
#     `...Stats& stats()` accessor) so warm-up resets cannot silently skip
#     it. This is the rule that would have caught the Scrubber stats
#     surviving reset_metrics.
#  4. Under src/ecc/, functions named exactly `encode`/`decode` must not
#     return std::vector: the line-codec hot path is allocation-free by
#     contract (callers bring scratch buffers). Allocating conveniences are
#     fine but must be named *_alloc so the cost is visible at call sites.
#  5. No raw fread/fwrite outside src/trace/: binary file I/O must go
#     through trace::FileReader/FileWriter (trace/io.hpp), which turn short
#     reads/writes into typed TraceErrors instead of silently-ignored return
#     values. Tests are exempt — they deliberately craft truncated/corrupt
#     files to exercise those error paths.
#  6. No raw socket()/send()/recv() outside src/server/: network I/O must
#     go through server::Socket/Listener (server/socket.hpp), which retry
#     short transfers and EINTR and turn failures into typed ServerErrors —
#     the networking twin of Rule 5.
set -u
cd "$(dirname "$0")/.."

SOURCES=(src tools tests bench examples)
CXX_GLOBS=(--include='*.cpp' --include='*.hpp')
fail=0

report() {
  echo "lint: $1"
  shift
  printf '%s\n' "$@" | sed 's/^/  /'
  fail=1
}

# --- Rule 1: raw C PRNG ----------------------------------------------------
hits=$(grep -rnE '\b(s?rand)\(' "${SOURCES[@]}" "${CXX_GLOBS[@]}" || true)
if [[ -n "$hits" ]]; then
  report "raw rand()/srand() is banned; use a seeded Xorshift64Star" "$hits"
fi

# --- Rule 2: unchecked optional::value() -----------------------------------
hits=$(grep -rnE '\)\.value\(\)' "${SOURCES[@]}" "${CXX_GLOBS[@]}" \
         | grep -vE 'counter\(|gauge\(' || true)
if [[ -n "$hits" ]]; then
  report "unchecked ).value() is banned; test the optional first" "$hits"
fi

# --- Rule 3: stats structs need a reset path -------------------------------
while IFS= read -r header; do
  if ! grep -qE 'reset_stats|reset_metrics|^[[:space:]]*[A-Za-z_]*Stats& stats\(\)' \
       "$header"; then
    report "stats struct without a reset path (warm-up would leak into it)" \
           "$header: declares a ...Stats struct but neither reset_stats()," \
           "reset_metrics() nor a non-const ...Stats& stats() accessor"
  fi
done < <(grep -rlE 'struct [A-Za-z_]*Stats\b' src --include='*.hpp')

# --- Rule 4: no allocating encode/decode in the ECC hot path ---------------
hits=$(grep -rnE 'std::vector<[^>]+>[[:space:]]+[A-Za-z_:]*(encode|decode)[[:space:]]*\(' \
         src/ecc "${CXX_GLOBS[@]}" || true)
if [[ -n "$hits" ]]; then
  report "std::vector-returning encode()/decode() is banned under src/ecc/;
use the span scratch-buffer API, or name the convenience *_alloc" "$hits"
fi

# --- Rule 5: raw fread/fwrite outside the trace I/O helpers ----------------
hits=$(grep -rnE '\bstd::f(read|write)\(|(^|[^:_[:alnum:]])f(read|write)\(' \
         src tools bench examples "${CXX_GLOBS[@]}" \
         | grep -v '^src/trace/io\.' || true)
if [[ -n "$hits" ]]; then
  report "raw fread()/fwrite() outside src/trace/io is banned;
use trace::FileReader/FileWriter so short I/O raises a typed error" "$hits"
fi

# --- Rule 6: raw sockets outside the server I/O helpers --------------------
hits=$(grep -rnE '(^|[^._[:alnum:]])(socket|send|recv|sendto|recvfrom)[[:space:]]*\(' \
         src tools bench examples tests "${CXX_GLOBS[@]}" \
         | grep -v '^src/server/socket\.' || true)
if [[ -n "$hits" ]]; then
  report "raw socket()/send()/recv() outside src/server/socket.* is banned;
use server::Socket/Listener so short transfers raise a typed error" "$hits"
fi

if [[ $fail -eq 0 ]]; then
  echo "lint: all rules pass"
fi
exit $fail
