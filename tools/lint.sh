#!/usr/bin/env bash
# Repo lint gate: thin wrapper around the token-aware aeep_lint binary
# (src/analysis/). The old grep rules lived here; they now run as real
# lexer-backed rules that cannot fire on comments or string literals, plus
# the concurrency rules (mutex-guard, thread-detach, naked-new-delete,
# sleep-in-src). Run `aeep_lint --list-rules` for the catalog; suppress a
# deliberate hit with `// aeep-lint: allow(<rule>)` on or above the line.
#
# Exit codes (same contract the grep version had): 0 clean, 1 findings.
# A broken build is an error, not a pass — exits non-zero loudly.
#
# AEEP_LINT_BUILD_DIR selects where the binary is built/found
# (default: <repo>/build). An existing binary there is reused; otherwise a
# minimal configure+build of just the aeep_lint target runs first.
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${AEEP_LINT_BUILD_DIR:-build}"
LINT_BIN="$BUILD_DIR/tools/aeep_lint"

if [[ ! -x "$LINT_BIN" ]]; then
  if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
    cmake -B "$BUILD_DIR" -S . >/dev/null || {
      echo "lint: cmake configure failed" >&2
      exit 2
    }
  fi
  cmake --build "$BUILD_DIR" --target aeep_lint -j >/dev/null || {
    echo "lint: building aeep_lint failed" >&2
    exit 2
  }
fi

exec "$LINT_BIN" --root=.
