// aeep_trace — capture, replay, cross-validate and inspect L2 access traces.
//
//   aeep_trace capture  --benchmark=gzip --out=gzip.aeept [run/scheme opts]
//   aeep_trace replay   --trace=gzip.aeept [--benchmark=gzip] [scheme opts]
//   aeep_trace validate --benchmarks=gzip,mcf --trace-dir=DIR [--tolerance=0.01]
//   aeep_trace info     --trace=gzip.aeept
//
// `validate` is the cross-validation gate CI runs: each benchmark is run
// execution-driven (capturing), replayed trace-driven, and the dirty-ratio /
// WB / Clean-WB / ECC-WB metrics must agree within the tolerance. Exit code
// is non-zero when any metric diverges. Run/scheme options shared by the
// subcommands: --instructions, --warmup, --seed, --scheme=uniform|nonuniform|
// shared, --interval (cleaning interval, cycles), --entries (shared-ECC
// entries per set).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "sim/experiment.hpp"
#include "trace/io.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/validate.hpp"

using namespace aeep;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aeep_trace <capture|replay|validate|info> [--flags]\n"
               "  capture  --benchmark=NAME --out=FILE [run/scheme opts]\n"
               "  replay   --trace=FILE [--benchmark=NAME] [run/scheme opts]\n"
               "  validate --benchmarks=A,B,... --trace-dir=DIR "
               "[--tolerance=0.01] [run/scheme opts]\n"
               "  info     --trace=FILE\n");
  return 2;
}

sim::ExperimentOptions parse_experiment(const CliArgs& args) {
  sim::ExperimentOptions eo;
  eo.instructions = args.get_u64("instructions", 200'000);
  eo.warmup_instructions = args.get_u64("warmup", 20'000);
  eo.seed = args.get_u64("seed", 42);
  eo.cleaning_interval = args.get_u64("interval", 256 * 1024);
  eo.ecc_entries_per_set =
      static_cast<unsigned>(args.get_u64("entries", 1));
  const std::string scheme = args.get("scheme", "shared");
  if (scheme == "uniform") eo.scheme = protect::SchemeKind::kUniformEcc;
  else if (scheme == "nonuniform") eo.scheme = protect::SchemeKind::kNonUniform;
  else if (scheme == "shared") eo.scheme = protect::SchemeKind::kSharedEccArray;
  else {
    std::fprintf(stderr, "unknown --scheme=%s (uniform|nonuniform|shared)\n",
                 scheme.c_str());
    std::exit(2);
  }
  return eo;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_run(const sim::RunResult& r) {
  std::printf("  avg_dirty_fraction  %.6f\n", r.avg_dirty_fraction);
  std::printf("  wb_replacement      %llu\n",
              static_cast<unsigned long long>(r.wb_replacement));
  std::printf("  wb_cleaning         %llu\n",
              static_cast<unsigned long long>(r.wb_cleaning));
  std::printf("  wb_ecc              %llu\n",
              static_cast<unsigned long long>(r.wb_ecc));
  std::printf("  l2 accesses/misses  %llu / %llu\n",
              static_cast<unsigned long long>(r.l2.accesses()),
              static_cast<unsigned long long>(r.l2.misses()));
  std::printf("  committed/cycles    %llu / %llu (ipc %.3f)\n",
              static_cast<unsigned long long>(r.core.committed),
              static_cast<unsigned long long>(r.core.cycles), r.ipc());
}

int cmd_capture(const CliArgs& args) {
  const std::string benchmark = args.get("benchmark", "");
  const std::string out = args.get("out", "");
  if (benchmark.empty() || out.empty()) return usage();
  sim::ExperimentOptions eo = parse_experiment(args);
  eo.capture_path = out;
  const sim::RunResult r = sim::run_benchmark(benchmark, eo);
  std::printf("captured %s -> %s\n", benchmark.c_str(), out.c_str());
  print_run(r);
  return 0;
}

int cmd_replay(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty()) return usage();
  const std::string benchmark = args.get("benchmark", "");
  sim::ExperimentOptions eo = parse_experiment(args);
  eo.frontend = sim::Frontend::kTrace;
  eo.trace_path = path;
  sim::RunResult r;
  if (!benchmark.empty()) {
    r = sim::run_benchmark(benchmark, eo);
  } else {
    // Externally ingested stream: no workload profile to look up.
    trace::ReplayConfig rc;
    rc.hierarchy = sim::make_system_config("gzip", eo).hierarchy;
    rc.trace_path = path;
    r = trace::ReplayDriver(std::move(rc)).run();
  }
  std::printf("replayed %s\n", path.c_str());
  print_run(r);
  return 0;
}

int cmd_validate(const CliArgs& args) {
  const std::string dir = args.get("trace-dir", ".");
  const double tolerance = args.get_double("tolerance", 0.01);
  const std::vector<std::string> benchmarks =
      split_csv(args.get("benchmarks", "gzip,mcf"));
  const sim::ExperimentOptions eo = parse_experiment(args);
  bool all_pass = true;
  double exec_total = 0.0, replay_total = 0.0;
  for (const auto& b : benchmarks) {
    const sim::SystemConfig cfg = sim::make_system_config(b, eo);
    const trace::ValidationReport rep =
        trace::cross_validate(cfg, dir + "/" + b + ".aeept", tolerance);
    std::printf("%s", rep.to_text().c_str());
    all_pass = all_pass && rep.pass;
    exec_total += rep.exec_seconds;
    replay_total += rep.replay_seconds;
  }
  if (replay_total > 0.0)
    std::printf("overall: exec %.2fs, replay %.2fs, per-cell speedup %.1fx\n",
                exec_total, replay_total, exec_total / replay_total);
  std::printf("cross-validation %s\n", all_pass ? "PASS" : "FAIL");
  return all_pass ? 0 : 1;
}

int cmd_info(const CliArgs& args) {
  const std::string path = args.get("trace", "");
  if (path.empty()) return usage();
  trace::TraceReader reader(path);
  trace::TraceEvent e;
  u64 counts[4] = {0, 0, 0, 0};
  Cycle first_tick = 0, last_tick = 0;
  bool any = false;
  while (reader.next(e)) {
    ++counts[static_cast<unsigned>(e.kind)];
    if (!any) first_tick = e.tick;
    last_tick = e.tick;
    any = true;
  }
  const trace::TraceSummary& s = reader.summary();
  std::printf("%s: format v%u, line_bytes %u\n", path.c_str(),
              trace::kTraceVersion, reader.line_bytes());
  std::printf("  events   %llu in %llu chunks (fetch %llu, load %llu, "
              "store %llu, reset %llu)\n",
              static_cast<unsigned long long>(reader.events_read()),
              static_cast<unsigned long long>(reader.chunks_read()),
              static_cast<unsigned long long>(counts[0]),
              static_cast<unsigned long long>(counts[1]),
              static_cast<unsigned long long>(counts[2]),
              static_cast<unsigned long long>(counts[3]));
  std::printf("  ticks    %llu .. %llu, end %llu\n",
              static_cast<unsigned long long>(first_tick),
              static_cast<unsigned long long>(last_tick),
              static_cast<unsigned long long>(s.end_tick));
  std::printf("  summary  committed %llu, loads %llu, stores %llu\n",
              static_cast<unsigned long long>(s.committed),
              static_cast<unsigned long long>(s.loads),
              static_cast<unsigned long long>(s.stores));
  // The same whole-file CRC64 the result store folds into job digests, so
  // "which trace produced this cache entry" is answerable from here.
  std::printf("  digest   %016llx\n",
              static_cast<unsigned long long>(trace::file_digest(path)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const CliArgs args = parse_cli_or_exit(argc - 1, argv + 1);
  try {
    if (cmd == "capture") return cmd_capture(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "validate") return cmd_validate(args);
    if (cmd == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aeep_trace %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  return usage();
}
