// aeep_served — the networked simulation service.
//
//   aeep_served --port=7421 --trace-dir=traces/ --access-log=served.log
//
// Accepts experiment / trace-replay jobs over TCP (length-prefixed JSON
// frames — see src/server/wire.hpp), batches them onto one shared
// sim::SweepRunner pool, and applies explicit backpressure: a submit
// against a full queue is answered with a "busy" error, never queued
// unboundedly. SIGTERM/SIGINT drain gracefully — stop taking jobs, finish
// what is queued and running, flush the access log, exit 0.
//
// Flags: --host (default 127.0.0.1), --port (default 7421; 0 = pick one
// and print it), --workers (0 = hardware), --queue-capacity, --max-batch,
// --max-connections, --timeout-ms (default per-job wall clock),
// --retention (finished jobs kept queryable), --trace-dir (directory of
// .aeept files clients may name), --access-log (file; "-" = stderr),
// --access-log-max-bytes (rotate the log to .1 past this size; 0 = never),
// --store (result-store directory: submits whose content digest hits the
// store are answered from cache without touching the sweep pool),
// --metrics-log-every (write a per-stage histogram summary line to the
// access log every N terminal jobs; 0 = only at drain), --token (shared
// secret: every request except ping must carry it or is refused
// "unauthorized").
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "server/server.hpp"

using namespace aeep;

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  server::ServerConfig cfg;
  cfg.host = args.get("host", cfg.host);
  cfg.port = static_cast<u16>(args.get_u64("port", 7421));
  cfg.workers = static_cast<unsigned>(args.get_u64("workers", 0));
  cfg.queue_capacity = static_cast<std::size_t>(
      args.get_u64("queue-capacity", cfg.queue_capacity));
  cfg.max_batch =
      static_cast<std::size_t>(args.get_u64("max-batch", cfg.max_batch));
  cfg.max_connections = static_cast<std::size_t>(
      args.get_u64("max-connections", cfg.max_connections));
  cfg.default_timeout_ms = args.get_u64("timeout-ms", cfg.default_timeout_ms);
  cfg.result_retention = static_cast<std::size_t>(
      args.get_u64("retention", cfg.result_retention));
  cfg.trace_dir = args.get("trace-dir", "");
  cfg.access_log_path = args.get("access-log", "");
  cfg.access_log_max_bytes =
      args.get_u64("access-log-max-bytes", cfg.access_log_max_bytes);
  cfg.store_dir = args.get("store", "");
  cfg.metrics_log_every =
      args.get_u64("metrics-log-every", cfg.metrics_log_every);
  cfg.token = args.get("token", "");
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& k : unused) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\naccepted flags:");
    for (const auto& k : args.queried())
      std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }

  server::JobServer served(cfg);
  try {
    served.start();
  } catch (const server::ServerError& e) {
    std::fprintf(stderr, "aeep_served: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // e.g. a corrupt --store segment (trace::TraceError)
    std::fprintf(stderr, "aeep_served: %s\n", e.what());
    return 1;
  }
  // Print the resolved port on stdout so scripts using --port=0 can read
  // where to connect (everything chatty goes to stderr).
  std::printf("aeep_served listening on %s:%u\n", cfg.host.c_str(),
              unsigned{served.port()});
  std::fflush(stdout);
  std::fprintf(stderr,
               "aeep_served: queue-capacity=%zu max-batch=%zu "
               "timeout-ms=%llu traces=%zu (SIGTERM drains)\n",
               cfg.queue_capacity, cfg.max_batch,
               static_cast<unsigned long long>(cfg.default_timeout_ms),
               served.registry().size());

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  while (g_signal == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::fprintf(stderr, "aeep_served: signal %d, draining...\n",
               static_cast<int>(g_signal));
  const u64 completed = served.drain();
  std::fprintf(stderr, "aeep_served: drained, %llu jobs completed, bye\n",
               static_cast<unsigned long long>(completed));
  return 0;
}
