// aeep_coord — fan a sweep grid over a fleet of aeep_served workers.
//
//   aeep_coord --workers=127.0.0.1:7501,127.0.0.1:7502,7503 [grid flags]
//   aeep_coord --local                 — same grid on a local SweepRunner
//
// The grid is suite benchmarks × the three protection schemes, identical
// to what the figure benches sweep. Cells are dispatched in batches with
// health probes, jittered-backoff retries, speculative re-dispatch of
// stragglers, permanent retirement of flapping workers, and local
// fallback when the fleet dies — see src/fabric/coordinator.hpp. Because
// every cell is seeded and both paths render metrics through
// sim::run_result_json, `--json` output from a chaotic fleet run and from
// `--local` must have byte-identical cells — that equivalence is the CI
// chaos gate.
//
// Grid flags: --suite=all|fp|int|smoke --instructions --warmup --seed
//             --frontend=exec|trace --trace-dir (local fallback only)
// Fleet flags: --workers=HOST:PORT[,...] --retire-after --max-attempts
//   --batch-size --call-timeout-ms --job-wait-ms --straggler-factor
//   --straggler-min-ms --min-fleet --no-local-fallback --backoff-base-ms
//   --probe-timeout-ms --local-jobs
// Store: --store=DIR consults the content-addressed result store before
//   running (both modes); a cell whose digest hits is served from cache
//   with zero simulation work, and computed cells are inserted for the
//   next run. The reporter config records store_hits/store_misses — the
//   CI store-smoke gate asserts a repeated sweep is 100% hits.
// Output: --json=FILE (bench schema v1, cells in grid order),
//   --retirement-log=FILE (one JSON object per retired worker).
// Exit codes: 0 every cell computed, 2 usage, 1 any cell failed.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "fabric/coordinator.hpp"
#include "json_reporter.hpp"
#include "sim/result_json.hpp"
#include "store/sweep_cache.hpp"

using namespace aeep;

namespace {

std::vector<fabric::WorkerEndpoint> parse_workers(const std::string& list) {
  std::vector<fabric::WorkerEndpoint> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!item.empty()) out.push_back(fabric::parse_endpoint(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// The sweep every aeep_coord invocation runs: suite benchmarks × the three
/// protection schemes, tagged by scheme label.
std::vector<sim::SweepJob> build_grid(const bench::CommonOptions& o) {
  const protect::SchemeKind schemes[] = {
      protect::SchemeKind::kUniformEcc,
      protect::SchemeKind::kNonUniform,
      protect::SchemeKind::kSharedEccArray,
  };
  std::vector<sim::SweepJob> grid;
  for (const auto& benchmark : bench::suite_benchmarks(o.suite)) {
    for (const auto scheme : schemes) {
      sim::SweepJob job;
      job.benchmark = benchmark;
      job.tag = protect::to_string(scheme);
      job.options.scheme = scheme;
      job.options.instructions = o.instructions;
      job.options.warmup_instructions = o.warmup;
      job.options.seed = o.seed;
      bench::apply_frontend(job.options, o);
      grid.push_back(std::move(job));
    }
  }
  return grid;
}

bool write_retirement_log(const std::string& path,
                          const std::vector<fabric::RetirementRecord>& log) {
  if (path.empty()) return true;
  // Line-oriented report, overwritten whole each run — not store data.
  std::FILE* f = std::fopen(path.c_str(), "w");  // aeep-lint: allow(raw-fs-call)
  if (!f) {
    std::fprintf(stderr, "aeep_coord: cannot write %s\n", path.c_str());
    return false;
  }
  for (const auto& rec : log) {
    JsonValue j = JsonValue::object();
    j.set("worker", JsonValue::string(rec.worker));
    j.set("reason", JsonValue::string(rec.reason));
    j.set("consecutive_failures",
          JsonValue::number(u64{rec.consecutive_failures}));
    j.set("t_ms", JsonValue::number(rec.t_ms));
    const std::string line = j.dump(0) + "\n";
    std::fputs(line.c_str(), f);
  }
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions o = bench::parse_common(args);
  const bool local_only = args.get_bool("local", false);
  const std::string workers_list = args.get("workers", "");
  const std::string retirement_log_path = args.get("retirement-log", "");

  fabric::FabricConfig cfg;
  cfg.seed = o.seed;
  cfg.backoff.base_ms = args.get_u64("backoff-base-ms", cfg.backoff.base_ms);
  cfg.retire_after = static_cast<unsigned>(
      args.get_u64("retire-after", cfg.retire_after));
  cfg.max_attempts = static_cast<unsigned>(
      args.get_u64("max-attempts", cfg.max_attempts));
  cfg.batch_size = static_cast<std::size_t>(
      args.get_u64("batch-size", cfg.batch_size));
  cfg.call_timeout_ms = args.get_u64("call-timeout-ms", cfg.call_timeout_ms);
  cfg.job_wait_ms = args.get_u64("job-wait-ms", cfg.job_wait_ms);
  cfg.straggler_factor =
      args.get_double("straggler-factor", cfg.straggler_factor);
  cfg.straggler_min_ms =
      args.get_u64("straggler-min-ms", cfg.straggler_min_ms);
  cfg.min_fleet = static_cast<std::size_t>(
      args.get_u64("min-fleet", cfg.min_fleet));
  cfg.allow_local_fallback = !args.get_bool("no-local-fallback", false);
  cfg.probe_timeout_ms =
      args.get_u64("probe-timeout-ms", cfg.probe_timeout_ms);
  cfg.local_jobs = static_cast<unsigned>(args.get_u64("local-jobs", o.jobs));
  const std::string store_dir = args.get("store", "");
  cfg.token = args.get("token", "");
  cfg.store_dir = store_dir;
  bench::reject_unknown_flags(args);

  if (!local_only && workers_list.empty()) {
    std::fprintf(stderr,
                 "aeep_coord: need --workers=HOST:PORT[,...] or --local\n");
    return 2;
  }

  try {
    if (!local_only) cfg.workers = parse_workers(workers_list);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "aeep_coord: %s\n", e.what());
    return 2;
  }

  const std::vector<sim::SweepJob> grid = build_grid(o);
  std::fprintf(stderr, "aeep_coord: %zu cells, %zu worker(s)%s\n",
               grid.size(), cfg.workers.size(),
               local_only ? " (local baseline)" : "");

  bench::JsonReporter reporter("coord_sweep", o,
                               static_cast<unsigned>(cfg.workers.size()));
  reporter.set_config("mode",
                      JsonValue::string(local_only ? "local" : "fabric"));

  bool any_failed = false;
  if (local_only) {
    std::unique_ptr<store::SweepCache> cache;
    if (!store_dir.empty()) {
      try {
        cache = std::make_unique<store::SweepCache>(
            store::StoreConfig{store_dir, 4096});
      } catch (const std::exception& e) {
        std::fprintf(stderr, "aeep_coord: cannot open store: %s\n", e.what());
        return 1;
      }
    }

    // Serve what the store already knows, then run only the misses; a
    // cached cell renders through the same sim::run_result_json as a
    // fresh one, so a warm re-run's --json cells are byte-identical.
    const sim::SweepRunner runner(o.jobs);
    std::vector<sim::RunResult> results(grid.size());
    std::vector<char> have(grid.size(), 0);
    std::vector<std::size_t> miss_idx;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (cache) {
        if (std::optional<sim::RunResult> hit = cache->lookup_result(grid[i])) {
          results[i] = std::move(*hit);
          have[i] = 1;
          std::fprintf(stderr, "[%zu/%zu] %s:%s <- store\n",
                       i - miss_idx.size() + 1, grid.size(),
                       grid[i].benchmark.c_str(), grid[i].tag.c_str());
          continue;
        }
      }
      miss_idx.push_back(i);
    }
    const std::size_t store_hits = grid.size() - miss_idx.size();
    if (!miss_idx.empty()) {
      std::vector<sim::SweepJob> miss_grid;
      miss_grid.reserve(miss_idx.size());
      for (const std::size_t i : miss_idx) miss_grid.push_back(grid[i]);
      const auto base_progress = sim::stderr_progress();
      const auto outcomes =
          runner.run(miss_grid, [&](const sim::SweepProgress& p) {
            sim::SweepProgress q = p;
            q.completed = store_hits + p.completed;
            q.total = grid.size();
            base_progress(q);
          });
      for (std::size_t k = 0; k < miss_idx.size(); ++k) {
        const std::size_t i = miss_idx[k];
        if (!outcomes[k].ok()) {
          any_failed = true;
          std::fprintf(stderr, "aeep_coord: cell %s:%s failed: %s\n",
                       grid[i].benchmark.c_str(), grid[i].tag.c_str(),
                       outcomes[k].error.c_str());
          continue;
        }
        results[i] = outcomes[k].result;
        have[i] = 1;
        if (cache) cache->insert(grid[i], outcomes[k].result);
      }
    }
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!have[i]) continue;
      reporter.add_cell(grid[i].benchmark, grid[i].tag,
                        sim::run_result_json(results[i]));
    }
    if (cache) {
      reporter.set_config("store_hits", JsonValue::number(u64{store_hits}));
      reporter.set_config("store_misses",
                          JsonValue::number(u64{miss_idx.size()}));
      std::fprintf(stderr, "aeep_coord: store hits=%zu misses=%zu (%s)\n",
                   store_hits, miss_idx.size(), store_dir.c_str());
    }
  } else {
    std::unique_ptr<fabric::Coordinator> coord;
    try {
      coord = std::make_unique<fabric::Coordinator>(std::move(cfg));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "aeep_coord: cannot open store: %s\n", e.what());
      return 1;
    }
    const auto outcomes =
        coord->run(grid, [](const fabric::FabricProgress& p) {
          std::fprintf(stderr, "[%zu/%zu] %s:%s <- %s%s\n", p.completed,
                       p.total, p.job->benchmark.c_str(), p.job->tag.c_str(),
                       p.outcome->ok() ? p.outcome->worker.c_str()
                                       : "FAILED",
                       p.outcome->speculative ? " (speculative)" : "");
        });
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!outcomes[i].ok()) {
        any_failed = true;
        std::fprintf(stderr, "aeep_coord: cell %s:%s failed: %s\n",
                     grid[i].benchmark.c_str(), grid[i].tag.c_str(),
                     outcomes[i].error.c_str());
        continue;
      }
      reporter.add_cell(grid[i].benchmark, grid[i].tag, outcomes[i].metrics);
    }

    const fabric::FabricStats s = coord->stats();
    std::fprintf(stderr,
                 "aeep_coord: remote=%llu local=%llu cached=%llu "
                 "retries=%llu speculative=%llu duplicates=%llu "
                 "worker_failures=%llu busy_backoffs=%llu\n",
                 static_cast<unsigned long long>(s.jobs_remote),
                 static_cast<unsigned long long>(s.jobs_local),
                 static_cast<unsigned long long>(s.jobs_cached),
                 static_cast<unsigned long long>(s.retries),
                 static_cast<unsigned long long>(s.speculative_dispatches),
                 static_cast<unsigned long long>(s.duplicates_discarded),
                 static_cast<unsigned long long>(s.worker_failures),
                 static_cast<unsigned long long>(s.busy_backoffs));
    if (!store_dir.empty()) {
      reporter.set_config("store_hits", JsonValue::number(s.jobs_cached));
      reporter.set_config("store_misses",
                          JsonValue::number(u64{grid.size()} - s.jobs_cached));
    }
    const auto retirement_log = coord->registry().retirement_log();
    for (const auto& rec : retirement_log)
      std::fprintf(stderr, "aeep_coord: retired %s after %u failure(s): %s\n",
                   rec.worker.c_str(), rec.consecutive_failures,
                   rec.reason.c_str());
    if (!write_retirement_log(retirement_log_path, retirement_log)) return 1;
  }

  if (!reporter.write(o.json_path)) return 1;
  if (any_failed) {
    std::fprintf(stderr, "aeep_coord: some cells failed\n");
    return 1;
  }
  std::fprintf(stderr, "aeep_coord: all %zu cells computed\n", grid.size());
  return 0;
}
