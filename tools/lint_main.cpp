// aeep_lint — the repo's token-aware lint gate (replaces the grep rules
// that used to live in tools/lint.sh; the script is now a thin wrapper
// that builds and runs this binary).
//
//   aeep_lint [--root=DIR]     lint src/ tools/ tests/ bench/ examples/
//   aeep_lint --list-rules     print the rule catalog
//   aeep_lint FILE...          lint specific files (paths used for scoping)
//
// Exit code: 0 = clean, 1 = findings, 2 = usage/IO trouble — the same
// contract the grep script had, so CI and local habits keep working.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/rules.hpp"

namespace fs = std::filesystem;
using aeep::analysis::Finding;
using aeep::analysis::format_finding;
using aeep::analysis::lint_file;
using aeep::analysis::rule_catalog;

namespace {

/// The directories the grep rules covered, and that aeep_lint walks.
const char* kRoots[] = {"src", "tools", "tests", "bench", "examples"};

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

int lint_paths(const std::vector<std::pair<std::string, fs::path>>& files) {
  std::size_t bad_files = 0;
  std::vector<Finding> all;
  for (const auto& [rel, abs] : files) {
    std::string source;
    if (!read_file(abs, source)) {
      std::fprintf(stderr, "aeep_lint: cannot read %s\n",
                   abs.string().c_str());
      return 2;
    }
    const std::vector<Finding> findings = lint_file(rel, source);
    if (!findings.empty()) ++bad_files;
    for (const Finding& f : findings)
      std::printf("%s\n", format_finding(f).c_str());
    all.insert(all.end(), findings.begin(), findings.end());
  }
  if (all.empty()) {
    std::printf("aeep_lint: all rules pass (%zu files)\n", files.size());
    return 0;
  }
  std::printf("aeep_lint: %zu finding(s) in %zu file(s)\n", all.size(),
              bad_files);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : rule_catalog())
        std::printf("%-26s %s\n", rule.name.c_str(),
                    rule.description.c_str());
      return 0;
    }
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: aeep_lint [--root=DIR] [--list-rules] [FILE...]\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "aeep_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    explicit_files.push_back(arg);
  }

  std::vector<std::pair<std::string, fs::path>> files;  // rel, absolute
  if (!explicit_files.empty()) {
    files.reserve(explicit_files.size());
    for (const std::string& f : explicit_files)
      files.emplace_back(fs::path(f).generic_string(), fs::path(f));
  } else {
    const fs::path base(root);
    for (const char* dir : kRoots) {
      const fs::path top = base / dir;
      std::error_code ec;
      if (!fs::is_directory(top, ec)) continue;
      for (auto it = fs::recursive_directory_iterator(top, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file() || !has_cxx_extension(it->path()))
          continue;
        files.emplace_back(
            fs::relative(it->path(), base).generic_string(), it->path());
      }
    }
    if (files.empty()) {
      std::fprintf(stderr,
                   "aeep_lint: no sources under %s (wrong --root?)\n",
                   root.c_str());
      return 2;
    }
  }

  std::sort(files.begin(), files.end());
  return lint_paths(files);
}
