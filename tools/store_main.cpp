// aeep_store — inspect and maintain a result-store directory.
//
//   aeep_store info --store=DIR            — entry/byte counts, segment path
//   aeep_store ls   --store=DIR            — entries in eviction order
//   aeep_store get KEY --store=DIR         — payload JSON for a hex key
//   aeep_store gc --max-bytes=N --store=DIR — evict + compact to a budget
//
// `ls` prints one line per entry — `KEY BYTES SEGMENT` — in the store's
// deterministic eviction order (probationary LRU first, protected MRU
// last): the first line is what the next gc() would evict first. `get`
// takes the 16-hex-digit key exactly as `ls` prints it and writes the
// payload JSON to stdout. `gc` reports how many entries were evicted and
// the compacted segment size; the same store state and budget always
// evict the same keys, so a scripted gc is reproducible.
// Exit codes: 0 ok, 2 usage, 4 key not found, 1 anything else.
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "store/result_store.hpp"
#include "trace/error.hpp"

using namespace aeep;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: aeep_store <info|ls|get KEY|gc> --store=DIR "
               "[--max-entries=N] [--max-bytes=N]\n"
               "  info — entries, protected/probationary split, disk bytes\n"
               "  ls   — entries in eviction order: KEY BYTES SEGMENT\n"
               "  get  — payload JSON for a key from ls\n"
               "  gc   — evict (probationary first) + compact the segment "
               "to --max-bytes\n");
  return 2;
}

int cmd_info(store::ResultStore& rs) {
  const auto entries = rs.entries();
  std::size_t protected_count = 0;
  for (const auto& e : entries)
    if (e.protected_segment) ++protected_count;
  const store::StoreStats s = rs.stats();
  std::printf("dir: %s\n", rs.dir().c_str());
  std::printf("segment: %s\n",
              store::ResultStore::segment_path(rs.dir()).c_str());
  std::printf("entries: %zu (probationary %zu, protected %zu)\n",
              entries.size(), entries.size() - protected_count,
              protected_count);
  std::printf("disk_bytes: %llu\n",
              static_cast<unsigned long long>(rs.disk_bytes()));
  std::printf("recovered_records: %llu\n",
              static_cast<unsigned long long>(s.recovered_records));
  std::printf("dropped_records: %llu\n",
              static_cast<unsigned long long>(s.dropped_records));
  return 0;
}

int cmd_ls(store::ResultStore& rs) {
  for (const auto& e : rs.entries())
    std::printf("%s %u %s\n", e.key.hex().c_str(), unsigned{e.payload_bytes},
                e.protected_segment ? "protected" : "probationary");
  return 0;
}

int cmd_get(store::ResultStore& rs, const std::string& key_hex) {
  const std::optional<store::Digest> key = store::Digest::from_hex(key_hex);
  if (!key) {
    std::fprintf(stderr, "aeep_store: '%s' is not a 16-hex-digit key\n",
                 key_hex.c_str());
    return 2;
  }
  const std::optional<JsonValue> payload = rs.lookup(*key);
  if (!payload) {
    std::fprintf(stderr, "aeep_store: no entry %s\n", key_hex.c_str());
    return 4;
  }
  std::printf("%s\n", payload->dump(2).c_str());
  return 0;
}

int cmd_gc(store::ResultStore& rs, u64 max_bytes) {
  const std::size_t before = rs.size();
  const u64 evicted = rs.gc(max_bytes);
  std::printf("evicted %llu of %zu entries; %zu remain in %llu bytes\n",
              static_cast<unsigned long long>(evicted), before, rs.size(),
              static_cast<unsigned long long>(rs.disk_bytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help") {
    usage();
    return 0;
  }
  const CliArgs args = parse_cli_or_exit(argc - 1, argv + 1);
  const std::string dir = args.get("store", "");
  if (dir.empty()) {
    std::fprintf(stderr, "aeep_store: need --store=DIR\n");
    return 2;
  }
  store::StoreConfig cfg;
  cfg.dir = dir;
  cfg.max_entries =
      static_cast<std::size_t>(args.get_u64("max-entries", 4096));
  try {
    store::ResultStore rs(cfg);
    if (cmd == "info") return cmd_info(rs);
    if (cmd == "ls") return cmd_ls(rs);
    if (cmd == "get") {
      const auto& pos = args.positionals();
      if (pos.empty()) {
        std::fprintf(stderr, "aeep_store: get needs a KEY (see ls)\n");
        return 2;
      }
      return cmd_get(rs, pos.front());
    }
    if (cmd == "gc") {
      if (!args.has("max-bytes")) {
        std::fprintf(stderr, "aeep_store: gc needs --max-bytes=N\n");
        return 2;
      }
      return cmd_gc(rs, args.get_u64("max-bytes", 0));
    }
    return usage();
  } catch (const trace::TraceError& e) {
    std::fprintf(stderr, "aeep_store: %s\n", e.what());
    return 1;
  }
}
