#include "common/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace aeep {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      std::string key, value;
      if (eq == std::string::npos) {
        key = arg.substr(2);
        value = "true";
      } else {
        key = arg.substr(2, eq - 2);
        value = arg.substr(eq + 1);
      }
      if (!kv_.emplace(key, std::move(value)).second)
        throw std::invalid_argument("duplicate flag --" + key +
                                    " (each flag may be given once)");
    } else {
      positionals_.push_back(std::move(arg));
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  queried_[key] = true;
  return kv_.count(key) != 0;
}

std::string CliArgs::get(const std::string& key, const std::string& def) const {
  queried_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

u64 CliArgs::get_u64(const std::string& key, u64 def) const {
  queried_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  // Accept suffixes K/M/G (binary) for convenience: --interval=1M.
  const std::string& s = it->second;
  std::size_t pos = 0;
  u64 v = std::stoull(s, &pos);
  if (pos < s.size()) {
    switch (s[pos]) {
      case 'k': case 'K': v <<= 10; break;
      case 'm': case 'M': v <<= 20; break;
      case 'g': case 'G': v <<= 30; break;
      default: throw std::invalid_argument("bad numeric suffix in --" + key + "=" + s);
    }
  }
  return v;
}

double CliArgs::get_double(const std::string& key, double def) const {
  queried_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  queried_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::queried() const {
  std::vector<std::string> out;
  out.reserve(queried_.size());
  for (const auto& [k, seen] : queried_) {
    (void)seen;
    out.push_back(k);
  }
  return out;
}

CliArgs parse_cli_or_exit(int argc, const char* const* argv) {
  try {
    return CliArgs(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!queried_.count(k)) out.push_back(k);
  }
  return out;
}

}  // namespace aeep
