// Fundamental types shared by every module of the AEEP simulator.
//
// The simulator is a timing model: addresses are byte addresses in a flat
// physical address space, cycles are absolute processor cycles starting at
// zero when a run begins.
#pragma once

#include <cstdint>
#include <cstddef>

namespace aeep {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Byte address in the simulated physical address space.
using Addr = u64;

/// Absolute processor cycle count.
using Cycle = u64;

inline constexpr u64 KiB = 1024;
inline constexpr u64 MiB = 1024 * KiB;

/// An invalid / "no address" sentinel.
inline constexpr Addr kNoAddr = ~Addr{0};

}  // namespace aeep
