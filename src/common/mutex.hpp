// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// libstdc++'s std::mutex carries no thread-safety annotations, so Clang's
// -Wthread-safety cannot see a std::lock_guard acquire it and every
// AEEP_GUARDED_BY member would warn even in correct code. These thin
// wrappers put the annotations on the lock operations themselves; they are
// the only mutex types the concurrent subsystems use.
//
//   aeep::Mutex     — std::mutex with ACQUIRE/RELEASE-annotated lock ops
//   aeep::MutexLock — std::lock_guard equivalent (scoped capability)
//   aeep::CondVar   — condition variable waiting on a Mutex; every wait
//                     is annotated AEEP_REQUIRES(mutex) and returns with
//                     the mutex re-held, matching the analysis model
//
// There is deliberately no unique_lock equivalent with unlock()/lock():
// the mid-scope-unlock pattern is where lock bugs breed, and every former
// use of it in this codebase restructured cleanly into brace scopes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace aeep {

class AEEP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AEEP_ACQUIRE() { impl_.lock(); }
  void unlock() AEEP_RELEASE() { impl_.unlock(); }
  bool try_lock() AEEP_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex impl_;
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
class AEEP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) AEEP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() AEEP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to aeep::Mutex. Waits drop and re-take the
/// underlying std::mutex directly (invisible to the analysis), so from the
/// checker's point of view the capability is held across the wait — which
/// is exactly the guarantee the caller observes on return.
class CondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mutex) AEEP_REQUIRES(mutex) { cv_.wait(mutex.impl_); }

  template <typename Pred>
  void wait(Mutex& mutex, Pred pred) AEEP_REQUIRES(mutex) {
    while (!pred()) wait(mutex);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mutex,
                          const std::chrono::duration<Rep, Period>& dur)
      AEEP_REQUIRES(mutex) {
    return cv_.wait_for(mutex.impl_, dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      AEEP_REQUIRES(mutex) {
    return cv_.wait_until(mutex.impl_, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace aeep
