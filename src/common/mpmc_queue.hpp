// Bounded lock-free multi-producer multi-consumer ring queue.
//
// Dmitry Vyukov's bounded MPMC design: a power-of-two ring of cells, each
// carrying its own sequence counter. A producer claims a slot by CAS on the
// tail ticket, then publishes the value with a release store of seq =
// ticket+1; a consumer claims with CAS on the head ticket and releases the
// slot back to producers one lap later (seq = ticket+capacity). Push/pop
// never take a lock and never allocate, so contended hot paths (the sweep
// worker pool, the server dispatch queue) scale instead of convoying on a
// mutex. Progress guarantee is lock-free, not wait-free: a CAS loser
// retries against the refreshed ticket.
//
// Semantics:
//  - try_push/try_pop are non-blocking; they return false on full/empty
//    instead of waiting. Callers that need to sleep pair the queue with
//    their own condvar (see server.cpp) or spin (see sweep.cpp, where the
//    queue is pre-seeded and only drains).
//  - FIFO per producer; total order across producers is the ticket order.
//  - T must be default-constructible and movable. Values are moved in and
//    out; a popped-from cell holds a moved-from T until overwritten.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/bitops.hpp"

namespace aeep {

template <typename T>
class MpmcQueue {
 public:
  /// `capacity` must be a power of two (the ring index is `ticket & mask`;
  /// a modulo would put a divide on the hot path) and at least 2: with one
  /// cell, a pop's slot release (seq = pos + capacity) is the same value as
  /// a push's publish (seq = pos + 1), so "occupied" and "free next lap"
  /// become indistinguishable and the ring mis-admits then livelocks.
  /// Throws std::invalid_argument otherwise.
  explicit MpmcQueue(std::size_t capacity)
      : mask_(capacity - 1),
        cells_(std::make_unique<Cell[]>(check_capacity(capacity))) {
    for (std::size_t i = 0; i < capacity; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Non-blocking enqueue; false if the ring is full.
  bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Slot is free this lap; race other producers for the ticket.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // slot still holds last lap's value: queue full
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // lost a race; refresh
      }
    }
  }

  /// Non-blocking dequeue; false if the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          // Hand the slot back to producers, one full lap ahead.
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // producer hasn't published this ticket yet: empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Instantaneous occupancy estimate (tickets issued minus consumed).
  /// Exact only when no push/pop is in flight; use for stats, never for
  /// correctness decisions.
  std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool approx_empty() const { return approx_size() == 0; }

 private:
  // One cache line per hot atomic so producers and consumers don't false-
  // share; cells stay packed (adjacent tickets touch adjacent cells anyway).
  static constexpr std::size_t kCacheLine = 64;

  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  static std::size_t check_capacity(std::size_t capacity) {
    if (capacity < 2 || !is_pow2(capacity)) {
      throw std::invalid_argument(
          "MpmcQueue capacity must be a power of two >= 2, got " +
          std::to_string(capacity));
    }
    return capacity;
  }

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producer ticket
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer ticket
};

}  // namespace aeep
