// Minimal --key=value command-line parsing for benches and examples.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aeep {

/// Parses `--key=value` and bare `--flag` arguments. Unrecognised positional
/// arguments are retained in positionals().
class CliArgs {
 public:
  /// Throws std::invalid_argument when the same --flag appears twice: a
  /// duplicated flag is almost always a copy-paste error, and silently
  /// taking the last value hides it (a sweep launched with
  /// `--seed=1 ... --seed=7` would quietly ignore the first seed).
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  u64 get_u64(const std::string& key, u64 def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  /// Keys that were supplied but never queried; benches use this to reject
  /// typos in flag names.
  std::vector<std::string> unused() const;
  /// Keys the program has queried so far — i.e. the flags it accepts.
  /// reject_unknown_flags() prints these so a typo's error message shows
  /// what would have been valid.
  std::vector<std::string> queried() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positionals_;
};

/// CliArgs for a main(): constructor errors (duplicate flags) print to
/// stderr and exit(2) instead of escaping as an unhandled exception.
CliArgs parse_cli_or_exit(int argc, const char* const* argv);

}  // namespace aeep
