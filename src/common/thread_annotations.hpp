// Clang thread-safety-analysis macros (no-ops on other compilers).
//
// The concurrent subsystems (sim/sweep, server, fabric) carry these
// annotations so `clang++ -Wthread-safety -Werror=thread-safety` turns an
// unguarded access to a mutex-protected member into a *build break* instead
// of a code-review comment. GCC compiles the same code unannotated — the
// macros expand to nothing — so the gate costs non-Clang builds nothing.
//
// Conventions used across the codebase:
//  - members owned by a lock:        T x_ AEEP_GUARDED_BY(mutex_);
//  - functions called under a lock:  void f() AEEP_REQUIRES(mutex_);
//    (these are the `*_locked()` helpers)
//  - functions that must NOT hold it: void g() AEEP_EXCLUDES(mutex_);
//  - lock-wrapper methods:           AEEP_ACQUIRE / AEEP_RELEASE
//
// std::mutex is not annotated in libstdc++, so the analysis cannot see a
// std::lock_guard acquire it. common/mutex.hpp provides the annotated
// aeep::Mutex / aeep::MutexLock / aeep::CondVar wrappers the rest of the
// code uses instead.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define AEEP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AEEP_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define AEEP_CAPABILITY(x) AEEP_THREAD_ANNOTATION_(capability(x))

/// Marks a scoped-lock type (acquires in ctor, releases in dtor).
#define AEEP_SCOPED_CAPABILITY AEEP_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be touched while `x` is held.
#define AEEP_GUARDED_BY(x) AEEP_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee (not the pointer) is protected by `x`.
#define AEEP_PT_GUARDED_BY(x) AEEP_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold every listed capability (the `*_locked()` contract).
#define AEEP_REQUIRES(...) \
  AEEP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability and returns holding it.
#define AEEP_ACQUIRE(...) \
  AEEP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define AEEP_RELEASE(...) \
  AEEP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define AEEP_TRY_ACQUIRE(result, ...) \
  AEEP_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT already hold the listed capabilities (deadlock guard).
#define AEEP_EXCLUDES(...) \
  AEEP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Returns a reference to data guarded by the capability.
#define AEEP_RETURN_CAPABILITY(x) \
  AEEP_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis (use sparingly, with a comment saying why).
#define AEEP_NO_THREAD_SAFETY_ANALYSIS \
  AEEP_THREAD_ANNOTATION_(no_thread_safety_analysis)
