#include "common/log.hpp"

#include <cstdio>

namespace aeep {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::set_level(LogLevel level) { g_level = level; }
LogLevel Log::level() { return g_level; }

void Log::set_level(const std::string& name) {
  if (name == "debug") g_level = LogLevel::Debug;
  else if (name == "info") g_level = LogLevel::Info;
  else if (name == "warn") g_level = LogLevel::Warn;
  else if (name == "error") g_level = LogLevel::Error;
  else if (name == "off") g_level = LogLevel::Off;
}

void Log::write(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace aeep
