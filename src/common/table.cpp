#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace aeep {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'E')
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_num) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      const bool right = align_num && looks_numeric(cell);
      if (c) out << "  ";
      if (right)
        out << std::string(width[c] - cell.size(), ' ') << cell;
      else
        out << cell << std::string(width[c] - cell.size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < header_.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace aeep
