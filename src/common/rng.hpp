// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic behaviour (workload address streams, fault injection sites,
// branch-outcome noise) flows from instances of Xorshift64Star seeded by the
// run configuration, so any run is exactly reproducible.
#pragma once

#include <cassert>
#include <cmath>

#include "common/types.hpp"

namespace aeep {

/// xorshift64* generator (Vigna). Small state, good quality for simulation.
class Xorshift64Star {
 public:
  explicit Xorshift64Star(u64 seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  /// Next raw 64-bit value.
  u64 next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound). bound must be nonzero.
  u64 next_below(u64 bound) {
    assert(bound != 0);
    // Modulo bias is negligible for simulation bounds (<< 2^64).
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Geometric-ish: number of trials until success with probability p (>= 1).
  u64 next_geometric(double p) {
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0) return 1;
    double u = next_double();
    if (u <= 0.0) u = 1e-18;
    return 1 + static_cast<u64>(std::log(u) / std::log1p(-p));
  }

  /// Reseed in place.
  void seed(u64 s) { state_ = s ? s : 0x9E3779B97F4A7C15ull; }

 private:
  u64 state_;
};

/// Zipf-distributed sampler over {0, .., n-1} with exponent s.
/// Used by workload generators to model skewed page popularity.
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double s, u64 seed);

  u64 sample();

  u64 n() const { return n_; }
  double s() const { return s_; }

 private:
  u64 n_;
  double s_;
  double h_integral_n_;
  double h_integral_1_;
  Xorshift64Star rng_;

  double h_integral(double x) const;
  double h_integral_inverse(double x) const;
  double h(double x) const;
};

}  // namespace aeep
