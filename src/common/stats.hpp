// Statistics primitives: named counters, running means, time-weighted
// integrals and histograms, grouped in a StatRegistry for uniform reporting.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aeep {

/// Monotonic event counter.
class Counter {
 public:
  void inc(u64 by = 1) { value_ += by; }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  u64 value_ = 0;
};

/// Mean/min/max of a stream of samples.
class RunningMean {
 public:
  void add(double x);
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  u64 count() const { return n_; }
  void reset();

 private:
  u64 n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integrates a piecewise-constant level over simulated time. Used for the
/// paper's "dirty cache lines per cycle" metric: the level is the current
/// dirty-line count, updated whenever it changes, and the reported value is
/// the cycle-weighted average level.
class TimeWeightedLevel {
 public:
  /// Record that the level became `level` at cycle `now`. Cycles since the
  /// previous update are charged to the previous level.
  void update(Cycle now, double level);

  /// Average level over [start, now]. Call update(now, current) first to
  /// flush the final segment.
  double average() const;

  double current() const { return level_; }
  Cycle elapsed() const { return last_ - start_; }
  void reset(Cycle now, double level);

 private:
  Cycle start_ = 0;
  Cycle last_ = 0;
  double level_ = 0.0;
  double weighted_sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets), with an
/// overflow bucket at the end.
class Histogram {
 public:
  Histogram(u64 bucket_width, std::size_t num_buckets);

  void add(u64 value, u64 weight = 1);
  u64 bucket(std::size_t i) const;
  std::size_t num_buckets() const { return buckets_.size(); }
  u64 bucket_width() const { return bucket_width_; }
  u64 total() const { return total_; }
  /// Smallest value v such that at least `fraction` of the mass is <= bucket
  /// containing v (upper edge of that bucket).
  u64 percentile(double fraction) const;

 private:
  u64 bucket_width_;
  std::vector<u64> buckets_;
  u64 total_ = 0;
};

/// Named registry so subsystems can expose stats without coupling to the
/// report format. Names are hierarchical by convention: "l2.wb.clean".
class StatRegistry {
 public:
  Counter& counter(const std::string& name);
  RunningMean& running_mean(const std::string& name);

  /// Snapshot of all counters (alphabetical).
  std::vector<std::pair<std::string, u64>> counters() const;
  std::vector<std::pair<std::string, double>> means() const;

  void reset_all();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, RunningMean> means_;
};

}  // namespace aeep
