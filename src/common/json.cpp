#include "common/json.hpp"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aeep {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(u64 n) {
  JsonValue v;
  v.kind_ = Kind::kUint;
  v.uint_ = n;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  assert(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::as_bool(bool def) const {
  return kind_ == Kind::kBool ? bool_ : def;
}

u64 JsonValue::as_u64(u64 def) const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kDouble && double_ >= 0.0 &&
      double_ < 18446744073709551616.0 &&  // 2^64
      double_ == std::floor(double_))
    return static_cast<u64>(double_);
  return def;
}

double JsonValue::as_double(double def) const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kUint) return static_cast<double>(uint_);
  return def;
}

std::string JsonValue::as_string(const std::string& def) const {
  return kind_ == Kind::kString ? string_ : def;
}

bool JsonValue::get_bool(const std::string& key, bool def) const {
  const JsonValue* v = find(key);
  return v ? v->as_bool(def) : def;
}

u64 JsonValue::get_u64(const std::string& key, u64 def) const {
  const JsonValue* v = find(key);
  return v ? v->as_u64(def) : def;
}

double JsonValue::get_double(const std::string& key, double def) const {
  const JsonValue* v = find(key);
  return v ? v->as_double(def) : def;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& def) const {
  const JsonValue* v = find(key);
  return v ? v->as_string(def) : def;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; \u-encode.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          // Bytes >= 0x20 (including UTF-8 multi-byte sequences) pass
          // through untouched; JSON strings are UTF-8.
          out += c;
        }
    }
  }
  return out;
}

namespace {
void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}
}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Kind::kDouble:
      // NaN/Inf are not representable in JSON; degrade to null rather than
      // emitting an unparsable token.
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
        // Keep doubles distinguishable from integers for schema checkers.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
            std::string::npos)
          out += ".0";
      } else {
        out += "null";
      }
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& e : elements_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        e.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(k);
        out += "\": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- Parser ----------------------------------------------------------------

namespace {

constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value(0);
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        v.reset();
        fail("trailing data after document");
      }
    }
    if (!v && error) *error = error_;
    return v;
  }

 private:
  std::optional<JsonValue> fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at byte " + std::to_string(pos_);
    return std::nullopt;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxParseDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n': return literal("null") ? std::optional<JsonValue>(JsonValue::null())
                                       : fail("bad literal");
      case 't': return literal("true")
                           ? std::optional<JsonValue>(JsonValue::boolean(true))
                           : fail("bad literal");
      case 'f': return literal("false")
                           ? std::optional<JsonValue>(JsonValue::boolean(false))
                           : fail("bad literal");
      case '"': {
        std::string s;
        if (!string_body(s)) return std::nullopt;
        return JsonValue::string(std::move(s));
      }
      case '[': return array_body(depth);
      case '{': return object_body(depth);
      default: return number_body();
    }
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return false;
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x80) {
          out += c;
          ++pos_;
        } else if (!utf8_sequence(out)) {
          return false;
        }
        continue;
      }
      if (pos_ + 1 >= text_.size()) {
        fail("dangling escape");
        return false;
      }
      const char e = text_[pos_ + 1];
      pos_ += 2;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          // Surrogate pair: combine; a lone surrogate degrades to U+FFFD.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            unsigned lo = 0;
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              if (!hex4(lo)) return false;
            }
            if (lo >= 0xDC00 && lo <= 0xDFFF)
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            else
              cp = 0xFFFD;
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  /// Consume one multi-byte UTF-8 sequence starting at pos_. Strings must
  /// be well-formed UTF-8 (RFC 8259 §8.1): a stray high byte — a flipped
  /// bit in a wire frame, say — is a parse error, not payload.
  bool utf8_sequence(std::string& out) {
    const auto lead = static_cast<unsigned char>(text_[pos_]);
    std::size_t extra;
    unsigned cp;
    if (lead >= 0xC2 && lead <= 0xDF) {
      extra = 1;
      cp = lead & 0x1Fu;
    } else if (lead >= 0xE0 && lead <= 0xEF) {
      extra = 2;
      cp = lead & 0x0Fu;
    } else if (lead >= 0xF0 && lead <= 0xF4) {
      extra = 3;
      cp = lead & 0x07u;
    } else {  // continuation byte, overlong 0xC0/0xC1, or > 0xF4
      fail("invalid UTF-8 in string");
      return false;
    }
    if (pos_ + extra >= text_.size()) {
      fail("invalid UTF-8 in string");
      return false;
    }
    for (std::size_t i = 1; i <= extra; ++i) {
      const auto b = static_cast<unsigned char>(text_[pos_ + i]);
      if (b < 0x80 || b > 0xBF) {
        fail("invalid UTF-8 in string");
        return false;
      }
      cp = (cp << 6) | (b & 0x3Fu);
    }
    const unsigned floor = extra == 1 ? 0x80u : extra == 2 ? 0x800u : 0x10000u;
    if (cp < floor || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
      fail("invalid UTF-8 in string");  // overlong, surrogate, or past max
      return false;
    }
    out.append(text_.substr(pos_, extra + 1));
    pos_ += extra + 1;
    return true;
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      unsigned digit;
      if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A' + 10);
      else {
        fail("bad hex digit in \\u escape");
        return false;
      }
      out = (out << 4) | digit;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::optional<JsonValue> number_body() {
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    if (integral && token[0] != '-') {
      const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0') return JsonValue::number(u64{v});
      // Out-of-range integers fall through to double (lossy but parseable).
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (!end || *end != '\0' || errno == ERANGE) {
      pos_ = start;
      return fail("malformed number");
    }
    return JsonValue::number(d);
  }

  std::optional<JsonValue> array_body(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      arr.push(std::move(*v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      return fail("expected ',' or ']'");
    }
  }

  std::optional<JsonValue> object_body(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string_body(key)) return std::nullopt;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after key");
      ++pos_;
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      obj.set(key, std::move(*v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace aeep
