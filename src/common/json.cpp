#include "common/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace aeep {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(u64 n) {
  JsonValue v;
  v.kind_ = Kind::kUint;
  v.uint_ = n;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  assert(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters have no short escape; \u-encode.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          // Bytes >= 0x20 (including UTF-8 multi-byte sequences) pass
          // through untouched; JSON strings are UTF-8.
          out += c;
        }
    }
  }
  return out;
}

namespace {
void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}
}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Kind::kDouble:
      // NaN/Inf are not representable in JSON; degrade to null rather than
      // emitting an unparsable token.
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
        // Keep doubles distinguishable from integers for schema checkers.
        if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
            std::string::npos)
          out += ".0";
      } else {
        out += "null";
      }
      break;
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& e : elements_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        e.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(k);
        out += "\": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace aeep
