#include "common/rng.hpp"

#include <cmath>

namespace aeep {

// Rejection-inversion sampling for Zipf (Hormann & Derflinger). O(1) per
// sample with no table, exact for any n and s != 1 (s == 1 handled via the
// log special case of the integral).
ZipfSampler::ZipfSampler(u64 n, double s, u64 seed)
    : n_(n ? n : 1), s_(s), rng_(seed) {
  h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
  h_integral_1_ = h_integral(0.5);
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  if (std::abs(1.0 - s_) < 1e-12) return log_x;
  return (std::exp((1.0 - s_) * log_x) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_integral_inverse(double x) const {
  if (std::abs(1.0 - s_) < 1e-12) return std::exp(x);
  double t = x * (1.0 - s_) + 1.0;
  if (t < 1e-300) t = 1e-300;
  return std::exp(std::log(t) / (1.0 - s_));
}

u64 ZipfSampler::sample() {
  for (;;) {
    const double u =
        h_integral_n_ + rng_.next_double() * (h_integral_1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    u64 k = static_cast<u64>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (u >= h_integral(kd + 0.5) - h(kd)) return k - 1;  // 0-based rank
  }
}

}  // namespace aeep
