// Minimal JSON document builder for machine-readable bench output.
//
// Deliberately tiny: only what a stable, diffable results schema needs —
// objects with insertion-ordered keys (so two runs of the same bench emit
// byte-comparable files), arrays, strings, bools, unsigned integers and
// doubles. Doubles render with %.17g so every distinct value round-trips
// and equal values serialise identically across runs.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace aeep {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(u64 v);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Object insert/overwrite; keeps first-insertion order. *this must be an
  /// object (or null, which becomes one).
  JsonValue& set(const std::string& key, JsonValue value);

  /// Array append. *this must be an array (or null, which becomes one).
  JsonValue& push(JsonValue value);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key) {
    return const_cast<JsonValue*>(std::as_const(*this).find(key));
  }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Serialise. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  u64 uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace aeep
