// Minimal JSON document builder + parser for machine-readable bench output
// and the aeep_served wire protocol.
//
// Deliberately tiny: only what a stable, diffable results schema needs —
// objects with insertion-ordered keys (so two runs of the same bench emit
// byte-comparable files), arrays, strings, bools, unsigned integers and
// doubles. Doubles render with %.17g so every distinct value round-trips
// and equal values serialise identically across runs. The parser is the
// inverse: strict recursive descent with a depth limit, returning the same
// JsonValue shape, so a frame can cross a socket as dump() and come back
// through json_parse() unchanged.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace aeep {

class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(u64 v);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // --- Checked readers (the wire-protocol accessors) -----------------------
  // Each returns `def` when the value has a different kind, so request
  // handlers can read optional fields without kind-switching; pair with
  // is_*() when absence must be distinguished from the default.
  bool as_bool(bool def = false) const;
  /// kUint directly; a kDouble that is an exact non-negative integer within
  /// u64 range converts (parsers on the far side may not keep the split).
  u64 as_u64(u64 def = 0) const;
  double as_double(double def = 0.0) const;
  std::string as_string(const std::string& def = {}) const;

  /// Convenience: object member's accessor, with `def` when the member is
  /// absent or kind-mismatched. `j.get_u64("seed", 42)` style.
  bool get_bool(const std::string& key, bool def = false) const;
  u64 get_u64(const std::string& key, u64 def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  std::string get_string(const std::string& key,
                         const std::string& def = {}) const;

  /// Object insert/overwrite; keeps first-insertion order. *this must be an
  /// object (or null, which becomes one).
  JsonValue& set(const std::string& key, JsonValue value);

  /// Array append. *this must be an array (or null, which becomes one).
  JsonValue& push(JsonValue value);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  JsonValue* find(const std::string& key) {
    return const_cast<JsonValue*>(std::as_const(*this).find(key));
  }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Serialise. `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  u64 uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// JSON string escaping (quotes not included).
std::string json_escape(const std::string& s);

/// Parse one JSON document. Strict: the whole input must be consumed
/// (trailing whitespace allowed), strings must be valid escapes, nesting is
/// capped at 64 levels. Returns nullopt on malformed input and, when
/// `error` is non-null, fills it with a message naming the byte offset.
/// Numbers: non-negative integers without '.'/exponent parse as u64 (the
/// wire protocol's ids and counts); everything else parses as double.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace aeep
