#include "common/stats.hpp"

#include <algorithm>

namespace aeep {

void RunningMean::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

void RunningMean::reset() {
  n_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void TimeWeightedLevel::update(Cycle now, double level) {
  assert(now >= last_);
  weighted_sum_ += level_ * static_cast<double>(now - last_);
  last_ = now;
  level_ = level;
}

double TimeWeightedLevel::average() const {
  const Cycle span = last_ - start_;
  if (span == 0) return level_;
  return weighted_sum_ / static_cast<double>(span);
}

void TimeWeightedLevel::reset(Cycle now, double level) {
  start_ = last_ = now;
  level_ = level;
  weighted_sum_ = 0.0;
}

Histogram::Histogram(u64 bucket_width, std::size_t num_buckets)
    : bucket_width_(bucket_width ? bucket_width : 1),
      buckets_(num_buckets + 1, 0) {}

void Histogram::add(u64 value, u64 weight) {
  std::size_t idx = static_cast<std::size_t>(value / bucket_width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  buckets_[idx] += weight;
  total_ += weight;
}

u64 Histogram::bucket(std::size_t i) const {
  assert(i < buckets_.size());
  return buckets_[i];
}

u64 Histogram::percentile(double fraction) const {
  if (total_ == 0) return 0;
  const double target = fraction * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    acc += static_cast<double>(buckets_[i]);
    if (acc >= target) return (i + 1) * bucket_width_;
  }
  return buckets_.size() * bucket_width_;
}

Counter& StatRegistry::counter(const std::string& name) {
  return counters_[name];
}

RunningMean& StatRegistry::running_mean(const std::string& name) {
  return means_[name];
}

std::vector<std::pair<std::string, u64>> StatRegistry::counters() const {
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> StatRegistry::means() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(means_.size());
  for (const auto& [name, m] : means_) out.emplace_back(name, m.mean());
  return out;
}

void StatRegistry::reset_all() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, m] : means_) m.reset();
}

}  // namespace aeep
