// Leveled logging to stderr. Off by default above Warn so simulation output
// stays clean; benches raise the level with --log=debug.
#pragma once

#include <sstream>
#include <string>

namespace aeep {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static void set_level(const std::string& name);  // "debug", "info", ...

  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace aeep
