#include "common/crc64.hpp"

#include <array>

namespace aeep {

namespace {

// Reflected ECMA-182 polynomial (the CRC-64/XZ table generator).
constexpr u64 kPoly = 0xC96C5795D7870F42ull;

std::array<u64, 256> make_table() {
  std::array<u64, 256> t{};
  for (u64 i = 0; i < 256; ++i) {
    u64 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? kPoly ^ (c >> 1) : c >> 1;
    t[static_cast<std::size_t>(i)] = c;
  }
  return t;
}

const std::array<u64, 256>& table() {
  static const std::array<u64, 256> t = make_table();
  return t;
}

}  // namespace

void Crc64::update(const void* data, std::size_t n) {
  const auto* p = static_cast<const u8*>(data);
  const auto& t = table();
  u64 c = state_;
  for (std::size_t i = 0; i < n; ++i)
    c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  state_ = c;
}

void Crc64::update_u64(u64 v) {
  u8 b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<u8>(v >> (8 * i));
  update(b, 8);
}

u64 crc64(const void* data, std::size_t n) {
  Crc64 c;
  c.update(data, n);
  return c.value();
}

}  // namespace aeep
