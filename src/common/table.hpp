// Plain-text table rendering for bench output. Every figure-reproduction
// bench prints its series as an aligned table so results are diffable.
#pragma once

#include <string>
#include <vector>

namespace aeep {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment; numeric-looking cells right-aligned.
  std::string render() const;

  std::size_t num_rows() const { return rows_.size(); }

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aeep
