// CRC64 (ECMA-182 polynomial, reflected form — the CRC-64/XZ variant) for
// content addressing: the result store keys every cached cell by the CRC64
// of its canonical job JSON folded with the trace file's digest, so the
// same 64-bit checksum family protects both the trace chunk framing
// (CRC32, trace/io.hpp) and the store's identity space. Streaming update
// via the Crc64 accumulator lets FileReader digest a whole trace without
// buffering it.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace aeep {

/// Incremental CRC64. Feed bytes in any chunking; value() is the digest of
/// everything fed so far (chunking never changes the result).
class Crc64 {
 public:
  void update(const void* data, std::size_t n);
  void update(const std::string& s) { update(s.data(), s.size()); }
  /// Fold a little-endian u64 (fixed-width, so digests of digests are
  /// well-defined regardless of host endianness).
  void update_u64(u64 v);

  u64 value() const { return state_ ^ kInit; }

 private:
  static constexpr u64 kInit = ~u64{0};
  u64 state_ = kInit;
};

/// One-shot digest of a byte range / string.
u64 crc64(const void* data, std::size_t n);
inline u64 crc64(const std::string& s) { return crc64(s.data(), s.size()); }

}  // namespace aeep
