// Bit-manipulation helpers used by the ECC codecs and cache indexing.
#pragma once

#include <bit>
#include <cassert>

#include "common/types.hpp"

namespace aeep {

/// True iff `x` is a power of two (and nonzero).
constexpr bool is_pow2(u64 x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(u64 x) {
  assert(is_pow2(x));
  return static_cast<unsigned>(std::countr_zero(x));
}

/// Number of set bits.
constexpr unsigned popcount64(u64 x) { return static_cast<unsigned>(std::popcount(x)); }

/// Even parity of a 64-bit word: 1 if the number of set bits is odd.
constexpr unsigned parity64(u64 x) { return popcount64(x) & 1u; }

/// Extract bit `i` (0 = LSB).
constexpr unsigned bit_of(u64 x, unsigned i) {
  assert(i < 64);
  return static_cast<unsigned>((x >> i) & 1u);
}

/// Return `x` with bit `i` set to `v` (v must be 0 or 1).
constexpr u64 with_bit(u64 x, unsigned i, unsigned v) {
  assert(i < 64);
  assert(v <= 1);
  return (x & ~(u64{1} << i)) | (u64{v} << i);
}

/// Return `x` with bit `i` flipped.
constexpr u64 flip_bit(u64 x, unsigned i) {
  assert(i < 64);
  return x ^ (u64{1} << i);
}

/// Extract `len` bits starting at `lo`.
constexpr u64 bits_of(u64 x, unsigned lo, unsigned len) {
  assert(lo < 64 && len <= 64 && (len == 64 || lo + len <= 64));
  if (len == 64) return x >> lo;
  return (x >> lo) & ((u64{1} << len) - 1);
}

/// Round `x` up to the next multiple of `m` (m must be a power of two).
constexpr u64 round_up_pow2(u64 x, u64 m) {
  assert(is_pow2(m));
  return (x + m - 1) & ~(m - 1);
}

/// Smallest power of two >= x (0 maps to 1). Sizes the MPMC ring, whose
/// capacity must be a power of two.
constexpr u64 ceil_pow2(u64 x) { return std::bit_ceil(x | 1); }

}  // namespace aeep
