#include "server/registry.hpp"

#include <filesystem>

#include "trace/error.hpp"
#include "trace/reader.hpp"

namespace aeep::server {

namespace fs = std::filesystem;

std::size_t TraceRegistry::scan_directory(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec)
    throw ServerError(ServerErrorKind::kIo,
                      "cannot scan trace directory '" + dir +
                          "': " + ec.message());
  std::size_t added = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& p = entry.path();
    if (p.extension() != ".aeept") continue;
    add(p.stem().string(), p.string());
    ++added;
  }
  return added;
}

void TraceRegistry::add(const std::string& name, const std::string& path) {
  if (name.empty())
    throw ServerError(ServerErrorKind::kBadRequest,
                      "trace name must be non-empty");
  try {
    trace::TraceReader probe(path);  // header check: magic + version
  } catch (const trace::TraceError& e) {
    throw ServerError(ServerErrorKind::kIo,
                      "refusing to register trace '" + name + "' (" + path +
                          "): " + e.what());
  }
  traces_[name] = path;
}

const std::string& TraceRegistry::path_of(const std::string& name) const {
  const auto it = traces_.find(name);
  if (it == traces_.end())
    throw ServerError(ServerErrorKind::kNotFound,
                      "no trace registered under '" + name +
                          "' (the server replays only pre-registered "
                          ".aeept files)");
  return it->second;
}

std::vector<std::string> TraceRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(traces_.size());
  for (const auto& [name, path] : traces_) out.push_back(name);
  return out;
}

}  // namespace aeep::server
