#include "server/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "metrics/clock.hpp"

namespace aeep::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw ServerError(ServerErrorKind::kIo, what + ": " + errno_message(errno));
}

sockaddr_in make_addr(const std::string& host, u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  std::string ip = host;
  if (ip.empty() || ip == "localhost") ip = "127.0.0.1";
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
    throw ServerError(ServerErrorKind::kIo,
                      "not an IPv4 address: '" + host + "'");
  return addr;
}

std::string addr_text(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

/// poll() one fd for `events`; false on timeout, throws on error.
bool wait_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  while (true) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dying peer must produce an EPIPE error we can type,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(void* data, std::size_t len, int timeout_ms) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  const auto deadline = metrics::now() + std::chrono::milliseconds(
                                             timeout_ms < 0 ? 0 : timeout_ms);
  while (got < len) {
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - metrics::now());
      const int wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
      if (!wait_for(fd_, POLLIN, wait_ms))
        throw ServerError(ServerErrorKind::kIo,
                          "receive timed out after " +
                              std::to_string(timeout_ms) + "ms");
    }
    const ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;  // clean close between messages
      throw ServerError(ServerErrorKind::kIo,
                        "peer closed mid-message (" + std::to_string(got) +
                            "/" + std::to_string(len) + " bytes)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::wait_readable(int timeout_ms) {
  return wait_for(fd_, POLLIN, timeout_ms);
}

void Socket::set_nodelay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Listener::Listener(const std::string& host, u16 port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) < 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Socket> Listener::accept(int timeout_ms, std::string* peer) {
  if (!wait_for(fd_, POLLIN, timeout_ms)) return std::nullopt;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN)
      return std::nullopt;  // racer vanished; next loop iteration retries
    throw_errno("accept");
  }
  if (peer) *peer = addr_text(addr);
  Socket s(fd);
  s.set_nodelay();
  return s;
}

Socket connect_to(const std::string& host, u16 port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  Socket s(fd);
  s.set_nodelay();
  return s;
}

}  // namespace aeep::server
