#include "server/access_log.hpp"

#include <cerrno>

#include "server/error.hpp"

namespace aeep::server {

AccessLog::~AccessLog() { close(); }

void AccessLog::open(const std::string& path, u64 max_bytes) {
  const MutexLock lock(mutex_);
  close_locked();
  if (path == "-") {
    out_ = stderr;
    owns_ = false;
    max_bytes_ = 0;  // rotating stderr makes no sense
  } else {
    // The log is line-oriented text, not a CRC-framed artifact.
    out_ = std::fopen(path.c_str(), "a");  // aeep-lint: allow(raw-fs-call)
    if (!out_)
      throw ServerError(ServerErrorKind::kIo,
                        "cannot open access log '" + path +
                            "': " + errno_message(errno));
    owns_ = true;
    path_ = path;
    max_bytes_ = max_bytes;
    // Appending to an existing file: its current size counts against the
    // budget, or restarts would defeat the bound.
    if (std::fseek(out_, 0, SEEK_END) == 0) {
      const long pos = std::ftell(out_);
      written_ = pos > 0 ? static_cast<u64>(pos) : 0;
    }
  }
  rotations_ = 0;
  seq_ = 0;
  epoch_ = metrics::now();
}

void AccessLog::close() {
  const MutexLock lock(mutex_);
  close_locked();
}

void AccessLog::close_locked() {
  if (out_ && owns_) std::fclose(out_);
  out_ = nullptr;
  owns_ = false;
  path_.clear();
  max_bytes_ = 0;
  written_ = 0;
}

bool AccessLog::enabled() const {
  const MutexLock lock(mutex_);
  return out_ != nullptr;
}

u64 AccessLog::rotated() const {
  const MutexLock lock(mutex_);
  return rotations_;
}

void AccessLog::rotate_locked() {
  std::fclose(out_);
  out_ = nullptr;
  const std::string old = path_ + ".1";
  // Log rotation is inherently a rename dance; losing a log line to a
  // crash here is acceptable in a way losing a store record is not.
  std::remove(old.c_str());    // aeep-lint: allow(raw-fs-call)
  if (std::rename(path_.c_str(),  // aeep-lint: allow(raw-fs-call)
                  old.c_str()) != 0) {
    // Rotation failed (permissions?): reopen the original and keep
    // appending — an over-budget log beats a lost one.
    out_ = std::fopen(path_.c_str(), "a");  // aeep-lint: allow(raw-fs-call)
    return;
  }
  out_ = std::fopen(path_.c_str(), "a");  // aeep-lint: allow(raw-fs-call)
  if (out_) {
    written_ = 0;
    ++rotations_;
  }
}

void AccessLog::write(const std::string& event, JsonValue fields) {
  // out_ is checked under the lock only: the old unlocked early-return
  // raced close()/rotate_locked() clearing the stream on another thread.
  const MutexLock lock(mutex_);
  if (!out_) return;
  JsonValue entry = JsonValue::object();
  entry.set("event", JsonValue::string(event));
  for (const auto& [key, value] : fields.members())
    entry.set(key, value);
  const u64 t_ms = metrics::us_since(epoch_) / 1000;
  entry.set("seq", JsonValue::number(seq_++));
  entry.set("t_ms", JsonValue::number(t_ms));
  const std::string line = entry.dump(0) + "\n";
  if (owns_ && max_bytes_ != 0 && written_ + line.size() > max_bytes_ &&
      written_ > 0)
    rotate_locked();
  if (!out_) return;  // a failed rotation may have lost the stream
  std::fputs(line.c_str(), out_);
  std::fflush(out_);
  written_ += line.size();
}

}  // namespace aeep::server
