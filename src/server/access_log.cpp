#include "server/access_log.hpp"

#include <cerrno>
#include <cstring>

#include "server/error.hpp"

namespace aeep::server {

AccessLog::~AccessLog() { close(); }

void AccessLog::open(const std::string& path) {
  close();
  if (path == "-") {
    out_ = stderr;
    owns_ = false;
  } else {
    out_ = std::fopen(path.c_str(), "a");
    if (!out_)
      throw ServerError(ServerErrorKind::kIo,
                        "cannot open access log '" + path +
                            "': " + std::strerror(errno));
    owns_ = true;
  }
  seq_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

void AccessLog::close() {
  if (out_ && owns_) std::fclose(out_);
  out_ = nullptr;
  owns_ = false;
}

void AccessLog::write(const std::string& event, JsonValue fields) {
  if (!out_) return;
  JsonValue entry = JsonValue::object();
  entry.set("event", JsonValue::string(event));
  for (const auto& [key, value] : fields.members())
    entry.set(key, value);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto t_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - epoch_)
                        .count();
  entry.set("seq", JsonValue::number(seq_++));
  entry.set("t_ms", JsonValue::number(static_cast<u64>(t_ms < 0 ? 0 : t_ms)));
  const std::string line = entry.dump(0) + "\n";
  std::fputs(line.c_str(), out_);
  std::fflush(out_);
}

}  // namespace aeep::server
