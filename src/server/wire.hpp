// The aeep_served wire protocol: length-prefixed JSON frames.
//
//   Frame := payload_bytes u32 (little-endian) | payload (UTF-8 JSON)
//
// Every request and reply is one frame holding one JSON object. Requests
// carry a "type" ("ping", "submit", "status", "result", "run", "stats",
// "traces", "health", "drain");
// replies always carry "ok" (bool) and, when ok is false, a stable "error"
// wire code from error.hpp plus a human "message". The job descriptor —
// the JSON shape of one experiment — maps 1:1 onto sim::ExperimentOptions
// for the knobs the service exposes; everything the paper fixes (Table-1
// geometry) stays fixed server-side so a request cannot ask for a machine
// the reproduction does not model.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "server/error.hpp"
#include "server/socket.hpp"
#include "sim/experiment.hpp"

namespace aeep::server {

/// Frames larger than this are a protocol violation, not a malloc request:
/// a result frame is a few KB; nothing legitimate approaches a megabyte.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Serialise `doc` into one frame. Throws ServerError(kIo / kProtocol).
void send_frame(Socket& sock, const JsonValue& doc);

/// Read one frame. Returns nullopt iff the peer closed cleanly between
/// frames; throws ServerError(kProtocol) on an oversized prefix or
/// unparsable payload, ServerError(kIo) on socket trouble / timeout.
std::optional<JsonValue> recv_frame(Socket& sock, int timeout_ms = -1);

/// One experiment job as it crosses the wire. Defaults mirror
/// sim::ExperimentOptions; `trace` names a server-side registered .aeept
/// file (defaults to the benchmark's name) and is only read when
/// frontend == kTrace.
struct JobSpec {
  std::string benchmark = "gzip";
  sim::Frontend frontend = sim::Frontend::kExec;
  protect::SchemeKind scheme = protect::SchemeKind::kUniformEcc;
  protect::CleaningPolicy cleaning_policy =
      protect::CleaningPolicy::kWrittenBit;
  u64 cleaning_interval = 0;
  unsigned decay_threshold = 2;
  unsigned ecc_entries_per_set = 1;
  u64 instructions = 2'000'000;
  u64 warmup = 200'000;
  u64 seed = 42;
  bool maintain_codes = false;
  std::string trace;       ///< registered trace name; empty = benchmark
  u64 timeout_ms = 0;      ///< per-job wall clock; 0 = server default

  /// The registered name a kTrace job replays.
  std::string trace_name() const {
    return trace.empty() ? benchmark : trace;
  }
};

/// JSON <-> JobSpec. from_json throws ServerError(kBadRequest) naming the
/// offending field for unknown enum spellings and kind-mismatched values.
JsonValue job_spec_to_json(const JobSpec& spec);
JobSpec job_spec_from_json(const JsonValue& doc);

/// The ExperimentOptions this job runs under. For kTrace jobs the caller
/// (the server) must still fill options.trace_path from its registry.
sim::ExperimentOptions to_experiment_options(const JobSpec& spec);

/// Inverse of to_experiment_options: the JobSpec that makes a remote worker
/// run exactly this local experiment. This is how the fabric coordinator
/// ships a sim::SweepJob over the wire; round-tripping through it and back
/// must reproduce the options bit-for-bit, or fabric results could not be
/// compared against a local SweepRunner.
JobSpec job_spec_from_options(const std::string& benchmark,
                              const sim::ExperimentOptions& options);

/// Enum spellings shared with the table/CLI output (to_string inverses).
protect::SchemeKind scheme_from_string(const std::string& s);
protect::CleaningPolicy cleaning_policy_from_string(const std::string& s);
sim::Frontend frontend_from_string(const std::string& s);

/// Reply scaffolding: {"ok": true, "type": <type>} / {"ok": false,
/// "error": <wire code>, "message": <text>}.
JsonValue ok_reply(const std::string& type);
JsonValue error_reply(ServerErrorKind kind, const std::string& message);

/// Raise a not-ok reply as the typed error it carries; pass through ok
/// replies. Client-side glue.
const JsonValue& check_reply(const JsonValue& reply);

}  // namespace aeep::server
