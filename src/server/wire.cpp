#include "server/wire.hpp"

#include <cstring>
#include <vector>

namespace aeep::server {

namespace {

void put_u32le(u8* out, u32 v) {
  out[0] = static_cast<u8>(v & 0xFF);
  out[1] = static_cast<u8>((v >> 8) & 0xFF);
  out[2] = static_cast<u8>((v >> 16) & 0xFF);
  out[3] = static_cast<u8>((v >> 24) & 0xFF);
}

u32 get_u32le(const u8* in) {
  return static_cast<u32>(in[0]) | (static_cast<u32>(in[1]) << 8) |
         (static_cast<u32>(in[2]) << 16) | (static_cast<u32>(in[3]) << 24);
}

[[noreturn]] void bad_request(const std::string& what) {
  throw ServerError(ServerErrorKind::kBadRequest, what);
}

}  // namespace

void send_frame(Socket& sock, const JsonValue& doc) {
  const std::string payload = doc.dump(0);  // compact: frames are wire data
  if (payload.size() > kMaxFrameBytes)
    throw ServerError(ServerErrorKind::kProtocol,
                      "outgoing frame of " + std::to_string(payload.size()) +
                          " bytes exceeds the protocol limit");
  u8 prefix[4];
  put_u32le(prefix, static_cast<u32>(payload.size()));
  sock.send_all(prefix, sizeof(prefix));
  sock.send_all(payload.data(), payload.size());
}

std::optional<JsonValue> recv_frame(Socket& sock, int timeout_ms) {
  u8 prefix[4];
  if (!sock.recv_exact(prefix, sizeof(prefix), timeout_ms))
    return std::nullopt;
  const u32 len = get_u32le(prefix);
  if (len > kMaxFrameBytes)
    throw ServerError(ServerErrorKind::kProtocol,
                      "frame prefix claims " + std::to_string(len) +
                          " bytes (limit " + std::to_string(kMaxFrameBytes) +
                          ") — not speaking this protocol?");
  std::vector<char> payload(len);
  if (len > 0 && !sock.recv_exact(payload.data(), payload.size(), timeout_ms))
    throw ServerError(ServerErrorKind::kIo, "peer closed inside a frame");
  std::string error;
  auto doc = json_parse(std::string_view(payload.data(), payload.size()),
                        &error);
  if (!doc)
    throw ServerError(ServerErrorKind::kProtocol,
                      "unparsable frame payload: " + error);
  return doc;
}

protect::SchemeKind scheme_from_string(const std::string& s) {
  if (s == "uniform-ecc") return protect::SchemeKind::kUniformEcc;
  if (s == "non-uniform") return protect::SchemeKind::kNonUniform;
  if (s == "shared-ecc-array") return protect::SchemeKind::kSharedEccArray;
  bad_request("unknown scheme '" + s +
              "' (uniform-ecc | non-uniform | shared-ecc-array)");
}

protect::CleaningPolicy cleaning_policy_from_string(const std::string& s) {
  if (s == "written-bit") return protect::CleaningPolicy::kWrittenBit;
  if (s == "naive") return protect::CleaningPolicy::kNaive;
  if (s == "decay-counter") return protect::CleaningPolicy::kDecayCounter;
  if (s == "eager-idle") return protect::CleaningPolicy::kEagerIdle;
  bad_request("unknown cleaning_policy '" + s +
              "' (written-bit | naive | decay-counter | eager-idle)");
}

sim::Frontend frontend_from_string(const std::string& s) {
  if (s == "exec") return sim::Frontend::kExec;
  if (s == "trace") return sim::Frontend::kTrace;
  bad_request("unknown frontend '" + s + "' (exec | trace)");
}

JsonValue job_spec_to_json(const JobSpec& spec) {
  JsonValue j = JsonValue::object();
  j.set("benchmark", JsonValue::string(spec.benchmark));
  j.set("frontend", JsonValue::string(sim::to_string(spec.frontend)));
  j.set("scheme", JsonValue::string(protect::to_string(spec.scheme)));
  j.set("cleaning_policy",
        JsonValue::string(protect::to_string(spec.cleaning_policy)));
  j.set("cleaning_interval", JsonValue::number(spec.cleaning_interval));
  j.set("decay_threshold", JsonValue::number(u64{spec.decay_threshold}));
  j.set("ecc_entries_per_set",
        JsonValue::number(u64{spec.ecc_entries_per_set}));
  j.set("instructions", JsonValue::number(spec.instructions));
  j.set("warmup", JsonValue::number(spec.warmup));
  j.set("seed", JsonValue::number(spec.seed));
  j.set("maintain_codes", JsonValue::boolean(spec.maintain_codes));
  if (!spec.trace.empty()) j.set("trace", JsonValue::string(spec.trace));
  if (spec.timeout_ms != 0)
    j.set("timeout_ms", JsonValue::number(spec.timeout_ms));
  return j;
}

JobSpec job_spec_from_json(const JsonValue& doc) {
  if (!doc.is_object()) bad_request("job descriptor must be an object");
  JobSpec spec;
  // Unknown keys are rejected, mirroring reject_unknown_flags(): a typo'd
  // knob must fail loudly, not silently run the default experiment.
  static const char* const kKnown[] = {
      "benchmark",       "frontend",     "scheme",
      "cleaning_policy", "cleaning_interval", "decay_threshold",
      "ecc_entries_per_set", "instructions", "warmup",
      "seed",            "maintain_codes",   "trace",
      "timeout_ms"};
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) bad_request("unknown job field '" + key + "'");
    (void)value;
  }
  spec.benchmark = doc.get_string("benchmark", spec.benchmark);
  if (spec.benchmark.empty()) bad_request("benchmark must be non-empty");
  if (const JsonValue* v = doc.find("frontend"))
    spec.frontend = frontend_from_string(v->as_string("?"));
  if (const JsonValue* v = doc.find("scheme"))
    spec.scheme = scheme_from_string(v->as_string("?"));
  if (const JsonValue* v = doc.find("cleaning_policy"))
    spec.cleaning_policy = cleaning_policy_from_string(v->as_string("?"));
  spec.cleaning_interval =
      doc.get_u64("cleaning_interval", spec.cleaning_interval);
  spec.decay_threshold = static_cast<unsigned>(
      doc.get_u64("decay_threshold", spec.decay_threshold));
  spec.ecc_entries_per_set = static_cast<unsigned>(
      doc.get_u64("ecc_entries_per_set", spec.ecc_entries_per_set));
  spec.instructions = doc.get_u64("instructions", spec.instructions);
  if (spec.instructions == 0) bad_request("instructions must be > 0");
  spec.warmup = doc.get_u64("warmup", spec.warmup);
  spec.seed = doc.get_u64("seed", spec.seed);
  spec.maintain_codes = doc.get_bool("maintain_codes", spec.maintain_codes);
  spec.trace = doc.get_string("trace", spec.trace);
  spec.timeout_ms = doc.get_u64("timeout_ms", spec.timeout_ms);
  return spec;
}

sim::ExperimentOptions to_experiment_options(const JobSpec& spec) {
  sim::ExperimentOptions opts;
  opts.scheme = spec.scheme;
  opts.cleaning_interval = spec.cleaning_interval;
  opts.cleaning_policy = spec.cleaning_policy;
  opts.decay_threshold = spec.decay_threshold;
  opts.ecc_entries_per_set = spec.ecc_entries_per_set;
  opts.instructions = spec.instructions;
  opts.warmup_instructions = spec.warmup;
  opts.seed = spec.seed;
  opts.maintain_codes = spec.maintain_codes;
  opts.frontend = spec.frontend;
  return opts;
}

JobSpec job_spec_from_options(const std::string& benchmark,
                              const sim::ExperimentOptions& options) {
  JobSpec spec;
  spec.benchmark = benchmark;
  spec.frontend = options.frontend;
  spec.scheme = options.scheme;
  spec.cleaning_policy = options.cleaning_policy;
  spec.cleaning_interval = options.cleaning_interval;
  spec.decay_threshold = options.decay_threshold;
  spec.ecc_entries_per_set = options.ecc_entries_per_set;
  spec.instructions = options.instructions;
  spec.warmup = options.warmup_instructions;
  spec.seed = options.seed;
  spec.maintain_codes = options.maintain_codes;
  return spec;
}

JsonValue ok_reply(const std::string& type) {
  JsonValue j = JsonValue::object();
  j.set("ok", JsonValue::boolean(true));
  j.set("type", JsonValue::string(type));
  return j;
}

JsonValue error_reply(ServerErrorKind kind, const std::string& message) {
  JsonValue j = JsonValue::object();
  j.set("ok", JsonValue::boolean(false));
  j.set("error", JsonValue::string(wire_code(kind)));
  // ServerError::what() embeds the human kind prefix; strip it so the
  // client-side rethrow (which prefixes again) does not stutter
  // "server busy: server busy: ...".
  const std::string prefix = std::string(to_string(kind)) + ": ";
  j.set("message", JsonValue::string(
                       message.rfind(prefix, 0) == 0
                           ? message.substr(prefix.size())
                           : message));
  return j;
}

const JsonValue& check_reply(const JsonValue& reply) {
  if (reply.get_bool("ok", false)) return reply;
  const ServerErrorKind kind =
      kind_from_wire_code(reply.get_string("error", "internal"));
  throw ServerError(kind, reply.get_string("message", "request failed"));
}

}  // namespace aeep::server
