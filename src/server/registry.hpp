// Server-side trace registry: the set of .aeept files a remote job may
// replay. Clients name traces, never paths — the registry is populated
// once at startup (scan of --trace-dir plus explicit registrations), is
// read-only while serving, and rejects unknown names with kNotFound, so a
// request can neither traverse the filesystem nor race a mutating map.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "server/error.hpp"

namespace aeep::server {

class TraceRegistry {
 public:
  /// Register every `<name>.aeept` under `dir` (non-recursive) by stem.
  /// Each file's header is validated on the spot: registering a damaged
  /// trace should fail the server at startup, not job #4711 at 3am.
  /// Returns the number of traces added. Throws ServerError(kIo) when the
  /// directory cannot be read.
  std::size_t scan_directory(const std::string& dir);

  /// Register one file under an explicit name (same header validation).
  void add(const std::string& name, const std::string& path);

  /// Path for a registered name. Throws ServerError(kNotFound).
  const std::string& path_of(const std::string& name) const;

  bool contains(const std::string& name) const {
    return traces_.count(name) != 0;
  }
  std::size_t size() const { return traces_.size(); }
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> traces_;  ///< name -> path
};

}  // namespace aeep::server
