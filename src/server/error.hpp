// Typed failures for the job-server layer, mirroring trace/error.hpp: every
// failure a connection can observe — socket trouble, an unframeable or
// malformed request, a full queue, a missing job or trace, a blown
// deadline, a server that is draining — surfaces as a ServerError with a
// machine-checkable kind AND a stable wire code, so clients (and the
// backpressure tests) can distinguish "try again later" from "your request
// is wrong" without parsing message strings.
#pragma once

#include <stdexcept>
#include <string>
#include <system_error>

namespace aeep::server {

/// Render `err` (an errno value) as text. std::strerror is not
/// thread-safe (clang-tidy concurrency-mt-unsafe); std::error_code routes
/// through the locale-free generic category instead.
inline std::string errno_message(int err) {
  return std::error_code(err, std::generic_category()).message();
}

enum class ServerErrorKind {
  kIo,          ///< socket open/read/write failed at the OS level
  kProtocol,    ///< framing violated: bad length prefix, unparsable JSON
  kBadRequest,  ///< well-formed frame, invalid content (unknown type/field)
  kBusy,        ///< bounded job queue is full — back off and retry (429)
  kNotFound,    ///< unknown job id or unregistered trace name
  kTimeout,     ///< job exceeded its wall-clock budget
  kShutdown,      ///< server is draining; no new work accepted
  kInternal,      ///< job threw inside the simulator
  kUnauthorized,  ///< shared token required and absent/wrong (401)
};

/// Human-readable prefix (error messages).
const char* to_string(ServerErrorKind k);

/// Stable machine token carried in the `error` field of a reply frame.
const char* wire_code(ServerErrorKind k);

/// Inverse of wire_code(); kInternal for anything unrecognised.
ServerErrorKind kind_from_wire_code(const std::string& code);

class ServerError : public std::runtime_error {
 public:
  ServerError(ServerErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  ServerErrorKind kind() const { return kind_; }

 private:
  ServerErrorKind kind_;
};

inline const char* to_string(ServerErrorKind k) {
  switch (k) {
    case ServerErrorKind::kIo: return "server io error";
    case ServerErrorKind::kProtocol: return "server protocol error";
    case ServerErrorKind::kBadRequest: return "bad request";
    case ServerErrorKind::kBusy: return "server busy";
    case ServerErrorKind::kNotFound: return "not found";
    case ServerErrorKind::kTimeout: return "job timeout";
    case ServerErrorKind::kShutdown: return "server shutting down";
    case ServerErrorKind::kInternal: return "internal error";
    case ServerErrorKind::kUnauthorized: return "unauthorized";
  }
  return "server error";
}

inline const char* wire_code(ServerErrorKind k) {
  switch (k) {
    case ServerErrorKind::kIo: return "io";
    case ServerErrorKind::kProtocol: return "protocol";
    case ServerErrorKind::kBadRequest: return "bad_request";
    case ServerErrorKind::kBusy: return "busy";
    case ServerErrorKind::kNotFound: return "not_found";
    case ServerErrorKind::kTimeout: return "timeout";
    case ServerErrorKind::kShutdown: return "shutdown";
    case ServerErrorKind::kInternal: return "internal";
    case ServerErrorKind::kUnauthorized: return "unauthorized";
  }
  return "internal";
}

inline ServerErrorKind kind_from_wire_code(const std::string& code) {
  if (code == "io") return ServerErrorKind::kIo;
  if (code == "protocol") return ServerErrorKind::kProtocol;
  if (code == "bad_request") return ServerErrorKind::kBadRequest;
  if (code == "busy") return ServerErrorKind::kBusy;
  if (code == "not_found") return ServerErrorKind::kNotFound;
  if (code == "timeout") return ServerErrorKind::kTimeout;
  if (code == "shutdown") return ServerErrorKind::kShutdown;
  if (code == "unauthorized") return ServerErrorKind::kUnauthorized;
  return ServerErrorKind::kInternal;
}

}  // namespace aeep::server
