#include "server/client.hpp"

namespace aeep::server {

Client::Client(const std::string& host, u16 port)
    : sock_(connect_to(host, port)) {}

JsonValue Client::make_request(const std::string& type) {
  JsonValue r = JsonValue::object();
  r.set("type", JsonValue::string(type));
  return r;
}

JsonValue Client::call(const JsonValue& request) {
  if (!token_.empty() && request.find("token") == nullptr) {
    JsonValue authed = request;
    authed.set("token", JsonValue::string(token_));
    send_frame(sock_, authed);
    auto reply = recv_frame(sock_, call_timeout_ms_);
    if (!reply)
      throw ServerError(ServerErrorKind::kIo,
                        "server closed the connection mid-call");
    return std::move(*reply);
  }
  send_frame(sock_, request);
  auto reply = recv_frame(sock_, call_timeout_ms_);
  if (!reply)
    throw ServerError(ServerErrorKind::kIo,
                      "server closed the connection mid-call");
  return std::move(*reply);
}

JsonValue Client::ping() { return check_reply(call(make_request("ping"))); }

u64 Client::submit(const JobSpec& spec) {
  JsonValue req = make_request("submit");
  req.set("job", job_spec_to_json(spec));
  const JsonValue reply = call(req);
  check_reply(reply);
  return reply.get_u64("job_id", 0);
}

JsonValue Client::status(u64 job_id) {
  JsonValue req = make_request("status");
  req.set("job_id", JsonValue::number(job_id));
  return check_reply(call(req));
}

JsonValue Client::result(u64 job_id, bool wait, u64 wait_ms) {
  JsonValue req = make_request("result");
  req.set("job_id", JsonValue::number(job_id));
  req.set("wait", JsonValue::boolean(wait));
  req.set("wait_ms", JsonValue::number(wait_ms));
  return check_reply(call(req));
}

JsonValue Client::run(const JobSpec& spec) {
  JsonValue req = make_request("run");
  req.set("job", job_spec_to_json(spec));
  return check_reply(call(req));
}

JsonValue Client::stats() { return check_reply(call(make_request("stats"))); }

JsonValue Client::metrics() {
  return check_reply(call(make_request("metrics")));
}

JsonValue Client::health() {
  return check_reply(call(make_request("health")));
}

JsonValue Client::drain() {
  return check_reply(call(make_request("drain")));
}

std::vector<std::string> Client::traces() {
  const JsonValue reply = check_reply(call(make_request("traces")));
  std::vector<std::string> out;
  if (const JsonValue* names = reply.find("traces"))
    for (const JsonValue& n : names->elements())
      out.push_back(n.as_string());
  return out;
}

}  // namespace aeep::server
