// RAII TCP primitives for the job server and its clients. This file (and
// socket.cpp) is the only place in the tree allowed to touch raw POSIX
// socket()/send()/recv() — lint Rule 6 — so every byte that crosses the
// network goes through the checked, timeout-aware helpers here, and short
// reads/writes surface as typed ServerErrors instead of silently-ignored
// return values (the same discipline trace/io.hpp imposes on file I/O).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "server/error.hpp"

namespace aeep::server {

/// A connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Send the entire buffer (retrying short writes / EINTR). Throws
  /// ServerError(kIo) when the peer vanishes.
  void send_all(const void* data, std::size_t len);

  /// Receive exactly `len` bytes. Returns false iff the peer closed the
  /// stream cleanly before the FIRST byte (normal end of a connection);
  /// throws ServerError(kIo) on errors, on a close mid-message, and when
  /// `timeout_ms` >= 0 elapses before the bytes arrive.
  bool recv_exact(void* data, std::size_t len, int timeout_ms = -1);

  /// True when at least one byte (or EOF) is readable within `timeout_ms`.
  /// Lets a server poll between frames and notice a drain request without
  /// committing to a blocking read. Throws ServerError(kIo) on poll errors.
  bool wait_readable(int timeout_ms);

  /// Disable Nagle; the protocol is small request/reply frames where
  /// coalescing only adds latency.
  void set_nodelay();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port (port 0 = kernel-assigned).
class Listener {
 public:
  /// Binds with SO_REUSEADDR and listens. Throws ServerError(kIo).
  Listener(const std::string& host, u16 port, int backlog = 64);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The actually bound port (resolves port 0).
  u16 port() const { return port_; }

  /// Wait up to `timeout_ms` for a connection. nullopt on timeout (the
  /// accept loop's chance to notice a drain request); throws on errors.
  /// `peer`, when non-null, receives "ip:port" of the remote end.
  std::optional<Socket> accept(int timeout_ms, std::string* peer = nullptr);

  void close();

 private:
  int fd_ = -1;
  u16 port_ = 0;
};

/// Blocking connect to host:port ("localhost" or a dotted IPv4 literal).
/// Throws ServerError(kIo) when the server is not there.
Socket connect_to(const std::string& host, u16 port);

}  // namespace aeep::server
