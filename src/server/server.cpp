#include "server/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/bitops.hpp"
#include "metrics/timer.hpp"
#include "sim/result_json.hpp"

namespace aeep::server {

namespace {

bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kTimeout;
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kTimeout: return "timeout";
  }
  return "?";
}

JobServer::JobServer(ServerConfig config)
    : config_(std::move(config)),
      h_queue_wait_(
          metrics::Registry::instance().histogram("server.queue_wait_us")),
      h_replay_(metrics::Registry::instance().histogram("server.replay_us")),
      h_encode_(metrics::Registry::instance().histogram("server.encode_us")),
      h_store_lookup_(
          metrics::Registry::instance().histogram("server.store_lookup_us")),
      h_request_(metrics::Registry::instance().histogram("server.request_us")),
      h_job_wall_(
          metrics::Registry::instance().histogram("server.job_wall_us")),
      c_cache_hits_(metrics::Registry::instance().counter("server.cache_hits")),
      c_cache_misses_(
          metrics::Registry::instance().counter("server.cache_misses")) {
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.max_connections == 0) config_.max_connections = 1;
  if (config_.result_retention == 0) config_.result_retention = 1;
  // The ring wants a power of two >= 2; queue_depth_ enforces the exact
  // configured capacity on top, so over-sizing the ring costs nothing.
  queue_ = std::make_unique<MpmcQueue<u64>>(static_cast<std::size_t>(
      std::max<u64>(2, ceil_pow2(config_.queue_capacity))));
}

JobServer::~JobServer() { stop(); }

void JobServer::start() {
  if (started_.exchange(true)) return;
  if (!config_.trace_dir.empty()) registry_.scan_directory(config_.trace_dir);
  if (!config_.access_log_path.empty())
    log_.open(config_.access_log_path, config_.access_log_max_bytes);
  if (!config_.store_dir.empty())
    cache_ = std::make_unique<store::SweepCache>(
        store::StoreConfig{config_.store_dir, 4096});
  runner_ = std::make_unique<sim::SweepRunner>(config_.workers);
  listener_ = std::make_unique<Listener>(config_.host, config_.port);
  started_at_ = metrics::now();
  {
    JsonValue f = JsonValue::object();
    f.set("host", JsonValue::string(config_.host));
    f.set("port", JsonValue::number(u64{listener_->port()}));
    f.set("workers", JsonValue::number(u64{runner_->jobs()}));
    f.set("queue_capacity", JsonValue::number(u64{config_.queue_capacity}));
    f.set("traces", JsonValue::number(u64{registry_.size()}));
    if (cache_) f.set("store", JsonValue::string(config_.store_dir));
    log_.write("listening", std::move(f));
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

u16 JobServer::port() const {
  return listener_ ? listener_->port() : config_.port;
}

void JobServer::request_drain() {
  if (draining_.exchange(true)) return;
  {
    // Taking the lock pairs the flag flip with the cv so the dispatcher
    // cannot check-then-sleep across it.
    const MutexLock lock(mutex_);
  }
  cv_dispatch_.notify_all();
  log_.write("drain_begin", JsonValue::object());
}

u64 JobServer::drain() {
  if (!started_.load()) return 0;
  request_drain();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  log_metrics_summary("drain");
  u64 completed = 0;
  {
    const MutexLock lock(mutex_);
    completed = stats_.completed;
    JsonValue f = JsonValue::object();
    f.set("completed", JsonValue::number(stats_.completed));
    f.set("failed", JsonValue::number(stats_.failed));
    f.set("timed_out", JsonValue::number(stats_.timed_out));
    log_.write("drain_complete", std::move(f));
  }
  stop();
  return completed;
}

void JobServer::stop() {
  if (!started_.load()) return;
  draining_.store(true);
  closing_.store(true);
  {
    const MutexLock lock(mutex_);
    // Anything still queued will never run; fail it loudly rather than
    // leaving a waiting client to time out. Drain the ring, then sweep the
    // job table for kQueued stragglers (a submit may have inserted its job
    // but not yet published the id to the ring).
    u64 id = 0;
    while (queue_->try_pop(id)) {
      const auto it = jobs_.find(id);
      if (it != jobs_.end())
        finish_job_locked(it->second, JobState::kFailed,
                          ServerErrorKind::kShutdown,
                          "server shut down before the job ran");
    }
    for (auto& [jid, job] : jobs_) {
      if (job.state == JobState::kQueued)
        finish_job_locked(job, JobState::kFailed, ServerErrorKind::kShutdown,
                          "server shut down before the job ran");
    }
    queue_depth_.store(0);
  }
  cv_dispatch_.notify_all();
  cv_done_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Splice the handler list out first: joining while holding conn_mutex_
    // would deadlock with a handler's exit path, which takes conn_mutex_ to
    // decrement the active count. Node addresses survive the splice, so
    // each thread's `entry` reference stays valid until its join.
    std::list<Connection> doomed;
    {
      const MutexLock lock(conn_mutex_);
      doomed.splice(doomed.begin(), connections_);
    }
    for (auto& conn : doomed)
      if (conn.thread.joinable()) conn.thread.join();
    const MutexLock lock(conn_mutex_);
    active_connections_ = 0;
  }
  if (listener_) listener_->close();
  log_.write("closed", JsonValue::object());
  log_.close();
  started_.store(false);
}

ServerStats JobServer::stats() const {
  const MutexLock lock(mutex_);
  ServerStats s = stats_;
  s.queued = queue_depth_.load();
  s.running = running_count_;
  return s;
}

void JobServer::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = ServerStats{};
}

// --- dispatcher ------------------------------------------------------------

void JobServer::dispatch_loop() {
  while (true) {
    std::vector<sim::SweepJob> grid;
    std::vector<u64> ids;
    {
      const MutexLock lock(mutex_);
      while (!closing_.load() && !draining_.load() &&
             queue_depth_.load() == 0)
        cv_dispatch_.wait(mutex_);
      if (closing_.load()) return;

      const auto now = metrics::now();
      u64 id = 0;
      while (ids.size() < config_.max_batch && queue_->try_pop(id)) {
        queue_depth_.fetch_sub(1);
        const auto it = jobs_.find(id);
        if (it == jobs_.end()) continue;
        Job& job = it->second;
        if (job.has_deadline && now > job.deadline) {
          finish_job_locked(job, JobState::kTimeout,
                            ServerErrorKind::kTimeout,
                            "deadline expired while queued");
          continue;
        }
        job.state = JobState::kRunning;
        h_queue_wait_.record(metrics::us_between(job.submitted_at, now));
        ++running_count_;
        sim::SweepJob sj;
        sj.benchmark = job.spec.benchmark;
        sj.options = job.options;
        sj.tag = std::to_string(id);
        grid.push_back(std::move(sj));
        ids.push_back(id);
      }
      if (ids.empty()) {
        // Ring dry. depth > 0 means a submitter reserved a slot but hasn't
        // published the id yet; loop (the wait predicate sees depth > 0 and
        // falls straight through) until the push lands — a few atomics away.
        if (draining_.load() && queue_depth_.load() == 0)
          return;  // drained dry: dispatcher is done
        continue;
      }
      ++stats_.batches;
    }

    // Run the batch unlocked. Each job completes from the progress
    // callback the moment it finishes — a fast trace replay's client is
    // answered while a slow exec job in the same batch still runs.
    runner_->run(grid, [&](const sim::SweepProgress& p) {
      bool store_result = false;
      h_replay_.record(static_cast<u64>(p.outcome->wall_seconds * 1e6));
      {
        const MutexLock g(mutex_);
        const auto it = jobs_.find(ids[p.job_index]);
        if (it == jobs_.end()) return;
        Job& job = it->second;
        if (!p.outcome->ok()) {
          finish_job_locked(job, JobState::kFailed, ServerErrorKind::kInternal,
                            p.outcome->error);
        } else if (job.has_deadline && metrics::now() > job.deadline) {
          finish_job_locked(job, JobState::kTimeout, ServerErrorKind::kTimeout,
                            "completed after its deadline; result discarded");
        } else {
          job.result = p.outcome->result;
          finish_job_locked(job, JobState::kDone, ServerErrorKind::kInternal,
                            "");
          store_result = cache_ != nullptr;
        }
      }
      // The store insert happens after mutex_ is released — the cache has
      // its own lock and the two must never nest (see submit_job).
      if (store_result) {
        cache_->insert(grid[p.job_index], p.outcome->result);
        {
          const MutexLock g(mutex_);
          ++stats_.cache_stores;
        }
        JsonValue f = JsonValue::object();
        f.set("job", JsonValue::number(ids[p.job_index]));
        f.set("benchmark", JsonValue::string(grid[p.job_index].benchmark));
        log_.write("cache_store", std::move(f));
      }
    });
  }
}

void JobServer::finish_job_locked(Job& job, JobState state,
                                  ServerErrorKind kind,
                                  const std::string& error) {
  if (is_terminal(job.state)) return;
  if (job.state == JobState::kRunning && running_count_ > 0) --running_count_;
  job.state = state;
  job.error_kind = kind;
  job.error = error;
  job.wall_ms = metrics::ms_since(job.submitted_at);
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      h_job_wall_.record(static_cast<u64>(job.wall_ms * 1000.0));
      break;
    case JobState::kFailed: ++stats_.failed; break;
    case JobState::kTimeout: ++stats_.timed_out; break;
    default: break;
  }
  if (config_.metrics_log_every != 0 &&
      ++metrics_log_at_ >= config_.metrics_log_every) {
    metrics_log_at_ = 0;
    log_metrics_summary("periodic");
  }
  finished_order_.push_back(job.id);
  enforce_retention_locked();
  cv_done_.notify_all();
  JsonValue f = JsonValue::object();
  f.set("job", JsonValue::number(job.id));
  f.set("benchmark", JsonValue::string(job.spec.benchmark));
  f.set("state", JsonValue::string(to_string(state)));
  f.set("wall_ms", JsonValue::number(job.wall_ms));
  if (!error.empty()) f.set("error", JsonValue::string(error));
  log_.write("job", std::move(f));
}

void JobServer::enforce_retention_locked() {
  while (finished_order_.size() > config_.result_retention) {
    const u64 victim = finished_order_.front();
    finished_order_.erase(finished_order_.begin());
    const auto it = jobs_.find(victim);
    if (it != jobs_.end() && is_terminal(it->second.state)) jobs_.erase(it);
  }
}

// --- connections -----------------------------------------------------------

void JobServer::accept_loop() {
  while (!closing_.load()) {
    std::string peer;
    std::optional<Socket> sock;
    try {
      sock = listener_->accept(200, &peer);
    } catch (const ServerError&) {
      if (closing_.load()) break;
      continue;
    }

    // Reap handler threads that have finished since the last pass.
    {
      const MutexLock lock(conn_mutex_);
      for (auto it = connections_.begin(); it != connections_.end();) {
        if (it->done.load()) {
          it->thread.join();
          it = connections_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!sock) continue;

    u64 conn_id = 0;
    bool reject = false;
    {
      const MutexLock lock(conn_mutex_);
      if (active_connections_ >= config_.max_connections) reject = true;
      else {
        ++active_connections_;
        conn_id = next_conn_id_++;
      }
    }
    if (reject) {
      {
        const MutexLock lock(mutex_);
        ++stats_.connections_rejected;
      }
      try {
        send_frame(*sock, error_reply(ServerErrorKind::kBusy,
                                      "connection limit reached"));
      } catch (const ServerError&) {
      }
      JsonValue f = JsonValue::object();
      f.set("peer", JsonValue::string(peer));
      log_.write("rejected", std::move(f));
      continue;
    }

    {
      const MutexLock lock(mutex_);
      ++stats_.connections_accepted;
    }
    const MutexLock lock(conn_mutex_);
    connections_.emplace_back();
    Connection& entry = connections_.back();
    entry.thread = std::thread(
        [this, &entry, conn_id, peer, s = std::move(*sock)]() mutable {
          handle_connection(std::move(s), conn_id, peer);
          {
            const MutexLock g(conn_mutex_);
            if (active_connections_ > 0) --active_connections_;
          }
          entry.done.store(true);  // last: the reaper may now join us
        });
  }
}

void JobServer::handle_connection(Socket sock, u64 conn_id,
                                  std::string peer) {
  {
    JsonValue f = JsonValue::object();
    f.set("conn", JsonValue::number(conn_id));
    f.set("peer", JsonValue::string(peer));
    log_.write("open", std::move(f));
  }
  u64 served = 0;
  std::string close_reason = "eof";
  try {
    while (!closing_.load()) {
      if (!sock.wait_readable(200)) continue;
      const auto req = recv_frame(sock);
      if (!req) break;  // peer hung up cleanly
      const auto t0 = metrics::now();
      const JsonValue reply = handle_request(*req, conn_id);
      h_request_.record(metrics::us_since(t0));
      {
        const metrics::ScopedTimer enc(h_encode_);
        send_frame(sock, reply);
      }
      ++served;
      JsonValue f = JsonValue::object();
      f.set("conn", JsonValue::number(conn_id));
      f.set("type", JsonValue::string(req->get_string("type", "?")));
      f.set("ok", JsonValue::boolean(reply.get_bool("ok", false)));
      if (const JsonValue* e = reply.find("error")) f.set("error", *e);
      if (const JsonValue* j = reply.find("job_id")) f.set("job", *j);
      f.set("dur_ms", JsonValue::number(metrics::ms_since(t0)));
      log_.write("request", std::move(f));
    }
    if (closing_.load()) close_reason = "server_closing";
  } catch (const ServerError& e) {
    close_reason = std::string("error: ") + e.what();
    try {
      send_frame(sock, error_reply(e.kind(), e.what()));
    } catch (const ServerError&) {
    }
  } catch (const std::exception& e) {
    close_reason = std::string("error: ") + e.what();
  }
  JsonValue f = JsonValue::object();
  f.set("conn", JsonValue::number(conn_id));
  f.set("requests", JsonValue::number(served));
  f.set("reason", JsonValue::string(close_reason));
  log_.write("close", std::move(f));
}

// --- request handling ------------------------------------------------------

JsonValue JobServer::handle_request(const JsonValue& req, u64 conn_id) {
  (void)conn_id;
  {
    const MutexLock lock(mutex_);
    ++stats_.requests;
  }
  const std::string type = req.get_string("type", "");
  try {
    if (type == "ping") {
      JsonValue r = ok_reply("pong");
      r.set("server", JsonValue::string("aeep_served"));
      r.set("protocol", JsonValue::number(u64{1}));
      r.set("auth_required", JsonValue::boolean(!config_.token.empty()));
      return r;
    }
    if (!config_.token.empty() &&
        req.get_string("token", "") != config_.token) {
      {
        const MutexLock lock(mutex_);
        ++stats_.unauthorized;
      }
      throw ServerError(ServerErrorKind::kUnauthorized,
                        "request requires a valid token (server started "
                        "with --token)");
    }
    if (type == "submit") return handle_submit(req);
    if (type == "status") return handle_status(req);
    if (type == "result") return handle_result(req);
    if (type == "run") return handle_run(req);
    if (type == "stats") return handle_stats();
    if (type == "metrics") return handle_metrics();
    if (type == "traces") return handle_traces();
    if (type == "health") return handle_health();
    if (type == "drain") return handle_drain();
    throw ServerError(ServerErrorKind::kBadRequest,
                      "unknown request type '" + type + "'");
  } catch (const ServerError& e) {
    return error_reply(e.kind(), e.what());
  } catch (const std::exception& e) {
    return error_reply(ServerErrorKind::kInternal, e.what());
  }
}

u64 JobServer::submit_job(const JsonValue& req) {
  const JsonValue* jv = req.find("job");
  JobSpec spec = jv ? job_spec_from_json(*jv) : JobSpec{};
  sim::ExperimentOptions options = to_experiment_options(spec);
  if (spec.frontend == sim::Frontend::kTrace)
    options.trace_path = registry_.path_of(spec.trace_name());

  // Consult the result store before the queue: a hit is born terminal and
  // never consumes a pool slot. The cache lock is taken and released here,
  // before mutex_ — the two are never held together in this order or the
  // other (inserts in dispatch_loop also run unlocked).
  if (cache_) {
    sim::SweepJob probe;
    probe.benchmark = spec.benchmark;
    probe.options = options;
    std::optional<sim::RunResult> hit;
    {
      const metrics::ScopedTimer span(h_store_lookup_);
      hit = cache_->lookup_result(probe);
    }
    if (hit) {
      u64 id = 0;
      {
        const MutexLock lock(mutex_);
        if (draining_.load()) {
          ++stats_.shutdown_rejected;
          throw ServerError(ServerErrorKind::kShutdown,
                            "server is draining; not accepting new jobs");
        }
        id = next_job_id_++;
        Job job;
        job.id = id;
        job.spec = std::move(spec);
        job.options = std::move(options);
        job.submitted_at = metrics::now();
        job.result = std::move(*hit);
        const auto [it, inserted] = jobs_.emplace(id, std::move(job));
        (void)inserted;
        ++stats_.submitted;
        ++stats_.cache_hits;
        c_cache_hits_.increment();
        finish_job_locked(it->second, JobState::kDone,
                          ServerErrorKind::kInternal, "");
      }
      JsonValue f = JsonValue::object();
      f.set("job", JsonValue::number(id));
      f.set("benchmark", JsonValue::string(probe.benchmark));
      log_.write("cache_hit", std::move(f));
      return id;
    }
    {
      const MutexLock lock(mutex_);
      ++stats_.cache_misses;
    }
    c_cache_misses_.increment();
    JsonValue f = JsonValue::object();
    f.set("benchmark", JsonValue::string(probe.benchmark));
    log_.write("cache_miss", std::move(f));
  }

  // Lock-free backpressure: reserve a queue slot on the atomic depth
  // counter before touching any shared state. Losing submitters back out
  // with kBusy without ever serialising on mutex_.
  if (queue_depth_.fetch_add(1) >= config_.queue_capacity) {
    queue_depth_.fetch_sub(1);
    const MutexLock lock(mutex_);
    ++stats_.busy_rejected;
    throw ServerError(ServerErrorKind::kBusy,
                      "job queue is full (" +
                          std::to_string(config_.queue_capacity) +
                          " queued); retry later");
  }
  u64 id = 0;
  {
    const MutexLock lock(mutex_);
    if (draining_.load()) {
      queue_depth_.fetch_sub(1);
      ++stats_.shutdown_rejected;
      throw ServerError(ServerErrorKind::kShutdown,
                        "server is draining; not accepting new jobs");
    }
    id = next_job_id_++;
    Job job;
    job.id = id;
    job.spec = std::move(spec);
    job.options = std::move(options);
    job.submitted_at = metrics::now();
    const u64 timeout_ms =
        job.spec.timeout_ms != 0 ? job.spec.timeout_ms
                                 : config_.default_timeout_ms;
    if (timeout_ms != 0) {
      job.has_deadline = true;
      job.deadline = job.submitted_at + std::chrono::milliseconds(timeout_ms);
    }
    jobs_.emplace(id, std::move(job));
    ++stats_.submitted;
  }
  // Publish after the job table knows the id; the dispatcher tolerates the
  // reserve->push window (see dispatch_loop). The reservation above
  // guarantees the ring (capacity >= queue_capacity) has room.
  if (!queue_->try_push(id))
    throw std::logic_error("job ring refused a reserved slot");
  {
    // Pair the push with the cv so the dispatcher cannot check-then-sleep
    // across it (same trick as request_drain).
    const MutexLock lock(mutex_);
  }
  cv_dispatch_.notify_one();
  return id;
}

JsonValue JobServer::handle_submit(const JsonValue& req) {
  const u64 id = submit_job(req);
  JsonValue r = ok_reply("submitted");
  r.set("job_id", JsonValue::number(id));
  r.set("queue_depth", JsonValue::number(u64{queue_depth_.load()}));
  return r;
}

JsonValue JobServer::handle_status(const JsonValue& req) {
  const u64 id = req.get_u64("job_id", 0);
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ServerError(ServerErrorKind::kNotFound,
                      "no job " + std::to_string(id) +
                          " (never submitted, or evicted after retention)");
  const Job& job = it->second;
  JsonValue r = ok_reply("status");
  r.set("job_id", JsonValue::number(id));
  r.set("state", JsonValue::string(to_string(job.state)));
  if (job.state == JobState::kQueued) {
    // Ids are handed out in FIFO order, so the position is the number of
    // still-queued jobs submitted before this one. O(jobs) map walk, but
    // status is a cold path and the ring has no stable iteration.
    u64 ahead = 0;
    for (const auto& [oid, other] : jobs_) {
      if (oid >= id) break;
      if (other.state == JobState::kQueued) ++ahead;
    }
    r.set("queue_position", JsonValue::number(ahead));
  }
  r.set("wall_ms", JsonValue::number(is_terminal(job.state)
                                         ? job.wall_ms
                                         : metrics::ms_since(job.submitted_at)));
  if (!job.error.empty()) {
    r.set("error", JsonValue::string(wire_code(job.error_kind)));
    r.set("message", JsonValue::string(job.error));
  }
  return r;
}

JsonValue JobServer::result_reply_locked(const Job& job) const {
  if (job.state == JobState::kFailed || job.state == JobState::kTimeout) {
    JsonValue r = error_reply(job.error_kind, job.error);
    r.set("job_id", JsonValue::number(job.id));
    r.set("state", JsonValue::string(to_string(job.state)));
    return r;
  }
  JsonValue r = ok_reply("result");
  r.set("job_id", JsonValue::number(job.id));
  r.set("state", JsonValue::string(to_string(job.state)));
  r.set("ready", JsonValue::boolean(job.state == JobState::kDone));
  if (job.state == JobState::kDone) {
    r.set("benchmark", JsonValue::string(job.spec.benchmark));
    r.set("metrics", sim::run_result_json(job.result));
    r.set("wall_ms", JsonValue::number(job.wall_ms));
  }
  return r;
}

bool JobServer::wait_for_job(u64 id, u64 wait_ms) {
  const MutexLock lock(mutex_);
  const auto deadline = metrics::now() + std::chrono::milliseconds(wait_ms);
  while (true) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return true;  // evicted — as terminal as it gets
    if (is_terminal(it->second.state)) return true;
    if (closing_.load()) return false;
    if (cv_done_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
      const auto again = jobs_.find(id);
      return again == jobs_.end() || is_terminal(again->second.state);
    }
  }
}

JsonValue JobServer::handle_result(const JsonValue& req) {
  const u64 id = req.get_u64("job_id", 0);
  if (req.get_bool("wait", false))
    wait_for_job(id, req.get_u64("wait_ms", 60'000));
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ServerError(ServerErrorKind::kNotFound,
                      "no job " + std::to_string(id) +
                          " (never submitted, or evicted after retention)");
  return result_reply_locked(it->second);
}

JsonValue JobServer::handle_run(const JsonValue& req) {
  const u64 id = submit_job(req);
  u64 budget_ms = 600'000;
  {
    const MutexLock lock(mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second.has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          it->second.deadline - metrics::now());
      budget_ms = static_cast<u64>(left.count() > 0 ? left.count() : 0) +
                  5'000;  // grace for the dispatcher to notice the deadline
    }
  }
  if (!wait_for_job(id, budget_ms))
    throw ServerError(ServerErrorKind::kShutdown,
                      "server closed before the job finished");
  const MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw ServerError(ServerErrorKind::kInternal,
                      "job evicted before its result was read");
  return result_reply_locked(it->second);
}

JsonValue JobServer::handle_stats() const {
  const ServerStats s = stats();
  JsonValue r = ok_reply("stats");
  r.set("uptime_ms", JsonValue::number(metrics::ms_since(started_at_)));
  r.set("draining", JsonValue::boolean(draining_.load()));
  r.set("workers",
        JsonValue::number(u64{runner_ ? runner_->jobs() : config_.workers}));
  r.set("queue_capacity", JsonValue::number(u64{config_.queue_capacity}));
  r.set("queued", JsonValue::number(u64{s.queued}));
  r.set("running", JsonValue::number(u64{s.running}));
  r.set("connections_accepted", JsonValue::number(s.connections_accepted));
  r.set("connections_rejected", JsonValue::number(s.connections_rejected));
  r.set("requests", JsonValue::number(s.requests));
  r.set("submitted", JsonValue::number(s.submitted));
  r.set("busy_rejected", JsonValue::number(s.busy_rejected));
  r.set("shutdown_rejected", JsonValue::number(s.shutdown_rejected));
  r.set("completed", JsonValue::number(s.completed));
  r.set("failed", JsonValue::number(s.failed));
  r.set("timed_out", JsonValue::number(s.timed_out));
  r.set("batches", JsonValue::number(s.batches));
  r.set("cache_hits", JsonValue::number(s.cache_hits));
  r.set("cache_misses", JsonValue::number(s.cache_misses));
  r.set("cache_stores", JsonValue::number(s.cache_stores));
  r.set("unauthorized", JsonValue::number(s.unauthorized));
  if (cache_) {
    r.set("store_entries",
          JsonValue::number(u64{cache_->result_store().size()}));
    r.set("store_bytes",
          JsonValue::number(cache_->result_store().disk_bytes()));
  }
  r.set("registered_traces", JsonValue::number(u64{registry_.size()}));
  r.set("access_log_rotated", JsonValue::number(log_.rotated()));
  return r;
}

JsonValue JobServer::handle_health() const {
  // Deliberately cheap — the fabric coordinator probes every worker with
  // this before dispatch, so it must answer fast even under load.
  JsonValue r = ok_reply("health");
  r.set("draining", JsonValue::boolean(draining_.load()));
  r.set("queued", JsonValue::number(u64{queue_depth_.load()}));
  {
    const MutexLock lock(mutex_);
    r.set("running", JsonValue::number(u64{running_count_}));
  }
  r.set("queue_capacity", JsonValue::number(u64{config_.queue_capacity}));
  return r;
}

JsonValue JobServer::handle_drain() {
  // Remote equivalent of aeep_served's SIGTERM path: stop accepting new
  // submits, let the queue finish. The reply confirms the state flip so a
  // coordinator can retire the worker immediately instead of discovering
  // kShutdown bounces one submit at a time.
  request_drain();
  JsonValue r = ok_reply("drain");
  r.set("draining", JsonValue::boolean(true));
  return r;
}

JsonValue JobServer::handle_metrics() const {
  // Whole-registry snapshot: every histogram (raw buckets + derived
  // percentiles) and counter in the process, not just the server.* family —
  // a worker's store.* and sim.* instruments ride along for free.
  JsonValue r = ok_reply("metrics");
  r.set("uptime_ms", JsonValue::number(metrics::ms_since(started_at_)));
  r.set("metrics", metrics::Registry::instance().snapshot_json());
  return r;
}

void JobServer::log_metrics_summary(const char* reason) {
  JsonValue f = JsonValue::object();
  f.set("reason", JsonValue::string(reason));
  JsonValue stages = JsonValue::object();
  for (const auto& [name, snap] : metrics::Registry::instance().histograms()) {
    if (snap.empty()) continue;
    JsonValue s = JsonValue::object();
    s.set("count", JsonValue::number(snap.count));
    s.set("p50", JsonValue::number(snap.percentile(50.0)));
    s.set("p99", JsonValue::number(snap.percentile(99.0)));
    s.set("max", JsonValue::number(snap.max));
    stages.set(name, std::move(s));
  }
  f.set("histograms", std::move(stages));
  log_.write("metrics", std::move(f));
}

JsonValue JobServer::handle_traces() const {
  JsonValue r = ok_reply("traces");
  JsonValue names = JsonValue::array();
  for (const auto& name : registry_.names())
    names.push(JsonValue::string(name));
  r.set("traces", std::move(names));
  return r;
}

}  // namespace aeep::server
