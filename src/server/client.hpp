// Client side of the aeep_served protocol: one connection, synchronous
// request/reply calls. Not-ok replies are raised as the typed ServerError
// they carry on the wire, so a caller can branch on kind() — the load
// generator catches kBusy to count backpressure instead of failing, the
// CLI maps kinds to exit codes.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "server/error.hpp"
#include "server/socket.hpp"
#include "server/wire.hpp"

namespace aeep::server {

class Client {
 public:
  /// Connects immediately. Throws ServerError(kIo) when nobody listens.
  Client(const std::string& host, u16 port);

  /// Raw request/reply round trip. Returns the reply unchecked (ok or
  /// not); throws ServerError(kIo) when the server hangs up mid-call.
  JsonValue call(const JsonValue& request);

  /// Bound every call()'s reply wait. A server (or chaos proxy) that
  /// swallows the reply then surfaces as ServerError(kIo) after this long
  /// instead of hanging the caller forever. Negative = wait forever (the
  /// default, matching the original blocking behaviour).
  void set_call_timeout_ms(int timeout_ms) { call_timeout_ms_ = timeout_ms; }

  /// Shared-secret auth: once set, every call() carries the token. Must
  /// match the server's --token or requests bounce as kUnauthorized.
  void set_token(std::string token) { token_ = std::move(token); }

  /// Checked calls: each raises a not-ok reply as its typed ServerError.
  JsonValue ping();
  u64 submit(const JobSpec& spec);                ///< -> job id (kBusy!)
  JsonValue status(u64 job_id);
  JsonValue result(u64 job_id, bool wait = true, u64 wait_ms = 60'000);
  JsonValue run(const JobSpec& spec);             ///< submit + wait inline
  JsonValue stats();
  JsonValue metrics();                            ///< registry snapshot
  JsonValue health();                             ///< liveness + drain state
  JsonValue drain();                              ///< ask the server to drain
  std::vector<std::string> traces();

  /// Helper: a bare {"type": <type>} request object.
  static JsonValue make_request(const std::string& type);

 private:
  Socket sock_;
  int call_timeout_ms_ = -1;
  std::string token_;
};

}  // namespace aeep::server
