// Structured access log: one compact JSON object per line, so the CI
// smoke job (and an operator's jq) can assert on connections, requests,
// and drain behaviour without regex-scraping prose. Entries are stamped
// with a monotonic sequence number and milliseconds since the log opened;
// a mutex serialises writers because every connection thread logs.
#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/json.hpp"

namespace aeep::server {

class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Open `path` for appending ("-" = stderr). Throws ServerError(kIo).
  /// A default-constructed / never-opened log swallows writes, so callers
  /// log unconditionally and the config decides.
  void open(const std::string& path);
  void close();

  bool enabled() const { return out_ != nullptr; }

  /// Append one entry. `event` lands first, then the caller's fields,
  /// then "seq" and "t_ms" — one dump(0) line, flushed immediately so a
  /// SIGTERM'd server leaves a complete log behind.
  void write(const std::string& event, JsonValue fields);

 private:
  std::FILE* out_ = nullptr;
  bool owns_ = false;  ///< false for "-" (stderr)
  std::mutex mutex_;
  u64 seq_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace aeep::server
