// Structured access log: one compact JSON object per line, so the CI
// smoke job (and an operator's jq) can assert on connections, requests,
// and drain behaviour without regex-scraping prose. Entries are stamped
// with a monotonic sequence number and milliseconds since the log opened;
// a mutex serialises writers because every connection thread logs.
//
// The log is bounded: when `max_bytes` is set and an append would push the
// file past it, the file rotates (path -> path.1, clobbering any previous
// .1) before the entry lands — a long-lived worker cannot fill the disk,
// and the two files together always hold the most recent history.
#pragma once

#include <cstdio>
#include <string>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "metrics/clock.hpp"

namespace aeep::server {

class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Open `path` for appending ("-" = stderr). Throws ServerError(kIo).
  /// A default-constructed / never-opened log swallows writes, so callers
  /// log unconditionally and the config decides. `max_bytes` bounds the
  /// file via rotation to `path.1`; 0 = unbounded. Rotation never applies
  /// to stderr.
  void open(const std::string& path, u64 max_bytes = 0)
      AEEP_EXCLUDES(mutex_);
  void close() AEEP_EXCLUDES(mutex_);

  bool enabled() const AEEP_EXCLUDES(mutex_);

  /// Completed rotations since open().
  u64 rotated() const AEEP_EXCLUDES(mutex_);

  /// Append one entry. `event` lands first, then the caller's fields,
  /// then "seq" and "t_ms" — one dump(0) line, flushed immediately so a
  /// SIGTERM'd server leaves a complete log behind.
  void write(const std::string& event, JsonValue fields)
      AEEP_EXCLUDES(mutex_);

 private:
  /// path_ -> path_.1 and reopen. Best-effort: a failed rotation keeps
  /// appending to the old file rather than losing log lines.
  void rotate_locked() AEEP_REQUIRES(mutex_);
  void close_locked() AEEP_REQUIRES(mutex_);

  mutable aeep::Mutex mutex_;
  std::FILE* out_ AEEP_GUARDED_BY(mutex_) = nullptr;
  bool owns_ AEEP_GUARDED_BY(mutex_) = false;  ///< false for "-" (stderr)
  std::string path_ AEEP_GUARDED_BY(mutex_);
  u64 max_bytes_ AEEP_GUARDED_BY(mutex_) = 0;
  /// bytes appended to the current file since open
  u64 written_ AEEP_GUARDED_BY(mutex_) = 0;
  u64 rotations_ AEEP_GUARDED_BY(mutex_) = 0;
  u64 seq_ AEEP_GUARDED_BY(mutex_) = 0;
  metrics::TimePoint epoch_ AEEP_GUARDED_BY(mutex_){};
};

}  // namespace aeep::server
