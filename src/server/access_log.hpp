// Structured access log: one compact JSON object per line, so the CI
// smoke job (and an operator's jq) can assert on connections, requests,
// and drain behaviour without regex-scraping prose. Entries are stamped
// with a monotonic sequence number and milliseconds since the log opened;
// a mutex serialises writers because every connection thread logs.
//
// The log is bounded: when `max_bytes` is set and an append would push the
// file past it, the file rotates (path -> path.1, clobbering any previous
// .1) before the entry lands — a long-lived worker cannot fill the disk,
// and the two files together always hold the most recent history.
#pragma once

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/json.hpp"
#include "common/types.hpp"

namespace aeep::server {

class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Open `path` for appending ("-" = stderr). Throws ServerError(kIo).
  /// A default-constructed / never-opened log swallows writes, so callers
  /// log unconditionally and the config decides. `max_bytes` bounds the
  /// file via rotation to `path.1`; 0 = unbounded. Rotation never applies
  /// to stderr.
  void open(const std::string& path, u64 max_bytes = 0);
  void close();

  bool enabled() const { return out_ != nullptr; }

  /// Completed rotations since open().
  u64 rotated() const;

  /// Append one entry. `event` lands first, then the caller's fields,
  /// then "seq" and "t_ms" — one dump(0) line, flushed immediately so a
  /// SIGTERM'd server leaves a complete log behind.
  void write(const std::string& event, JsonValue fields);

 private:
  /// path_ -> path_.1 and reopen. Caller holds mutex_. Best-effort: a
  /// failed rotation keeps appending to the old file rather than losing
  /// log lines.
  void rotate_locked();

  std::FILE* out_ = nullptr;
  bool owns_ = false;  ///< false for "-" (stderr)
  std::string path_;
  u64 max_bytes_ = 0;
  u64 written_ = 0;  ///< bytes appended to the current file since open
  u64 rotations_ = 0;
  mutable std::mutex mutex_;
  u64 seq_ = 0;
  std::chrono::steady_clock::time_point epoch_{};
};

}  // namespace aeep::server
