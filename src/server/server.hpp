// aeep_served's engine: a TCP job server that accepts experiment /
// trace-replay requests as length-prefixed JSON frames and batches them
// onto one shared sim::SweepRunner pool.
//
// Threading model (three kinds of threads, one lock):
//  - the accept loop polls the listener with a short timeout, spawns one
//    handler thread per connection, and bounces connections beyond
//    max_connections with a kBusy frame before closing;
//  - handler threads speak the request/reply protocol; a submit enqueues
//    into a *bounded* lock-free MPMC ring (common/mpmc_queue.hpp) after
//    reserving a slot on an atomic depth counter — when full the client
//    gets an explicit kBusy reply (backpressure, 429-style) instead of an
//    ever-growing backlog. The mutex guards only the cold job-table map;
//    the enqueue itself never takes it;
//  - one dispatcher thread drains the ring in batches of <= max_batch
//    jobs through SweepRunner::run(), completing each job from the
//    progress callback as it finishes (not at batch end).
// Per-job wall-clock deadlines are enforced twice: a job still queued past
// its deadline is failed as kTimeout without running, and a job whose
// batch finishes late has its result discarded as kTimeout (SweepRunner
// cannot cancel a running simulation, so late != free).
// Graceful shutdown: request_drain() stops new submits (kShutdown
// replies), lets queued + running jobs finish, then close() tears down
// connections — the SIGTERM path in aeep_served.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "metrics/clock.hpp"
#include "metrics/registry.hpp"
#include "server/access_log.hpp"
#include "server/registry.hpp"
#include "server/socket.hpp"
#include "server/wire.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_cache.hpp"

namespace aeep::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  u16 port = 0;                      ///< 0 = kernel-assigned (see port())
  unsigned workers = 0;              ///< SweepRunner threads; 0 = hw count
  std::size_t queue_capacity = 64;   ///< queued (not yet running) jobs
  std::size_t max_batch = 8;         ///< jobs dispatched per SweepRunner run
  std::size_t max_connections = 64;  ///< concurrent handler threads
  u64 default_timeout_ms = 120'000;  ///< per-job wall clock (0 = none)
  std::size_t result_retention = 4096;  ///< finished jobs kept queryable
  std::string trace_dir;             ///< scanned into the trace registry
  std::string access_log_path;       ///< empty = no access log; "-" = stderr
  u64 access_log_max_bytes = 0;      ///< rotate to .1 past this; 0 = never
  /// Result-store directory (store::SweepCache). Empty = no cache. A
  /// submit whose job digest hits the store is answered terminal-kDone
  /// without ever touching the sweep pool.
  std::string store_dir;
  /// Write a "metrics" access-log line (per-stage histogram summary) every
  /// N terminal jobs, and once more at drain. 0 = only at drain.
  u64 metrics_log_every = 256;
  /// Shared secret. When set, every request except "ping" must carry a
  /// matching "token" field or it is refused with kUnauthorized. Ping stays
  /// open so liveness probes and port scans don't need the secret.
  std::string token;
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kTimeout };
const char* to_string(JobState s);

/// Counter snapshot for the "stats" request and the final drain summary.
struct ServerStats {
  u64 connections_accepted = 0;
  u64 connections_rejected = 0;  ///< bounced at max_connections
  u64 requests = 0;
  u64 submitted = 0;
  u64 busy_rejected = 0;      ///< submits bounced by the full queue
  u64 shutdown_rejected = 0;  ///< submits bounced while draining
  u64 completed = 0;
  u64 failed = 0;
  u64 timed_out = 0;
  u64 batches = 0;            ///< SweepRunner dispatches
  u64 cache_hits = 0;         ///< submits answered straight from the store
  u64 cache_misses = 0;       ///< submits that had to run (store enabled)
  u64 cache_stores = 0;       ///< completed results written to the store
  u64 unauthorized = 0;       ///< requests bounced by token auth
  std::size_t queued = 0;     ///< gauge at snapshot time
  std::size_t running = 0;    ///< gauge at snapshot time
};

class JobServer {
 public:
  explicit JobServer(ServerConfig config);
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Bind + spawn the accept and dispatcher threads. Throws
  /// ServerError(kIo) when the port is taken or trace_dir unreadable.
  void start();

  /// The actually bound port (resolves config.port == 0).
  u16 port() const;

  /// Registry access for registering traces before start().
  TraceRegistry& registry() { return registry_; }

  /// Stop taking new jobs; existing queue keeps draining. Idempotent,
  /// non-blocking, safe from a signal-notified context (not the handler
  /// itself — aeep_served sets a flag in the handler and calls this from
  /// the main loop).
  void request_drain();

  /// request_drain(), wait for queued + running jobs to finish, answer
  /// each connection's in-flight request, then tear everything down.
  /// Returns the number of jobs completed over the server's lifetime.
  u64 drain();

  /// Immediate teardown: queued jobs fail with kShutdown, then close.
  void stop();

  bool draining() const { return draining_.load(); }

  ServerStats stats() const;
  void reset_stats();

 private:
  struct Job {
    u64 id = 0;
    JobSpec spec{};
    sim::ExperimentOptions options{};  ///< trace_path already resolved
    JobState state = JobState::kQueued;
    ServerErrorKind error_kind = ServerErrorKind::kInternal;
    std::string error;  ///< kFailed / kTimeout detail
    sim::RunResult result{};
    metrics::TimePoint submitted_at{};
    metrics::TimePoint deadline{};
    bool has_deadline = false;
    double wall_ms = 0.0;  ///< submit -> terminal
  };

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void dispatch_loop();
  void handle_connection(Socket sock, u64 conn_id, std::string peer);
  JsonValue handle_request(const JsonValue& req, u64 conn_id);

  JsonValue handle_submit(const JsonValue& req);
  JsonValue handle_status(const JsonValue& req);
  JsonValue handle_result(const JsonValue& req);
  JsonValue handle_run(const JsonValue& req);
  JsonValue handle_stats() const;
  JsonValue handle_traces() const;
  JsonValue handle_health() const;
  JsonValue handle_drain();
  JsonValue handle_metrics() const;

  /// One "metrics" access-log line: count/p50/p99/max for every "server."
  /// histogram. Reads only the registry and the log — both leaf locks — so
  /// it is safe with or without mutex_ held.
  void log_metrics_summary(const char* reason);

  /// Validate + enqueue; returns the new job id. Throws ServerError
  /// (kBusy, kShutdown, kNotFound, kBadRequest). Caller holds no lock.
  u64 submit_job(const JsonValue& req);

  /// Block until `id` is terminal, the server closes, or `wait_ms`
  /// elapses. Returns true when terminal.
  bool wait_for_job(u64 id, u64 wait_ms);

  /// Reply for a terminal (or not) job.
  JsonValue result_reply_locked(const Job& job) const AEEP_REQUIRES(mutex_);
  void finish_job_locked(Job& job, JobState state, ServerErrorKind kind,
                         const std::string& error) AEEP_REQUIRES(mutex_);
  void enforce_retention_locked() AEEP_REQUIRES(mutex_);

  ServerConfig config_;
  TraceRegistry registry_;
  AccessLog log_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<sim::SweepRunner> runner_;
  /// Created by start() when config.store_dir is set. Internally locked;
  /// never touched while holding mutex_ (cache lookups happen before the
  /// job table is locked, inserts after it is released).
  std::unique_ptr<store::SweepCache> cache_;

  mutable aeep::Mutex mutex_;
  aeep::CondVar cv_dispatch_;  ///< queue gained work / draining
  aeep::CondVar cv_done_;      ///< some job reached terminal state
  std::map<u64, Job> jobs_ AEEP_GUARDED_BY(mutex_);
  /// FIFO of queued job ids. Lock-free: submits push and the dispatcher
  /// pops without touching mutex_. Ring capacity is queue_capacity rounded
  /// up to a power of two; the *exact* configured bound is enforced by
  /// queue_depth_ (reserve-then-push), so a capacity-1 server still bounces
  /// the second submit.
  std::unique_ptr<MpmcQueue<u64>> queue_;
  std::atomic<std::size_t> queue_depth_{0};
  /// retention ring, oldest first
  std::vector<u64> finished_order_ AEEP_GUARDED_BY(mutex_);
  u64 next_job_id_ AEEP_GUARDED_BY(mutex_) = 1;
  std::size_t running_count_ AEEP_GUARDED_BY(mutex_) = 0;
  ServerStats stats_ AEEP_GUARDED_BY(mutex_){};
  /// terminal jobs since the last periodic metrics summary
  u64 metrics_log_at_ AEEP_GUARDED_BY(mutex_) = 0;

  /// Per-stage telemetry, resolved once here (registry references have
  /// stable addresses). record() is wait-free, so these are safe under
  /// mutex_ and from every handler thread.
  metrics::Histogram& h_queue_wait_;
  metrics::Histogram& h_replay_;
  metrics::Histogram& h_encode_;
  metrics::Histogram& h_store_lookup_;
  metrics::Histogram& h_request_;
  metrics::Histogram& h_job_wall_;
  metrics::Counter& c_cache_hits_;
  metrics::Counter& c_cache_misses_;

  std::atomic<bool> draining_{false};  ///< no new submits
  std::atomic<bool> closing_{false};   ///< connections wind down
  std::atomic<bool> started_{false};

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  aeep::Mutex conn_mutex_;
  std::list<Connection> connections_ AEEP_GUARDED_BY(conn_mutex_);
  std::size_t active_connections_ AEEP_GUARDED_BY(conn_mutex_) = 0;
  u64 next_conn_id_ AEEP_GUARDED_BY(conn_mutex_) = 1;
  metrics::TimePoint started_at_{};
};

}  // namespace aeep::server
