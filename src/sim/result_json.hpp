// The canonical JSON rendering of a RunResult's metrics — one stable,
// insertion-ordered key set shared by every surface that exports results:
// the figure benches' --json reporter, the aeep_served wire protocol, and
// the aeep_client CLI. Keeping it in one place is what lets CI diff a bench
// file against a server reply and guarantees a job's metrics look the same
// whether the run was local or remote.
#pragma once

#include "common/json.hpp"
#include "sim/system.hpp"

namespace aeep::sim {

inline JsonValue run_result_json(const RunResult& r) {
  JsonValue m = JsonValue::object();
  m.set("ipc", JsonValue::number(r.ipc()));
  m.set("committed", JsonValue::number(r.core.committed));
  m.set("cycles", JsonValue::number(r.core.cycles));
  m.set("avg_dirty_fraction", JsonValue::number(r.avg_dirty_fraction));
  m.set("avg_dirty_lines", JsonValue::number(r.avg_dirty_lines));
  m.set("peak_dirty_lines", JsonValue::number(r.peak_dirty_lines));
  m.set("wb_replacement", JsonValue::number(r.wb_replacement));
  m.set("wb_cleaning", JsonValue::number(r.wb_cleaning));
  m.set("wb_ecc", JsonValue::number(r.wb_ecc));
  m.set("wb_total", JsonValue::number(r.wb_total()));
  m.set("wb_per_kls", JsonValue::number(r.wb_per_ls() * 1000.0));
  m.set("l2_accesses", JsonValue::number(r.l2.accesses()));
  m.set("l2_misses", JsonValue::number(r.l2.misses()));
  m.set("bus_bytes_written", JsonValue::number(r.bus.bytes_written));
  return m;
}

}  // namespace aeep::sim
