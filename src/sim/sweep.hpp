// Parallel sweep engine for (benchmark × sweep-point) experiment grids.
//
// Every figure/ablation bench drives dozens of fully independent, seeded
// `System` runs; SweepRunner fans them out across a thread pool draining a
// shared lock-free MPMC ring (common/mpmc_queue.hpp) so a sweep finishes in
// grid/N wall-clock instead of grid wall-clock.
// Guarantees:
//  - deterministic results: outcomes come back indexed exactly like the
//    submitted jobs, and each run is seeded entirely by its SystemConfig,
//    so `--jobs=1` and `--jobs=N` produce byte-identical result vectors;
//  - failure isolation: an exception inside one job is captured into that
//    job's outcome as a structured error instead of aborting the process;
//  - live progress: an optional callback fires (serialised) after every
//    completed job, for status lines.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace aeep::sim {

/// One cell of a sweep grid: a benchmark plus the options to run it under.
/// `tag` travels through untouched; benches use it to map outcomes back to
/// their table cells (e.g. the interval label "64K" or "org").
struct SweepJob {
  std::string benchmark;
  ExperimentOptions options{};
  std::string tag{};
};

/// Result slot for one job: a RunResult, or the error that replaced it.
struct SweepOutcome {
  RunResult result{};
  std::string error{};  ///< non-empty: the job threw; result is meaningless
  double wall_seconds = 0.0;  ///< this job's own wall clock (schema v2 cells)
  bool ok() const { return error.empty(); }
};

/// Snapshot handed to the progress callback after each completed job.
struct SweepProgress {
  std::size_t completed = 0;  ///< jobs finished so far (including this one)
  std::size_t total = 0;
  std::size_t job_index = 0;  ///< index of the job that just finished
  const SweepJob* job = nullptr;
  const SweepOutcome* outcome = nullptr;
};

class SweepRunner {
 public:
  using ProgressFn = std::function<void(const SweepProgress&)>;

  /// `jobs` worker threads; 0 picks one per hardware thread. With one
  /// worker the grid runs inline on the calling thread (no pool), which is
  /// what the determinism test compares parallel runs against.
  explicit SweepRunner(unsigned jobs = 0);

  unsigned jobs() const { return jobs_; }

  /// Run the whole grid. Outcomes are indexed exactly like `grid`
  /// regardless of which worker ran what. `progress` (optional) is invoked
  /// serialised, in completion order, with `completed` strictly increasing
  /// 1..N — but off the workers' critical path: a slow callback delays at
  /// most the one worker currently elected to deliver events, never the
  /// whole pool.
  std::vector<SweepOutcome> run(const std::vector<SweepJob>& grid,
                                const ProgressFn& progress = nullptr) const;

  /// Like run(), but rethrows the first job error (grid-position order) —
  /// for callers that treat any failed cell as fatal, like the benches.
  /// `wall_seconds` (optional) receives each job's own wall clock, indexed
  /// like the grid — the benches feed it into the schema-v2 per-cell
  /// wall_clock_seconds field.
  std::vector<RunResult> run_or_throw(
      const std::vector<SweepJob>& grid, const ProgressFn& progress = nullptr,
      std::vector<double>* wall_seconds = nullptr) const;

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static unsigned default_jobs();

 private:
  unsigned jobs_;
};

/// Progress callback rendering `[done/total] benchmark:tag` status lines to
/// stderr (stderr so `--json`/table output stays clean for pipes).
SweepRunner::ProgressFn stderr_progress();

}  // namespace aeep::sim
