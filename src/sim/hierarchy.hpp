// Memory hierarchy of the paper's baseline machine (§3, Table 1):
// write-through L1 caches protected by parity (not modelled as stored bits —
// L1 recovery is always refetch), a 16-entry coalescing write buffer, and a
// write-back unified L2 behind it carrying the protection scheme under
// study, over a split-transaction bus to main memory.
#pragma once

#include <memory>

#include "cache/cache.hpp"
#include "cache/write_buffer.hpp"
#include "cpu/memory_iface.hpp"
#include "cpu/tlb.hpp"
#include "fault/strike_process.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/protected_l2.hpp"
#include "trace/capture.hpp"

namespace aeep::sim {

struct HierarchyConfig {
  cache::CacheGeometry l1i = cache::kL1IGeometry;
  cache::CacheGeometry l1d = cache::kL1DGeometry;
  Cycle l1_latency = 1;
  protect::L2Config l2{};
  mem::BusConfig bus{};
  cpu::TlbConfig itlb{64, 4, 4096, 30};
  cpu::TlbConfig dtlb{128, 4, 4096, 30};
  unsigned write_buffer_entries = 16;
  /// A write-buffer entry drains once it is this old (coalescing window) or
  /// once occupancy exceeds the watermark — whichever comes first.
  Cycle wb_min_residency = 64;
  unsigned wb_high_watermark = 12;
  /// Online soft-error strikes into the live L2 arrays (off by default).
  fault::StrikeConfig strikes{};
  /// Non-empty: record every L2-visible access (fetch / load / accepted
  /// store, with issue cycles) into this trace file for later replay.
  std::string capture_path{};
};

class MemoryHierarchy final : public cpu::MemoryInterface {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  Cycle fetch(Cycle now, Addr pc) override;
  Cycle load(Cycle now, Addr addr) override;
  bool store(Cycle now, Addr addr, u64 value) override;
  void tick(Cycle now) override;

  /// Drain every write-buffer entry (end of run / before fault campaigns).
  void flush_write_buffer(Cycle now);

  protect::ProtectedL2& l2() { return l2_; }
  const protect::ProtectedL2& l2() const { return l2_; }
  /// Non-null iff strikes are enabled in the configuration.
  fault::StrikeProcess* strikes() { return strikes_.get(); }
  const fault::StrikeProcess* strikes() const { return strikes_.get(); }
  /// Non-null iff a capture path is configured.
  trace::CaptureSink* capture() { return capture_.get(); }
  cache::Cache& l1i() { return l1i_; }
  cache::Cache& l1d() { return l1d_; }
  const cache::WriteBuffer& write_buffer() const { return wbuf_; }
  mem::SplitTransactionBus& bus() { return bus_; }
  mem::MemoryStore& memory() { return store_; }
  cpu::Tlb& itlb() { return itlb_; }
  cpu::Tlb& dtlb() { return dtlb_; }
  const HierarchyConfig& config() const { return config_; }

  /// Zero all statistics (not state) — used after cache warm-up.
  void reset_stats(Cycle now);

 private:
  void drain_front(Cycle now);

  HierarchyConfig config_;
  std::unique_ptr<trace::CaptureSink> capture_;
  mem::MemoryStore store_;
  mem::SplitTransactionBus bus_;
  protect::ProtectedL2 l2_;
  std::unique_ptr<fault::StrikeProcess> strikes_;
  cache::Cache l1i_;
  cache::Cache l1d_;
  cpu::Tlb itlb_;
  cpu::Tlb dtlb_;
  cache::WriteBuffer wbuf_;  ///< enqueue stamps live in its SoA columns
  Cycle wb_issue_free_ = 0;
};

}  // namespace aeep::sim
