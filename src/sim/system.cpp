#include "sim/system.hpp"

#include "workload/profile.hpp"

namespace aeep::sim {

System::System(const SystemConfig& config)
    : config_(config),
      workload_(std::make_unique<workload::SyntheticWorkload>(
          workload::profile_by_name(config.benchmark), config.seed)),
      hierarchy_(config.hierarchy),
      core_(std::make_unique<cpu::OutOfOrderCore>(config.core, *workload_,
                                                  hierarchy_)) {}

RunResult System::run() {
  // Fast-forward analogue: run with full machine state but discard stats.
  if (config_.warmup_instructions > 0) {
    core_->run(config_.warmup_instructions);
    core_->reset_stats();
    hierarchy_.reset_stats(core_->now());
  }

  const u64 target = core_->stats().committed + config_.instructions;
  const cpu::CoreStats cs = core_->run(target);
  hierarchy_.l2().finalize(core_->now());
  if (auto* cap = hierarchy_.capture())
    cap->finish(core_->now(), cs.committed, cs.loads, cs.stores);

  RunResult r;
  r.benchmark = config_.benchmark;
  r.floating_point = workload_->profile().floating_point;
  r.core = cs;

  const auto& l2 = hierarchy_.l2();
  r.avg_dirty_fraction = l2.avg_dirty_fraction();
  r.avg_dirty_lines = static_cast<u64>(l2.avg_dirty_lines() + 0.5);
  r.peak_dirty_lines = l2.peak_dirty_lines();
  r.wb_replacement = l2.wb_count(protect::WbCause::kReplacement);
  r.wb_cleaning = l2.wb_count(protect::WbCause::kCleaning);
  r.wb_ecc = l2.wb_count(protect::WbCause::kEccEviction);

  r.recovery = l2.recovery().stats();
  r.retired_ways = l2.cache_model().retired_ways();
  r.retired_capacity_fraction = l2.retired_capacity_fraction();
  r.panicked = l2.recovery().panicked();
  if (const auto* sp = hierarchy_.strikes()) r.strikes = sp->stats();

  r.l1i = hierarchy_.l1i().stats();
  r.l1d = hierarchy_.l1d().stats();
  r.l2 = l2.cache_model().stats();
  r.wbuf = hierarchy_.write_buffer().stats();
  r.bus = hierarchy_.bus().stats();
  r.itlb = hierarchy_.itlb().stats();
  r.dtlb = hierarchy_.dtlb().stats();
  return r;
}

}  // namespace aeep::sim
