#include "sim/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/bitops.hpp"
#include "common/mpmc_queue.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "metrics/clock.hpp"
#include "metrics/registry.hpp"

namespace aeep::sim {

namespace {

void execute_job(const SweepJob& job, SweepOutcome& out) {
  // Resolved once per process; every sweep cell's wall clock lands in the
  // same instrument regardless of which pool ran it.
  static metrics::Histogram& cell_us =
      metrics::Registry::instance().histogram("sim.sweep.cell_us");
  const auto start = metrics::now();
  try {
    out.result = run_benchmark(job.benchmark, job.options);
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
  const auto end = metrics::now();
  cell_us.record(metrics::us_between(start, end));
  out.wall_seconds = metrics::seconds_between(start, end);
}

}  // namespace

unsigned SweepRunner::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepJob>& grid,
                                           const ProgressFn& progress) const {
  std::vector<SweepOutcome> out(grid.size());
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, grid.size()));

  if (workers <= 1) {
    // Inline serial path: the reference semantics parallel runs must match.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      execute_job(grid[i], out[i]);
      if (progress) {
        SweepProgress p{i + 1, grid.size(), i, &grid[i], &out[i]};
        progress(p);
      }
    }
    return out;
  }

  // All workers drain one shared lock-free ring. The queue is seeded with
  // every job index before any thread starts, so try_pop() returning false
  // means the grid is exhausted — no stealing or termination protocol
  // needed, and the pop is a couple of atomics instead of a mutex.
  MpmcQueue<std::size_t> work(static_cast<std::size_t>(
      std::max<u64>(2, ceil_pow2(grid.size()))));
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!work.try_push(i))
      throw std::logic_error("sweep work queue refused a seeded job");
  }

  // Progress delivery. Completion events land in `pending` under a cheap
  // lock, and whichever worker can grab `delivery_mutex` drains them in
  // arrival order, numbering each event as it is delivered. Workers whose
  // try_lock fails go straight back to simulating — a slow user callback
  // can no longer serialise the pool (it only ever delays the one worker
  // elected deliverer). Callbacks stay serialised and see `completed`
  // strictly increasing 1..N, preserving the documented contract.
  Mutex pending_mutex;
  std::vector<std::size_t> pending;  // guarded by pending_mutex
  Mutex delivery_mutex;
  std::size_t delivered = 0;  // only touched while holding delivery_mutex

  auto deliver_all_pending = [&]() {  // caller must hold delivery_mutex
    for (;;) {
      std::vector<std::size_t> batch;
      {
        const MutexLock lock(pending_mutex);
        batch.swap(pending);
      }
      if (batch.empty()) return;
      for (const std::size_t idx : batch) {
        ++delivered;
        SweepProgress p{delivered, grid.size(), idx, &grid[idx], &out[idx]};
        progress(p);
      }
    }
  };

  auto report = [&](std::size_t idx) {
    if (!progress) return;
    {
      const MutexLock lock(pending_mutex);
      pending.push_back(idx);
    }
    if (delivery_mutex.try_lock()) {
      deliver_all_pending();
      delivery_mutex.unlock();
    }
    // try_lock failed: the current deliverer re-checks `pending` before
    // releasing, but it may already be past that check — any stragglers are
    // flushed by the final drain after the pool joins.
  };

  auto worker_main = [&]() {
    std::size_t idx = 0;
    while (work.try_pop(idx)) {
      execute_job(grid[idx], out[idx]);
      report(idx);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_main);
  for (auto& t : pool) t.join();

  // Flush events stranded by the try_lock race window above.
  if (progress) {
    const MutexLock lock(delivery_mutex);
    deliver_all_pending();
  }
  return out;
}

std::vector<RunResult> SweepRunner::run_or_throw(
    const std::vector<SweepJob>& grid, const ProgressFn& progress,
    std::vector<double>* wall_seconds) const {
  std::vector<SweepOutcome> outcomes = run(grid, progress);
  std::vector<RunResult> results;
  results.reserve(outcomes.size());
  if (wall_seconds) {
    wall_seconds->clear();
    wall_seconds->reserve(outcomes.size());
  }
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      throw std::runtime_error("sweep job " + std::to_string(i) + " (" +
                               grid[i].benchmark +
                               (grid[i].tag.empty() ? "" : ":" + grid[i].tag) +
                               ") failed: " + outcomes[i].error);
    }
    if (wall_seconds) wall_seconds->push_back(outcomes[i].wall_seconds);
    results.push_back(std::move(outcomes[i].result));
  }
  return results;
}

SweepRunner::ProgressFn stderr_progress() {
  return [](const SweepProgress& p) {
    std::fprintf(stderr, "[%zu/%zu] %s%s%s%s\n", p.completed, p.total,
                 p.job->benchmark.c_str(), p.job->tag.empty() ? "" : ":",
                 p.job->tag.c_str(),
                 p.outcome->ok() ? "" : "  ** FAILED **");
  };
}

}  // namespace aeep::sim
