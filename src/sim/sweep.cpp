#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace aeep::sim {

namespace {

/// Per-worker job queue for the work-stealing pool. The owner pops from the
/// front; thieves steal from the back, so an owner keeps the cache-warm
/// (recently dealt) indices and thieves take the coldest work.
struct WorkerQueue {
  Mutex mutex;
  std::deque<std::size_t> jobs AEEP_GUARDED_BY(mutex);

  void push(std::size_t idx) {
    const MutexLock lock(mutex);
    jobs.push_back(idx);
  }

  bool pop_front(std::size_t& idx) {
    const MutexLock lock(mutex);
    if (jobs.empty()) return false;
    idx = jobs.front();
    jobs.pop_front();
    return true;
  }

  bool steal_back(std::size_t& idx) {
    const MutexLock lock(mutex);
    if (jobs.empty()) return false;
    idx = jobs.back();
    jobs.pop_back();
    return true;
  }
};

void execute_job(const SweepJob& job, SweepOutcome& out) {
  try {
    out.result = run_benchmark(job.benchmark, job.options);
  } catch (const std::exception& e) {
    out.error = e.what();
  } catch (...) {
    out.error = "unknown exception";
  }
}

}  // namespace

unsigned SweepRunner::default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<SweepJob>& grid,
                                           const ProgressFn& progress) const {
  std::vector<SweepOutcome> out(grid.size());
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, grid.size()));

  if (workers <= 1) {
    // Inline serial path: the reference semantics parallel runs must match.
    for (std::size_t i = 0; i < grid.size(); ++i) {
      execute_job(grid[i], out[i]);
      if (progress) {
        SweepProgress p{i + 1, grid.size(), i, &grid[i], &out[i]};
        progress(p);
      }
    }
    return out;
  }

  // Deal jobs round-robin so every worker starts with a fair share; the
  // deques + stealing absorb the (large) per-job runtime variance.
  std::vector<WorkerQueue> queues(workers);
  for (std::size_t i = 0; i < grid.size(); ++i)
    queues[i % workers].push(i);

  Mutex progress_mutex;
  std::size_t completed = 0;
  auto report = [&](std::size_t idx) {
    const MutexLock lock(progress_mutex);
    ++completed;
    if (progress) {
      SweepProgress p{completed, grid.size(), idx, &grid[idx], &out[idx]};
      progress(p);
    }
  };

  auto worker_main = [&](unsigned me) {
    std::size_t idx = 0;
    while (true) {
      bool got = queues[me].pop_front(idx);
      // Own queue dry: steal from the others, starting just past ourselves
      // so thieves spread out instead of all raiding worker 0.
      for (unsigned k = 1; !got && k < workers; ++k)
        got = queues[(me + k) % workers].steal_back(idx);
      if (!got) return;
      execute_job(grid[idx], out[idx]);
      report(idx);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
  for (auto& t : pool) t.join();
  return out;
}

std::vector<RunResult> SweepRunner::run_or_throw(
    const std::vector<SweepJob>& grid, const ProgressFn& progress) const {
  std::vector<SweepOutcome> outcomes = run(grid, progress);
  std::vector<RunResult> results;
  results.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      throw std::runtime_error("sweep job " + std::to_string(i) + " (" +
                               grid[i].benchmark +
                               (grid[i].tag.empty() ? "" : ":" + grid[i].tag) +
                               ") failed: " + outcomes[i].error);
    }
    results.push_back(std::move(outcomes[i].result));
  }
  return results;
}

SweepRunner::ProgressFn stderr_progress() {
  return [](const SweepProgress& p) {
    std::fprintf(stderr, "[%zu/%zu] %s%s%s%s\n", p.completed, p.total,
                 p.job->benchmark.c_str(), p.job->tag.empty() ? "" : ":",
                 p.job->tag.c_str(),
                 p.outcome->ok() ? "" : "  ** FAILED **");
  };
}

}  // namespace aeep::sim
