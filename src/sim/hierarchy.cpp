#include "sim/hierarchy.hpp"

#include <algorithm>
#include <cassert>

namespace aeep::sim {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      store_(),
      bus_(config.bus),
      l2_(config.l2, bus_, store_),
      l1i_(config.l1i),
      l1d_(config.l1d),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      wbuf_(config.write_buffer_entries, config.l2.geometry.line_bytes) {
  if (!config_.capture_path.empty()) {
    capture_ = std::make_unique<trace::CaptureSink>(
        config_.capture_path, config_.l2.geometry.line_bytes);
  }
  if (config_.strikes.enabled) {
    strikes_ = std::make_unique<fault::StrikeProcess>(l2_, config_.strikes);
    // Persistent faults re-corrupt a freshly re-fetched line before the
    // recovery controller's re-check — that is what exhausts retries.
    l2_.recovery().set_reassert_hook(
        [this](u64 set, unsigned way) { strikes_->reassert_line(set, way); });
  }
}

Cycle MemoryHierarchy::fetch(Cycle now, Addr pc) {
  if (capture_) capture_->on_fetch(now, pc);
  const Cycle tlb_extra = itlb_.access(pc, now);
  const cache::ProbeResult pr = l1i_.probe(pc);
  auto& st = l1i_.stats();
  ++st.reads;
  if (pr.hit) {
    ++st.read_hits;
    l1i_.touch(pr.set, pr.way, now);
    return now + config_.l1_latency + tlb_extra;
  }
  // L1I miss: fill through the unified L2. Instructions are never dirty.
  const cache::Victim victim = l1i_.pick_victim(pr.set);
  const Addr line = l1i_.geometry().line_base(pc);
  const Cycle ready = l2_.read(now + config_.l1_latency + tlb_extra, line);
  l1i_.install(pr.set, victim.way, line, now);
  return ready;
}

Cycle MemoryHierarchy::load(Cycle now, Addr addr) {
  if (capture_) capture_->on_load(now, addr);
  const Cycle tlb_extra = dtlb_.access(addr, now);
  const cache::ProbeResult pr = l1d_.probe(addr);
  auto& st = l1d_.stats();
  ++st.reads;
  if (pr.hit) {
    ++st.read_hits;
    l1d_.touch(pr.set, pr.way, now);
    return now + config_.l1_latency + tlb_extra;
  }
  const cache::Victim victim = l1d_.pick_victim(pr.set);
  const Addr line = l1d_.geometry().line_base(addr);
  const Cycle ready = l2_.read(now + config_.l1_latency + tlb_extra, line);
  l1d_.install(pr.set, victim.way, line, now);
  return ready;
}

bool MemoryHierarchy::store(Cycle now, Addr addr, u64 value) {
  // Write-through, write-no-allocate L1D: update in place on hit, never
  // dirty; all stores go to the write buffer. A store to a line already
  // buffered coalesces even when the buffer is full (CAM hit).
  const auto res = wbuf_.push(addr, value, now);
  if (res == cache::WriteBuffer::PushResult::kFull) {
    // Caller retries next cycle; tick() keeps draining meanwhile.
    return false;
  }
  // Only accepted stores are recorded: a rejected store has no side effects
  // and reappears in the stream at the cycle its retry lands.
  if (capture_) capture_->on_store(now, addr, value);

  dtlb_.access(addr, now);
  const cache::ProbeResult pr = l1d_.probe(addr);
  auto& st = l1d_.stats();
  ++st.writes;
  if (pr.hit) {
    ++st.write_hits;
    l1d_.touch(pr.set, pr.way, now);
    auto data = l1d_.data(pr.set, pr.way);
    data[(addr - l1d_.geometry().line_base(addr)) / 8] = value;
  }
  return true;
}

void MemoryHierarchy::drain_front(Cycle now) {
  cache::WriteBufferEntry e = wbuf_.pop();
  const Cycle done = l2_.write(now, e.line, e.word_mask, e.words);
  // The next drain may start after this one's L2 array occupancy; the
  // demand-fill part of a write-allocate miss overlaps with later drains,
  // so charge only the hit latency as occupancy.
  wb_issue_free_ = std::max(wb_issue_free_, now) + config_.l2.hit_latency;
  (void)done;
  wbuf_.recycle(std::move(e));
}

void MemoryHierarchy::tick(Cycle now) {
  // Strikes land before this cycle's drains/inspections touch the arrays.
  if (strikes_) strikes_->tick(now);
  while (!wbuf_.empty() && wb_issue_free_ <= now) {
    const bool over_watermark = wbuf_.size() > config_.wb_high_watermark;
    const bool aged = now >= wbuf_.front_stamp() + config_.wb_min_residency;
    if (!over_watermark && !aged) break;
    drain_front(now);
  }
  l2_.tick(now);
}

void MemoryHierarchy::flush_write_buffer(Cycle now) {
  while (!wbuf_.empty()) drain_front(now);
}

void MemoryHierarchy::reset_stats(Cycle now) {
  if (capture_) capture_->on_stats_reset(now);
  bus_.reset_stats();
  l1i_.stats() = {};
  l1d_.stats() = {};
  wbuf_.reset_stats();
  itlb_.reset_stats();
  dtlb_.reset_stats();
  if (strikes_) strikes_->reset_stats();
  l2_.reset_metrics(now);
}

}  // namespace aeep::sim
