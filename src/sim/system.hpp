// Full-system assembly: the Table-1 processor, the memory hierarchy, and a
// synthetic SPEC2000-like workload, with the paper's warm-up-then-measure
// protocol (fast-forward, zero statistics, simulate N committed micro-ops).
#pragma once

#include <memory>
#include <string>

#include "cpu/core.hpp"
#include "sim/hierarchy.hpp"
#include "workload/generator.hpp"

namespace aeep::sim {

struct SystemConfig {
  cpu::CoreConfig core{};
  HierarchyConfig hierarchy{};
  std::string benchmark = "gzip";
  u64 seed = 42;
  u64 warmup_instructions = 200'000;
  u64 instructions = 2'000'000;  ///< committed micro-ops measured
};

/// Everything the paper's figures need from one run.
struct RunResult {
  std::string benchmark;
  bool floating_point = false;
  cpu::CoreStats core{};

  // L2 protection metrics.
  double avg_dirty_fraction = 0.0;   ///< Figures 1 / 3 / 4 / 7
  u64 avg_dirty_lines = 0;
  u64 peak_dirty_lines = 0;
  u64 wb_replacement = 0;            ///< "WB"
  u64 wb_cleaning = 0;               ///< "Clean-WB"
  u64 wb_ecc = 0;                    ///< "ECC-WB"

  cache::CacheStats l1i{}, l1d{}, l2{};
  cache::WriteBufferStats wbuf{};
  mem::BusStats bus{};
  cpu::TlbStats itlb{}, dtlb{};

  // Online error-recovery metrics (all zero when strikes/checking are off).
  protect::RecoveryStats recovery{};
  fault::StrikeStats strikes{};
  u64 retired_ways = 0;                   ///< (set, way) slots fused off
  double retired_capacity_fraction = 0.0; ///< retired_ways / total lines
  bool panicked = false;                  ///< DUE panic latch (kPanic policy)

  u64 wb_total() const { return wb_replacement + wb_cleaning + wb_ecc; }
  /// Write-backs as a fraction of loads+stores (Figures 5 / 6 / 8).
  double wb_per_ls() const {
    const u64 ls = core.loads_stores();
    return ls ? static_cast<double>(wb_total()) / static_cast<double>(ls) : 0.0;
  }
  double ipc() const { return core.ipc(); }

  /// Field-wise equality; the sweep determinism test asserts results are
  /// identical regardless of worker count or scheduling order.
  bool operator==(const RunResult&) const = default;
};

class System {
 public:
  explicit System(const SystemConfig& config);

  /// Warm up, reset statistics, run the measured phase, finalize metrics.
  RunResult run();

  cpu::OutOfOrderCore& core() { return *core_; }
  MemoryHierarchy& hierarchy() { return hierarchy_; }
  workload::SyntheticWorkload& workload() { return *workload_; }
  const SystemConfig& config() const { return config_; }

 private:
  SystemConfig config_;
  std::unique_ptr<workload::SyntheticWorkload> workload_;
  MemoryHierarchy hierarchy_;
  std::unique_ptr<cpu::OutOfOrderCore> core_;
};

}  // namespace aeep::sim
