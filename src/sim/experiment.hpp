// Experiment-runner helpers shared by the benches, examples and tests:
// building Table-1 system configurations with the protection scheme under
// study, running one benchmark, and pretty-printing the machine description.
#pragma once

#include <string>
#include <vector>

#include "fault/strike_process.hpp"
#include "sim/system.hpp"

namespace aeep::sim {

/// What drives the memory hierarchy for a run.
enum class Frontend {
  kExec,   ///< the out-of-order core executes the synthetic workload
  kTrace,  ///< a recorded L2-visible access stream replays, no core
};

const char* to_string(Frontend f);

/// Per-experiment knobs on top of the fixed Table-1 machine.
struct ExperimentOptions {
  protect::SchemeKind scheme = protect::SchemeKind::kUniformEcc;
  Cycle cleaning_interval = 0;   ///< 0 = cleaning disabled
  protect::CleaningPolicy cleaning_policy =
      protect::CleaningPolicy::kWrittenBit;
  unsigned decay_threshold = 2;
  unsigned ecc_entries_per_set = 1;
  u64 instructions = 2'000'000;
  u64 warmup_instructions = 200'000;
  u64 seed = 42;
  /// Skip real check-bit encode/decode for timing-only sweeps (the paper's
  /// metrics never depend on code contents, only on dirty-state dynamics).
  bool maintain_codes = false;

  // --- Frontend selection (execution-driven vs trace-driven) -------------
  Frontend frontend = Frontend::kExec;
  /// kTrace: replay `<trace_dir>/<benchmark>.aeept` (unless trace_path set).
  std::string trace_dir;
  /// kTrace: explicit trace file; overrides trace_dir.
  std::string trace_path;
  /// kExec: record the L2-visible access stream into this file.
  std::string capture_path;

  // --- Online fault injection & recovery ---------------------------------
  /// Poisson strikes into the live L2 arrays during the run. Enabling this
  /// forces maintain_codes and check-on-access validation.
  bool strikes_enabled = false;
  /// Raw per-bit per-cycle strike rate (90nm-class default).
  double strike_lambda = 1e-19;
  /// Acceleration factor making strikes visible at simulation scale.
  double strike_rate_scale = 0.0;
  /// Fraction of strikes that are 2-bit same-word MBUs.
  double strike_double_bit_fraction = 0.0;
  /// Persistent/intermittent stuck-at fault sites.
  std::vector<fault::StuckFault> stuck_faults{};
  /// What to do with a detected-uncorrectable error.
  protect::DuePolicy due_policy = protect::DuePolicy::kDropRefetch;
  /// Errors at one (set, way) before the way retires; 0 = never.
  unsigned retirement_threshold = 0;
  /// Re-fetch retries before a persistently failing line is dropped.
  unsigned max_refetch_retries = 3;
};

/// The Table-1 machine with `opts` applied, ready for System().
SystemConfig make_system_config(const std::string& benchmark,
                                const ExperimentOptions& opts);

/// Trace file a kTrace run of `benchmark` replays (trace_path, or the
/// benchmark's file under trace_dir).
std::string trace_path_for(const std::string& benchmark,
                           const ExperimentOptions& opts);

/// Build and run one benchmark.
RunResult run_benchmark(const std::string& benchmark,
                        const ExperimentOptions& opts);

/// Run a list of benchmarks, returning results in order. `jobs` fans the
/// runs out across a SweepRunner pool (0 = one worker per hardware thread,
/// 1 = serial); results are ordered like `benchmarks` either way.
std::vector<RunResult> run_suite(const std::vector<std::string>& benchmarks,
                                 const ExperimentOptions& opts,
                                 unsigned jobs = 1);

/// Names of all / FP-only / INT-only benchmarks.
std::vector<std::string> all_benchmarks();
std::vector<std::string> fp_benchmarks();
std::vector<std::string> int_benchmarks();

/// Small fixed subset (two INT + two FP) for CI smoke sweeps and the
/// committed BENCH_sweep.json baseline.
std::vector<std::string> smoke_benchmarks();

/// Human-readable Table-1 processor description (printed by bench headers).
std::string table1_text();

/// Arithmetic mean of a projection over results.
template <typename Proj>
double mean_of(const std::vector<RunResult>& rs, Proj proj) {
  if (rs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : rs) sum += proj(r);
  return sum / static_cast<double>(rs.size());
}

}  // namespace aeep::sim
