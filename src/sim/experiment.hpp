// Experiment-runner helpers shared by the benches, examples and tests:
// building Table-1 system configurations with the protection scheme under
// study, running one benchmark, and pretty-printing the machine description.
#pragma once

#include <string>
#include <vector>

#include "sim/system.hpp"

namespace aeep::sim {

/// Per-experiment knobs on top of the fixed Table-1 machine.
struct ExperimentOptions {
  protect::SchemeKind scheme = protect::SchemeKind::kUniformEcc;
  Cycle cleaning_interval = 0;   ///< 0 = cleaning disabled
  protect::CleaningPolicy cleaning_policy =
      protect::CleaningPolicy::kWrittenBit;
  unsigned decay_threshold = 2;
  unsigned ecc_entries_per_set = 1;
  u64 instructions = 2'000'000;
  u64 warmup_instructions = 200'000;
  u64 seed = 42;
  /// Skip real check-bit encode/decode for timing-only sweeps (the paper's
  /// metrics never depend on code contents, only on dirty-state dynamics).
  bool maintain_codes = false;
};

/// The Table-1 machine with `opts` applied, ready for System().
SystemConfig make_system_config(const std::string& benchmark,
                                const ExperimentOptions& opts);

/// Build and run one benchmark.
RunResult run_benchmark(const std::string& benchmark,
                        const ExperimentOptions& opts);

/// Run a list of benchmarks, returning results in order.
std::vector<RunResult> run_suite(const std::vector<std::string>& benchmarks,
                                 const ExperimentOptions& opts);

/// Names of all / FP-only / INT-only benchmarks.
std::vector<std::string> all_benchmarks();
std::vector<std::string> fp_benchmarks();
std::vector<std::string> int_benchmarks();

/// Human-readable Table-1 processor description (printed by bench headers).
std::string table1_text();

/// Arithmetic mean of a projection over results.
template <typename Proj>
double mean_of(const std::vector<RunResult>& rs, Proj proj) {
  if (rs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : rs) sum += proj(r);
  return sum / static_cast<double>(rs.size());
}

}  // namespace aeep::sim
