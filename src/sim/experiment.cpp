#include "sim/experiment.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/sweep.hpp"
#include "trace/replay.hpp"
#include "workload/profile.hpp"

namespace aeep::sim {

const char* to_string(Frontend f) {
  switch (f) {
    case Frontend::kExec: return "exec";
    case Frontend::kTrace: return "trace";
  }
  return "?";
}

SystemConfig make_system_config(const std::string& benchmark,
                                const ExperimentOptions& opts) {
  SystemConfig cfg;
  cfg.benchmark = benchmark;
  cfg.seed = opts.seed;
  cfg.instructions = opts.instructions;
  cfg.warmup_instructions = opts.warmup_instructions;
  cfg.hierarchy.capture_path = opts.capture_path;

  cfg.hierarchy.l2.scheme = opts.scheme;
  cfg.hierarchy.l2.cleaning_interval = opts.cleaning_interval;
  cfg.hierarchy.l2.cleaning_policy = opts.cleaning_policy;
  cfg.hierarchy.l2.decay_threshold = opts.decay_threshold;
  cfg.hierarchy.l2.ecc_entries_per_set = opts.ecc_entries_per_set;
  cfg.hierarchy.l2.maintain_codes = opts.maintain_codes;
  cfg.hierarchy.l2.seed = opts.seed;

  cfg.hierarchy.l2.recovery.due_policy = opts.due_policy;
  cfg.hierarchy.l2.recovery.retirement_threshold = opts.retirement_threshold;
  cfg.hierarchy.l2.recovery.max_refetch_retries = opts.max_refetch_retries;
  if (opts.strikes_enabled) {
    // Live strikes are pointless without real codes and online validation.
    cfg.hierarchy.l2.maintain_codes = true;
    cfg.hierarchy.l2.recovery.check_on_access = true;
    cfg.hierarchy.strikes.enabled = true;
    cfg.hierarchy.strikes.lambda_per_bit_cycle = opts.strike_lambda;
    cfg.hierarchy.strikes.rate_scale = opts.strike_rate_scale;
    cfg.hierarchy.strikes.double_bit_fraction =
        opts.strike_double_bit_fraction;
    cfg.hierarchy.strikes.stuck_faults = opts.stuck_faults;
    cfg.hierarchy.strikes.seed = opts.seed + 0x5EED;
  }
  return cfg;
}

std::string trace_path_for(const std::string& benchmark,
                           const ExperimentOptions& opts) {
  if (!opts.trace_path.empty()) return opts.trace_path;
  if (!opts.trace_dir.empty()) return opts.trace_dir + "/" + benchmark + ".aeept";
  throw std::runtime_error(
      "frontend=trace needs trace_dir or trace_path (benchmark " + benchmark +
      ")");
}

RunResult run_benchmark(const std::string& benchmark,
                        const ExperimentOptions& opts) {
  if (opts.frontend == Frontend::kTrace) {
    if (opts.strikes_enabled)
      throw std::runtime_error(
          "frontend=trace cannot run online strike campaigns (cycle-exact "
          "strike replay needs the execution-driven frontend)");
    SystemConfig cfg = make_system_config(benchmark, opts);
    trace::ReplayConfig rc;
    rc.hierarchy = cfg.hierarchy;
    rc.trace_path = trace_path_for(benchmark, opts);
    RunResult r = trace::ReplayDriver(std::move(rc)).run();
    r.benchmark = benchmark;
    r.floating_point = workload::profile_by_name(benchmark).floating_point;
    return r;
  }
  System system(make_system_config(benchmark, opts));
  return system.run();
}

std::vector<RunResult> run_suite(const std::vector<std::string>& benchmarks,
                                 const ExperimentOptions& opts,
                                 unsigned jobs) {
  std::vector<SweepJob> grid;
  grid.reserve(benchmarks.size());
  for (const auto& b : benchmarks) grid.push_back({b, opts, {}});
  return SweepRunner(jobs).run_or_throw(grid);
}

namespace {
std::vector<std::string> names_of(const std::vector<workload::BenchmarkProfile>& ps) {
  std::vector<std::string> out;
  out.reserve(ps.size());
  for (const auto& p : ps) out.push_back(p.name);
  return out;
}
}  // namespace

std::vector<std::string> all_benchmarks() {
  return names_of(workload::spec2000_profiles());
}
std::vector<std::string> fp_benchmarks() {
  return names_of(workload::fp_profiles());
}
std::vector<std::string> int_benchmarks() {
  return names_of(workload::int_profiles());
}
std::vector<std::string> smoke_benchmarks() {
  return {"gzip", "mcf", "swim", "art"};
}

std::string table1_text() {
  std::ostringstream os;
  os << "Baseline processor configuration (paper Table 1)\n"
     << "  Issue window        64-entry RUU, 32-entry LSQ\n"
     << "  Decode/issue rate   4 instructions per cycle\n"
     << "  Functional units    4 INT add, 1 INT mult/div, 1 FP add, 1 FP mult/div\n"
     << "  L1 instruction      32KB 4-way, 32B line, 1-cycle\n"
     << "  L1 data             32KB 4-way, 32B line, 1-cycle (write-through, 16-entry write buffer)\n"
     << "  L2 unified          1MB 4-way, 64B line, 10-cycle (write-back)\n"
     << "  Main memory         8B-wide split-transaction bus, 100-cycle\n"
     << "  Branch prediction   2-level, 2K BTB\n"
     << "  ITLB / DTLB         64-entry 4-way / 128-entry 4-way\n";
  return os.str();
}

}  // namespace aeep::sim
