// L2 cache controller with pluggable error protection (the paper's system).
//
// Owns the L2 cache state, a protection scheme, and the cleaning FSM, and
// talks to the split-transaction bus / memory store for misses and
// write-backs. Timing model: the L2 is pipelined (one access may start per
// cycle), hits cost `hit_latency`, misses additionally pay the bus+DRAM
// round trip. Write-backs are posted to the bus. Dirty-line residency is
// integrated cycle-exactly — the paper's "percentage of dirty cache lines
// per cycle" (Figures 1, 3, 4, 7).
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "cache/cache.hpp"
#include "common/stats.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/cleaning_logic.hpp"
#include "protect/recovery.hpp"
#include "protect/scheme.hpp"

namespace aeep::protect {

enum class SchemeKind { kUniformEcc, kNonUniform, kSharedEccArray };

/// How the cleaning FSM decides which inspected dirty lines to write back.
enum class CleaningPolicy {
  /// §3.2: clean only dirty lines whose written bit is clear; a set written
  /// bit buys the line one more interval (and is reset for the next test).
  kWrittenBit,
  /// Ablation: clean every dirty line inspected, written bit ignored.
  kNaive,
  /// Cache-decay style (Kaxiras et al.): per-line saturating counter,
  /// reset by writes, aged by inspections; clean at `decay_threshold`.
  /// kWrittenBit is the 1-bit special case of this.
  kDecayCounter,
  /// Eager write-back (Lee et al.): clean the LRU dirty line of the
  /// inspected set only when the off-chip bus is idle.
  kEagerIdle,
};

const char* to_string(CleaningPolicy p);

/// Why a line was written back (the three cases of §3.3 / Figure 8).
enum class WbCause : unsigned {
  kReplacement = 0,  ///< dirty victim of a miss ("WB")
  kCleaning = 1,     ///< dirty-line cleaning ("Clean-WB")
  kEccEviction = 2,  ///< ECC-entry eviction ("ECC-WB")
};
inline constexpr unsigned kNumWbCauses = 3;

struct L2Config {
  cache::CacheGeometry geometry = cache::kL2Geometry;
  Cycle hit_latency = 10;
  SchemeKind scheme = SchemeKind::kUniformEcc;
  unsigned ecc_entries_per_set = 1;   ///< for kSharedEccArray
  Cycle cleaning_interval = 0;        ///< per-line revisit period; 0 = off
  /// Which dirty lines an inspection writes back (see CleaningPolicy).
  CleaningPolicy cleaning_policy = CleaningPolicy::kWrittenBit;
  /// kDecayCounter: inspections a line must sit write-idle before cleaning.
  unsigned decay_threshold = 2;
  bool maintain_codes = true;         ///< encode/decode real check bits
  /// Online error-recovery behaviour (validation on access, DUE policy,
  /// retry budget, way retirement). Validation additionally requires
  /// maintain_codes. With check_on_access, recovery re-fills of dropped
  /// lines appear as extra L2 accesses in the cache stats.
  RecoveryConfig recovery{};
  cache::ReplacementPolicy replacement = cache::ReplacementPolicy::kLru;
  u64 seed = 1;
  /// When set, overrides `scheme`: the L2 installs whatever this builds.
  /// Used by the verification layer to run deliberately-broken scheme
  /// fixtures through the real controller.
  std::function<std::unique_ptr<ProtectionScheme>(cache::Cache&)>
      scheme_factory;
};

class ProtectedL2 {
 public:
  ProtectedL2(const L2Config& config, mem::SplitTransactionBus& bus,
              mem::MemoryStore& memory);

  /// Demand line read (L1 miss fill, instruction or data). Returns the
  /// cycle the line is available.
  Cycle read(Cycle now, Addr addr);

  /// Line write from the L1 write buffer: apply `words` under `word_mask`
  /// (write-allocate on miss). Returns completion cycle; the requester does
  /// not stall on it (posted), but the value sequences later drains.
  Cycle write(Cycle now, Addr addr, u64 word_mask,
              std::span<const u64> words);

  /// Give the cleaning FSM its chance to inspect sets; call once per cycle
  /// (cheap when nothing is due).
  void tick(Cycle now);

  /// Flush the dirty-residency integral at end of run.
  void finalize(Cycle now);

  /// Zero metrics (write-back counters, cache stats, dirty integral) while
  /// keeping cache/scheme state — used after warm-up.
  void reset_metrics(Cycle now);

  // --- Metrics -----------------------------------------------------------
  u64 wb_count(WbCause cause) const { return wb_[static_cast<unsigned>(cause)]; }
  u64 wb_total() const;
  /// Cycle-weighted average number of dirty lines.
  double avg_dirty_lines() const { return dirty_level_.average(); }
  double avg_dirty_fraction() const;
  u64 peak_dirty_lines() const { return peak_dirty_; }
  /// Lines cleaned by the FSM that were re-dirtied later (premature-clean
  /// proxy, for the ablation benches).
  u64 cleaning_inspections() const { return cleaning_inspections_; }
  /// Written words whose value did not change and whose check-bit re-encode
  /// was therefore skipped (silent-write elision; only counted when the
  /// elision is active, i.e. codes maintained and no on-access checking).
  u64 silent_words_elided() const { return silent_words_elided_; }

  cache::Cache& cache_model() { return cache_; }
  const cache::Cache& cache_model() const { return cache_; }
  RecoveryController& recovery() { return recovery_; }
  const RecoveryController& recovery() const { return recovery_; }
  /// Fraction of line slots fused off by way retirement.
  double retired_capacity_fraction() const;
  ProtectionScheme& scheme() { return *scheme_; }
  const L2Config& config() const { return config_; }
  const CleaningLogic& cleaner() const { return cleaner_; }
  mem::MemoryStore& memory() { return *memory_; }

  /// Observer called after every externally visible operation (read, write,
  /// or a tick that cleaned/retired something), once all state changes have
  /// settled. The verify::Auditor attaches here; the hook must not call
  /// back into the L2. Pass nullptr to detach.
  void set_audit_hook(std::function<void(Cycle)> hook) {
    audit_hook_ = std::move(hook);
  }

 private:
  struct Located {
    u64 set;
    unsigned way;
    Cycle ready;  ///< cycle the line is usable (fill completion on miss)
    bool was_hit;
  };

  /// Probe; on miss, evict + fill from memory. Returns the line location.
  /// `depth` guards the recovery re-fill recursion (a dropped or retired
  /// line restarts the access as a miss exactly once).
  Located locate_or_fill(Cycle now, Addr addr, bool is_write,
                         unsigned depth = 0);

  /// Fuse off (set, way): write back intact dirty data, invalidate, retire.
  void execute_retirement(Cycle now, u64 set, unsigned way, bool data_intact);

  /// Write a dirty line back (bus + memory store), make it clean, notify
  /// the scheme, and classify the traffic.
  void do_writeback(Cycle now, u64 set, unsigned way, WbCause cause);

  /// Record the dirty-line count for the residency integral. Cheap no-op
  /// when the count has not changed since the last note; `force` flushes
  /// the pending constant segment (end of run / metric reset).
  void note_dirty(Cycle now, bool force = false);

  L2Config config_;
  cache::Cache cache_;
  std::unique_ptr<ProtectionScheme> scheme_;
  CleaningLogic cleaner_;
  mem::SplitTransactionBus* bus_;
  mem::MemoryStore* memory_;
  RecoveryController recovery_;

  /// Inspect one set per the cleaning policy (factored out of tick()).
  void inspect_set(Cycle now, u64 set);

  Cycle port_free_ = 0;
  Cycle last_note_ = 0;
  u64 noted_dirty_ = 0;  ///< dirty count last recorded into dirty_level_
  TimeWeightedLevel dirty_level_;
  u64 wb_[kNumWbCauses] = {0, 0, 0};
  u64 peak_dirty_ = 0;
  u64 cleaning_inspections_ = 0;
  u64 silent_words_elided_ = 0;
  std::vector<u64> fill_buf_;
  std::vector<u8> decay_;  ///< per-line counters (kDecayCounter only)
  std::function<void(Cycle)> audit_hook_;
};

const char* to_string(WbCause c);
const char* to_string(SchemeKind k);

}  // namespace aeep::protect
