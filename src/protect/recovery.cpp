#include "protect/recovery.hpp"

#include <cassert>

namespace aeep::protect {

const char* to_string(DuePolicy p) {
  switch (p) {
    case DuePolicy::kPanic: return "panic";
    case DuePolicy::kDropRefetch: return "drop-refetch";
    case DuePolicy::kPoison: return "poison";
  }
  return "?";
}

const char* to_string(RecoveryAction a) {
  switch (a) {
    case RecoveryAction::kScrubCorrected: return "scrub-corrected";
    case RecoveryAction::kRefetched: return "refetched";
    case RecoveryAction::kRetryExhausted: return "retry-exhausted";
    case RecoveryAction::kDroppedRefetch: return "dropped-refetch";
    case RecoveryAction::kPoisoned: return "poisoned";
    case RecoveryAction::kPanicked: return "panicked";
    case RecoveryAction::kWayRetired: return "way-retired";
  }
  return "?";
}

RecoveryController::RecoveryController(const RecoveryConfig& config,
                                       cache::Cache& cache,
                                       ProtectionScheme& scheme,
                                       mem::SplitTransactionBus& bus,
                                       mem::MemoryStore& memory)
    : config_(config),
      cache_(&cache),
      scheme_(&scheme),
      bus_(&bus),
      memory_(&memory),
      fault_count_(cache.geometry().total_lines(), 0),
      poison_(cache.geometry().total_lines(), 0),
      pending_(cache.geometry().total_lines(), 0) {
  log_.reserve(config_.error_log_capacity);
}

void RecoveryController::drop_line(u64 set, unsigned way) {
  scheme_->on_evict(set, way);
  cache_->invalidate(set, way);
  poison_[slot(set, way)] = 0;
  ++stats_.lines_dropped;
}

bool RecoveryController::should_retire(u64 set, unsigned way) const {
  if (config_.retirement_threshold == 0) return false;
  if (fault_count_[slot(set, way)] < config_.retirement_threshold)
    return false;
  if (cache_->is_retired(set, way)) return false;
  // Never retire the last active way of a set: a direct-mapped remnant is
  // still a cache; zero ways is a hole in the address space.
  return cache_->active_ways(set) > 1;
}

bool RecoveryController::record_fault(u64 set, unsigned way) {
  u16& count = fault_count_[slot(set, way)];
  if (count < u16{0xFFFF}) ++count;  // saturate, don't wrap
  const bool retire = should_retire(set, way);
  if (retire && !pending_[slot(set, way)]) {
    // Queue it so the site retires even when the threshold was crossed off
    // the demand path (write-back validation) — ProtectedL2 drains the
    // queue from tick(), where no access is in flight.
    pending_[slot(set, way)] = 1;
    pending_retire_.emplace_back(set, way);
  }
  return retire;
}

bool RecoveryController::take_pending_retirement(u64& set, unsigned& way) {
  while (!pending_retire_.empty()) {
    const auto [s, w] = pending_retire_.back();
    pending_retire_.pop_back();
    pending_[slot(s, w)] = 0;
    if (!should_retire(s, w)) continue;  // retired meanwhile, or last way
    set = s;
    way = w;
    return true;
  }
  return false;
}

void RecoveryController::log_event(const ErrorLogEntry& e) {
  if (config_.error_log_capacity == 0) {
    ++log_dropped_;
    return;
  }
  if (log_.size() < config_.error_log_capacity) {
    log_.push_back(e);
    return;
  }
  // Ring: overwrite the oldest entry so the newest errors — the ones a
  // post-mortem wants — survive, and count the casualty.
  log_[log_head_] = e;
  log_head_ = (log_head_ + 1) % log_.size();
  ++log_dropped_;
}

std::vector<ErrorLogEntry> RecoveryController::error_log() const {
  std::vector<ErrorLogEntry> out;
  out.reserve(log_.size());
  for (std::size_t i = 0; i < log_.size(); ++i)
    out.push_back(log_[(log_head_ + i) % log_.size()]);
  return out;
}

void RecoveryController::on_install(u64 set, unsigned way) {
  poison_[slot(set, way)] = 0;
}

void RecoveryController::note_way_retired(Cycle now, u64 set, unsigned way) {
  (void)now;
  (void)set;
  (void)way;
  ++stats_.ways_retired;
}

void RecoveryController::reset_stats() {
  stats_ = {};
  log_.clear();
  log_head_ = 0;
  log_dropped_ = 0;
}

bool RecoveryController::validate_writeback(Cycle now, u64 set,
                                            unsigned way) {
  ++stats_.checks;
  const ReadCheck rc = scheme_->check_read(set, way, *memory_);
  if (rc.outcome == ReadOutcome::kOk) return true;
  ++stats_.errors;

  ErrorLogEntry entry;
  entry.cycle = now;
  entry.set = set;
  entry.way = way;
  entry.addr = cache_->line_addr(set, way);
  entry.was_dirty = true;
  entry.outcome = rc.outcome;

  bool write_back = true;
  switch (rc.outcome) {
    case ReadOutcome::kOk:
    case ReadOutcome::kRefetched:  // impossible for a dirty line
      break;
    case ReadOutcome::kCorrected:
      ++stats_.corrected;
      stats_.stall_cycles += config_.correction_latency;
      entry.action = RecoveryAction::kScrubCorrected;
      break;
    case ReadOutcome::kUncorrectable:
      ++stats_.due_events;
      switch (config_.due_policy) {
        case DuePolicy::kPanic:
          panicked_ = true;
          ++stats_.panics;
          [[fallthrough]];
        case DuePolicy::kDropRefetch:
          ++stats_.dirty_lines_lost;
          drop_line(set, way);
          write_back = false;
          entry.action = config_.due_policy == DuePolicy::kPanic
                             ? RecoveryAction::kPanicked
                             : RecoveryAction::kDroppedRefetch;
          break;
        case DuePolicy::kPoison:
          ++stats_.poisoned_writebacks;
          entry.action = RecoveryAction::kPoisoned;
          break;
      }
      break;
  }
  record_fault(set, way);  // feeds the map and, past threshold, queues the
                           // site for retirement at the next tick
  log_event(entry);
  return write_back;
}

RecoveryController::Result RecoveryController::validate(Cycle now, u64 set,
                                                        unsigned way) {
  ++stats_.checks;
  if (poisoned(set, way)) ++stats_.poison_reads;

  const ReadCheck rc = scheme_->check_read(set, way, *memory_);
  if (rc.outcome == ReadOutcome::kOk) {
    Result res;
    res.data_intact = true;
    // The check passed, but the site's history may already condemn it:
    // faults tallied off the access path (write-back validation) still
    // count toward retirement, executed here where ProtectedL2 can react.
    res.retire_way = should_retire(set, way);
    if (res.retire_way) {
      ErrorLogEntry entry;
      entry.cycle = now;
      entry.set = set;
      entry.way = way;
      entry.addr = cache_->line_addr(set, way);
      entry.was_dirty = cache_->meta(set, way).dirty;
      entry.action = RecoveryAction::kWayRetired;
      entry.triggered_retirement = true;
      log_event(entry);
    }
    return res;
  }
  ++stats_.errors;

  Result res;
  ErrorLogEntry entry;
  entry.cycle = now;
  entry.set = set;
  entry.way = way;
  entry.addr = cache_->line_addr(set, way);
  entry.was_dirty = cache_->meta(set, way).dirty;
  entry.outcome = rc.outcome;

  switch (rc.outcome) {
    case ReadOutcome::kOk:
      break;

    case ReadOutcome::kCorrected:
      // The scheme already repaired the words in place; charge the scrub
      // write that commits the corrected values to the array.
      ++stats_.corrected;
      res.extra_latency = config_.correction_latency;
      res.data_intact = true;
      entry.action = RecoveryAction::kScrubCorrected;
      break;

    case ReadOutcome::kRefetched: {
      // The scheme re-fetched the clean line from memory. Charge the bus
      // round trip it glossed over, then re-validate: a persistent fault
      // re-corrupts the fresh copy, so retry with backoff before giving up.
      const unsigned line_bytes = cache_->geometry().line_bytes;
      Cycle done = bus_->read(now, entry.addr, line_bytes);
      res.extra_latency = done - now;
      entry.action = RecoveryAction::kRefetched;
      res.data_intact = true;
      ++stats_.refetched;
      unsigned tries = 0;
      while (true) {
        if (reassert_) reassert_(set, way);
        const ReadCheck again = scheme_->check_read(set, way, *memory_);
        if (again.outcome == ReadOutcome::kOk ||
            again.outcome == ReadOutcome::kCorrected)
          break;
        if (tries >= config_.max_refetch_retries) {
          // Stuck cell: the data re-corrupts faster than we can fetch it.
          // Drop the line; the demand access re-fills it (and the fault map
          // below walks this site toward retirement).
          drop_line(set, way);
          res.line_dropped = true;
          res.data_intact = false;
          ++stats_.retry_exhausted;
          entry.action = RecoveryAction::kRetryExhausted;
          break;
        }
        ++tries;
        ++stats_.retries;
        const Cycle start =
            now + res.extra_latency + config_.retry_backoff * tries;
        done = bus_->read(start, entry.addr, line_bytes);
        res.extra_latency = done - now;
      }
      entry.retries = tries;
      break;
    }

    case ReadOutcome::kUncorrectable: {
      ++stats_.due_events;
      const bool dirty = entry.was_dirty;
      switch (config_.due_policy) {
        case DuePolicy::kPanic:
          // Machine check: latch the flag and contain the line. The
          // simulation keeps running so the harness can observe the latch.
          panicked_ = true;
          ++stats_.panics;
          if (dirty) ++stats_.dirty_lines_lost;
          drop_line(set, way);
          res.line_dropped = true;
          entry.action = RecoveryAction::kPanicked;
          break;
        case DuePolicy::kDropRefetch:
          // Clean data recovers from memory on the re-fill; dirty data is
          // gone (the only up-to-date copy was the corrupted one).
          if (dirty) ++stats_.dirty_lines_lost;
          drop_line(set, way);
          res.line_dropped = true;
          entry.action = RecoveryAction::kDroppedRefetch;
          break;
        case DuePolicy::kPoison:
          // Keep the (corrupt) line but brand it: every later consumer is
          // counted as a poison propagation instead of silent corruption.
          poison_[slot(set, way)] = 1;
          ++stats_.lines_poisoned;
          entry.action = RecoveryAction::kPoisoned;
          break;
      }
      break;
    }
  }

  res.retire_way = record_fault(set, way);
  entry.triggered_retirement = res.retire_way;
  log_event(entry);
  stats_.stall_cycles += res.extra_latency;
  return res;
}

}  // namespace aeep::protect
