// The paper's full scheme (§3.3, Figure 2): parity over every line plus a
// single small ECC array shared by all ways, with `entries_per_set` ECC
// entries per cache set (the paper evaluates 1 — "all cache lines belonging
// to the same set share an ECC entry").
//
// Invariant enforced here: a line may be dirty only while it owns an ECC
// entry, so at most `entries_per_set` lines per set are dirty. A write that
// needs an entry in a full set evicts another entry, which forces an
// immediate write-back of the entry's (dirty) line — the paper's ECC-WB
// traffic. The paper's k=1 identification trick ("the cache line with its
// dirty bit 1 is the corresponding cache line") generalises: each entry
// records its way explicitly, which is what the dirty bit encodes for k=1.
#pragma once

#include <vector>

#include "protect/scheme.hpp"

namespace aeep::protect {

class SharedEccArrayScheme : public ProtectionScheme {
 public:
  SharedEccArrayScheme(cache::Cache& cache, unsigned entries_per_set = 1);

  std::string name() const override;

  void on_fill(u64 set, unsigned way) override;
  std::optional<ForcedWriteback> before_dirty(u64 set, unsigned way) override;
  void on_write_applied(u64 set, unsigned way, u64 word_mask) override;
  void on_writeback(u64 set, unsigned way) override;
  void on_evict(u64 set, unsigned way) override;

  ReadCheck check_read(u64 set, unsigned way,
                       const mem::MemoryStore& memory) override;

  std::span<u64> parity_words(u64 set, unsigned way) override;
  std::span<u64> ecc_words(u64 set, unsigned way) override;

  AreaReport area() const override;

  void reset_metrics() override { entry_evictions_ = 0; }

  unsigned entries_per_set() const { return entries_per_set_; }
  u64 ecc_entry_evictions() const { return entry_evictions_; }

  /// Debug/property-test hook: the ECC entry index serving (set, way), or
  /// -1 if the line holds none.
  int entry_of(u64 set, unsigned way) const;

 private:
  struct EccEntry {
    bool valid = false;
    unsigned way = 0;
    u64 alloc_seq = 0;  ///< for oldest-first eviction among k > 1 entries
  };

  void encode_parity(u64 set, unsigned way, u64 word_mask);
  EccEntry* find_entry(u64 set, unsigned way);
  u64* entry_check(u64 set, unsigned entry_idx);

  unsigned words_;
  unsigned entries_per_set_;
  std::vector<u64> parity_;       ///< per line, all lines
  std::vector<EccEntry> entries_; ///< num_sets * entries_per_set
  std::vector<u64> entry_check_;  ///< check words per entry
  u64 alloc_seq_ = 0;
  u64 entry_evictions_ = 0;
};

}  // namespace aeep::protect
