#include "protect/shared_ecc_array.hpp"

#include <bit>
#include <cassert>

#include "common/bitops.hpp"

namespace aeep::protect {

SharedEccArrayScheme::SharedEccArrayScheme(cache::Cache& cache,
                                           unsigned entries_per_set)
    : ProtectionScheme(cache),
      words_(cache.geometry().words_per_line()),
      entries_per_set_(entries_per_set),
      parity_(cache.geometry().total_lines() * words_, 0),
      entries_(cache.geometry().num_sets() * entries_per_set),
      entry_check_(cache.geometry().num_sets() * entries_per_set * words_, 0) {
  assert(entries_per_set >= 1 && entries_per_set <= cache.geometry().ways);
}

std::string SharedEccArrayScheme::name() const {
  return "shared-ecc-array(k=" + std::to_string(entries_per_set_) + ")";
}

void SharedEccArrayScheme::encode_parity(u64 set, unsigned way, u64 word_mask) {
  const auto data = cache().data(set, way);
  u64* par = parity_.data() + line_slot(set, way) * words_;
  parity_codec().encode_batch_masked(data, word_mask, {par, words_});
}

SharedEccArrayScheme::EccEntry* SharedEccArrayScheme::find_entry(u64 set,
                                                                 unsigned way) {
  EccEntry* base = entries_.data() + set * entries_per_set_;
  for (unsigned e = 0; e < entries_per_set_; ++e) {
    if (base[e].valid && base[e].way == way) return &base[e];
  }
  return nullptr;
}

u64* SharedEccArrayScheme::entry_check(u64 set, unsigned entry_idx) {
  return entry_check_.data() + (set * entries_per_set_ + entry_idx) * words_;
}

void SharedEccArrayScheme::on_fill(u64 set, unsigned way) {
  encode_parity(set, way, ~u64{0});
  // A fill replaces whatever line was there; its entry must already have
  // been released via on_evict. Nothing else to do.
  assert(find_entry(set, way) == nullptr);
}

std::optional<ForcedWriteback> SharedEccArrayScheme::before_dirty(
    u64 set, unsigned way) {
  if (find_entry(set, way) != nullptr) return std::nullopt;  // already owned

  EccEntry* base = entries_.data() + set * entries_per_set_;
  // Free entry available?
  for (unsigned e = 0; e < entries_per_set_; ++e) {
    if (!base[e].valid) {
      base[e].valid = true;
      base[e].way = way;
      base[e].alloc_seq = ++alloc_seq_;
      return std::nullopt;
    }
  }
  // Set full: evict the oldest-allocated entry. Its line is dirty by the
  // scheme invariant and must be written back before losing ECC coverage.
  unsigned victim = 0;
  for (unsigned e = 1; e < entries_per_set_; ++e) {
    if (base[e].alloc_seq < base[victim].alloc_seq) victim = e;
  }
  const unsigned victim_way = base[victim].way;
  assert(victim_way != way);
  assert(cache().meta(set, victim_way).dirty);
  ++entry_evictions_;
  return ForcedWriteback{set, victim_way, cache().line_addr(set, victim_way)};
}

void SharedEccArrayScheme::on_write_applied(u64 set, unsigned way,
                                            u64 word_mask) {
  encode_parity(set, way, word_mask);
  assert(cache().meta(set, way).dirty);
  EccEntry* e = find_entry(set, way);
  assert(e != nullptr && "before_dirty must have allocated an entry");
  const unsigned idx = static_cast<unsigned>(e - (entries_.data() + set * entries_per_set_));
  u64* check = entry_check(set, idx);
  const auto data = cache().data(set, way);
  // The entry may have been freshly (re)allocated, in which case its check
  // words are stale for the unwritten words too — recompute the whole line.
  // Detect this by alloc_seq: a fresh allocation has never been encoded.
  // Simpler and always safe: recompute all words whenever the mask does not
  // cover them all. (8 words; cost is negligible.)
  (void)word_mask;
  secded().encode_batch(data, {check, words_});
}

void SharedEccArrayScheme::on_writeback(u64 set, unsigned way) {
  if (EccEntry* e = find_entry(set, way)) e->valid = false;
}

void SharedEccArrayScheme::on_evict(u64 set, unsigned way) {
  if (EccEntry* e = find_entry(set, way)) e->valid = false;
}

ReadCheck SharedEccArrayScheme::check_read(u64 set, unsigned way,
                                           const mem::MemoryStore& memory) {
  ReadCheck out;
  auto data = cache().data(set, way);
  const bool dirty = cache().meta(set, way).dirty;

  if (dirty) {
    EccEntry* e = find_entry(set, way);
    assert(e != nullptr && "dirty line must own an ECC entry");
    const unsigned idx =
        static_cast<unsigned>(e - (entries_.data() + set * entries_per_set_));
    u64* check = entry_check(set, idx);
    // Batched clean scan; only flagged words take the scalar decoder.
    for (u64 mm = secded().mismatch_mask(data, {check, words_}); mm != 0;
         mm &= mm - 1) {
      const auto w = static_cast<unsigned>(std::countr_zero(mm));
      const ecc::DecodeResult r = secded().decode(data[w], check[w]);
      switch (r.status) {
        case ecc::DecodeStatus::kOk:
          break;
        case ecc::DecodeStatus::kCorrectedSingle:
          data[w] = r.data;
          check[w] = r.check;
          encode_parity(set, way, u64{1} << w);
          ++out.words_corrected;
          break;
        case ecc::DecodeStatus::kDetectedError:
        case ecc::DecodeStatus::kDetectedDouble:
          ++out.words_detected;
          break;
      }
    }
    if (out.words_detected > 0)
      out.outcome = ReadOutcome::kUncorrectable;
    else if (out.words_corrected > 0)
      out.outcome = ReadOutcome::kCorrected;
    return out;
  }

  const u64* par = parity_.data() + line_slot(set, way) * words_;
  out.words_detected =
      popcount64(parity_codec().mismatch_mask(data, {par, words_}));
  if (out.words_detected > 0) {
    memory.read_line(cache().line_addr(set, way), data);
    encode_parity(set, way, ~u64{0});
    out.outcome = ReadOutcome::kRefetched;
  }
  return out;
}

std::span<u64> SharedEccArrayScheme::parity_words(u64 set, unsigned way) {
  return {parity_.data() + line_slot(set, way) * words_, words_};
}

std::span<u64> SharedEccArrayScheme::ecc_words(u64 set, unsigned way) {
  EccEntry* e = find_entry(set, way);
  if (e == nullptr) return {};
  const unsigned idx =
      static_cast<unsigned>(e - (entries_.data() + set * entries_per_set_));
  return {entry_check(set, idx), words_};
}

AreaReport SharedEccArrayScheme::area() const {
  return proposed_area(cache().geometry(), entries_per_set_);
}

int SharedEccArrayScheme::entry_of(u64 set, unsigned way) const {
  const EccEntry* base = entries_.data() + set * entries_per_set_;
  for (unsigned e = 0; e < entries_per_set_; ++e) {
    if (base[e].valid && base[e].way == way) return static_cast<int>(e);
  }
  return -1;
}

}  // namespace aeep::protect
