// Non-uniform protection (§3.1): parity over every line, SECDED ECC only
// while a line is dirty. ECC storage here is *unbounded* (one slot per
// line), so this scheme never forces write-backs — it isolates the paper's
// first idea from the §3.3 ECC-array capacity constraint and is used to
// measure how much ECC storage dirty lines would actually need.
#pragma once

#include <vector>

#include "protect/scheme.hpp"

namespace aeep::protect {

class NonUniformScheme final : public ProtectionScheme {
 public:
  explicit NonUniformScheme(cache::Cache& cache);

  std::string name() const override { return "non-uniform-parity+ecc"; }

  void on_fill(u64 set, unsigned way) override;
  void on_write_applied(u64 set, unsigned way, u64 word_mask) override;
  void on_writeback(u64 set, unsigned way) override;
  void on_evict(u64 set, unsigned way) override;

  ReadCheck check_read(u64 set, unsigned way,
                       const mem::MemoryStore& memory) override;

  std::span<u64> parity_words(u64 set, unsigned way) override;
  std::span<u64> ecc_words(u64 set, unsigned way) override;

  /// Area provisioned for the peak number of simultaneously dirty lines
  /// observed so far (what a designer sizing §3.1 storage would need).
  AreaReport area() const override;

  /// Rebase the peak to the current dirty population (post-warm-up sizing).
  void reset_metrics() override;

  u64 peak_dirty_lines() const { return peak_dirty_; }

 private:
  void encode_parity(u64 set, unsigned way, u64 word_mask);
  void encode_ecc(u64 set, unsigned way, u64 word_mask);

  unsigned words_;
  std::vector<u64> parity_;          ///< 1 live bit per data word, all lines
  std::vector<u64> ecc_;             ///< valid only while the line is dirty
  std::vector<u8> ecc_valid_;        ///< per line
  u64 peak_dirty_ = 0;
};

}  // namespace aeep::protect
