// Conventional uniform protection: SECDED ECC on every line, clean or dirty
// (the POWER4 / Itanium L2 arrangement the paper uses as its baseline).
#pragma once

#include <vector>

#include "protect/scheme.hpp"

namespace aeep::protect {

class UniformEccScheme final : public ProtectionScheme {
 public:
  explicit UniformEccScheme(cache::Cache& cache);

  std::string name() const override { return "uniform-ecc"; }

  void on_fill(u64 set, unsigned way) override;
  void on_write_applied(u64 set, unsigned way, u64 word_mask) override;
  void on_writeback(u64 /*set*/, unsigned /*way*/) override {}
  void on_evict(u64 /*set*/, unsigned /*way*/) override {}

  ReadCheck check_read(u64 set, unsigned way,
                       const mem::MemoryStore& memory) override;

  std::span<u64> parity_words(u64, unsigned) override { return {}; }
  std::span<u64> ecc_words(u64 set, unsigned way) override;

  AreaReport area() const override;

 private:
  void encode_words(u64 set, unsigned way, u64 word_mask);

  unsigned words_;
  std::vector<u64> ecc_;  ///< one check word per data word, every line
};

}  // namespace aeep::protect
