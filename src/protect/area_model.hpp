// Protection-storage area model (§3.1, §3.3, §5.2 of the paper).
//
// All quantities are in bits of storage added for error protection, broken
// down by component so the bench can print the paper's 132 KB vs 54 KB
// comparison for the 1 MB / 4-way / 64 B L2.
#pragma once

#include <string>
#include <vector>

#include "cache/geometry.hpp"
#include "common/types.hpp"

namespace aeep::protect {

struct AreaComponent {
  std::string name;
  u64 bits = 0;
};

struct AreaReport {
  std::string scheme;
  std::vector<AreaComponent> components;

  u64 total_bits() const;
  double total_kib() const { return static_cast<double>(total_bits()) / 8.0 / 1024.0; }
  /// Fractional reduction of this report relative to `baseline` (0.59 for
  /// the paper's configuration).
  double reduction_vs(const AreaReport& baseline) const;
};

/// Conventional uniform protection: SECDED over every data word plus 1-bit
/// parity for each line's tag and status bits. 132 KB for the paper's L2.
AreaReport conventional_area(const cache::CacheGeometry& geom);

/// The paper's proposal: parity over all data, written bit per line, tag and
/// status parity, and a shared ECC array with `ecc_entries_per_set` entries
/// (paper: 1). 54 KB for the paper's L2.
AreaReport proposed_area(const cache::CacheGeometry& geom,
                         unsigned ecc_entries_per_set = 1);

/// §3.1's intermediate scheme: parity everywhere + ECC provisioned for a
/// `dirty_fraction` of lines (the motivating 16 KB + ~64 KB estimate).
AreaReport non_uniform_area(const cache::CacheGeometry& geom,
                            double dirty_fraction);

/// Bits of ECC required per line: 8 per 64 data bits.
u64 ecc_bits_per_line(const cache::CacheGeometry& geom);
/// Bits of parity required per line: 1 per 64 data bits.
u64 parity_bits_per_line(const cache::CacheGeometry& geom);

}  // namespace aeep::protect
