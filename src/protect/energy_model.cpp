#include "protect/energy_model.hpp"

#include "protect/area_model.hpp"

namespace aeep::protect {

namespace {

double kb_of_bits(u64 bits) { return static_cast<double>(bits) / 8.0 / 1024.0; }

}  // namespace

EnergyBreakdown estimate_energy(SchemeKind scheme, const EnergyEvents& ev,
                                const cache::CacheGeometry& geom,
                                unsigned ecc_entries_per_set,
                                const EnergyParams& p) {
  EnergyBreakdown out;
  out.scheme = to_string(scheme);
  const double words = static_cast<double>(ev.words_per_line);
  const double reads = static_cast<double>(ev.l2_reads);
  const double writes = static_cast<double>(ev.l2_writes);
  const double fills = static_cast<double>(ev.l2_fills);
  const double clean_frac =
      static_cast<double>(ev.clean_read_fraction_permille) / 1000.0;

  // Check-bit array sizes drive per-access energy.
  const double conv_ecc_kb = kb_of_bits(geom.total_lines() * ecc_bits_per_line(geom));
  const double shared_ecc_kb =
      kb_of_bits(geom.num_sets() * ecc_entries_per_set * ecc_bits_per_line(geom));
  const double parity_kb = kb_of_bits(geom.total_lines() * parity_bits_per_line(geom));

  switch (scheme) {
    case SchemeKind::kUniformEcc:
      // Every read decodes SECDED for the whole line; every write/fill
      // re-encodes; every access touches the big per-way ECC array.
      out.codec_pj = reads * words * p.secded_decode_pj +
                     (writes + fills) * words * p.secded_encode_pj;
      out.check_storage_pj =
          reads * conv_ecc_kb * p.ecc_array_read_pj_per_kb +
          (writes + fills) * conv_ecc_kb * p.ecc_array_write_pj_per_kb;
      out.extra_traffic_pj = 0.0;  // definitionally the baseline
      break;

    case SchemeKind::kNonUniform:
    case SchemeKind::kSharedEccArray: {
      const double ecc_kb =
          scheme == SchemeKind::kSharedEccArray ? shared_ecc_kb : conv_ecc_kb;
      const double dirty_reads = reads * (1.0 - clean_frac);
      const double clean_reads = reads * clean_frac;
      // Clean reads: parity check only. Dirty reads: SECDED decode.
      out.codec_pj = clean_reads * words * p.parity_check_pj +
                     dirty_reads * words * p.secded_decode_pj +
                     writes * words * (p.secded_encode_pj + p.parity_check_pj) +
                     fills * words * p.parity_check_pj;  // parity encode
      out.check_storage_pj =
          clean_reads * parity_kb * p.parity_array_read_pj_per_kb +
          dirty_reads * ecc_kb * p.ecc_array_read_pj_per_kb +
          writes * (ecc_kb * p.ecc_array_write_pj_per_kb +
                    parity_kb * p.parity_array_write_pj_per_kb) +
          fills * parity_kb * p.parity_array_write_pj_per_kb;
      // Cleaning and ECC-entry evictions add bus + DRAM work beyond org.
      const double extra_wb =
          ev.writebacks > ev.baseline_writebacks
              ? static_cast<double>(ev.writebacks - ev.baseline_writebacks)
              : 0.0;
      out.extra_traffic_pj = extra_wb * (p.bus_line_pj + p.dram_access_pj);
      break;
    }
  }
  return out;
}

}  // namespace aeep::protect
