#include "protect/protected_l2.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"
#include "protect/non_uniform.hpp"
#include "protect/shared_ecc_array.hpp"
#include "protect/uniform_ecc.hpp"

namespace aeep::protect {

const char* to_string(CleaningPolicy p) {
  switch (p) {
    case CleaningPolicy::kWrittenBit: return "written-bit";
    case CleaningPolicy::kNaive: return "naive";
    case CleaningPolicy::kDecayCounter: return "decay-counter";
    case CleaningPolicy::kEagerIdle: return "eager-idle";
  }
  return "?";
}

const char* to_string(WbCause c) {
  switch (c) {
    case WbCause::kReplacement: return "WB";
    case WbCause::kCleaning: return "Clean-WB";
    case WbCause::kEccEviction: return "ECC-WB";
  }
  return "?";
}

const char* to_string(SchemeKind k) {
  switch (k) {
    case SchemeKind::kUniformEcc: return "uniform-ecc";
    case SchemeKind::kNonUniform: return "non-uniform";
    case SchemeKind::kSharedEccArray: return "shared-ecc-array";
  }
  return "?";
}

namespace {
std::unique_ptr<ProtectionScheme> make_scheme(const L2Config& cfg,
                                              cache::Cache& cache) {
  if (cfg.scheme_factory) return cfg.scheme_factory(cache);
  switch (cfg.scheme) {
    case SchemeKind::kUniformEcc:
      return std::make_unique<UniformEccScheme>(cache);
    case SchemeKind::kNonUniform:
      return std::make_unique<NonUniformScheme>(cache);
    case SchemeKind::kSharedEccArray:
      return std::make_unique<SharedEccArrayScheme>(cache,
                                                    cfg.ecc_entries_per_set);
  }
  return nullptr;
}
}  // namespace

ProtectedL2::ProtectedL2(const L2Config& config, mem::SplitTransactionBus& bus,
                         mem::MemoryStore& memory)
    : config_(config),
      cache_(config.geometry, config.replacement, config.seed),
      scheme_(make_scheme(config, cache_)),
      cleaner_(config.geometry.num_sets(), config.cleaning_interval),
      bus_(&bus),
      memory_(&memory),
      recovery_(config.recovery, cache_, *scheme_, bus, memory),
      fill_buf_(config.geometry.words_per_line(), 0) {
  if (config_.cleaning_policy == CleaningPolicy::kDecayCounter)
    decay_.assign(config_.geometry.total_lines(), 0);
}

void ProtectedL2::note_dirty(Cycle now, bool force) {
  // Timestamps arrive in CPU-cycle order; equal times are fine.
  if (now < last_note_) now = last_note_;
  last_note_ = now;
  const u64 dirty = cache_.dirty_count();
  // The level is piecewise-constant, so re-recording an unchanged count is
  // a no-op for the integral: defer it (this runs on every L2 access) and
  // charge the whole constant segment on the next real change. The peak
  // cannot have moved either. finalize()/reset_metrics() force a flush so
  // the trailing segment is never lost.
  if (!force && dirty == noted_dirty_) return;
  noted_dirty_ = dirty;
  dirty_level_.update(now, static_cast<double>(dirty));
  peak_dirty_ = std::max(peak_dirty_, dirty);
}

void ProtectedL2::do_writeback(Cycle now, u64 set, unsigned way,
                               WbCause cause) {
  assert(cache_.meta(set, way).dirty);
  // Outbound validation: corrupt dirty data must not silently reach memory.
  if (config_.recovery.check_on_access && config_.maintain_codes &&
      !recovery_.validate_writeback(now, set, way)) {
    note_dirty(now);  // the line was dropped instead of written back
    return;
  }
  const Addr addr = cache_.line_addr(set, way);
  bus_->write(now, addr, config_.geometry.line_bytes);
  memory_->write_line(addr, cache_.data(set, way));
  cache_.clear_dirty(set, way);
  cache_.set_written(set, way, false);
  scheme_->on_writeback(set, way);
  ++wb_[static_cast<unsigned>(cause)];
  note_dirty(now);
}

ProtectedL2::Located ProtectedL2::locate_or_fill(Cycle now, Addr addr,
                                                 bool is_write,
                                                 unsigned depth) {
  const Cycle start = std::max(now, port_free_);
  port_free_ = start + 1;  // pipelined: one new access per cycle

  const Addr line = config_.geometry.line_base(addr);
  const cache::ProbeResult pr = cache_.probe(line);
  auto& st = cache_.stats();
  if (is_write)
    ++st.writes;
  else
    ++st.reads;

  if (pr.hit) {
    if (is_write)
      ++st.write_hits;
    else
      ++st.read_hits;
    cache_.touch(pr.set, pr.way, now);
    Cycle ready = start + config_.hit_latency;

    // Online validation: every hit runs the scheme's read check and pays
    // for whatever recovery the outcome demands.
    if (config_.recovery.check_on_access && config_.maintain_codes &&
        depth == 0) {
      const RecoveryController::Result res =
          recovery_.validate(now, pr.set, pr.way);
      ready += res.extra_latency;
      if (res.retire_way)
        execute_retirement(now, pr.set, pr.way, res.data_intact);
      if (!cache_.meta(pr.set, pr.way).valid) {
        // Dropped (and possibly retired): the demand access restarts as a
        // miss — the containment's re-fetch — into an active way.
        note_dirty(now);
        Located refill = locate_or_fill(now, addr, is_write, depth + 1);
        refill.ready = std::max(refill.ready, ready);
        refill.was_hit = false;
        return refill;
      }
      if (res.line_dropped || res.retire_way) note_dirty(now);
    }
    return {pr.set, pr.way, ready, true};
  }

  // Miss: evict, then fill from memory.
  const cache::Victim victim = cache_.pick_victim(pr.set);
  if (victim.valid) {
    if (victim.dirty)
      do_writeback(now, pr.set, victim.way, WbCause::kReplacement);
    scheme_->on_evict(pr.set, victim.way);
  }
  const Cycle fill_done =
      bus_->read(start + config_.hit_latency, line, config_.geometry.line_bytes);
  memory_->read_line(line, fill_buf_);
  cache_.install(pr.set, victim.way, line, now, fill_buf_);
  recovery_.on_install(pr.set, victim.way);
  if (config_.maintain_codes) scheme_->on_fill(pr.set, victim.way);
  note_dirty(now);
  return {pr.set, victim.way, fill_done, false};
}

void ProtectedL2::execute_retirement(Cycle now, u64 set, unsigned way,
                                     bool data_intact) {
  const cache::CacheLineMeta& m = cache_.meta(set, way);
  if (m.valid) {
    if (m.dirty) {
      if (data_intact)
        do_writeback(now, set, way, WbCause::kReplacement);
      else
        recovery_.note_dirty_line_lost();
    }
    scheme_->on_evict(set, way);
    cache_.invalidate(set, way);
  }
  cache_.retire_way(set, way);
  recovery_.note_way_retired(now, set, way);
  note_dirty(now);
}

double ProtectedL2::retired_capacity_fraction() const {
  return static_cast<double>(cache_.retired_ways()) /
         static_cast<double>(config_.geometry.total_lines());
}

Cycle ProtectedL2::read(Cycle now, Addr addr) {
  const Cycle ready = locate_or_fill(now, addr, /*is_write=*/false).ready;
  if (audit_hook_) audit_hook_(now);
  return ready;
}

Cycle ProtectedL2::write(Cycle now, Addr addr, u64 word_mask,
                         std::span<const u64> words) {
  assert(config_.geometry.line_base(addr) == addr);
  const Located loc = locate_or_fill(now, addr, /*is_write=*/true);

  // §3.3 write path: make sure the line may become (or stay) dirty. The
  // shared-ECC-array scheme may first demand an ECC-entry eviction.
  while (auto fw = scheme_->before_dirty(loc.set, loc.way)) {
    do_writeback(now, fw->set, fw->way, WbCause::kEccEviction);
  }

  const bool was_dirty = cache_.meta(loc.set, loc.way).dirty;
  if (was_dirty) {
    // §3.2: the written bit is set when a line is modified more than once.
    cache_.set_written(loc.set, loc.way, true);
  } else {
    cache_.mark_dirty(loc.set, loc.way);
  }
  if (!decay_.empty())
    decay_[loc.set * config_.geometry.ways + loc.way] = 0;  // write resets age

  auto dst = cache_.data(loc.set, loc.way);
  u64 changed_mask = 0;
  for (unsigned w = 0; w < dst.size(); ++w) {
    if (word_mask & (u64{1} << w)) {
      if (dst[w] != words[w]) {
        dst[w] = words[w];
        changed_mask |= u64{1} << w;
      }
    }
  }
  if (config_.maintain_codes) {
    // Silent-write elision ("Using Silent Writes in Low-Power Traffic-Aware
    // ECC"): a written word whose value did not change already carries
    // valid check bits — encode() is a pure function of the data — so its
    // re-encode can be skipped. Only safe when nothing else can have
    // touched the stored bits since they were encoded: with on-access
    // checking (the fault-injection configs) the rewrite must refresh the
    // full mask, because re-encoding a struck word is part of the modeled
    // behaviour. The scheme hook still runs with an empty mask so dirty-
    // transition bookkeeping (e.g. non-uniform's full-line ECC on first
    // write) stays exact.
    u64 encode_mask = word_mask;
    if (!config_.recovery.check_on_access) {
      const u64 live = dst.size() >= 64
                           ? word_mask
                           : word_mask & ((u64{1} << dst.size()) - 1);
      encode_mask = changed_mask;
      silent_words_elided_ += popcount64(live) - popcount64(changed_mask);
    }
    scheme_->on_write_applied(loc.set, loc.way, encode_mask);
  }
  note_dirty(now);
  if (audit_hook_) audit_hook_(now);
  return loc.ready;
}

void ProtectedL2::inspect_set(Cycle now, u64 set) {
  switch (config_.cleaning_policy) {
    case CleaningPolicy::kWrittenBit:
      for (unsigned way = 0; way < config_.geometry.ways; ++way) {
        const cache::CacheLineMeta& m = cache_.meta(set, way);
        if (!m.valid) continue;
        if (m.dirty && !m.written) {
          // Dead for writes: eagerly clean it (§3.2).
          do_writeback(now, set, way, WbCause::kCleaning);
        } else if (m.written) {
          // Give it another interval to prove it stopped being written.
          cache_.set_written(set, way, false);
        }
      }
      break;

    case CleaningPolicy::kNaive:
      for (unsigned way = 0; way < config_.geometry.ways; ++way) {
        const cache::CacheLineMeta& m = cache_.meta(set, way);
        if (m.valid && m.dirty) do_writeback(now, set, way, WbCause::kCleaning);
      }
      break;

    case CleaningPolicy::kDecayCounter:
      for (unsigned way = 0; way < config_.geometry.ways; ++way) {
        const cache::CacheLineMeta& m = cache_.meta(set, way);
        if (!m.valid || !m.dirty) continue;
        u8& age = decay_[set * config_.geometry.ways + way];
        if (++age >= config_.decay_threshold) {
          do_writeback(now, set, way, WbCause::kCleaning);
          age = 0;
        }
      }
      break;

    case CleaningPolicy::kEagerIdle: {
      if (bus_->next_free(now) != now) break;  // bus busy: stay out of the way
      // Clean the LRU dirty line of the set (Lee et al. write back lines
      // reaching the LRU position).
      int victim = -1;
      Cycle oldest = ~Cycle{0};
      for (unsigned way = 0; way < config_.geometry.ways; ++way) {
        const cache::CacheLineMeta& m = cache_.meta(set, way);
        if (m.valid && m.dirty && m.stamp < oldest) {
          oldest = m.stamp;
          victim = static_cast<int>(way);
        }
      }
      if (victim >= 0)
        do_writeback(now, set, static_cast<unsigned>(victim),
                     WbCause::kCleaning);
      break;
    }
  }
}

void ProtectedL2::tick(Cycle now) {
  bool did_work = false;
  while (auto set = cleaner_.due(now)) {
    ++cleaning_inspections_;
    inspect_set(now, *set);
    did_work = true;
  }
  if (config_.recovery.check_on_access && config_.maintain_codes) {
    // Execute retirements queued by the recovery controller (threshold
    // crossings on the write-back path) now that no access is in flight.
    // do_writeback re-validates the evicted dirty data, so corruption the
    // site accumulated since the queueing still cannot reach memory.
    u64 set = 0;
    unsigned way = 0;
    while (recovery_.take_pending_retirement(set, way)) {
      execute_retirement(now, set, way, /*data_intact=*/true);
      did_work = true;
    }
  }
  if (did_work && audit_hook_) audit_hook_(now);
}

void ProtectedL2::finalize(Cycle now) { note_dirty(now, /*force=*/true); }

void ProtectedL2::reset_metrics(Cycle now) {
  cache_.stats() = {};
  wb_[0] = wb_[1] = wb_[2] = 0;
  last_note_ = std::max(now, last_note_);
  noted_dirty_ = cache_.dirty_count();
  dirty_level_.reset(last_note_, static_cast<double>(noted_dirty_));
  peak_dirty_ = cache_.dirty_count();
  cleaning_inspections_ = 0;
  silent_words_elided_ = 0;
  recovery_.reset_stats();
  scheme_->reset_metrics();
}

u64 ProtectedL2::wb_total() const {
  return wb_[0] + wb_[1] + wb_[2];
}

double ProtectedL2::avg_dirty_fraction() const {
  return dirty_level_.average() /
         static_cast<double>(config_.geometry.total_lines());
}

}  // namespace aeep::protect
