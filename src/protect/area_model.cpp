#include "protect/area_model.hpp"

#include <cmath>

namespace aeep::protect {

u64 AreaReport::total_bits() const {
  u64 t = 0;
  for (const auto& c : components) t += c.bits;
  return t;
}

double AreaReport::reduction_vs(const AreaReport& baseline) const {
  const u64 base = baseline.total_bits();
  if (base == 0) return 0.0;
  return 1.0 - static_cast<double>(total_bits()) / static_cast<double>(base);
}

u64 ecc_bits_per_line(const cache::CacheGeometry& geom) {
  // 8 check bits per 64 data bits (SECDED(72,64)).
  return static_cast<u64>(geom.line_bytes) * 8 / 64 * 8;
}

u64 parity_bits_per_line(const cache::CacheGeometry& geom) {
  // 1 parity bit per 64 data bits.
  return static_cast<u64>(geom.line_bytes) * 8 / 64;
}

AreaReport conventional_area(const cache::CacheGeometry& geom) {
  AreaReport r;
  r.scheme = "conventional-uniform-ecc";
  const u64 lines = geom.total_lines();
  r.components.push_back({"data ECC (8b / 64b)", lines * ecc_bits_per_line(geom)});
  r.components.push_back({"tag parity (1b / line)", lines});
  r.components.push_back({"status parity (1b / line)", lines});
  return r;
}

AreaReport proposed_area(const cache::CacheGeometry& geom,
                         unsigned ecc_entries_per_set) {
  AreaReport r;
  r.scheme = "proposed-shared-ecc-array";
  const u64 lines = geom.total_lines();
  r.components.push_back({"data parity (1b / 64b)", lines * parity_bits_per_line(geom)});
  r.components.push_back({"ECC array", geom.num_sets() * ecc_entries_per_set * ecc_bits_per_line(geom)});
  r.components.push_back({"written bits (1b / line)", lines});
  r.components.push_back({"tag parity (1b / line)", lines});
  r.components.push_back({"status parity (1b / line)", lines});
  return r;
}

AreaReport non_uniform_area(const cache::CacheGeometry& geom,
                            double dirty_fraction) {
  AreaReport r;
  r.scheme = "non-uniform-provisioned";
  const u64 lines = geom.total_lines();
  const u64 dirty_lines =
      static_cast<u64>(std::ceil(dirty_fraction * static_cast<double>(lines)));
  r.components.push_back({"data parity (1b / 64b)", lines * parity_bits_per_line(geom)});
  r.components.push_back({"ECC for dirty lines", dirty_lines * ecc_bits_per_line(geom)});
  r.components.push_back({"tag parity (1b / line)", lines});
  r.components.push_back({"status parity (1b / line)", lines});
  return r;
}

}  // namespace aeep::protect
