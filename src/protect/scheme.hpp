// Protection-scheme strategy interface for the L2 cache.
//
// A scheme owns the stored check bits (parity words, ECC words, the shared
// ECC array) and the rules that keep them consistent with the cache payload.
// The ProtectedL2 controller calls the hooks below at the right points of
// the access path. Timing (bus, latencies) stays in the controller; a
// scheme's only timing influence is forcing write-backs via before_dirty
// (the §3.3 ECC-entry eviction).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "cache/cache.hpp"
#include "ecc/parity.hpp"
#include "ecc/secded.hpp"
#include "mem/memory_store.hpp"
#include "protect/area_model.hpp"

namespace aeep::protect {

/// What the read-validation path concluded for one line access.
enum class ReadOutcome {
  kOk,             ///< codes clean
  kCorrected,      ///< ECC corrected one or more single-bit word errors
  kRefetched,      ///< clean line failed parity; re-fetched from memory
  kUncorrectable,  ///< detected error the scheme cannot repair (DUE)
};

const char* to_string(ReadOutcome o);

struct ReadCheck {
  ReadOutcome outcome = ReadOutcome::kOk;
  unsigned words_corrected = 0;
  unsigned words_detected = 0;
};

/// A line the scheme needs written back before a new line may become dirty.
struct ForcedWriteback {
  u64 set = 0;
  unsigned way = 0;
  Addr addr = kNoAddr;
};

class ProtectionScheme {
 public:
  explicit ProtectionScheme(cache::Cache& cache) : cache_(&cache) {}
  virtual ~ProtectionScheme() = default;

  ProtectionScheme(const ProtectionScheme&) = delete;
  ProtectionScheme& operator=(const ProtectionScheme&) = delete;

  virtual std::string name() const = 0;

  // --- State-maintenance hooks (called by ProtectedL2) ------------------
  /// A clean line was installed at (set, way); payload is final.
  virtual void on_fill(u64 set, unsigned way) = 0;

  /// A write is about to make (set, way) dirty (or write an already-dirty
  /// line). If the scheme must first clean another line of the set to free
  /// an ECC entry, it returns that line; the controller writes it back,
  /// calls on_writeback for it, and asks again.
  virtual std::optional<ForcedWriteback> before_dirty(u64 /*set*/,
                                                      unsigned /*way*/) {
    return std::nullopt;
  }

  /// Payload words in `word_mask` were just updated on a (now dirty) line;
  /// refresh the stored codes.
  virtual void on_write_applied(u64 set, unsigned way, u64 word_mask) = 0;

  /// The line was written back and is now clean (replacement drain,
  /// cleaning, or ECC-entry eviction).
  virtual void on_writeback(u64 set, unsigned way) = 0;

  /// The line is leaving the cache (its codes become meaningless).
  virtual void on_evict(u64 set, unsigned way) = 0;

  // --- Validation path ---------------------------------------------------
  /// Decode the stored codes for a line, repairing what the scheme can:
  /// single-bit ECC errors are corrected in place; a clean line failing
  /// parity is re-fetched from `memory`. Uncorrectable damage is reported.
  virtual ReadCheck check_read(u64 set, unsigned way,
                               const mem::MemoryStore& memory) = 0;

  // --- Fault-injection access to stored code bits -------------------------
  /// Stored parity words for a line (1 live bit per word); empty if the
  /// scheme keeps no parity.
  virtual std::span<u64> parity_words(u64 set, unsigned way) = 0;
  /// Stored ECC words for a line (8 live bits per word); empty if the line
  /// currently has no ECC (clean line under the proposed scheme).
  virtual std::span<u64> ecc_words(u64 set, unsigned way) = 0;

  virtual AreaReport area() const = 0;

  /// Zero scheme-level metrics (ECC-entry eviction counts, peak trackers)
  /// while keeping code state — part of the ProtectedL2::reset_metrics
  /// chain, so warm-up does not leak into measured counters.
  virtual void reset_metrics() {}

 protected:
  cache::Cache& cache() { return *cache_; }
  const cache::Cache& cache() const { return *cache_; }
  const ecc::SecdedCodec& secded() const { return secded_; }
  const ecc::ParityCodec& parity_codec() const { return parity_; }

  std::size_t line_slot(u64 set, unsigned way) const {
    return static_cast<std::size_t>(set) * cache_->geometry().ways + way;
  }

 private:
  cache::Cache* cache_;
  ecc::SecdedCodec secded_;
  ecc::ParityCodec parity_;
};

}  // namespace aeep::protect
