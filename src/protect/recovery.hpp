// Online error-recovery controller.
//
// Sits between the ProtectedL2 controller and the protection scheme and
// turns every non-kOk ReadCheck observed on the live access path into a
// concrete recovery action with a cycle and bus cost:
//
//  - kCorrected   -> in-place SECDED correction plus a scrub write of the
//                    repaired words (small fixed latency);
//  - kRefetched   -> the clean line failed parity and was re-fetched; the
//                    controller charges the bus round trip and, because the
//                    underlying cell may be stuck, re-validates with bounded
//                    retries + linear backoff before giving up and dropping
//                    the line (next demand access re-fetches it);
//  - kUncorrectable (DUE) -> configurable policy: panic (latch a machine-
//                    check flag), drop-and-refetch (clean lines recover,
//                    dirty data is lost with the loss counted), or poison
//                    (keep the line, mark it, count every later read of it).
//
// Every handled error is appended to an MCA-style bounded error log (site,
// cycle, outcome, action, retries). A per-(set, way) fault map counts
// errors; past `retirement_threshold` the controller asks the L2 to retire
// the way from that set — allocation then skips it (graceful degradation),
// the repeat-offender cell stops generating errors, and the retired
// capacity is reported in stats.
#pragma once

#include <functional>
#include <vector>

#include "cache/cache.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/scheme.hpp"

namespace aeep::protect {

/// What to do with a detected-uncorrectable error (DUE).
enum class DuePolicy {
  kPanic,        ///< latch a machine-check flag (fail-stop marker), drop line
  kDropRefetch,  ///< drop the line; clean data re-fetches, dirty data is lost
  kPoison,       ///< keep the line, mark it poisoned, count propagations
};

const char* to_string(DuePolicy p);

/// The concrete action the controller took for one error (log vocabulary).
enum class RecoveryAction {
  kScrubCorrected,    ///< ECC corrected in place + scrub write
  kRefetched,         ///< parity fail on clean line; re-fetch succeeded
  kRetryExhausted,    ///< re-fetch kept failing (stuck cell); line dropped
  kDroppedRefetch,    ///< DUE policy kDropRefetch applied
  kPoisoned,          ///< DUE policy kPoison applied
  kPanicked,          ///< DUE policy kPanic latched the machine-check flag
  kWayRetired,        ///< fault-map history alone fused the way off
};

const char* to_string(RecoveryAction a);

struct RecoveryConfig {
  /// Validate codes on every L2 hit (the online path). Requires the L2 to
  /// maintain real check bits.
  bool check_on_access = false;
  DuePolicy due_policy = DuePolicy::kDropRefetch;
  /// Re-fetch attempts after the scheme's own re-fetch still fails
  /// (persistent faults); past this the line is dropped.
  unsigned max_refetch_retries = 3;
  /// Extra cycles added per successive re-fetch retry (linear backoff).
  Cycle retry_backoff = 16;
  /// Cycles to write corrected words back into the array (scrub write).
  Cycle correction_latency = 2;
  /// Errors at one (set, way) before the way is retired; 0 disables
  /// retirement.
  unsigned retirement_threshold = 0;
  /// MCA-style log capacity. The log is a ring buffer: once full, each new
  /// error overwrites the oldest entry and bumps the dropped counter, so a
  /// long-lived process (the aeep_served job server) holds at most this
  /// many entries no matter how many errors it ever sees.
  std::size_t error_log_capacity = 64;
};

/// One MCA-style error-log record.
struct ErrorLogEntry {
  Cycle cycle = 0;
  u64 set = 0;
  unsigned way = 0;
  Addr addr = kNoAddr;
  bool was_dirty = false;
  ReadOutcome outcome = ReadOutcome::kOk;
  RecoveryAction action = RecoveryAction::kRefetched;
  unsigned retries = 0;
  bool triggered_retirement = false;

  bool operator==(const ErrorLogEntry&) const = default;
};

struct RecoveryStats {
  u64 checks = 0;           ///< lines validated on the access path
  u64 errors = 0;           ///< non-kOk validations
  u64 corrected = 0;        ///< SECDED corrections scrubbed in place
  u64 refetched = 0;        ///< parity-fail re-fetches that recovered
  u64 retries = 0;          ///< extra re-fetch attempts beyond the first
  u64 retry_exhausted = 0;  ///< lines dropped after retry budget ran out
  u64 due_events = 0;       ///< detected-uncorrectable errors handled
  u64 lines_dropped = 0;    ///< lines invalidated by recovery
  u64 dirty_lines_lost = 0; ///< dropped lines whose dirty data was lost
  u64 lines_poisoned = 0;   ///< lines marked poisoned (kPoison policy)
  u64 poison_reads = 0;     ///< later reads that consumed poisoned data
  u64 poisoned_writebacks = 0;  ///< poisoned data written to memory
  u64 panics = 0;           ///< machine-check latches (kPanic policy)
  u64 ways_retired = 0;     ///< (set, way) slots fused off
  Cycle stall_cycles = 0;   ///< total extra latency recovery added

  bool operator==(const RecoveryStats&) const = default;
};

class RecoveryController {
 public:
  /// What the caller (ProtectedL2) must do after one validation.
  struct Result {
    Cycle extra_latency = 0;  ///< add to the access's completion cycle
    bool line_dropped = false;  ///< the line was invalidated; re-fill it
    bool retire_way = false;    ///< fault map crossed the threshold
    bool data_intact = false;   ///< payload is trustworthy (may write back)
  };

  RecoveryController(const RecoveryConfig& config, cache::Cache& cache,
                     ProtectionScheme& scheme, mem::SplitTransactionBus& bus,
                     mem::MemoryStore& memory);

  /// Drive the scheme's read check for a resident line and execute the
  /// recovery action. Called by ProtectedL2 on every validated access.
  Result validate(Cycle now, u64 set, unsigned way);

  /// Validate a dirty line the controller is about to write back (cleaning,
  /// replacement or ECC eviction). Corrections are applied in place; a DUE
  /// under kPanic/kDropRefetch drops the line so corrupt data never reaches
  /// memory (returns false — skip the write-back); under kPoison the data
  /// is written anyway and the propagation counted. Faults recorded here
  /// count toward retirement, executed later via take_pending_retirement.
  bool validate_writeback(Cycle now, u64 set, unsigned way);

  /// Hook invoked after each re-fetch inside the retry loop, so persistent
  /// (stuck-at) faults can re-assert themselves before the re-check. Wired
  /// to fault::StrikeProcess by the simulation harness.
  void set_reassert_hook(std::function<void(u64 set, unsigned way)> hook) {
    reassert_ = std::move(hook);
  }

  /// The line at (set, way) was replaced/invalidated by normal cache
  /// operation: clear its poison marker.
  void on_install(u64 set, unsigned way);

  /// Pop one (set, way) whose fault history demands retirement. Sites that
  /// became ineligible while queued (already retired, last active way) are
  /// skipped. ProtectedL2 drains this once per tick, outside any access,
  /// so write-back-path faults retire ways too. Returns false when empty.
  bool take_pending_retirement(u64& set, unsigned& way);

  /// Bookkeeping for a retirement executed by ProtectedL2.
  void note_way_retired(Cycle now, u64 set, unsigned way);
  void note_dirty_line_lost() { ++stats_.dirty_lines_lost; }

  bool poisoned(u64 set, unsigned way) const {
    return poison_[slot(set, way)] != 0;
  }
  unsigned fault_count(u64 set, unsigned way) const {
    return fault_count_[slot(set, way)];
  }
  bool panicked() const { return panicked_; }

  const RecoveryConfig& config() const { return config_; }
  const RecoveryStats& stats() const { return stats_; }
  /// Chronological snapshot of the ring buffer: the newest (up to)
  /// `error_log_capacity` errors, oldest first.
  std::vector<ErrorLogEntry> error_log() const;
  /// Entries overwritten (oldest-first) after the ring filled — the MCA
  /// overflow count. error_log().size() + error_log_dropped() == errors seen.
  u64 error_log_dropped() const { return log_dropped_; }

  /// Zero the observable metrics (stats + log). The fault map, poison bits
  /// and the panic latch are machine state, not metrics, and survive.
  void reset_stats();

 private:
  std::size_t slot(u64 set, unsigned way) const {
    return static_cast<std::size_t>(set) * cache_->geometry().ways + way;
  }

  /// Invalidate the line, releasing the scheme's code state.
  void drop_line(u64 set, unsigned way);

  /// True when the site's fault history has crossed the retirement
  /// threshold and the set can still afford to lose the way.
  bool should_retire(u64 set, unsigned way) const;

  /// Record one error in the fault map; returns should_retire(set, way).
  bool record_fault(u64 set, unsigned way);

  void log_event(const ErrorLogEntry& e);

  RecoveryConfig config_;
  cache::Cache* cache_;
  ProtectionScheme* scheme_;
  mem::SplitTransactionBus* bus_;
  mem::MemoryStore* memory_;
  std::function<void(u64, unsigned)> reassert_;

  std::vector<u16> fault_count_;  ///< per-(set, way) error tally
  std::vector<u8> poison_;        ///< per-(set, way) poison markers
  std::vector<u8> pending_;       ///< per-(set, way) queued-for-retirement
  std::vector<std::pair<u64, unsigned>> pending_retire_;
  std::vector<ErrorLogEntry> log_;  ///< ring storage; log_head_ = oldest
  std::size_t log_head_ = 0;
  u64 log_dropped_ = 0;
  bool panicked_ = false;
  RecoveryStats stats_;
};

}  // namespace aeep::protect
