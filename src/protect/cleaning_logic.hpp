// Dirty-line cleaning FSM (§3.2, Figure 2).
//
// Hardware: a cycle counter plus a latch holding the next set number. Every
// `interval / num_sets` cycles the logic inspects one set; across `interval`
// cycles every line in the cache is therefore checked once — the paper's
// definition of "cleaning interval" (64K..4M cycles). The inspection rule:
//   dirty && !written  -> eagerly write the line back (it has left its write
//                         generation), clear dirty;
//   written            -> reset written so the next pass re-tests it.
#pragma once

#include <optional>

#include "common/types.hpp"

namespace aeep::protect {

class CleaningLogic {
 public:
  /// `interval` is the per-line revisit period in cycles; 0 disables.
  CleaningLogic(u64 num_sets, Cycle interval);

  /// If an inspection is due at `now`, returns the set to inspect and
  /// schedules the next one. Call repeatedly until nullopt (a large time
  /// jump can make several sets due).
  std::optional<u64> due(Cycle now);

  bool enabled() const { return interval_ != 0; }
  Cycle interval() const { return interval_; }
  Cycle set_period() const { return set_period_; }
  u64 next_set() const { return next_set_; }

  /// Storage cost of the FSM: the set-number latch (paper: 12 bits for 4K
  /// sets). The cycle counter is shared with existing performance counters.
  unsigned latch_bits() const;

  void reset();

 private:
  u64 num_sets_;
  Cycle interval_;
  Cycle set_period_;
  Cycle next_due_;
  u64 next_set_ = 0;
};

}  // namespace aeep::protect
