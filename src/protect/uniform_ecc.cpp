#include "protect/uniform_ecc.hpp"

#include <bit>

#include "common/bitops.hpp"

namespace aeep::protect {

const char* to_string(ReadOutcome o) {
  switch (o) {
    case ReadOutcome::kOk: return "ok";
    case ReadOutcome::kCorrected: return "corrected";
    case ReadOutcome::kRefetched: return "refetched";
    case ReadOutcome::kUncorrectable: return "uncorrectable";
  }
  return "?";
}

UniformEccScheme::UniformEccScheme(cache::Cache& cache)
    : ProtectionScheme(cache),
      words_(cache.geometry().words_per_line()),
      ecc_(cache.geometry().total_lines() * words_, 0) {}

void UniformEccScheme::encode_words(u64 set, unsigned way, u64 word_mask) {
  const auto data = cache().data(set, way);
  u64* check = ecc_.data() + line_slot(set, way) * words_;
  secded().encode_batch_masked(data, word_mask, {check, words_});
}

void UniformEccScheme::on_fill(u64 set, unsigned way) {
  encode_words(set, way, ~u64{0});
}

void UniformEccScheme::on_write_applied(u64 set, unsigned way, u64 word_mask) {
  encode_words(set, way, word_mask);
}

ReadCheck UniformEccScheme::check_read(u64 set, unsigned way,
                                       const mem::MemoryStore& memory) {
  ReadCheck out;
  auto data = cache().data(set, way);
  u64* check = ecc_.data() + line_slot(set, way) * words_;
  // Batched clean scan: only words whose stored check disagrees with a
  // re-encode enter the scalar syndrome decoder (a clean word decodes to
  // kOk, which the old per-word loop treated as a no-op anyway).
  for (u64 mm = secded().mismatch_mask(data, {check, words_}); mm != 0;
       mm &= mm - 1) {
    const auto w = static_cast<unsigned>(std::countr_zero(mm));
    const ecc::DecodeResult r = secded().decode(data[w], check[w]);
    switch (r.status) {
      case ecc::DecodeStatus::kOk:
        break;
      case ecc::DecodeStatus::kCorrectedSingle:
        data[w] = r.data;
        check[w] = r.check;
        ++out.words_corrected;
        break;
      case ecc::DecodeStatus::kDetectedError:
      case ecc::DecodeStatus::kDetectedDouble:
        ++out.words_detected;
        break;
    }
  }
  if (out.words_detected > 0) {
    // A clean line with an uncorrectable (but detected) error can still be
    // recovered by re-fetching from memory — the dirty case is the true DUE.
    if (!cache().meta(set, way).dirty) {
      memory.read_line(cache().line_addr(set, way), data);
      encode_words(set, way, ~u64{0});
      out.outcome = ReadOutcome::kRefetched;
    } else {
      out.outcome = ReadOutcome::kUncorrectable;
    }
  } else if (out.words_corrected > 0) {
    out.outcome = ReadOutcome::kCorrected;
  }
  return out;
}

std::span<u64> UniformEccScheme::ecc_words(u64 set, unsigned way) {
  return {ecc_.data() + line_slot(set, way) * words_, words_};
}

AreaReport UniformEccScheme::area() const {
  return conventional_area(cache().geometry());
}

}  // namespace aeep::protect
