#include "protect/cleaning_logic.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace aeep::protect {

CleaningLogic::CleaningLogic(u64 num_sets, Cycle interval)
    : num_sets_(num_sets), interval_(interval) {
  assert(num_sets > 0);
  set_period_ = interval_ ? (interval_ + num_sets_ - 1) / num_sets_ : 0;
  if (interval_ && set_period_ == 0) set_period_ = 1;
  next_due_ = set_period_;
}

std::optional<u64> CleaningLogic::due(Cycle now) {
  if (!enabled() || now < next_due_) return std::nullopt;
  const u64 set = next_set_;
  next_set_ = (next_set_ + 1) % num_sets_;
  next_due_ += set_period_;
  return set;
}

unsigned CleaningLogic::latch_bits() const {
  return is_pow2(num_sets_) ? log2_exact(num_sets_) : 64;
}

void CleaningLogic::reset() {
  next_set_ = 0;
  next_due_ = set_period_;
}

}  // namespace aeep::protect
