#include "protect/scrubber.hpp"

#include <cassert>

namespace aeep::protect {

Scrubber::Scrubber(ProtectedL2& l2, Cycle interval)
    : l2_(&l2), fsm_(l2.config().geometry.num_sets(), interval) {
  assert(l2.config().maintain_codes &&
         "scrubbing requires real check bits (maintain_codes)");
}

void Scrubber::scrub_set(Cycle now, u64 set) {
  (void)now;
  cache::Cache& cache = l2_->cache_model();
  for (unsigned way = 0; way < l2_->config().geometry.ways; ++way) {
    if (!cache.meta(set, way).valid) continue;
    const ReadCheck rc = l2_->scheme().check_read(set, way, l2_->memory());
    ++stats_.lines_scrubbed;
    stats_.words_corrected += rc.words_corrected;
    switch (rc.outcome) {
      case ReadOutcome::kRefetched:
        ++stats_.lines_refetched;
        break;
      case ReadOutcome::kUncorrectable:
        ++stats_.uncorrectable;
        break;
      default:
        break;
    }
  }
}

void Scrubber::tick(Cycle now) {
  while (auto set = fsm_.due(now)) scrub_set(now, *set);
}

void Scrubber::scrub_all(Cycle now) {
  for (u64 set = 0; set < l2_->config().geometry.num_sets(); ++set)
    scrub_set(now, set);
}

}  // namespace aeep::protect
