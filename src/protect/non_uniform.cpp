#include "protect/non_uniform.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/bitops.hpp"

namespace aeep::protect {

NonUniformScheme::NonUniformScheme(cache::Cache& cache)
    : ProtectionScheme(cache),
      words_(cache.geometry().words_per_line()),
      parity_(cache.geometry().total_lines() * words_, 0),
      ecc_(cache.geometry().total_lines() * words_, 0),
      ecc_valid_(cache.geometry().total_lines(), 0) {}

void NonUniformScheme::encode_parity(u64 set, unsigned way, u64 word_mask) {
  const auto data = cache().data(set, way);
  u64* par = parity_.data() + line_slot(set, way) * words_;
  parity_codec().encode_batch_masked(data, word_mask, {par, words_});
}

void NonUniformScheme::encode_ecc(u64 set, unsigned way, u64 word_mask) {
  const auto data = cache().data(set, way);
  u64* check = ecc_.data() + line_slot(set, way) * words_;
  secded().encode_batch_masked(data, word_mask, {check, words_});
}

void NonUniformScheme::on_fill(u64 set, unsigned way) {
  encode_parity(set, way, ~u64{0});
  ecc_valid_[line_slot(set, way)] = 0;
}

void NonUniformScheme::on_write_applied(u64 set, unsigned way, u64 word_mask) {
  encode_parity(set, way, word_mask);
  assert(cache().meta(set, way).dirty);
  u8& valid = ecc_valid_[line_slot(set, way)];
  if (!valid) {
    // First write since the line was (re)cleaned: the whole line needs
    // fresh ECC, not just the written words.
    encode_ecc(set, way, ~u64{0});
    valid = 1;
  } else {
    encode_ecc(set, way, word_mask);
  }
  peak_dirty_ = std::max(peak_dirty_, cache().dirty_count());
}

void NonUniformScheme::on_writeback(u64 set, unsigned way) {
  ecc_valid_[line_slot(set, way)] = 0;
}

void NonUniformScheme::on_evict(u64 set, unsigned way) {
  ecc_valid_[line_slot(set, way)] = 0;
}

ReadCheck NonUniformScheme::check_read(u64 set, unsigned way,
                                       const mem::MemoryStore& memory) {
  ReadCheck out;
  auto data = cache().data(set, way);
  const bool dirty = cache().meta(set, way).dirty;

  if (dirty) {
    // §3.3: "Otherwise, ECC is used for error detection and correction."
    assert(ecc_valid_[line_slot(set, way)]);
    u64* check = ecc_.data() + line_slot(set, way) * words_;
    // Batched clean scan; only flagged words take the scalar decoder.
    for (u64 mm = secded().mismatch_mask(data, {check, words_}); mm != 0;
         mm &= mm - 1) {
      const auto w = static_cast<unsigned>(std::countr_zero(mm));
      const ecc::DecodeResult r = secded().decode(data[w], check[w]);
      switch (r.status) {
        case ecc::DecodeStatus::kOk:
          break;
        case ecc::DecodeStatus::kCorrectedSingle:
          data[w] = r.data;
          check[w] = r.check;
          // Keep the parity bit consistent with the repaired word.
          encode_parity(set, way, u64{1} << w);
          ++out.words_corrected;
          break;
        case ecc::DecodeStatus::kDetectedError:
        case ecc::DecodeStatus::kDetectedDouble:
          ++out.words_detected;
          break;
      }
    }
    if (out.words_detected > 0)
      out.outcome = ReadOutcome::kUncorrectable;
    else if (out.words_corrected > 0)
      out.outcome = ReadOutcome::kCorrected;
    return out;
  }

  // Clean line: parity only; any detected error is repaired by re-fetch.
  const u64* par = parity_.data() + line_slot(set, way) * words_;
  out.words_detected =
      popcount64(parity_codec().mismatch_mask(data, {par, words_}));
  if (out.words_detected > 0) {
    memory.read_line(cache().line_addr(set, way), data);
    encode_parity(set, way, ~u64{0});
    out.outcome = ReadOutcome::kRefetched;
  }
  return out;
}

std::span<u64> NonUniformScheme::parity_words(u64 set, unsigned way) {
  return {parity_.data() + line_slot(set, way) * words_, words_};
}

std::span<u64> NonUniformScheme::ecc_words(u64 set, unsigned way) {
  if (!ecc_valid_[line_slot(set, way)]) return {};
  return {ecc_.data() + line_slot(set, way) * words_, words_};
}

void NonUniformScheme::reset_metrics() { peak_dirty_ = cache().dirty_count(); }

AreaReport NonUniformScheme::area() const {
  const double frac =
      static_cast<double>(peak_dirty_) /
      static_cast<double>(cache().geometry().total_lines());
  return non_uniform_area(cache().geometry(), frac);
}

}  // namespace aeep::protect
