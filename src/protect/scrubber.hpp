// Background memory scrubber — the classic complement to the paper's
// scheme. Latent single-bit errors in rarely-read lines accumulate until a
// second strike turns them into DUEs (dirty lines) or SDCs (clean lines,
// same word). A scrubber walks the cache like the cleaning FSM does,
// running the protection scheme's read-validation path on every valid line
// so singles are corrected (or clean lines refetched) before they can pair.
//
// Shares the cleaning FSM's hardware shape: one set inspected every
// `interval / num_sets` cycles.
#pragma once

#include "protect/cleaning_logic.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::protect {

struct ScrubberStats {
  u64 lines_scrubbed = 0;
  u64 words_corrected = 0;   ///< latent singles repaired by SECDED
  u64 lines_refetched = 0;   ///< clean lines repaired from memory
  u64 uncorrectable = 0;     ///< latent damage already beyond repair
};

class Scrubber {
 public:
  /// `interval` is the per-line revisit period in cycles; 0 disables.
  /// Requires the L2 to maintain real check bits.
  Scrubber(ProtectedL2& l2, Cycle interval);

  /// Call once per cycle (cheap when nothing is due).
  void tick(Cycle now);

  /// Scrub every valid line immediately (end-of-campaign accounting).
  void scrub_all(Cycle now);

  const ScrubberStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  Cycle interval() const { return fsm_.interval(); }

 private:
  void scrub_set(Cycle now, u64 set);

  ProtectedL2* l2_;
  CleaningLogic fsm_;  ///< reuse the set-walking schedule
  ScrubberStats stats_;
};

}  // namespace aeep::protect
