// Protection energy model (the Li et al. [11] angle the paper cites:
// "parity codes are more energy-efficient than ECC").
//
// Event-based accounting: every L2 access pays for the check-bit storage it
// touches and the codec logic it runs; write-backs and refetches pay bus
// energy. Default per-event energies are representative 90nm-class values
// (documented per field); they are inputs, not claims — the bench sweeps
// them. What the model exposes is the *structure* of the saving: under
// non-uniform protection a clean-line read runs a 1-bit parity check
// instead of a SECDED decode, and the smaller ECC array is cheaper to
// access than a per-way ECC array.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::protect {

struct EnergyParams {
  // Codec logic, per 64-bit word.
  double parity_check_pj = 0.8;   ///< XOR tree over 65 bits
  double secded_decode_pj = 4.5;  ///< syndrome + correct over 72 bits
  double secded_encode_pj = 4.0;

  // Check-bit storage access, per line, scaled by array size.
  double ecc_array_read_pj_per_kb = 0.09;   ///< ~11.5 pJ for a 128KB array
  double ecc_array_write_pj_per_kb = 0.11;
  double parity_array_read_pj_per_kb = 0.09;
  double parity_array_write_pj_per_kb = 0.11;

  // Off-chip traffic, per 64-byte line moved.
  double bus_line_pj = 1800.0;
  double dram_access_pj = 9000.0;
};

struct EnergyBreakdown {
  std::string scheme;
  double codec_pj = 0;        ///< parity/SECDED logic
  double check_storage_pj = 0;///< ECC / parity array accesses
  double extra_traffic_pj = 0;///< write-backs beyond the baseline's
  double total_pj() const { return codec_pj + check_storage_pj + extra_traffic_pj; }
};

/// Event counts extracted from a run (see sim::RunResult -> to_energy_events).
struct EnergyEvents {
  u64 l2_reads = 0;        ///< demand reads (hits+misses)
  u64 l2_writes = 0;       ///< write-buffer drains
  u64 l2_fills = 0;        ///< lines installed
  u64 clean_read_fraction_permille = 500;  ///< share of reads hitting clean lines
  u64 writebacks = 0;      ///< all write-backs of this configuration
  u64 baseline_writebacks = 0;  ///< write-backs of the org configuration
  unsigned words_per_line = 8;
};

/// Estimate protection energy for a scheme processing `events`.
EnergyBreakdown estimate_energy(SchemeKind scheme, const EnergyEvents& events,
                                const cache::CacheGeometry& geom,
                                unsigned ecc_entries_per_set,
                                const EnergyParams& params = {});

}  // namespace aeep::protect
