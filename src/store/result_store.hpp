// Content-addressed, disk-persistent result store.
//
// In memory: an open-addressed, fixed-footprint index (SoA slot arrays +
// a power-of-two probe table sized once at construction — no rehashing,
// no per-entry allocation) fronted by a segmented LRU in the TrustedSSD
// style: a new entry lands on the *probationary* list; its second touch
// promotes it to the *protected* list; when protected grows past half the
// capacity its LRU tail is demoted back to probationary MRU. Scan-like
// workloads (a one-off sweep of new cells) therefore churn only the
// probationary segment and cannot flush the proven-hot protected entries.
//
// On disk: one append-only segment file per store directory,
//
//   header  := magic "AEST" | version u32
//   record  := tag u8 ('R') | payload_bytes u32 | crc32(payload) u32
//              | payload (key u64 LE + JSON bytes)
//
// reusing the trace subsystem's CRC-framed chunk idiom and its checked
// FileReader/FileWriter (short I/O raises typed TraceErrors). Appends are
// flushed record-at-a-time; reopening scans the segment to rebuild the
// index and truncates a torn tail (a record cut short by a crash) without
// touching anything before it. An updated key is appended again — the
// scan's later-record-wins rule makes the old record dead. gc() compacts
// live records into a temp file and renames it over the segment
// (write-temp-then-rename, so a crash mid-GC leaves the old segment
// intact), evicting probationary entries LRU-first until the segment fits
// the byte budget.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "store/digest.hpp"
#include "trace/io.hpp"

namespace aeep::store {

struct StoreConfig {
  std::string dir;               ///< created if missing
  std::size_t max_entries = 4096;  ///< in-memory index capacity
};

/// Counter snapshot (ResultStore::stats / reset_stats).
struct StoreStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 inserts = 0;      ///< new keys appended
  u64 updates = 0;      ///< existing keys re-appended
  u64 evictions = 0;    ///< index-capacity + GC evictions
  u64 corrupt_payloads = 0;  ///< CRC mismatch on a hit read (entry dropped)
  u64 recovered_records = 0; ///< records indexed by the reopen scan
  u64 dropped_records = 0;   ///< torn-tail records truncated on reopen
};

class ResultStore {
 public:
  /// Opens (creating the directory and segment if needed) and rebuilds the
  /// index from disk. Throws trace::TraceError(kIo/kCorrupt) when the
  /// segment exists but is not a store segment.
  explicit ResultStore(StoreConfig config);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Payload stored under `key`, promoting the entry (probationary ->
  /// protected on its second touch). nullopt = miss.
  std::optional<JsonValue> lookup(const Digest& key) AEEP_EXCLUDES(mutex_);

  /// Append `key` -> `payload`, durable before return. An existing key is
  /// updated in place (index-wise; the segment grows until gc()).
  void insert(const Digest& key, const JsonValue& payload)
      AEEP_EXCLUDES(mutex_);

  /// One live entry, in deterministic eviction order: probationary LRU
  /// first, probationary MRU, then protected LRU..MRU. aeep_store ls
  /// prints this order so "first line = next evicted".
  struct EntryInfo {
    Digest key{};
    u32 payload_bytes = 0;
    bool protected_segment = false;
  };
  std::vector<EntryInfo> entries() const AEEP_EXCLUDES(mutex_);

  std::size_t size() const AEEP_EXCLUDES(mutex_);       ///< live entries
  u64 disk_bytes() const AEEP_EXCLUDES(mutex_);         ///< segment size

  /// Compact the segment to the live entries, evicting (probationary LRU
  /// first, then protected LRU) until the compacted segment would fit
  /// `max_bytes`. Returns the number of entries evicted. Deterministic:
  /// the same store state and budget always evict the same keys.
  u64 gc(u64 max_bytes) AEEP_EXCLUDES(mutex_);

  StoreStats stats() const AEEP_EXCLUDES(mutex_);
  void reset_stats() AEEP_EXCLUDES(mutex_);

  const std::string& dir() const { return config_.dir; }
  static std::string segment_path(const std::string& dir);

 private:
  static constexpr u32 kNil = ~u32{0};

  /// One live index entry; slots are recycled through a free list.
  struct Slot {
    u64 key = 0;
    u64 offset = 0;       ///< record start in the segment file
    u32 payload_bytes = 0;
    u8 segment = 0;       ///< 0 = free, 1 = probationary, 2 = protected
    u32 prev = kNil, next = kNil;  ///< intrusive LRU links / free chain
  };

  /// One segment's intrusive list endpoints (LRU at head, MRU at tail).
  struct LruList {
    u32 head = kNil, tail = kNil;
    std::size_t count = 0;
  };

  void open_segment_locked() AEEP_REQUIRES(mutex_);
  void scan_segment_locked() AEEP_REQUIRES(mutex_);
  u32 find_slot_locked(u64 key) const AEEP_REQUIRES(mutex_);
  void table_insert_locked(u64 key, u32 slot) AEEP_REQUIRES(mutex_);
  void table_erase_locked(u64 key) AEEP_REQUIRES(mutex_);
  void list_push_mru_locked(LruList& list, u32 slot, u8 segment)
      AEEP_REQUIRES(mutex_);
  void list_unlink_locked(LruList& list, u32 slot) AEEP_REQUIRES(mutex_);
  void promote_locked(u32 slot) AEEP_REQUIRES(mutex_);
  /// Evict the probationary LRU (protected LRU when probationary is
  /// empty). Returns kNil when the store is empty.
  u32 evict_one_locked() AEEP_REQUIRES(mutex_);
  void drop_slot_locked(u32 slot) AEEP_REQUIRES(mutex_);
  /// Index an entry found at `offset` (scan / insert paths share it).
  void index_record_locked(u64 key, u64 offset, u32 payload_bytes)
      AEEP_REQUIRES(mutex_);
  std::vector<u8> read_payload_locked(u64 offset, u32 payload_bytes)
      AEEP_REQUIRES(mutex_);
  u64 record_bytes(u32 payload_bytes) const;

  StoreConfig config_;
  std::string segment_path_;

  mutable aeep::Mutex mutex_;
  std::vector<Slot> slots_ AEEP_GUARDED_BY(mutex_);
  u32 free_head_ AEEP_GUARDED_BY(mutex_) = kNil;
  /// Probe table: slot index, kNil = empty, kTomb = tombstone.
  std::vector<u32> table_ AEEP_GUARDED_BY(mutex_);
  std::size_t table_mask_ AEEP_GUARDED_BY(mutex_) = 0;
  std::size_t tombstones_ AEEP_GUARDED_BY(mutex_) = 0;
  LruList probationary_ AEEP_GUARDED_BY(mutex_);
  LruList protected_ AEEP_GUARDED_BY(mutex_);
  std::size_t protected_cap_ = 0;  ///< fixed at construction
  u64 segment_bytes_ AEEP_GUARDED_BY(mutex_) = 0;  ///< file size incl. dead
  std::unique_ptr<trace::FileWriter> writer_ AEEP_GUARDED_BY(mutex_);
  std::unique_ptr<trace::FileReader> reader_ AEEP_GUARDED_BY(mutex_);
  StoreStats stats_ AEEP_GUARDED_BY(mutex_){};
};

}  // namespace aeep::store
