#include "store/build_digest.hpp"

#include <atomic>
#include <string>

#include "common/crc64.hpp"
#include "trace/error.hpp"
#include "trace/io.hpp"

#ifndef AEEP_GIT_REV
#define AEEP_GIT_REV "unknown"
#endif

namespace aeep::store {

namespace {

std::atomic<u64> g_override{0};

u64 compute_build_digest() {
  std::string identity = "git:";
  identity += AEEP_GIT_REV;
  identity += ";exe:";
  try {
    // Whole-image CRC: catches dirty-tree rebuilds the git rev misses.
    const u64 exe_crc = trace::file_digest("/proc/self/exe");
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(exe_crc));
    identity += hex;
  } catch (const std::exception&) {
    identity += "unavailable";  // non-Linux: the git rev still keys
  }
  return crc64(identity);
}

}  // namespace

u64 build_digest() {
  const u64 forced = g_override.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const u64 digest = compute_build_digest();
  return digest;
}

void set_build_digest_for_testing(u64 value) {
  g_override.store(value, std::memory_order_relaxed);
}

}  // namespace aeep::store
