// Content addressing for sweep cells.
//
// Every cell is a pure function of (canonical job spec, seed, trace file
// contents): SweepRunner's determinism guarantee means two jobs with the
// same canonical JSON and the same trace bytes compute bit-identical
// RunResults, on any worker, in any batch order. A cell's identity is
// therefore the CRC64 of its canonical spec JSON — with the trace file's
// whole-file CRC64 folded in as a field for trace-driven runs — so
// semantically identical jobs collide on purpose and any spec or trace
// change misses.
//
// The canonical JSON deliberately excludes every *location* field
// (trace_dir, trace_path): two hosts replaying the same trace bytes from
// different paths must share a cache line. capture_path makes a job
// uncacheable — answering it from the store would silently skip the side
// effect the caller asked for.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"

namespace aeep::store {

/// A 64-bit content address, printed as 16 lowercase hex digits.
struct Digest {
  u64 value = 0;

  std::string hex() const;
  /// Inverse of hex(); nullopt unless exactly 16 hex digits.
  static std::optional<Digest> from_hex(const std::string& s);

  bool operator==(const Digest&) const = default;
};

/// The canonical spec JSON the digest hashes: every semantic knob of the
/// experiment in one fixed key order, rendered with dump(0), plus the
/// simulator's own build_digest() (a new build must miss, never serve
/// results the old code computed). For kTrace jobs `trace_crc64` carries
/// the trace file's content digest; pass 0 for non-trace jobs (the field
/// is then omitted).
JsonValue canonical_job_json(const std::string& benchmark,
                             const sim::ExperimentOptions& opts,
                             u64 trace_crc64);

/// Content address of one cell, or nullopt when the job is uncacheable:
/// capture_path is set (recording is a side effect), or the trace file a
/// kTrace job replays cannot be read to digest it.
std::optional<Digest> job_digest(const std::string& benchmark,
                                 const sim::ExperimentOptions& opts);

inline std::optional<Digest> job_digest(const sim::SweepJob& job) {
  return job_digest(job.benchmark, job.options);
}

}  // namespace aeep::store
