// Lossless RunResult <-> JSON codec for the result store.
//
// sim::run_result_json renders the canonical *metrics* view — the handful
// of derived numbers benches and the wire expose — but a cache hit must
// reproduce the full RunResult bit-for-bit (the server replays it through
// the same result_reply path a fresh simulation would take, and the sweep
// determinism tests compare with operator==). This codec therefore maps
// every field of RunResult and its nested stats structs; doubles render
// with %.17g (common/json.hpp) so decode(encode(r)) == r exactly.
#pragma once

#include <optional>

#include "common/json.hpp"
#include "sim/system.hpp"

namespace aeep::store {

JsonValue run_result_to_json(const sim::RunResult& r);

/// Inverse. nullopt when `j` is not a run_result_to_json document (wrong
/// shape or codec version) — callers treat that as a cache miss, never an
/// error, so a store written by a future codec degrades to cold.
std::optional<sim::RunResult> run_result_from_json(const JsonValue& j);

}  // namespace aeep::store
