// Identity of the simulator build, folded into every store::Digest.
//
// A result store outlives the binary that filled it. Canonical job JSON
// pins every semantic knob of a cell, but not the simulator itself: a code
// change that alters results (a fixed bug, a reordered RNG draw) would
// otherwise serve stale payloads byte-for-byte as if nothing happened —
// the worst kind of cache poisoning, because nothing fails. Folding the
// build identity into the key turns "simulator changed" into a clean cold
// miss.
//
// The identity is CRC64 over the compile-time git revision (baked in by
// CMake as AEEP_GIT_REV) and the CRC64 of the running executable image
// (/proc/self/exe), so even a dirty-tree rebuild at the same revision
// keys differently when the binary actually changed. Computed once per
// process on first use; a missing /proc (non-Linux) degrades to the git
// revision alone.
#pragma once

#include "common/types.hpp"

namespace aeep::store {

/// The running simulator's build digest (cached after the first call).
u64 build_digest();

/// Test hook: pin build_digest() to `value` (0 restores the real digest).
/// Lets a test prove cross-build behaviour — same job, different "build",
/// must miss — without actually building twice.
void set_build_digest_for_testing(u64 value);

}  // namespace aeep::store
