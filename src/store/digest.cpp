#include "store/digest.hpp"

#include "common/crc64.hpp"
#include "fault/injector.hpp"
#include "store/build_digest.hpp"
#include "protect/protected_l2.hpp"
#include "protect/recovery.hpp"
#include "trace/error.hpp"
#include "trace/io.hpp"

namespace aeep::store {

std::string Digest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i)
    out[static_cast<std::size_t>(i)] =
        digits[(value >> (60 - 4 * i)) & 0xF];
  return out;
}

std::optional<Digest> Digest::from_hex(const std::string& s) {
  if (s.size() != 16) return std::nullopt;
  u64 v = 0;
  for (const char c : s) {
    u64 nibble = 0;
    if (c >= '0' && c <= '9') nibble = static_cast<u64>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<u64>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') nibble = static_cast<u64>(c - 'A' + 10);
    else return std::nullopt;
    v = (v << 4) | nibble;
  }
  return Digest{v};
}

JsonValue canonical_job_json(const std::string& benchmark,
                             const sim::ExperimentOptions& opts,
                             u64 trace_crc64) {
  JsonValue j = JsonValue::object();
  j.set("v", JsonValue::number(u64{2}));
  // The simulator build is part of a cell's identity: a changed binary
  // must cold-miss rather than serve results the old code computed.
  j.set("build", JsonValue::string(Digest{build_digest()}.hex()));
  j.set("benchmark", JsonValue::string(benchmark));
  j.set("scheme", JsonValue::string(protect::to_string(opts.scheme)));
  j.set("cleaning_interval", JsonValue::number(opts.cleaning_interval));
  j.set("cleaning_policy",
        JsonValue::string(protect::to_string(opts.cleaning_policy)));
  j.set("decay_threshold", JsonValue::number(u64{opts.decay_threshold}));
  j.set("ecc_entries_per_set",
        JsonValue::number(u64{opts.ecc_entries_per_set}));
  j.set("instructions", JsonValue::number(opts.instructions));
  j.set("warmup_instructions", JsonValue::number(opts.warmup_instructions));
  j.set("seed", JsonValue::number(opts.seed));
  j.set("maintain_codes", JsonValue::boolean(opts.maintain_codes));
  j.set("frontend", JsonValue::string(sim::to_string(opts.frontend)));
  if (opts.frontend == sim::Frontend::kTrace)
    j.set("trace_crc64", JsonValue::string(Digest{trace_crc64}.hex()));
  j.set("strikes_enabled", JsonValue::boolean(opts.strikes_enabled));
  j.set("strike_lambda", JsonValue::number(opts.strike_lambda));
  j.set("strike_rate_scale", JsonValue::number(opts.strike_rate_scale));
  j.set("strike_double_bit_fraction",
        JsonValue::number(opts.strike_double_bit_fraction));
  JsonValue faults = JsonValue::array();
  for (const fault::StuckFault& f : opts.stuck_faults) {
    JsonValue fj = JsonValue::object();
    fj.set("target", JsonValue::string(fault::to_string(f.target)));
    fj.set("set", JsonValue::number(f.set));
    fj.set("way", JsonValue::number(u64{f.way}));
    fj.set("bit", JsonValue::number(f.bit));
    fj.set("stuck_high", JsonValue::boolean(f.stuck_high));
    fj.set("start", JsonValue::number(f.start));
    fj.set("period", JsonValue::number(f.period));
    faults.push(std::move(fj));
  }
  j.set("stuck_faults", std::move(faults));
  j.set("due_policy", JsonValue::string(protect::to_string(opts.due_policy)));
  j.set("retirement_threshold",
        JsonValue::number(u64{opts.retirement_threshold}));
  j.set("max_refetch_retries",
        JsonValue::number(u64{opts.max_refetch_retries}));
  return j;
}

std::optional<Digest> job_digest(const std::string& benchmark,
                                 const sim::ExperimentOptions& opts) {
  if (!opts.capture_path.empty()) return std::nullopt;
  u64 trace_crc = 0;
  if (opts.frontend == sim::Frontend::kTrace) {
    try {
      trace_crc = trace::file_digest(sim::trace_path_for(benchmark, opts));
    } catch (const trace::TraceError&) {
      return std::nullopt;  // unreadable trace: let the real run report it
    } catch (const std::exception&) {
      return std::nullopt;  // unresolvable path (no trace_dir/trace_path)
    }
  }
  const std::string canon =
      canonical_job_json(benchmark, opts, trace_crc).dump(0);
  return Digest{crc64(canon)};
}

}  // namespace aeep::store
