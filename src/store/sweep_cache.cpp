#include "store/sweep_cache.hpp"

#include <utility>

#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "sim/result_json.hpp"
#include "store/result_codec.hpp"

namespace aeep::store {

namespace {
constexpr u64 kPayloadVersion = 1;

// Store-level telemetry, shared by every SweepCache in the process (the
// served cache and a fabric coordinator's cache count into one place).
metrics::Histogram& lookup_us_hist() {
  static metrics::Histogram& h =
      metrics::Registry::instance().histogram("store.lookup_us");
  return h;
}
metrics::Histogram& insert_us_hist() {
  static metrics::Histogram& h =
      metrics::Registry::instance().histogram("store.insert_us");
  return h;
}
metrics::Counter& hits_counter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("store.hits");
  return c;
}
metrics::Counter& misses_counter() {
  static metrics::Counter& c =
      metrics::Registry::instance().counter("store.misses");
  return c;
}
}  // namespace

SweepCache::SweepCache(StoreConfig config) : store_(std::move(config)) {}

std::optional<sim::RunResult> SweepCache::lookup_result(
    const sim::SweepJob& job) {
  const metrics::ScopedTimer span(lookup_us_hist());
  const std::optional<Digest> key = job_digest(job);
  if (!key) {
    const MutexLock lock(mutex_);
    ++stats_.uncacheable;
    return std::nullopt;
  }
  const std::optional<JsonValue> payload = store_.lookup(*key);
  if (payload && payload->get_u64("v") == kPayloadVersion) {
    if (const JsonValue* full = payload->find("full")) {
      if (std::optional<sim::RunResult> r = run_result_from_json(*full)) {
        const MutexLock lock(mutex_);
        ++stats_.hits;
        hits_counter().increment();
        return r;
      }
    }
  }
  const MutexLock lock(mutex_);
  ++stats_.misses;
  misses_counter().increment();
  return std::nullopt;
}

std::optional<JsonValue> SweepCache::lookup_metrics(const sim::SweepJob& job) {
  const metrics::ScopedTimer span(lookup_us_hist());
  const std::optional<Digest> key = job_digest(job);
  if (!key) {
    const MutexLock lock(mutex_);
    ++stats_.uncacheable;
    return std::nullopt;
  }
  const std::optional<JsonValue> payload = store_.lookup(*key);
  if (payload && payload->get_u64("v") == kPayloadVersion) {
    if (const JsonValue* metrics = payload->find("metrics")) {
      if (metrics->is_object()) {
        const MutexLock lock(mutex_);
        ++stats_.hits;
        hits_counter().increment();
        return *metrics;
      }
    }
  }
  const MutexLock lock(mutex_);
  ++stats_.misses;
  misses_counter().increment();
  return std::nullopt;
}

void SweepCache::insert(const sim::SweepJob& job, const sim::RunResult& result) {
  const metrics::ScopedTimer span(insert_us_hist());
  const std::optional<Digest> key = job_digest(job);
  if (!key) {
    const MutexLock lock(mutex_);
    ++stats_.uncacheable;
    return;
  }
  JsonValue payload = JsonValue::object();
  payload.set("v", JsonValue::number(kPayloadVersion));
  payload.set("benchmark", JsonValue::string(job.benchmark));
  payload.set("metrics", sim::run_result_json(result));
  payload.set("full", run_result_to_json(result));
  store_.insert(*key, payload);
  const MutexLock lock(mutex_);
  ++stats_.inserts;
}

void SweepCache::insert_metrics(const sim::SweepJob& job,
                                const JsonValue& metrics) {
  const metrics::ScopedTimer span(insert_us_hist());
  const std::optional<Digest> key = job_digest(job);
  if (!key) {
    const MutexLock lock(mutex_);
    ++stats_.uncacheable;
    return;
  }
  JsonValue payload = JsonValue::object();
  payload.set("v", JsonValue::number(kPayloadVersion));
  payload.set("benchmark", JsonValue::string(job.benchmark));
  payload.set("metrics", metrics);
  store_.insert(*key, payload);
  const MutexLock lock(mutex_);
  ++stats_.inserts;
}

SweepCacheStats SweepCache::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void SweepCache::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = SweepCacheStats{};
}

std::vector<sim::RunResult> run_grid_cached(
    const sim::SweepRunner& runner, const std::vector<sim::SweepJob>& grid,
    SweepCache* cache, const sim::SweepRunner::ProgressFn& progress,
    std::vector<double>* wall_seconds) {
  if (!cache) return runner.run_or_throw(grid, progress, wall_seconds);

  const std::size_t n = grid.size();
  std::vector<sim::RunResult> out(n);
  if (wall_seconds) wall_seconds->assign(n, 0.0);

  std::vector<std::size_t> miss_indices;
  std::size_t completed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::optional<sim::RunResult> hit = cache->lookup_result(grid[i]);
    if (!hit) {
      miss_indices.push_back(i);
      continue;
    }
    out[i] = std::move(*hit);
    ++completed;
    if (progress) {
      sim::SweepOutcome outcome;
      outcome.result = out[i];
      sim::SweepProgress p;
      p.completed = completed;
      p.total = n;
      p.job_index = i;
      p.job = &grid[i];
      p.outcome = &outcome;
      progress(p);
    }
  }
  if (miss_indices.empty()) return out;

  std::vector<sim::SweepJob> miss_grid;
  miss_grid.reserve(miss_indices.size());
  for (const std::size_t i : miss_indices) miss_grid.push_back(grid[i]);

  // Re-base the runner's progress events onto the full grid: completed
  // continues from the hit count, job_index maps back to the caller's grid.
  sim::SweepRunner::ProgressFn wrapped;
  if (progress) {
    const std::size_t hits = completed;
    wrapped = [&, hits](const sim::SweepProgress& p) {
      sim::SweepProgress q = p;
      q.completed = hits + p.completed;
      q.total = n;
      q.job_index = miss_indices[p.job_index];
      progress(q);
    };
  }

  std::vector<double> miss_walls;
  const std::vector<sim::RunResult> miss_results = runner.run_or_throw(
      miss_grid, wrapped, wall_seconds ? &miss_walls : nullptr);
  for (std::size_t k = 0; k < miss_indices.size(); ++k) {
    const std::size_t i = miss_indices[k];
    out[i] = miss_results[k];
    if (wall_seconds) (*wall_seconds)[i] = miss_walls[k];
    cache->insert(grid[i], miss_results[k]);
  }
  return out;
}

}  // namespace aeep::store
