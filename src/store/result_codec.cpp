#include "store/result_codec.hpp"

namespace aeep::store {

namespace {

constexpr u64 kCodecVersion = 1;

JsonValue cache_stats_json(const cache::CacheStats& s) {
  JsonValue j = JsonValue::object();
  j.set("reads", JsonValue::number(s.reads));
  j.set("read_hits", JsonValue::number(s.read_hits));
  j.set("writes", JsonValue::number(s.writes));
  j.set("write_hits", JsonValue::number(s.write_hits));
  j.set("fills", JsonValue::number(s.fills));
  j.set("evictions", JsonValue::number(s.evictions));
  j.set("dirty_evictions", JsonValue::number(s.dirty_evictions));
  return j;
}

cache::CacheStats cache_stats_from(const JsonValue& j) {
  cache::CacheStats s;
  s.reads = j.get_u64("reads");
  s.read_hits = j.get_u64("read_hits");
  s.writes = j.get_u64("writes");
  s.write_hits = j.get_u64("write_hits");
  s.fills = j.get_u64("fills");
  s.evictions = j.get_u64("evictions");
  s.dirty_evictions = j.get_u64("dirty_evictions");
  return s;
}

JsonValue tlb_stats_json(const cpu::TlbStats& s) {
  JsonValue j = JsonValue::object();
  j.set("accesses", JsonValue::number(s.accesses));
  j.set("misses", JsonValue::number(s.misses));
  return j;
}

cpu::TlbStats tlb_stats_from(const JsonValue& j) {
  cpu::TlbStats s;
  s.accesses = j.get_u64("accesses");
  s.misses = j.get_u64("misses");
  return s;
}

}  // namespace

JsonValue run_result_to_json(const sim::RunResult& r) {
  JsonValue j = JsonValue::object();
  j.set("codec", JsonValue::number(kCodecVersion));
  j.set("benchmark", JsonValue::string(r.benchmark));
  j.set("floating_point", JsonValue::boolean(r.floating_point));

  JsonValue core = JsonValue::object();
  core.set("cycles", JsonValue::number(r.core.cycles));
  core.set("committed", JsonValue::number(r.core.committed));
  core.set("loads", JsonValue::number(r.core.loads));
  core.set("stores", JsonValue::number(r.core.stores));
  core.set("branches", JsonValue::number(r.core.branches));
  core.set("commit_stall_wb_full",
           JsonValue::number(r.core.commit_stall_wb_full));
  core.set("fetch_stall_cycles", JsonValue::number(r.core.fetch_stall_cycles));
  JsonValue bp = JsonValue::object();
  bp.set("lookups", JsonValue::number(r.core.bp.lookups));
  bp.set("dir_mispredicts", JsonValue::number(r.core.bp.dir_mispredicts));
  bp.set("target_mispredicts",
         JsonValue::number(r.core.bp.target_mispredicts));
  core.set("bp", std::move(bp));
  j.set("core", std::move(core));

  j.set("avg_dirty_fraction", JsonValue::number(r.avg_dirty_fraction));
  j.set("avg_dirty_lines", JsonValue::number(r.avg_dirty_lines));
  j.set("peak_dirty_lines", JsonValue::number(r.peak_dirty_lines));
  j.set("wb_replacement", JsonValue::number(r.wb_replacement));
  j.set("wb_cleaning", JsonValue::number(r.wb_cleaning));
  j.set("wb_ecc", JsonValue::number(r.wb_ecc));

  j.set("l1i", cache_stats_json(r.l1i));
  j.set("l1d", cache_stats_json(r.l1d));
  j.set("l2", cache_stats_json(r.l2));

  JsonValue wbuf = JsonValue::object();
  wbuf.set("stores", JsonValue::number(r.wbuf.stores));
  wbuf.set("coalesced", JsonValue::number(r.wbuf.coalesced));
  wbuf.set("drains", JsonValue::number(r.wbuf.drains));
  wbuf.set("full_events", JsonValue::number(r.wbuf.full_events));
  wbuf.set("free_list_peak", JsonValue::number(r.wbuf.free_list_peak));
  j.set("wbuf", std::move(wbuf));

  JsonValue bus = JsonValue::object();
  bus.set("reads", JsonValue::number(r.bus.reads));
  bus.set("writes", JsonValue::number(r.bus.writes));
  bus.set("bytes_read", JsonValue::number(r.bus.bytes_read));
  bus.set("bytes_written", JsonValue::number(r.bus.bytes_written));
  bus.set("busy_cycles", JsonValue::number(r.bus.busy_cycles));
  bus.set("queue_delay_cycles", JsonValue::number(r.bus.queue_delay_cycles));
  j.set("bus", std::move(bus));

  j.set("itlb", tlb_stats_json(r.itlb));
  j.set("dtlb", tlb_stats_json(r.dtlb));

  JsonValue rec = JsonValue::object();
  rec.set("checks", JsonValue::number(r.recovery.checks));
  rec.set("errors", JsonValue::number(r.recovery.errors));
  rec.set("corrected", JsonValue::number(r.recovery.corrected));
  rec.set("refetched", JsonValue::number(r.recovery.refetched));
  rec.set("retries", JsonValue::number(r.recovery.retries));
  rec.set("retry_exhausted", JsonValue::number(r.recovery.retry_exhausted));
  rec.set("due_events", JsonValue::number(r.recovery.due_events));
  rec.set("lines_dropped", JsonValue::number(r.recovery.lines_dropped));
  rec.set("dirty_lines_lost", JsonValue::number(r.recovery.dirty_lines_lost));
  rec.set("lines_poisoned", JsonValue::number(r.recovery.lines_poisoned));
  rec.set("poison_reads", JsonValue::number(r.recovery.poison_reads));
  rec.set("poisoned_writebacks",
          JsonValue::number(r.recovery.poisoned_writebacks));
  rec.set("panics", JsonValue::number(r.recovery.panics));
  rec.set("ways_retired", JsonValue::number(r.recovery.ways_retired));
  rec.set("stall_cycles", JsonValue::number(r.recovery.stall_cycles));
  j.set("recovery", std::move(rec));

  JsonValue st = JsonValue::object();
  st.set("strikes", JsonValue::number(r.strikes.strikes));
  st.set("bits_flipped", JsonValue::number(r.strikes.bits_flipped));
  st.set("data_hits", JsonValue::number(r.strikes.data_hits));
  st.set("parity_hits", JsonValue::number(r.strikes.parity_hits));
  st.set("ecc_hits", JsonValue::number(r.strikes.ecc_hits));
  st.set("absorbed", JsonValue::number(r.strikes.absorbed));
  st.set("stuck_reasserts", JsonValue::number(r.strikes.stuck_reasserts));
  j.set("strikes", std::move(st));

  j.set("retired_ways", JsonValue::number(r.retired_ways));
  j.set("retired_capacity_fraction",
        JsonValue::number(r.retired_capacity_fraction));
  j.set("panicked", JsonValue::boolean(r.panicked));
  return j;
}

std::optional<sim::RunResult> run_result_from_json(const JsonValue& j) {
  if (!j.is_object() || j.get_u64("codec") != kCodecVersion)
    return std::nullopt;
  // The kind-mismatch-tolerant getters make a partially missing document
  // decode to zeros; require the load-bearing sub-objects so a truncated
  // or foreign document reads as a miss, not as an all-zero result.
  const JsonValue* core = j.find("core");
  const JsonValue* recovery = j.find("recovery");
  if (!core || !core->is_object() || !recovery || !recovery->is_object())
    return std::nullopt;

  sim::RunResult r;
  r.benchmark = j.get_string("benchmark");
  r.floating_point = j.get_bool("floating_point");

  r.core.cycles = core->get_u64("cycles");
  r.core.committed = core->get_u64("committed");
  r.core.loads = core->get_u64("loads");
  r.core.stores = core->get_u64("stores");
  r.core.branches = core->get_u64("branches");
  r.core.commit_stall_wb_full = core->get_u64("commit_stall_wb_full");
  r.core.fetch_stall_cycles = core->get_u64("fetch_stall_cycles");
  if (const JsonValue* bp = core->find("bp")) {
    r.core.bp.lookups = bp->get_u64("lookups");
    r.core.bp.dir_mispredicts = bp->get_u64("dir_mispredicts");
    r.core.bp.target_mispredicts = bp->get_u64("target_mispredicts");
  }

  r.avg_dirty_fraction = j.get_double("avg_dirty_fraction");
  r.avg_dirty_lines = j.get_u64("avg_dirty_lines");
  r.peak_dirty_lines = j.get_u64("peak_dirty_lines");
  r.wb_replacement = j.get_u64("wb_replacement");
  r.wb_cleaning = j.get_u64("wb_cleaning");
  r.wb_ecc = j.get_u64("wb_ecc");

  if (const JsonValue* c = j.find("l1i")) r.l1i = cache_stats_from(*c);
  if (const JsonValue* c = j.find("l1d")) r.l1d = cache_stats_from(*c);
  if (const JsonValue* c = j.find("l2")) r.l2 = cache_stats_from(*c);

  if (const JsonValue* w = j.find("wbuf")) {
    r.wbuf.stores = w->get_u64("stores");
    r.wbuf.coalesced = w->get_u64("coalesced");
    r.wbuf.drains = w->get_u64("drains");
    r.wbuf.full_events = w->get_u64("full_events");
    r.wbuf.free_list_peak = w->get_u64("free_list_peak");
  }

  if (const JsonValue* b = j.find("bus")) {
    r.bus.reads = b->get_u64("reads");
    r.bus.writes = b->get_u64("writes");
    r.bus.bytes_read = b->get_u64("bytes_read");
    r.bus.bytes_written = b->get_u64("bytes_written");
    r.bus.busy_cycles = b->get_u64("busy_cycles");
    r.bus.queue_delay_cycles = b->get_u64("queue_delay_cycles");
  }

  if (const JsonValue* t = j.find("itlb")) r.itlb = tlb_stats_from(*t);
  if (const JsonValue* t = j.find("dtlb")) r.dtlb = tlb_stats_from(*t);

  r.recovery.checks = recovery->get_u64("checks");
  r.recovery.errors = recovery->get_u64("errors");
  r.recovery.corrected = recovery->get_u64("corrected");
  r.recovery.refetched = recovery->get_u64("refetched");
  r.recovery.retries = recovery->get_u64("retries");
  r.recovery.retry_exhausted = recovery->get_u64("retry_exhausted");
  r.recovery.due_events = recovery->get_u64("due_events");
  r.recovery.lines_dropped = recovery->get_u64("lines_dropped");
  r.recovery.dirty_lines_lost = recovery->get_u64("dirty_lines_lost");
  r.recovery.lines_poisoned = recovery->get_u64("lines_poisoned");
  r.recovery.poison_reads = recovery->get_u64("poison_reads");
  r.recovery.poisoned_writebacks = recovery->get_u64("poisoned_writebacks");
  r.recovery.panics = recovery->get_u64("panics");
  r.recovery.ways_retired = recovery->get_u64("ways_retired");
  r.recovery.stall_cycles = recovery->get_u64("stall_cycles");

  if (const JsonValue* s = j.find("strikes")) {
    r.strikes.strikes = s->get_u64("strikes");
    r.strikes.bits_flipped = s->get_u64("bits_flipped");
    r.strikes.data_hits = s->get_u64("data_hits");
    r.strikes.parity_hits = s->get_u64("parity_hits");
    r.strikes.ecc_hits = s->get_u64("ecc_hits");
    r.strikes.absorbed = s->get_u64("absorbed");
    r.strikes.stuck_reasserts = s->get_u64("stuck_reasserts");
  }

  r.retired_ways = j.get_u64("retired_ways");
  r.retired_capacity_fraction = j.get_double("retired_capacity_fraction");
  r.panicked = j.get_bool("panicked");
  return r;
}

}  // namespace aeep::store
