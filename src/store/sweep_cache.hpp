// Job-level view of the result store: content-addressed caching of whole
// sweep cells.
//
// A SweepJob's digest (store/digest.hpp) keys a payload holding both the
// canonical metrics object (sim/result_json.hpp — what the wire protocol
// and bench reporters emit) and the full RunResult codec document
// (store/result_codec.hpp). Consumers that only need metrics (the fabric
// coordinator, aeep_served replies) hit on either form; consumers that
// need the full RunResult (the benches, which post-process raw counters)
// hit only on payloads that carry the "full" document. A metrics-only
// record therefore reads as a miss for a full-result consumer — it is
// never silently widened into a fabricated RunResult.
#pragma once

#include <optional>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "sim/sweep.hpp"
#include "store/result_store.hpp"

namespace aeep::store {

/// Counter snapshot (SweepCache::stats / reset_stats). Uncacheable jobs
/// (capture runs, unreadable traces) count separately from misses so a
/// "why is my hit rate low" investigation can tell the two apart.
struct SweepCacheStats {
  u64 hits = 0;
  u64 misses = 0;
  u64 uncacheable = 0;
  u64 inserts = 0;
};

class SweepCache {
 public:
  /// Opens (or creates) the store under `config.dir`. Throws
  /// trace::TraceError when the directory's segment is not a store segment.
  explicit SweepCache(StoreConfig config);

  /// Full RunResult for `job`, or nullopt on miss / uncacheable job /
  /// metrics-only payload.
  std::optional<sim::RunResult> lookup_result(const sim::SweepJob& job)
      AEEP_EXCLUDES(mutex_);

  /// Canonical metrics object for `job` (run_result_json key set), or
  /// nullopt on miss / uncacheable job.
  std::optional<JsonValue> lookup_metrics(const sim::SweepJob& job)
      AEEP_EXCLUDES(mutex_);

  /// Store a completed cell: both the metrics rendering and the full codec
  /// document. No-op for uncacheable jobs.
  void insert(const sim::SweepJob& job, const sim::RunResult& result)
      AEEP_EXCLUDES(mutex_);

  /// Store a metrics-only cell — what the fabric coordinator has in hand
  /// for a worker-run job (workers return metrics JSON over the wire, not
  /// RunResults). No-op for uncacheable jobs.
  void insert_metrics(const sim::SweepJob& job, const JsonValue& metrics)
      AEEP_EXCLUDES(mutex_);

  SweepCacheStats stats() const AEEP_EXCLUDES(mutex_);
  void reset_stats() AEEP_EXCLUDES(mutex_);

  /// The backing store, for maintenance surfaces (aeep_store info/gc).
  ResultStore& result_store() { return store_; }

 private:
  ResultStore store_;
  mutable aeep::Mutex mutex_;
  SweepCacheStats stats_ AEEP_GUARDED_BY(mutex_){};
};

/// run_or_throw with a cache in front: cells already in `cache` are served
/// without touching the runner's pool; the rest run as one (smaller) grid
/// and are inserted on completion. `cache == nullptr` degrades to a plain
/// `runner.run_or_throw(grid, progress, wall_seconds)`.
///
/// Progress events fire for every cell — hits first, in grid order, each
/// with wall_seconds 0.0 — and `completed` stays strictly increasing
/// 1..N across the hit and miss phases, so existing status-line callbacks
/// work unchanged. Outcomes are indexed like `grid`, and a cached cell is
/// byte-identical to the run that produced it (the codec round-trips every
/// RunResult field).
std::vector<sim::RunResult> run_grid_cached(
    const sim::SweepRunner& runner, const std::vector<sim::SweepJob>& grid,
    SweepCache* cache, const sim::SweepRunner::ProgressFn& progress = nullptr,
    std::vector<double>* wall_seconds = nullptr);

}  // namespace aeep::store
