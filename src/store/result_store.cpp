#include "store/result_store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/bitops.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "trace/error.hpp"

namespace aeep::store {

namespace {

constexpr u8 kRecordTag = 'R';
constexpr u32 kSegmentVersion = 1;
constexpr char kMagic[4] = {'A', 'E', 'S', 'T'};
constexpr u64 kHeaderBytes = 8;  ///< magic + version
/// A payload is one JSON result document — a few KB. Anything near this
/// bound is corruption, not data.
constexpr u32 kMaxPayloadBytes = u32{1} << 24;
/// Probe-table tombstone (kNil is "empty", which stops probes).
constexpr u32 kTomb = ~u32{0} - 1;

u64 key_from_payload(const std::vector<u8>& payload) {
  u64 key = 0;
  for (int i = 0; i < 8; ++i)
    key |= static_cast<u64>(payload[static_cast<std::size_t>(i)]) << (8 * i);
  return key;
}

void put_key(std::vector<u8>& payload, u64 key) {
  for (int i = 0; i < 8; ++i)
    payload.push_back(static_cast<u8>(key >> (8 * i)));
}

}  // namespace

std::string ResultStore::segment_path(const std::string& dir) {
  return dir + "/store.seg";
}

u64 ResultStore::record_bytes(u32 payload_bytes) const {
  return u64{1} + 4 + 4 + payload_bytes;  // tag + length + crc + payload
}

ResultStore::ResultStore(StoreConfig config) : config_(std::move(config)) {
  if (config_.max_entries < 2) config_.max_entries = 2;
  protected_cap_ = std::max<std::size_t>(1, config_.max_entries / 2);
  segment_path_ = segment_path(config_.dir);

  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec)
    throw trace::TraceError(trace::TraceErrorKind::kIo,
                            "cannot create store directory " + config_.dir +
                                ": " + ec.message());

  const MutexLock lock(mutex_);
  slots_.resize(config_.max_entries);
  // Thread every slot onto the free chain (next links double as freelist).
  for (std::size_t i = 0; i < slots_.size(); ++i)
    slots_[i].next = i + 1 < slots_.size() ? static_cast<u32>(i + 1) : kNil;
  free_head_ = 0;
  const std::size_t table_size = static_cast<std::size_t>(
      std::max<u64>(16, ceil_pow2(u64{config_.max_entries} * 2)));
  table_.assign(table_size, kNil);
  table_mask_ = table_size - 1;

  const bool fresh = !std::filesystem::exists(segment_path_) ||
                     std::filesystem::file_size(segment_path_, ec) == 0;
  if (fresh) {
    trace::FileWriter header(segment_path_);
    header.write_bytes(kMagic, 4);
    header.write_u32(kSegmentVersion);
    header.close();
  }
  reader_ = std::make_unique<trace::FileReader>(segment_path_);
  scan_segment_locked();
  writer_ = std::make_unique<trace::FileWriter>(segment_path_,
                                                /*append=*/true);
}

ResultStore::~ResultStore() = default;

void ResultStore::scan_segment_locked() {
  reader_->seek(0);
  char magic[4];
  u32 version = 0;
  try {
    reader_->read_bytes(magic, 4);
    version = reader_->read_u32();
  } catch (const trace::TraceError&) {
    throw trace::TraceError(trace::TraceErrorKind::kCorrupt,
                            "store segment too short for a header: " +
                                segment_path_);
  }
  if (std::memcmp(magic, kMagic, 4) != 0 || version != kSegmentVersion)
    throw trace::TraceError(
        trace::TraceErrorKind::kCorrupt,
        "not a store segment (bad magic/version): " + segment_path_);

  u64 valid_end = kHeaderBytes;
  bool torn = false;
  while (!reader_->at_eof()) {
    const u64 off = reader_->tell();
    try {
      const u8 tag = reader_->read_u8();
      const u32 len = reader_->read_u32();
      const u32 crc = reader_->read_u32();
      if (tag != kRecordTag || len < 8 || len > kMaxPayloadBytes) {
        torn = true;
        break;
      }
      std::vector<u8> payload(len);
      reader_->read_bytes(payload.data(), len);
      if (trace::crc32(payload) != crc) {
        torn = true;
        break;
      }
      index_record_locked(key_from_payload(payload), off, len);
      ++stats_.recovered_records;
      valid_end = off + record_bytes(len);
    } catch (const trace::TraceError&) {
      torn = true;  // record cut short by a crash mid-append
      break;
    }
  }
  if (torn) {
    // Drop only the torn tail; every complete record before it survives.
    std::error_code ec;
    std::filesystem::resize_file(segment_path_, valid_end, ec);
    if (ec)
      throw trace::TraceError(trace::TraceErrorKind::kIo,
                              "cannot truncate torn store segment " +
                                  segment_path_ + ": " + ec.message());
    ++stats_.dropped_records;
    reader_->seek(0);  // re-sync the stream with the shorter file
  }
  segment_bytes_ = valid_end;
}

u32 ResultStore::find_slot_locked(u64 key) const {
  std::size_t idx = static_cast<std::size_t>(key) & table_mask_;
  while (true) {
    const u32 entry = table_[idx];
    if (entry == kNil) return kNil;
    if (entry != kTomb && slots_[entry].key == key) return entry;
    idx = (idx + 1) & table_mask_;
  }
}

void ResultStore::table_insert_locked(u64 key, u32 slot) {
  std::size_t idx = static_cast<std::size_t>(key) & table_mask_;
  while (table_[idx] != kNil && table_[idx] != kTomb)
    idx = (idx + 1) & table_mask_;
  if (table_[idx] == kTomb && tombstones_ > 0) --tombstones_;
  table_[idx] = slot;
}

void ResultStore::table_erase_locked(u64 key) {
  std::size_t idx = static_cast<std::size_t>(key) & table_mask_;
  while (true) {
    const u32 entry = table_[idx];
    if (entry == kNil) return;  // not present
    if (entry != kTomb && slots_[entry].key == key) {
      table_[idx] = kTomb;
      ++tombstones_;
      break;
    }
    idx = (idx + 1) & table_mask_;
  }
  // Tombstone pressure lengthens every probe chain; rebuild the fixed
  // table from the live slots once a quarter of it is tombstones.
  if (tombstones_ > table_.size() / 4) {
    std::fill(table_.begin(), table_.end(), kNil);
    tombstones_ = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].segment != 0)
        table_insert_locked(slots_[i].key, static_cast<u32>(i));
  }
}

void ResultStore::list_push_mru_locked(LruList& list, u32 slot, u8 segment) {
  Slot& s = slots_[slot];
  s.segment = segment;
  s.prev = list.tail;
  s.next = kNil;
  if (list.tail != kNil) slots_[list.tail].next = slot;
  list.tail = slot;
  if (list.head == kNil) list.head = slot;
  ++list.count;
}

void ResultStore::list_unlink_locked(LruList& list, u32 slot) {
  Slot& s = slots_[slot];
  if (s.prev != kNil) slots_[s.prev].next = s.next;
  else list.head = s.next;
  if (s.next != kNil) slots_[s.next].prev = s.prev;
  else list.tail = s.prev;
  s.prev = s.next = kNil;
  --list.count;
}

void ResultStore::promote_locked(u32 slot) {
  Slot& s = slots_[slot];
  if (s.segment == 1) {
    // Second touch: probationary -> protected MRU.
    list_unlink_locked(probationary_, slot);
    list_push_mru_locked(protected_, slot, 2);
    // Protected is bounded; its LRU falls back to probationary MRU rather
    // than out of the store (it stays one touch away from protection).
    while (protected_.count > protected_cap_) {
      const u32 demoted = protected_.head;
      list_unlink_locked(protected_, demoted);
      list_push_mru_locked(probationary_, demoted, 1);
    }
  } else {
    // Already protected: refresh recency.
    list_unlink_locked(protected_, slot);
    list_push_mru_locked(protected_, slot, 2);
  }
}

u32 ResultStore::evict_one_locked() {
  u32 victim = probationary_.head;
  if (victim != kNil) {
    list_unlink_locked(probationary_, victim);
  } else {
    victim = protected_.head;
    if (victim == kNil) return kNil;
    list_unlink_locked(protected_, victim);
  }
  table_erase_locked(slots_[victim].key);
  slots_[victim].segment = 0;
  slots_[victim].next = free_head_;
  free_head_ = victim;
  ++stats_.evictions;
  return victim;
}

void ResultStore::drop_slot_locked(u32 slot) {
  Slot& s = slots_[slot];
  list_unlink_locked(s.segment == 2 ? protected_ : probationary_, slot);
  table_erase_locked(s.key);
  s.segment = 0;
  s.next = free_head_;
  free_head_ = slot;
}

void ResultStore::index_record_locked(u64 key, u64 offset, u32 payload_bytes) {
  const u32 existing = find_slot_locked(key);
  if (existing != kNil) {
    Slot& s = slots_[existing];
    s.offset = offset;
    s.payload_bytes = payload_bytes;
    // Refresh recency within its current segment — an update is a write,
    // not the second read that earns protection.
    LruList& list = s.segment == 2 ? protected_ : probationary_;
    const u8 seg = s.segment;
    list_unlink_locked(list, existing);
    list_push_mru_locked(list, existing, seg);
    return;
  }
  if (free_head_ == kNil) evict_one_locked();
  const u32 slot = free_head_;
  free_head_ = slots_[slot].next;
  Slot& s = slots_[slot];
  s.key = key;
  s.offset = offset;
  s.payload_bytes = payload_bytes;
  s.prev = s.next = kNil;
  list_push_mru_locked(probationary_, slot, 1);
  table_insert_locked(key, slot);
}

std::vector<u8> ResultStore::read_payload_locked(u64 offset,
                                                 u32 payload_bytes) {
  reader_->seek(offset);
  const u8 tag = reader_->read_u8();
  const u32 len = reader_->read_u32();
  const u32 crc = reader_->read_u32();
  if (tag != kRecordTag || len != payload_bytes)
    throw trace::TraceError(trace::TraceErrorKind::kCorrupt,
                            "store record header mismatch: " + segment_path_);
  std::vector<u8> payload(len);
  reader_->read_bytes(payload.data(), len);
  if (trace::crc32(payload) != crc)
    throw trace::TraceError(trace::TraceErrorKind::kCorrupt,
                            "store record CRC mismatch: " + segment_path_);
  return payload;
}

std::optional<JsonValue> ResultStore::lookup(const Digest& key) {
  const MutexLock lock(mutex_);
  const u32 slot = find_slot_locked(key.value);
  if (slot == kNil) {
    ++stats_.misses;
    return std::nullopt;
  }
  std::vector<u8> payload;
  try {
    payload = read_payload_locked(slots_[slot].offset,
                                  slots_[slot].payload_bytes);
  } catch (const trace::TraceError&) {
    // The entry points at bytes that no longer check out (disk fault,
    // external tampering): drop it and miss, never return bad data.
    drop_slot_locked(slot);
    ++stats_.corrupt_payloads;
    ++stats_.misses;
    return std::nullopt;
  }
  const std::string text(reinterpret_cast<const char*>(payload.data()) + 8,
                         payload.size() - 8);
  std::optional<JsonValue> doc = json_parse(text);
  if (!doc) {
    drop_slot_locked(slot);
    ++stats_.corrupt_payloads;
    ++stats_.misses;
    return std::nullopt;
  }
  promote_locked(slot);
  ++stats_.hits;
  return doc;
}

void ResultStore::insert(const Digest& key, const JsonValue& payload) {
  const std::string text = payload.dump(0);
  std::vector<u8> bytes;
  bytes.reserve(8 + text.size());
  put_key(bytes, key.value);
  bytes.insert(bytes.end(), text.begin(), text.end());
  if (bytes.size() > kMaxPayloadBytes)
    throw trace::TraceError(trace::TraceErrorKind::kIo,
                            "store payload too large");

  const MutexLock lock(mutex_);
  const u64 offset = segment_bytes_;
  writer_->write_u8(kRecordTag);
  writer_->write_u32(static_cast<u32>(bytes.size()));
  writer_->write_u32(trace::crc32(bytes));
  writer_->write_bytes(bytes.data(), bytes.size());
  writer_->flush();  // a reader (or a crash) must see a whole record
  segment_bytes_ += record_bytes(static_cast<u32>(bytes.size()));

  const bool existed = find_slot_locked(key.value) != kNil;
  index_record_locked(key.value, offset, static_cast<u32>(bytes.size()));
  if (existed) ++stats_.updates;
  else ++stats_.inserts;
}

std::vector<ResultStore::EntryInfo> ResultStore::entries() const {
  const MutexLock lock(mutex_);
  std::vector<EntryInfo> out;
  out.reserve(probationary_.count + protected_.count);
  for (u32 i = probationary_.head; i != kNil; i = slots_[i].next)
    out.push_back({Digest{slots_[i].key}, slots_[i].payload_bytes, false});
  for (u32 i = protected_.head; i != kNil; i = slots_[i].next)
    out.push_back({Digest{slots_[i].key}, slots_[i].payload_bytes, true});
  return out;
}

std::size_t ResultStore::size() const {
  const MutexLock lock(mutex_);
  return probationary_.count + protected_.count;
}

u64 ResultStore::disk_bytes() const {
  const MutexLock lock(mutex_);
  return segment_bytes_;
}

StoreStats ResultStore::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void ResultStore::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = StoreStats{};
}

u64 ResultStore::gc(u64 max_bytes) {
  static metrics::Histogram& gc_us =
      metrics::Registry::instance().histogram("store.gc_us");
  const metrics::ScopedTimer span(gc_us);
  const MutexLock lock(mutex_);

  u64 live_bytes = kHeaderBytes;
  for (const Slot& s : slots_)
    if (s.segment != 0) live_bytes += record_bytes(s.payload_bytes);

  u64 evicted = 0;
  while (live_bytes > max_bytes) {
    const u32 victim = probationary_.head != kNil ? probationary_.head
                                                  : protected_.head;
    if (victim == kNil) break;  // empty store: just the header remains
    live_bytes -= record_bytes(slots_[victim].payload_bytes);
    evict_one_locked();
    ++evicted;
  }

  // Survivors in ascending segment offset: compaction preserves the
  // on-disk record order, so two stores with the same live set compact to
  // byte-identical segments.
  std::vector<u32> live;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].segment != 0) live.push_back(static_cast<u32>(i));
  std::sort(live.begin(), live.end(), [&](u32 a, u32 b) {
    return slots_[a].offset < slots_[b].offset;
  });

  const std::string tmp_path = segment_path_ + ".tmp";
  {
    trace::FileWriter tmp(tmp_path);
    tmp.write_bytes(kMagic, 4);
    tmp.write_u32(kSegmentVersion);
    for (const u32 slot : live) {
      const std::vector<u8> payload = read_payload_locked(
          slots_[slot].offset, slots_[slot].payload_bytes);
      const u64 rec_off = tmp.bytes_written();
      tmp.write_u8(kRecordTag);
      tmp.write_u32(static_cast<u32>(payload.size()));
      tmp.write_u32(trace::crc32(payload));
      tmp.write_bytes(payload.data(), payload.size());
      slots_[slot].offset = rec_off;
    }
    tmp.close();
  }

  // Swap handles around the rename so no stream points at the old inode.
  writer_.reset();
  reader_.reset();
  std::error_code ec;
  std::filesystem::rename(tmp_path, segment_path_, ec);
  if (ec)
    throw trace::TraceError(trace::TraceErrorKind::kIo,
                            "store GC rename failed: " + ec.message());
  reader_ = std::make_unique<trace::FileReader>(segment_path_);
  writer_ = std::make_unique<trace::FileWriter>(segment_path_,
                                                /*append=*/true);
  segment_bytes_ = live_bytes;
  return evicted;
}

}  // namespace aeep::store
