#include "fault/injector.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"

namespace aeep::fault {

const char* to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kData: return "data";
    case FaultTarget::kParity: return "parity";
    case FaultTarget::kEcc: return "ecc";
  }
  return "?";
}

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kRecovered: return "recovered";
    case FaultClass::kDetectedUnrecoverable: return "DUE";
    case FaultClass::kSilentCorruption: return "SDC";
    case FaultClass::kMiscorrected: return "miscorrected";
  }
  return "?";
}

void CampaignTally::add(const InjectionResult& r) {
  ++injections;
  ++by_class[static_cast<unsigned>(r.cls)];
  if (r.line_was_dirty) ++dirty_line_hits;
}

FaultCampaign::FaultCampaign(protect::ProtectedL2& l2, u64 seed)
    : l2_(&l2), rng_(seed) {}

std::optional<FaultCampaign::Site> FaultCampaign::pick_line(
    std::optional<bool> need_dirty) {
  const auto& geom = l2_->config().geometry;
  const cache::Cache& c = l2_->cache_model();
  // Rejection-sample a valid line; bail out if the cache looks empty of
  // qualifying lines after a generous number of tries.
  for (unsigned tries = 0; tries < 4096; ++tries) {
    const u64 set = rng_.next_below(geom.num_sets());
    const unsigned way = static_cast<unsigned>(rng_.next_below(geom.ways));
    const cache::CacheLineMeta& m = c.meta(set, way);
    if (!m.valid) continue;
    if (need_dirty && m.dirty != *need_dirty) continue;
    return Site{set, way};
  }
  return std::nullopt;
}

std::optional<InjectionResult> FaultCampaign::inject(FaultTarget target,
                                                     unsigned flips) {
  assert(flips >= 1);
  // ECC bits exist only for lines that currently carry ECC. Under the
  // proposed scheme that means dirty lines; under uniform ECC any line.
  std::optional<bool> need_dirty;
  if (target == FaultTarget::kEcc &&
      l2_->config().scheme != protect::SchemeKind::kUniformEcc)
    need_dirty = true;
  if (target == FaultTarget::kParity &&
      l2_->config().scheme == protect::SchemeKind::kUniformEcc)
    return std::nullopt;  // baseline has no parity bits

  const auto site = pick_line(need_dirty);
  if (!site) return std::nullopt;
  const auto [set, way] = *site;

  cache::Cache& c = l2_->cache_model();
  protect::ProtectionScheme& scheme = l2_->scheme();

  InjectionResult r;
  r.target = target;
  r.flips = flips;
  r.line_was_dirty = c.meta(set, way).dirty;

  // Golden copy before corruption.
  const auto payload = c.data(set, way);
  std::vector<u64> golden(payload.begin(), payload.end());

  const unsigned words = static_cast<unsigned>(payload.size());
  auto flip_site = [&](u64 bit_index) {
    switch (target) {
      case FaultTarget::kData: {
        const unsigned w = static_cast<unsigned>(bit_index / 64);
        payload[w] = flip_bit(payload[w], static_cast<unsigned>(bit_index % 64));
        break;
      }
      case FaultTarget::kParity: {
        auto par = scheme.parity_words(set, way);
        const unsigned w = static_cast<unsigned>(bit_index);  // 1 bit/word
        par[w] = flip_bit(par[w], 0);
        break;
      }
      case FaultTarget::kEcc: {
        auto eccw = scheme.ecc_words(set, way);
        const unsigned w = static_cast<unsigned>(bit_index / 8);
        eccw[w] = flip_bit(eccw[w], static_cast<unsigned>(bit_index % 8));
        break;
      }
    }
  };

  u64 space = 0;
  switch (target) {
    case FaultTarget::kData: space = static_cast<u64>(words) * 64; break;
    case FaultTarget::kParity: space = scheme.parity_words(set, way).size(); break;
    case FaultTarget::kEcc: space = scheme.ecc_words(set, way).size() * 8; break;
  }
  if (space == 0 || flips > space) return std::nullopt;

  // Choose `flips` distinct bit indices.
  std::vector<u64> sites;
  while (sites.size() < flips) {
    const u64 b = rng_.next_below(space);
    if (std::find(sites.begin(), sites.end(), b) == sites.end())
      sites.push_back(b);
  }
  for (u64 b : sites) flip_site(b);

  // Drive the hardware's read-check path.
  r.outcome = scheme.check_read(set, way, l2_->memory()).outcome;

  const bool matches = std::equal(golden.begin(), golden.end(), payload.begin());
  switch (r.outcome) {
    case protect::ReadOutcome::kOk:
      r.cls = matches ? FaultClass::kRecovered : FaultClass::kSilentCorruption;
      break;
    case protect::ReadOutcome::kCorrected:
    case protect::ReadOutcome::kRefetched:
      r.cls = matches ? FaultClass::kRecovered : FaultClass::kMiscorrected;
      break;
    case protect::ReadOutcome::kUncorrectable:
      r.cls = FaultClass::kDetectedUnrecoverable;
      break;
  }
  tally_.add(r);

  // Make injections independent: restore the pristine payload and re-encode
  // its codes, so residual corruption (SDC, DUE) from this strike cannot
  // contaminate the classification of later strikes.
  std::copy(golden.begin(), golden.end(), payload.begin());
  if (l2_->config().maintain_codes) {
    if (r.line_was_dirty) {
      scheme.on_write_applied(set, way, ~u64{0});
    } else {
      scheme.on_fill(set, way);
    }
  }
  return r;
}

std::optional<InjectionResult> FaultCampaign::inject_anywhere(unsigned flips) {
  // Weight targets by live storage: data bits vs parity bits vs ECC bits of
  // a typical line. A particle does not know which array it hits.
  const auto& geom = l2_->config().geometry;
  const u64 data_bits = static_cast<u64>(geom.line_bytes) * 8;
  const u64 parity_bits =
      l2_->config().scheme == protect::SchemeKind::kUniformEcc
          ? 0
          : geom.words_per_line();
  const u64 ecc_bits = static_cast<u64>(geom.words_per_line()) * 8;
  const u64 total = data_bits + parity_bits + ecc_bits;
  const u64 roll = rng_.next_below(total);
  FaultTarget t = FaultTarget::kData;
  if (roll >= data_bits + parity_bits)
    t = FaultTarget::kEcc;
  else if (roll >= data_bits)
    t = FaultTarget::kParity;
  return inject(t, flips);
}

}  // namespace aeep::fault
