// Soft-error injection and outcome classification.
//
// Models the paper's threat (particle-induced bit flips in the L2 arrays) by
// flipping stored bits — in the data payload, the parity bits, or the ECC
// bits — of a protected L2, then driving the scheme's read-validation path
// and comparing the resulting payload against a golden copy. This is the
// executable form of the paper's protection claims: clean lines survive via
// parity + re-fetch, dirty lines via SECDED correction, and the experiment
// quantifies where each scheme loses data (SDC) or has to give up (DUE).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::fault {

/// Where the flipped bit(s) lived.
enum class FaultTarget { kData = 0, kParity = 1, kEcc = 2 };
inline constexpr unsigned kNumFaultTargets = 3;

/// Ground-truth classification of one injection.
enum class FaultClass {
  kRecovered,       ///< payload matches golden after the check
  kDetectedUnrecoverable,  ///< scheme raised an uncorrectable error (DUE)
  kSilentCorruption,       ///< payload differs but no error was raised (SDC)
  kMiscorrected,           ///< scheme "corrected" into the wrong data
};
inline constexpr unsigned kNumFaultClasses = 4;

const char* to_string(FaultTarget t);
const char* to_string(FaultClass c);

struct InjectionResult {
  FaultTarget target = FaultTarget::kData;
  unsigned flips = 1;
  bool line_was_dirty = false;
  protect::ReadOutcome outcome = protect::ReadOutcome::kOk;
  FaultClass cls = FaultClass::kRecovered;
};

struct CampaignTally {
  u64 injections = 0;
  std::array<u64, kNumFaultClasses> by_class{};
  u64 dirty_line_hits = 0;

  void add(const InjectionResult& r);
  u64 of(FaultClass c) const { return by_class[static_cast<unsigned>(c)]; }
  double rate(FaultClass c) const {
    return injections ? static_cast<double>(of(c)) / static_cast<double>(injections) : 0.0;
  }
};

class FaultCampaign {
 public:
  FaultCampaign(protect::ProtectedL2& l2, u64 seed);

  /// Flip `flips` distinct stored bits of one randomly chosen valid line
  /// (uniform over the chosen target's bits), then run the scheme's check.
  /// Returns nullopt if no line satisfies the constraints (e.g. asking for
  /// an ECC flip when nothing is dirty).
  std::optional<InjectionResult> inject(FaultTarget target, unsigned flips);

  /// Weighted random target by live storage bits, like real particle strikes.
  std::optional<InjectionResult> inject_anywhere(unsigned flips);

  const CampaignTally& tally() const { return tally_; }

 private:
  struct Site {
    u64 set;
    unsigned way;
  };
  /// Pick a random valid line; if `need` is set the line must (not) be dirty.
  std::optional<Site> pick_line(std::optional<bool> need_dirty);

  protect::ProtectedL2* l2_;
  Xorshift64Star rng_;
  CampaignTally tally_;
};

}  // namespace aeep::fault
