#include "fault/reliability.hpp"

namespace aeep::fault {

namespace {

/// Rate of >=2-strike accumulations per granule per cycle, for a granule of
/// `bits` with exposure window `window` cycles: events/window = (l*g*T)^2/2,
/// so per cycle divide by T once more.
double double_strike_rate(double lambda, unsigned bits, double window) {
  if (window <= 0) return 0.0;
  const double per_window =
      0.5 * (lambda * bits * window) * (lambda * bits * window);
  return per_window / window;
}

/// Rate of single strikes per granule per cycle.
double single_strike_rate(double lambda, unsigned bits) {
  return lambda * static_cast<double>(bits);
}

}  // namespace

ReliabilityEstimate estimate_non_uniform(const ResidencyProfile& pr,
                                         const ReliabilityParams& p) {
  ReliabilityEstimate e;
  e.scheme = "non-uniform (paper)";
  const double words = pr.words_per_line;
  const unsigned parity_g = p.word_bits + p.parity_overhead_bits;
  const unsigned ecc_g = p.word_bits + p.ecc_overhead_bits;

  // Clean lines: same-word double strikes are parity-blind -> SDC.
  e.sdc_rate = pr.avg_clean_lines * words *
               double_strike_rate(p.lambda_per_bit_cycle, parity_g,
                                  pr.clean_residency);
  // Dirty lines: same-word doubles are detected but unrecoverable -> DUE.
  e.due_rate = pr.avg_dirty_lines * words *
               double_strike_rate(p.lambda_per_bit_cycle, ecc_g,
                                  pr.dirty_residency);
  // Everything else (all singles, cross-word doubles) recovers.
  e.recovered_rate =
      (pr.avg_clean_lines * words * single_strike_rate(p.lambda_per_bit_cycle, parity_g) +
       pr.avg_dirty_lines * words * single_strike_rate(p.lambda_per_bit_cycle, ecc_g)) -
      e.sdc_rate - e.due_rate;
  return e;
}

ReliabilityEstimate estimate_uniform_ecc(const ResidencyProfile& pr,
                                         const ReliabilityParams& p) {
  ReliabilityEstimate e;
  e.scheme = "uniform ECC (conventional)";
  const double words = pr.words_per_line;
  const unsigned ecc_g = p.word_bits + p.ecc_overhead_bits;

  // Clean-line doubles are detected AND recoverable (refetch): no SDC.
  e.sdc_rate = 0.0;
  e.due_rate = pr.avg_dirty_lines * words *
               double_strike_rate(p.lambda_per_bit_cycle, ecc_g,
                                  pr.dirty_residency);
  e.recovered_rate =
      ((pr.avg_clean_lines + pr.avg_dirty_lines) * words *
       single_strike_rate(p.lambda_per_bit_cycle, ecc_g)) -
      e.due_rate;
  return e;
}

ReliabilityEstimate estimate_parity_only(const ResidencyProfile& pr,
                                         const ReliabilityParams& p) {
  ReliabilityEstimate e;
  e.scheme = "parity only (no ECC)";
  const double words = pr.words_per_line;
  const unsigned parity_g = p.word_bits + p.parity_overhead_bits;

  // Clean lines behave as in the paper's scheme.
  e.sdc_rate = pr.avg_clean_lines * words *
               double_strike_rate(p.lambda_per_bit_cycle, parity_g,
                                  pr.clean_residency);
  // Dirty lines: even a detected single strike is unrecoverable (the only
  // copy is corrupted) -> DUE at the SINGLE-strike rate. This is why
  // write-back caches cannot ship with parity alone.
  e.due_rate = pr.avg_dirty_lines * words *
               single_strike_rate(p.lambda_per_bit_cycle, parity_g);
  e.recovered_rate = pr.avg_clean_lines * words *
                         single_strike_rate(p.lambda_per_bit_cycle, parity_g) -
                     e.sdc_rate;
  return e;
}

}  // namespace aeep::fault
