#include "fault/strike_process.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"

namespace aeep::fault {

namespace {

/// Storage bits the configuration provisions, by scheme (the Poisson
/// process does not know which cells currently hold live contents).
u64 provisioned_storage_bits(const protect::L2Config& cfg) {
  const auto& g = cfg.geometry;
  const u64 lines = g.total_lines();
  const u64 words = g.words_per_line();
  const u64 data = lines * g.line_bytes * 8;
  u64 parity = 0;
  u64 ecc = 0;
  switch (cfg.scheme) {
    case protect::SchemeKind::kUniformEcc:
      ecc = lines * words * 8;
      break;
    case protect::SchemeKind::kNonUniform:
      parity = lines * words;
      ecc = lines * words * 8;
      break;
    case protect::SchemeKind::kSharedEccArray:
      parity = lines * words;
      ecc = g.num_sets() * cfg.ecc_entries_per_set * words * 8;
      break;
  }
  return data + parity + ecc;
}

}  // namespace

StrikeProcess::StrikeProcess(protect::ProtectedL2& l2,
                             const StrikeConfig& config)
    : l2_(&l2), config_(config), rng_(config.seed) {
  provisioned_bits_ = provisioned_storage_bits(l2.config());
  p_strike_ = std::min(
      1.0, config_.lambda_per_bit_cycle * config_.rate_scale *
               static_cast<double>(provisioned_bits_));
  never_ = !(p_strike_ > 0.0);
  if (!never_) schedule_next(0);
  next_reassert_ = config_.stuck_reassert_interval;
}

void StrikeProcess::schedule_next(Cycle now) {
  next_strike_ = now + rng_.next_geometric(p_strike_);
}

bool StrikeProcess::flip_stored_bit(FaultTarget target, u64 set, unsigned way,
                                    u64 bit) {
  cache::Cache& cache = l2_->cache_model();
  if (!cache.meta(set, way).valid) return false;
  protect::ProtectionScheme& scheme = l2_->scheme();
  switch (target) {
    case FaultTarget::kData: {
      auto data = cache.data(set, way);
      const unsigned w = static_cast<unsigned>(bit / 64);
      data[w] = flip_bit(data[w], static_cast<unsigned>(bit % 64));
      return true;
    }
    case FaultTarget::kParity: {
      auto par = scheme.parity_words(set, way);
      if (par.empty()) return false;
      par[bit] = flip_bit(par[bit], 0);  // one live bit per parity word
      return true;
    }
    case FaultTarget::kEcc: {
      auto eccw = scheme.ecc_words(set, way);
      if (eccw.empty()) return false;  // no live ECC (clean line / no entry)
      const unsigned w = static_cast<unsigned>(bit / 8);
      eccw[w] = flip_bit(eccw[w], static_cast<unsigned>(bit % 8));
      return true;
    }
  }
  return false;
}

void StrikeProcess::apply_random_strike() {
  ++stats_.strikes;
  const auto& geom = l2_->config().geometry;
  const u64 words = geom.words_per_line();
  const u64 data_bits = geom.line_bytes * 8;
  const u64 parity_prov =
      l2_->config().scheme == protect::SchemeKind::kUniformEcc ? 0 : words;
  const u64 ecc_prov = words * 8;

  const u64 set = rng_.next_below(geom.num_sets());
  const unsigned way = static_cast<unsigned>(rng_.next_below(geom.ways));
  const u64 roll = rng_.next_below(data_bits + parity_prov + ecc_prov);
  const bool mbu = config_.double_bit_fraction > 0.0 &&
                   rng_.chance(config_.double_bit_fraction);

  FaultTarget target;
  u64 bit;
  if (roll < data_bits) {
    target = FaultTarget::kData;
    bit = roll;
  } else if (roll < data_bits + parity_prov) {
    target = FaultTarget::kParity;
    bit = roll - data_bits;
  } else {
    target = FaultTarget::kEcc;
    bit = roll - data_bits - parity_prov;
  }

  if (!flip_stored_bit(target, set, way, bit)) {
    ++stats_.absorbed;
    return;
  }
  ++stats_.bits_flipped;
  switch (target) {
    case FaultTarget::kData: ++stats_.data_hits; break;
    case FaultTarget::kParity: ++stats_.parity_hits; break;
    case FaultTarget::kEcc: ++stats_.ecc_hits; break;
  }
  // Spatial MBU: the neighbouring bit of the same word flips too. Parity
  // keeps a single live bit per word, so there is no neighbour to hit.
  if (mbu && target != FaultTarget::kParity) {
    if (flip_stored_bit(target, set, way, bit ^ 1)) ++stats_.bits_flipped;
  }
}

bool StrikeProcess::stuck_active(const StuckFault& f, Cycle now) const {
  if (now < f.start) return false;
  if (f.period == 0) return true;
  return ((now - f.start) / f.period) % 2 == 0;
}

bool StrikeProcess::apply_stuck(const StuckFault& f) {
  cache::Cache& cache = l2_->cache_model();
  if (!cache.meta(f.set, f.way).valid) return false;
  protect::ProtectionScheme& scheme = l2_->scheme();
  u64* word = nullptr;
  unsigned pos = 0;
  switch (f.target) {
    case FaultTarget::kData: {
      auto data = cache.data(f.set, f.way);
      word = &data[static_cast<unsigned>(f.bit / 64)];
      pos = static_cast<unsigned>(f.bit % 64);
      break;
    }
    case FaultTarget::kParity: {
      auto par = scheme.parity_words(f.set, f.way);
      if (par.empty()) return false;
      word = &par[f.bit];
      pos = 0;
      break;
    }
    case FaultTarget::kEcc: {
      auto eccw = scheme.ecc_words(f.set, f.way);
      if (eccw.empty()) return false;
      word = &eccw[static_cast<unsigned>(f.bit / 8)];
      pos = static_cast<unsigned>(f.bit % 8);
      break;
    }
  }
  const bool current = ((*word >> pos) & 1) != 0;
  if (current == f.stuck_high) return false;  // already at the stuck value
  *word = flip_bit(*word, pos);
  return true;
}

void StrikeProcess::reassert_line(u64 set, unsigned way) {
  for (const StuckFault& f : config_.stuck_faults) {
    if (f.set != set || f.way != way) continue;
    if (!stuck_active(f, last_tick_)) continue;
    if (apply_stuck(f)) ++stats_.stuck_reasserts;
  }
}

void StrikeProcess::tick(Cycle now) {
  last_tick_ = now;
  if (!never_) {
    while (next_strike_ <= now) {
      apply_random_strike();
      schedule_next(next_strike_);
    }
  }
  if (!config_.stuck_faults.empty() && now >= next_reassert_) {
    for (const StuckFault& f : config_.stuck_faults) {
      if (!stuck_active(f, now)) continue;
      if (apply_stuck(f)) ++stats_.stuck_reasserts;
    }
    next_reassert_ = now + config_.stuck_reassert_interval;
  }
}

}  // namespace aeep::fault
