// Analytic reliability estimator: converts a raw soft-error rate and the
// measured dirty/clean residency profile of a protection scheme into
// expected SDC and DUE FIT contributions.
//
// Model (standard double-fault window arithmetic):
//  - a granule (one SECDED word, 72 bits; or one parity word, 65 bits)
//    fails only when it accumulates 2 strikes before being re-validated;
//  - the exposure window of a line is its cache residency: R_clean for
//    parity-protected lines, R_dirty for ECC-protected lines;
//  - with per-bit strike rate lambda, the probability a granule of g bits
//    takes >= 2 hits in window T is ~ (lambda*g*T)^2 / 2 (lambda*T << 1);
//  - a clean-line double is SDC only when both strikes land in the SAME
//    word (parity blindness); cross-word doubles are caught and re-fetched;
//  - a dirty-line double in one word is a DUE (detected, unrecoverable);
//  - uniform ECC turns the clean-line same-word double into a DUE-then-
//    refetch (recoverable), eliminating the SDC term at 2.4x the storage.
//
// Everything is per-line-per-cycle math scaled by the measured average
// populations, so schemes are compared on the same run.
#pragma once

#include <string>

#include "common/types.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::fault {

struct ReliabilityParams {
  /// Raw strike rate per bit per cycle. Default: 1e-19 corresponds to
  /// ~1e-4 FIT/bit at 3 GHz — a 90nm-class SRAM figure.
  double lambda_per_bit_cycle = 1e-19;
  unsigned word_bits = 64;   ///< protection granule (data bits)
  unsigned parity_overhead_bits = 1;
  unsigned ecc_overhead_bits = 8;
};

struct ReliabilityEstimate {
  std::string scheme;
  /// Expected events per cycle across the whole cache population.
  double sdc_rate = 0;   ///< silent data corruption
  double due_rate = 0;   ///< detected unrecoverable error
  double recovered_rate = 0;  ///< strikes absorbed by correction/refetch

  /// Convert a per-cycle rate to FIT (failures per 1e9 device-hours) at a
  /// given clock.
  static double to_fit(double per_cycle, double hz) {
    return per_cycle * hz * 3600.0 * 1e9;
  }
};

/// Inputs measured from a run.
struct ResidencyProfile {
  double avg_clean_lines = 0;   ///< average parity-only-protected lines
  double avg_dirty_lines = 0;   ///< average ECC-protected lines
  double clean_residency = 0;   ///< avg cycles a clean line sits between validations
  double dirty_residency = 0;   ///< avg cycles a dirty line sits between validations
  unsigned words_per_line = 8;
};

/// Estimate for the paper's non-uniform schemes (parity on clean lines,
/// SECDED on dirty lines).
ReliabilityEstimate estimate_non_uniform(const ResidencyProfile& profile,
                                         const ReliabilityParams& params = {});

/// Estimate for the conventional uniform-ECC baseline (SECDED everywhere;
/// clean-line DUEs recover by refetch).
ReliabilityEstimate estimate_uniform_ecc(const ResidencyProfile& profile,
                                         const ReliabilityParams& params = {});

/// Estimate for an unprotected (parity-everywhere) cache, for scale: dirty
/// lines lose data on ANY strike.
ReliabilityEstimate estimate_parity_only(const ResidencyProfile& profile,
                                         const ReliabilityParams& params = {});

}  // namespace aeep::fault
