// Online soft-error strike process.
//
// Drives particle strikes into the live L2 arrays *during* a timed
// simulation (the FaultCampaign sibling injects into a quiesced cache
// post-hoc). Two fault populations:
//
//  - Transient strikes: Poisson arrivals at rate lambda * scale over the
//    provisioned storage bits (data + parity + ECC arrays). Each strike
//    picks a uniformly random provisioned bit; strikes landing in storage
//    with no live contents (an invalid line, an un-allocated ECC entry) are
//    absorbed, exactly like a real particle hitting a dead cell. A
//    configurable fraction of strikes are 2-bit spatial MBUs (adjacent bits
//    of one word) — the multi-bit upsets that defeat per-word SECDED.
//
//  - Persistent / intermittent stuck-at faults: fixed (set, way, bit) sites
//    that force their cell to a value. They re-assert on a cadence and —
//    via RecoveryController's reassert hook — immediately after every
//    recovery re-fetch, which is what makes a stuck cell exhaust the retry
//    budget and walk its way toward retirement. A nonzero duty period makes
//    the fault intermittent (asserted every other period).
//
// Raw 90nm-class rates (~1e-19 per bit-cycle) are invisible at simulation
// scale; `rate_scale` accelerates the process so a 10^5..10^6-cycle run
// sees a workload of strikes. All randomness is seeded: same seed, same
// workload, same strike sequence.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::fault {

/// A persistent (or intermittent) stuck-at fault site.
struct StuckFault {
  FaultTarget target = FaultTarget::kData;
  u64 set = 0;
  unsigned way = 0;
  /// Bit index inside the line's target array: data [0, 64*words),
  /// parity [0, words) (one live bit per word), ECC [0, 8*words).
  u64 bit = 0;
  bool stuck_high = true;  ///< value the cell is forced to
  Cycle start = 0;         ///< activation cycle
  /// 0 = permanent. Otherwise the fault is intermittent: asserted during
  /// every other `period`-cycle window after `start`.
  Cycle period = 0;
};

struct StrikeConfig {
  bool enabled = false;
  /// Raw per-bit per-cycle strike rate (see fault::ReliabilityParams).
  double lambda_per_bit_cycle = 1e-19;
  /// Acceleration factor making strikes visible at simulation scale.
  double rate_scale = 1.0;
  /// Fraction of strikes that flip two adjacent bits of one word (MBU).
  double double_bit_fraction = 0.0;
  /// Cadence at which stuck-at faults re-assert themselves.
  Cycle stuck_reassert_interval = 64;
  u64 seed = 1;
  std::vector<StuckFault> stuck_faults;
};

struct StrikeStats {
  u64 strikes = 0;       ///< transient strike events applied
  u64 bits_flipped = 0;  ///< includes the second bit of MBUs
  u64 data_hits = 0;
  u64 parity_hits = 0;
  u64 ecc_hits = 0;
  u64 absorbed = 0;         ///< landed in dead storage; no live bit flipped
  u64 stuck_reasserts = 0;  ///< stuck-at applications that changed a bit

  bool operator==(const StrikeStats&) const = default;
};

class StrikeProcess {
 public:
  StrikeProcess(protect::ProtectedL2& l2, const StrikeConfig& config);

  /// Advance to `now`, applying every strike and stuck-at re-assertion due
  /// by then. Call once per cycle (cheap when nothing is due).
  void tick(Cycle now);

  /// Re-assert any stuck-at faults on (set, way) right now — wired as the
  /// RecoveryController's post-re-fetch hook so persistent faults re-corrupt
  /// a freshly fetched line before its re-validation.
  void reassert_line(u64 set, unsigned way);

  /// Provisioned storage bits the Poisson process rains on.
  u64 provisioned_bits() const { return provisioned_bits_; }
  /// Effective per-cycle strike probability after scaling.
  double strike_probability() const { return p_strike_; }

  const StrikeConfig& config() const { return config_; }
  const StrikeStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  void schedule_next(Cycle now);
  void apply_random_strike();
  /// Force one stored bit; returns true if a live bit changed value.
  bool apply_stuck(const StuckFault& f);
  bool stuck_active(const StuckFault& f, Cycle now) const;
  /// Flip a live stored bit; returns false when the storage is dead.
  bool flip_stored_bit(FaultTarget target, u64 set, unsigned way, u64 bit);

  protect::ProtectedL2* l2_;
  StrikeConfig config_;
  Xorshift64Star rng_;
  StrikeStats stats_;
  u64 provisioned_bits_ = 0;
  double p_strike_ = 0.0;
  Cycle next_strike_ = 0;
  Cycle next_reassert_ = 0;
  Cycle last_tick_ = 0;
  bool never_ = false;
};

}  // namespace aeep::fault
