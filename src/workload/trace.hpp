// Micro-op trace record / replay.
//
// Lets a synthetic stream be captured once and replayed bit-exactly — for
// cross-configuration experiments that must see the *identical* reference
// stream, for sharing workloads between machines, and for plugging external
// trace sources (e.g. converted real-application traces) into the timing
// model. Binary format: 16-byte header (magic, version, count) followed by
// fixed-size little-endian records.
//
// Note this records *micro-ops* feeding the core; the L2-visible access
// trace the `--frontend=trace` replay engine consumes is the separate,
// delta-compressed format in src/trace/.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/uop.hpp"

namespace aeep::workload {

inline constexpr u32 kTraceMagic = 0x41455054;  // "AEPT"
inline constexpr u32 kTraceVersion = 1;

/// Streams micro-ops to a file.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const cpu::MicroOp& op);
  /// Writes header + records and closes the file.
  void close();

  u64 count() const { return count_; }

 private:
  std::string path_;
  std::vector<u8> records_;
  bool open_ = false;
  u64 count_ = 0;
};

/// Replays a recorded trace; loops back to the start when exhausted so the
/// core can run longer than the capture (wrap count is reported).
class TraceReplaySource final : public cpu::UopSource {
 public:
  explicit TraceReplaySource(const std::string& path);

  cpu::MicroOp next() override;
  const char* name() const override { return "trace-replay"; }

  u64 size() const { return ops_.size(); }
  u64 wraps() const { return wraps_; }

 private:
  std::vector<cpu::MicroOp> ops_;
  std::size_t pos_ = 0;
  u64 wraps_ = 0;
};

/// Capture `n` micro-ops from any source into a trace file.
void record_trace(cpu::UopSource& source, const std::string& path, u64 n);

}  // namespace aeep::workload
