// Synthetic micro-op generator implementing a BenchmarkProfile.
//
// Code model: the program is a chain of loops laid out over the code
// footprint. Each loop has a deterministic per-site body length and a
// sampled trip count; its backward branch is taken trip-count times then
// falls through — so the 2-level predictor sees learnable behaviour with
// mispredicts clustered at loop exits, as in real codes.
//
// Data model:
//   loads  — a `stream_frac` fraction walk the data footprint sequentially;
//            the rest sample lines under a Zipf distribution (hot/cold).
//   stores — sweep the write footprint region by region. A region stays
//            active for `region_write_passes` passes over its words before
//            the sweep advances, giving cache lines the generational
//            write-burst-then-dead-time structure the paper's cleaning
//            technique exploits (§3.2, citing cache decay).
#pragma once

#include <array>

#include "common/rng.hpp"
#include "cpu/uop.hpp"
#include "workload/profile.hpp"

namespace aeep::workload {

class SyntheticWorkload final : public cpu::UopSource {
 public:
  SyntheticWorkload(const BenchmarkProfile& profile, u64 seed);

  cpu::MicroOp next() override;
  const char* name() const override { return profile_.name.c_str(); }

  const BenchmarkProfile& profile() const { return profile_; }

  /// Layout constants (also used by tests).
  static constexpr Addr kCodeBase = 0x0040'0000;
  static constexpr Addr kDataBase = 0x4000'0000;

 private:
  cpu::MicroOp make_branch();
  Addr next_load_addr();
  Addr next_store_addr();
  void start_loop(Addr at);
  void assign_deps(cpu::MicroOp& op);

  BenchmarkProfile profile_;
  Xorshift64Star rng_;
  ZipfSampler zipf_;

  // Code state.
  Addr pc_;
  Addr loop_start_;
  unsigned body_uops_;       ///< uops in the current loop body (incl. branch)
  unsigned body_pos_ = 0;    ///< uops emitted in the current body
  unsigned trips_left_ = 0;

  // Data state.
  u64 stream_pos_ = 0;       ///< sequential-load cursor (bytes)
  u64 num_regions_;
  u64 region_words_;
  u64 region_index_ = 0;
  u64 region_cursor_ = 0;    ///< store cursor within the active region
  u64 region_stores_left_;
  u64 sweep_next_region_ = 1;              ///< sweep-order successor
  std::array<u64, 4> recent_regions_{};    ///< revisit candidates
  unsigned recent_count_ = 0;
};

}  // namespace aeep::workload
