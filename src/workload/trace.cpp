#include "workload/trace.hpp"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "trace/io.hpp"

namespace aeep::workload {

namespace {

// Fixed-size on-disk record (little-endian, no padding surprises).
struct TraceRecord {
  u64 pc;
  u64 mem_addr;
  u64 store_value;
  u64 branch_target;
  u8 cls;
  u8 branch_taken;
  u8 dep1;
  u8 dep2;
  u8 pad[4];
};
static_assert(sizeof(TraceRecord) == 40);

struct TraceHeader {
  u32 magic;
  u32 version;
  u64 count;
};
static_assert(sizeof(TraceHeader) == 16);

TraceRecord to_record(const cpu::MicroOp& op) {
  TraceRecord r{};
  r.pc = op.pc;
  r.mem_addr = op.mem_addr;
  r.store_value = op.store_value;
  r.branch_target = op.branch_target;
  r.cls = static_cast<u8>(op.cls);
  r.branch_taken = op.branch_taken ? 1 : 0;
  r.dep1 = op.dep1;
  r.dep2 = op.dep2;
  return r;
}

cpu::MicroOp from_record(const TraceRecord& r) {
  cpu::MicroOp op;
  op.pc = r.pc;
  op.mem_addr = r.mem_addr;
  op.store_value = r.store_value;
  op.branch_target = r.branch_target;
  op.cls = static_cast<cpu::OpClass>(r.cls);
  op.branch_taken = r.branch_taken != 0;
  op.dep1 = r.dep1;
  op.dep2 = r.dep2;
  return op;
}

}  // namespace

// Records buffer in memory and hit the disk once in close(): the header
// carries the final count up front, and the checked FileWriter (trace/io)
// replaces the old raw fwrite + fseek-patching scheme.
TraceWriter::TraceWriter(const std::string& path) : path_(path), open_(true) {}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an unwritable path surfaced in close().
  }
}

void TraceWriter::append(const cpu::MicroOp& op) {
  if (!open_) throw std::logic_error("trace writer already closed");
  const TraceRecord r = to_record(op);
  const u8* bytes = reinterpret_cast<const u8*>(&r);
  records_.insert(records_.end(), bytes, bytes + sizeof r);
  ++count_;
}

void TraceWriter::close() {
  if (!open_) return;
  open_ = false;
  trace::FileWriter out(path_);
  const TraceHeader h{kTraceMagic, kTraceVersion, count_};
  out.write_bytes(&h, sizeof h);
  out.write_bytes(records_.data(), records_.size());
  out.close();
  records_.clear();
}

TraceReplaySource::TraceReplaySource(const std::string& path) {
  trace::FileReader in(path);
  TraceHeader h{};
  try {
    in.read_bytes(&h, sizeof h);
  } catch (const trace::TraceError&) {
    throw std::runtime_error("bad trace header: " + path);
  }
  if (h.magic != kTraceMagic || h.version != kTraceVersion)
    throw std::runtime_error("bad trace header: " + path);
  ops_.reserve(h.count);
  TraceRecord r{};
  for (u64 i = 0; i < h.count; ++i) {
    try {
      in.read_bytes(&r, sizeof r);
    } catch (const trace::TraceError&) {
      throw std::runtime_error("truncated trace: " + path);
    }
    ops_.push_back(from_record(r));
  }
  if (ops_.empty()) throw std::runtime_error("empty trace: " + path);
}

cpu::MicroOp TraceReplaySource::next() {
  const cpu::MicroOp op = ops_[pos_];
  if (++pos_ == ops_.size()) {
    pos_ = 0;
    ++wraps_;
  }
  return op;
}

void record_trace(cpu::UopSource& source, const std::string& path, u64 n) {
  TraceWriter writer(path);
  for (u64 i = 0; i < n; ++i) writer.append(source.next());
  writer.close();
}

}  // namespace aeep::workload
