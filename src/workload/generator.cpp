#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>

namespace aeep::workload {

using cpu::MicroOp;
using cpu::OpClass;

namespace {
/// Deterministic per-site hash for loop-body shaping.
u64 site_hash(Addr site) {
  u64 z = site + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

SyntheticWorkload::SyntheticWorkload(const BenchmarkProfile& profile, u64 seed)
    : profile_(profile),
      rng_(seed ^ site_hash(site_hash(seed + 1))),
      zipf_(std::max<u64>(1, profile.data_footprint / 64), profile.zipf_s,
            seed + 0x5151),
      pc_(kCodeBase),
      loop_start_(kCodeBase),
      num_regions_(std::max<u64>(1, profile.write_footprint / profile.region_bytes)),
      region_words_(std::max<u64>(1, profile.region_bytes / 8)) {
  assert(profile.body_uops >= 2);
  start_loop(kCodeBase);
  region_stores_left_ = std::max<u64>(
      1, static_cast<u64>(profile_.region_write_passes *
                          static_cast<double>(profile_.region_bytes / 64)));
}

void SyntheticWorkload::start_loop(Addr at) {
  loop_start_ = at;
  const u64 h = site_hash(at);
  // Body length: profile mean +/- 50%, deterministic per site.
  const unsigned span = std::max(1u, profile_.body_uops / 2);
  body_uops_ = profile_.body_uops - span / 2 + static_cast<unsigned>(h % (span + 1));
  body_uops_ = std::max(2u, body_uops_);
  // Trip count: deterministic per site (real loop bounds are mostly stable
  // across entries, which is what makes them predictable), spread around the
  // profile mean.
  const unsigned spread = std::max(1u, 2 * profile_.avg_loop_trips - 1);
  trips_left_ = 1 + static_cast<unsigned>((h >> 17) % spread);
  body_pos_ = 0;
}

Addr SyntheticWorkload::next_load_addr() {
  if (rng_.chance(profile_.stream_frac)) {
    const Addr a = kDataBase + stream_pos_;
    stream_pos_ = (stream_pos_ + 8) % profile_.data_footprint;
    return a;
  }
  const u64 line = zipf_.sample();
  const u64 word = rng_.next_below(8);
  return kDataBase + line * 64 + word * 8;
}

Addr SyntheticWorkload::next_store_addr() {
  // Stores sweep the active region at line stride — one word per line per
  // pass, rotating which word — so each pass dirties every line of the
  // region with a distinct write-buffer drain (real stencil sweeps touch
  // whole lines; for dirty-state dynamics one store per line per pass is
  // the faithful-and-sufficient model).
  const u64 region_lines = std::max<u64>(1, profile_.region_bytes / 64);
  if (region_stores_left_ == 0) {
    // Region activation finished: remember it, then either revisit a
    // recently finished region after a short gap (temporal write locality)
    // or advance the long sweep.
    recent_regions_[recent_count_ % recent_regions_.size()] = region_index_;
    ++recent_count_;
    if (recent_count_ >= 2 && rng_.chance(profile_.region_revisit_prob)) {
      // Pick among the older recents so the revisited region has sat idle
      // for one to three activations.
      const unsigned depth = std::min(
          recent_count_, static_cast<unsigned>(recent_regions_.size()));
      const unsigned back = 2 + static_cast<unsigned>(
                                    rng_.next_below(std::max(1u, depth - 1)));
      region_index_ =
          recent_regions_[(recent_count_ - std::min(back, depth)) %
                          recent_regions_.size()];
    } else {
      region_index_ = sweep_next_region_;
      sweep_next_region_ = (sweep_next_region_ + 1) % num_regions_;
    }
    region_cursor_ = 0;
    region_stores_left_ = std::max<u64>(
        1, static_cast<u64>(profile_.region_write_passes *
                            static_cast<double>(region_lines)));
  }
  const u64 line = region_cursor_ % region_lines;
  const u64 word = (region_cursor_ / region_lines) % 8;
  const Addr a = kDataBase + region_index_ * profile_.region_bytes +
                 line * 64 + word * 8;
  ++region_cursor_;
  --region_stores_left_;
  return a;
}

void SyntheticWorkload::assign_deps(MicroOp& op) {
  if (rng_.chance(profile_.dep1_prob))
    op.dep1 = static_cast<u8>(1 + rng_.next_below(profile_.max_dep_dist));
  if (rng_.chance(profile_.dep2_prob))
    op.dep2 = static_cast<u8>(1 + rng_.next_below(profile_.max_dep_dist));
}

MicroOp SyntheticWorkload::make_branch() {
  MicroOp op;
  op.cls = OpClass::kBranch;
  op.pc = pc_;
  const bool taken = trips_left_ > 0;
  op.branch_taken = taken;
  op.branch_target = loop_start_;
  assign_deps(op);
  if (taken) {
    --trips_left_;
    pc_ = loop_start_;
    body_pos_ = 0;
  } else {
    // Fall through into the next loop; wrap within the code footprint.
    Addr next = pc_ + 4;
    if (next >= kCodeBase + profile_.code_footprint) next = kCodeBase;
    pc_ = next;
    start_loop(next);
  }
  return op;
}

MicroOp SyntheticWorkload::next() {
  // The last uop of each body is its backward branch.
  if (body_pos_ + 1 >= body_uops_) {
    return make_branch();
  }

  MicroOp op;
  op.pc = pc_;
  pc_ += 4;
  ++body_pos_;

  const double roll = rng_.next_double();
  if (roll < profile_.load_frac) {
    op.cls = OpClass::kLoad;
    op.mem_addr = next_load_addr();
  } else if (roll < profile_.load_frac + profile_.store_frac) {
    op.cls = OpClass::kStore;
    op.mem_addr = next_store_addr();
    op.store_value = rng_.next();
  } else {
    // ALU work.
    if (profile_.floating_point && rng_.chance(profile_.fp_alu_frac)) {
      op.cls = rng_.chance(profile_.mul_frac) ? OpClass::kFpMul : OpClass::kFpAlu;
    } else {
      op.cls = rng_.chance(profile_.mul_frac) ? OpClass::kIntMul : OpClass::kIntAlu;
    }
  }
  assign_deps(op);
  return op;
}

}  // namespace aeep::workload
