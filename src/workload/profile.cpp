#include "workload/profile.hpp"

#include <stdexcept>

namespace aeep::workload {

namespace {

// The profiles below are calibrated against the qualitative facts the paper
// reports for each benchmark (Figure 1 dirty-line spread with apsi, mesa,
// gap, parser dirty-heavy; streaming FP codes resistant to 4M-interval
// cleaning; mcf miss-dominated), not against any proprietary trace.
std::vector<BenchmarkProfile> make_profiles() {
  std::vector<BenchmarkProfile> v;

  auto add = [&](BenchmarkProfile p) { v.push_back(std::move(p)); };

  // ---- floating-point ----------------------------------------------------
  {
    BenchmarkProfile p;  // applu: blocked PDE solver, array sweeps
    p.name = "applu";
    p.floating_point = true;
    p.load_frac = 0.28;
    p.store_frac = 0.10;
    p.body_uops = 14;
    p.fp_alu_frac = 0.70;
    p.data_footprint = 1280 * KiB;
    p.write_footprint = 1024 * KiB;
    p.region_bytes = 8 * KiB;
    p.region_write_passes = 9;
    p.stream_frac = 0.75;
    p.code_footprint = 24 * KiB;
    p.avg_loop_trips = 32;
    add(p);
  }
  {
    BenchmarkProfile p;  // swim: shallow-water stencils, pure streaming
    p.name = "swim";
    p.floating_point = true;
    p.load_frac = 0.30;
    p.store_frac = 0.12;
    p.body_uops = 16;
    p.fp_alu_frac = 0.75;
    p.data_footprint = 1408 * KiB;
    p.write_footprint = 1152 * KiB;
    p.region_bytes = 16 * KiB;
    p.region_write_passes = 6;
    p.stream_frac = 0.85;
    p.code_footprint = 12 * KiB;
    p.avg_loop_trips = 64;
    add(p);
  }
  {
    BenchmarkProfile p;  // mgrid: multigrid, nested sweeps over grids
    p.name = "mgrid";
    p.floating_point = true;
    p.load_frac = 0.32;
    p.store_frac = 0.09;
    p.body_uops = 15;
    p.fp_alu_frac = 0.75;
    p.data_footprint = 1280 * KiB;
    p.write_footprint = 1024 * KiB;
    p.region_bytes = 8 * KiB;
    p.region_write_passes = 7;
    p.stream_frac = 0.80;
    p.code_footprint = 16 * KiB;
    p.avg_loop_trips = 48;
    add(p);
  }
  {
    BenchmarkProfile p;  // equake: sparse matrix-vector, irregular reads
    p.name = "equake";
    p.floating_point = true;
    p.load_frac = 0.34;
    p.store_frac = 0.08;
    p.body_uops = 12;
    p.fp_alu_frac = 0.55;
    p.data_footprint = 1536 * KiB;
    p.write_footprint = 1152 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 6;
    p.stream_frac = 0.45;
    p.zipf_s = 0.9;
    p.code_footprint = 20 * KiB;
    p.avg_loop_trips = 24;
    add(p);
  }
  {
    BenchmarkProfile p;  // mesa: software rendering, large write-once buffers
    p.name = "mesa";
    p.floating_point = true;
    p.load_frac = 0.24;
    p.store_frac = 0.15;
    p.body_uops = 11;
    p.fp_alu_frac = 0.45;
    p.data_footprint = 1024 * KiB;
    p.write_footprint = 832 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 25;
    p.region_revisit_prob = 0.15;
    p.stream_frac = 0.55;
    p.code_footprint = 48 * KiB;
    p.avg_loop_trips = 12;
    add(p);
  }
  {
    BenchmarkProfile p;  // apsi: meteorology, dirty-heavy working set
    p.name = "apsi";
    p.floating_point = true;
    p.load_frac = 0.27;
    p.store_frac = 0.14;
    p.body_uops = 13;
    p.fp_alu_frac = 0.65;
    p.data_footprint = 1024 * KiB;
    p.write_footprint = 896 * KiB;
    p.region_bytes = 8 * KiB;
    p.region_write_passes = 23;
    p.region_revisit_prob = 0.15;
    p.stream_frac = 0.60;
    p.code_footprint = 40 * KiB;
    p.avg_loop_trips = 20;
    add(p);
  }
  {
    BenchmarkProfile p;  // art: neural-net image recognition, read-dominated
    p.name = "art";
    p.floating_point = true;
    p.load_frac = 0.36;
    p.store_frac = 0.06;
    p.body_uops = 10;
    p.fp_alu_frac = 0.60;
    p.data_footprint = 1792 * KiB;
    p.write_footprint = 768 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 5;
    p.stream_frac = 0.70;
    p.code_footprint = 12 * KiB;
    p.avg_loop_trips = 40;
    add(p);
  }

  // ---- integer -----------------------------------------------------------
  {
    BenchmarkProfile p;  // gzip: compression, small hot dictionary
    p.name = "gzip";
    p.load_frac = 0.24;
    p.store_frac = 0.09;
    p.body_uops = 7;
    p.data_footprint = 768 * KiB;
    p.write_footprint = 448 * KiB;
    p.region_bytes = 8 * KiB;
    p.region_write_passes = 26;
    p.region_revisit_prob = 0.25;
    p.stream_frac = 0.50;
    p.zipf_s = 1.0;
    p.code_footprint = 24 * KiB;
    p.avg_loop_trips = 10;
    add(p);
  }
  {
    BenchmarkProfile p;  // vpr: place & route, pointerish with rewrites
    p.name = "vpr";
    p.load_frac = 0.27;
    p.store_frac = 0.10;
    p.body_uops = 8;
    p.data_footprint = 1408 * KiB;
    p.write_footprint = 1024 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 10;
    p.stream_frac = 0.30;
    p.zipf_s = 0.9;
    p.code_footprint = 32 * KiB;
    p.avg_loop_trips = 8;
    add(p);
  }
  {
    BenchmarkProfile p;  // gcc: compiler, big code, modest data writes
    p.name = "gcc";
    p.load_frac = 0.25;
    p.store_frac = 0.11;
    p.body_uops = 6;
    p.data_footprint = 1536 * KiB;
    p.write_footprint = 1024 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 12;
    p.stream_frac = 0.35;
    p.zipf_s = 1.0;
    p.code_footprint = 96 * KiB;
    p.avg_loop_trips = 6;
    add(p);
  }
  {
    BenchmarkProfile p;  // mcf: pointer chasing over a huge graph
    p.name = "mcf";
    p.load_frac = 0.33;
    p.store_frac = 0.07;
    p.body_uops = 7;
    p.data_footprint = 3072 * KiB;
    p.write_footprint = 1024 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 2.5;
    p.stream_frac = 0.15;
    p.zipf_s = 0.6;
    p.code_footprint = 12 * KiB;
    p.avg_loop_trips = 6;
    add(p);
  }
  {
    BenchmarkProfile p;  // parser: dictionary allocation, dirty-heavy heap
    p.name = "parser";
    p.load_frac = 0.26;
    p.store_frac = 0.13;
    p.body_uops = 6;
    p.data_footprint = 1024 * KiB;
    p.write_footprint = 832 * KiB;
    p.region_bytes = 4 * KiB;
    p.region_write_passes = 19;
    p.region_revisit_prob = 0.15;
    p.stream_frac = 0.25;
    p.zipf_s = 0.9;
    p.code_footprint = 40 * KiB;
    p.avg_loop_trips = 5;
    add(p);
  }
  {
    BenchmarkProfile p;  // gap: group theory interpreter, large dirty bags
    p.name = "gap";
    p.load_frac = 0.26;
    p.store_frac = 0.14;
    p.body_uops = 7;
    p.data_footprint = 1152 * KiB;
    p.write_footprint = 896 * KiB;
    p.region_bytes = 8 * KiB;
    p.region_write_passes = 11;
    p.region_revisit_prob = 0.15;
    p.stream_frac = 0.35;
    p.zipf_s = 0.8;
    p.code_footprint = 48 * KiB;
    p.avg_loop_trips = 8;
    add(p);
  }
  {
    BenchmarkProfile p;  // bzip2: block-sorting compressor, streaming-ish
    p.name = "bzip2";
    p.load_frac = 0.28;
    p.store_frac = 0.10;
    p.body_uops = 8;
    p.data_footprint = 1408 * KiB;
    p.write_footprint = 896 * KiB;
    p.region_bytes = 16 * KiB;
    p.region_write_passes = 10;
    p.stream_frac = 0.60;
    p.zipf_s = 0.8;
    p.code_footprint = 20 * KiB;
    p.avg_loop_trips = 14;
    add(p);
  }
  return v;
}

}  // namespace

const std::vector<BenchmarkProfile>& spec2000_profiles() {
  static const std::vector<BenchmarkProfile> profiles = make_profiles();
  return profiles;
}

std::vector<BenchmarkProfile> fp_profiles() {
  std::vector<BenchmarkProfile> out;
  for (const auto& p : spec2000_profiles())
    if (p.floating_point) out.push_back(p);
  return out;
}

std::vector<BenchmarkProfile> int_profiles() {
  std::vector<BenchmarkProfile> out;
  for (const auto& p : spec2000_profiles())
    if (!p.floating_point) out.push_back(p);
  return out;
}

const BenchmarkProfile& profile_by_name(const std::string& name) {
  for (const auto& p : spec2000_profiles())
    if (p.name == name) return p;
  throw std::out_of_range("unknown benchmark: " + name);
}

}  // namespace aeep::workload
