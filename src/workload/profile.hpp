// Synthetic SPEC2000-like benchmark profiles.
//
// Each profile parameterises the generator in generator.hpp so that the
// memory-reference stream reproduces the *behavioural* properties the paper
// measures on real SPEC2000 binaries: footprint vs the 1 MB L2, fraction of
// resident lines that get written (Figure 1's dirty percentages), write
// generational structure (sweep/burst periods that interact with the 64K-4M
// cleaning intervals), branch predictability and op mix. See DESIGN.md §3
// for the substitution rationale.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace aeep::workload {

struct BenchmarkProfile {
  std::string name;
  bool floating_point = false;

  // --- op mix (fractions of all micro-ops; remainder is ALU work) ---
  double load_frac = 0.25;
  double store_frac = 0.10;
  // Branch spacing is structural: one branch terminates each loop body of
  // roughly `body_uops` micro-ops.
  unsigned body_uops = 8;

  // Of non-memory, non-branch ops: fraction on FP units and mult/div units.
  double fp_alu_frac = 0.0;
  double mul_frac = 0.05;

  // --- data footprint ---
  u64 data_footprint = 512 * KiB;   ///< bytes of data ever touched
  u64 write_footprint = 256 * KiB;  ///< bytes that receive stores
  u64 region_bytes = 4 * KiB;       ///< active write-region granularity
  double region_write_passes = 1.5; ///< avg times each region line is
                                    ///< stored per activation (>1 sets
                                    ///< written bits)
  /// After finishing a region activation, probability that the next
  /// activation revisits a recently finished region (short write gap)
  /// instead of advancing the sweep. Revisits are what make very small
  /// cleaning intervals pay premature write-backs (Figures 5/6).
  double region_revisit_prob = 0.35;
  double stream_frac = 0.5;         ///< loads streaming sequentially
  double zipf_s = 0.8;              ///< skew of the remaining random loads

  // --- code behaviour ---
  u64 code_footprint = 32 * KiB;
  unsigned avg_loop_trips = 16;     ///< loop trip count (branch behaviour)

  // --- dependencies ---
  double dep1_prob = 0.7;
  double dep2_prob = 0.3;
  u8 max_dep_dist = 6;
};

/// The 7 floating-point + 7 integer benchmarks evaluated by the paper.
const std::vector<BenchmarkProfile>& spec2000_profiles();

/// Subsets matching the paper's Figure 3/5 (FP) and Figure 4/6 (INT) splits.
std::vector<BenchmarkProfile> fp_profiles();
std::vector<BenchmarkProfile> int_profiles();

/// Lookup by name; throws std::out_of_range on unknown benchmark.
const BenchmarkProfile& profile_by_name(const std::string& name);

}  // namespace aeep::workload
