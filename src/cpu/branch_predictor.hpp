// Two-level adaptive branch predictor with a branch target buffer
// (Table 1: "2-level, 2K BTB").
//
// Direction: a global history register indexes (xored with the PC, gshare
// style) a pattern history table of 2-bit saturating counters. Target: a
// direct-mapped 2048-entry BTB. A branch is predicted correctly when the
// direction matches and, for taken branches, the BTB supplies the right
// target.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace aeep::cpu {

struct BranchPredictorConfig {
  unsigned history_bits = 12;   ///< global history length / PHT index width
  unsigned btb_entries = 2048;
  unsigned btb_ways = 1;        ///< direct-mapped by default
};

struct BranchPredictorStats {
  u64 lookups = 0;
  u64 dir_mispredicts = 0;
  u64 target_mispredicts = 0;  ///< direction right (taken) but target wrong
  u64 mispredicts() const { return dir_mispredicts + target_mispredicts; }
  double mispredict_rate() const {
    return lookups ? static_cast<double>(mispredicts()) / static_cast<double>(lookups) : 0.0;
  }

  bool operator==(const BranchPredictorStats&) const = default;
};

class BranchPredictor {
 public:
  explicit BranchPredictor(const BranchPredictorConfig& config = {});

  struct Prediction {
    bool taken = false;
    Addr target = 0;
    bool btb_hit = false;
  };

  /// Predict direction and target for the branch at `pc`.
  Prediction predict(Addr pc) const;

  /// Train with the ground truth and count the mispredict. Returns true if
  /// the prediction was correct (fetch continues seamlessly).
  bool update(Addr pc, bool taken, Addr target);

  const BranchPredictorStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  unsigned pht_index(Addr pc) const;
  unsigned btb_index(Addr pc) const;

  BranchPredictorConfig config_;
  u64 history_ = 0;
  std::vector<u8> pht_;  ///< 2-bit counters, weakly-not-taken initial
  struct BtbEntry {
    Addr tag = kNoAddr;
    Addr target = 0;
  };
  std::vector<BtbEntry> btb_;
  BranchPredictorStats stats_;
};

}  // namespace aeep::cpu
