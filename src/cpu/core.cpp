#include "cpu/core.hpp"

#include <algorithm>
#include <cassert>

namespace aeep::cpu {

OutOfOrderCore::OutOfOrderCore(const CoreConfig& config, UopSource& source,
                               MemoryInterface& memory)
    : config_(config),
      source_(&source),
      mem_(&memory),
      bp_(config.bp),
      fu_(config.fu),
      ruu_(config.ruu_entries) {
  assert(config.width > 0);
  assert(config.ruu_entries > 0 && config.lsq_entries > 0);
}

const OutOfOrderCore::RuuEntry* OutOfOrderCore::find_entry(u64 seq) const {
  if (count_ == 0) return nullptr;
  const u64 head_seq = ruu_[head_].seq;
  if (seq < head_seq || seq >= head_seq + count_) return nullptr;
  const unsigned idx =
      static_cast<unsigned>((head_ + (seq - head_seq)) % config_.ruu_entries);
  return &ruu_[idx];
}

bool OutOfOrderCore::dep_ready(u64 dep_seq) const {
  const RuuEntry* e = find_entry(dep_seq);
  if (e == nullptr) return true;  // already committed
  return e->issued && e->complete_cycle <= now_;
}

bool OutOfOrderCore::deps_ready(const RuuEntry& e) const {
  if (e.op.dep1 && e.seq >= e.op.dep1 && !dep_ready(e.seq - e.op.dep1))
    return false;
  if (e.op.dep2 && e.seq >= e.op.dep2 && !dep_ready(e.seq - e.op.dep2))
    return false;
  return true;
}

bool OutOfOrderCore::forwarding_store(const RuuEntry& load) const {
  const u64 head_seq = ruu_[head_].seq;
  const Addr word = load.op.mem_addr & ~Addr{7};
  // Scan older window entries for a store to the same word.
  for (u64 s = head_seq; s < load.seq; ++s) {
    const RuuEntry* e = find_entry(s);
    if (e && e->op.cls == OpClass::kStore &&
        (e->op.mem_addr & ~Addr{7}) == word)
      return true;
  }
  return false;
}

unsigned OutOfOrderCore::commit_stage() {
  unsigned done = 0;
  while (done < config_.width && count_ > 0) {
    RuuEntry& e = ruu_[head_];
    if (!e.issued || e.complete_cycle > now_) break;
    if (e.op.cls == OpClass::kStore) {
      // Write-through path: the store leaves the pipeline only once the
      // write buffer accepts it.
      if (!mem_->store(now_, e.op.mem_addr, e.op.store_value)) {
        ++stats_.commit_stall_wb_full;
        break;
      }
      ++stats_.stores;
      --lsq_count_;
    } else if (e.op.cls == OpClass::kLoad) {
      ++stats_.loads;
      --lsq_count_;
    } else if (e.op.cls == OpClass::kBranch) {
      ++stats_.branches;
    }
    head_ = (head_ + 1) % config_.ruu_entries;
    --count_;
    ++stats_.committed;
    ++done;
  }
  return done;
}

void OutOfOrderCore::issue_stage() {
  unsigned issued = 0;
  for (unsigned i = 0; i < count_ && issued < config_.width; ++i) {
    RuuEntry& e = ruu_[(head_ + i) % config_.ruu_entries];
    if (e.issued) continue;
    if (!deps_ready(e)) continue;

    const Cycle fu_done = fu_.try_issue(e.op.cls, now_);
    if (fu_done == 0) continue;  // structural hazard

    switch (e.op.cls) {
      case OpClass::kLoad:
        if (forwarding_store(e)) {
          e.complete_cycle = now_ + 1;  // store-to-load forwarding
        } else {
          e.complete_cycle = mem_->load(now_, e.op.mem_addr);
        }
        break;
      case OpClass::kStore:
        // Address generation only; data goes to memory at commit.
        e.complete_cycle = fu_done;
        break;
      default:
        e.complete_cycle = fu_done;
        break;
    }
    e.issued = true;
    ++issued;

    if (e.mispredicted && fetch_blocked_ && blocking_branch_seq_ == e.seq) {
      // Redirect fetched the cycle after resolution.
      fetch_ready_ = std::max(fetch_ready_, e.complete_cycle + 1);
      fetch_blocked_ = false;
    }
  }
}

void OutOfOrderCore::dispatch_stage() {
  unsigned dispatched = 0;
  while (dispatched < config_.width && !fetchq_.empty() &&
         count_ < config_.ruu_entries) {
    if (is_mem(fetchq_.front().cls) && lsq_count_ >= config_.lsq_entries)
      break;
    const MicroOp op = fetchq_.front();
    fetchq_.pop_front();

    const unsigned idx = (head_ + count_) % config_.ruu_entries;
    RuuEntry& e = ruu_[idx];
    e = RuuEntry{};
    e.op = op;
    e.seq = next_seq_++;
    if (is_mem(op.cls)) ++lsq_count_;

    if (op.cls == OpClass::kBranch) {
      const bool correct = bp_.update(op.pc, op.branch_taken, op.branch_target);
      if (!correct) {
        e.mispredicted = true;
        // Squash everything fetched behind the branch and stop fetching
        // until the branch resolves.
        fetchq_.clear();
        fetch_blocked_ = true;
        blocking_branch_seq_ = e.seq;
        cur_fetch_block_ = kNoAddr;  // refetch starts a new block
      }
    }

    ++count_;
    ++dispatched;
    if (e.mispredicted) break;  // nothing valid behind it this cycle
  }
}

void OutOfOrderCore::fetch_stage() {
  if (fetch_blocked_) {
    ++stats_.fetch_stall_cycles;
    return;
  }
  if (now_ < fetch_ready_) {
    ++stats_.fetch_stall_cycles;
    return;
  }
  unsigned fetched = 0;
  while (fetched < config_.width && fetchq_.size() < config_.fetch_queue) {
    MicroOp op = source_->next();
    const Addr block = op.pc / kFetchBlockBytes;
    if (block != cur_fetch_block_) {
      const Cycle ready = mem_->fetch(now_, op.pc);
      cur_fetch_block_ = block;
      if (ready > now_ + 1) {
        // I-cache miss: this block's ops arrive when the fill completes.
        fetch_ready_ = ready;
        fetchq_.push_back(op);
        return;
      }
    }
    fetchq_.push_back(op);
    ++fetched;
  }
}

unsigned OutOfOrderCore::step() {
  mem_->tick(now_);
  const unsigned committed = commit_stage();
  issue_stage();
  dispatch_stage();
  fetch_stage();
  ++now_;
  ++stats_.cycles;
  return committed;
}

CoreStats OutOfOrderCore::run(u64 max_commits) {
  while (stats_.committed < max_commits) step();
  stats_.bp = bp_.stats();
  return stats_;
}

void OutOfOrderCore::reset_stats() {
  stats_ = {};
  bp_.reset_stats();
}

}  // namespace aeep::cpu
