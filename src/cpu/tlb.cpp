#include "cpu/tlb.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace aeep::cpu {

Tlb::Tlb(const TlbConfig& config)
    : config_(config), sets_(config.entries / config.ways) {
  assert(config.ways > 0 && config.entries % config.ways == 0);
  assert(is_pow2(sets_) && is_pow2(config.page_bytes));
  entries_.resize(config.entries);
}

Cycle Tlb::access(Addr vaddr, Cycle now) {
  ++stats_.accesses;
  const Addr vpn = vaddr / config_.page_bytes;
  const unsigned set = static_cast<unsigned>(vpn & (sets_ - 1));
  Entry* base = entries_.data() + static_cast<std::size_t>(set) * config_.ways;

  for (unsigned w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].vpn == vpn) {
      base[w].stamp = now;
      return 0;
    }
  }
  ++stats_.misses;
  // LRU replace.
  unsigned victim = 0;
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].stamp < base[victim].stamp) victim = w;
  }
  base[victim] = {vpn, now, true};
  return config_.miss_penalty;
}

void Tlb::reset() {
  for (auto& e : entries_) e = Entry{};
  stats_ = {};
}

}  // namespace aeep::cpu
