#include "cpu/func_units.hpp"

namespace aeep::cpu {

FuncUnitPool::FuncUnitPool(const FuPoolConfig& config) : config_(config) {
  auto init = [](Bank& b, const FuClassConfig& c) {
    b.units.resize(c.count);
    b.latency = c.latency;
    b.issue_interval = c.issue_interval;
  };
  init(int_alu_, config.int_alu);
  init(int_mul_, config.int_mul);
  init(fp_alu_, config.fp_alu);
  init(fp_mul_, config.fp_mul);
}

FuncUnitPool::Bank& FuncUnitPool::bank_for(OpClass cls) {
  switch (cls) {
    case OpClass::kIntMul: return int_mul_;
    case OpClass::kFpAlu: return fp_alu_;
    case OpClass::kFpMul: return fp_mul_;
    case OpClass::kIntAlu:
    case OpClass::kLoad:
    case OpClass::kStore:
    case OpClass::kBranch:
      return int_alu_;
  }
  return int_alu_;
}

Cycle FuncUnitPool::try_issue(OpClass cls, Cycle now) {
  Bank& b = bank_for(cls);
  for (Unit& u : b.units) {
    if (u.next_free <= now) {
      u.next_free = now + b.issue_interval;
      return now + b.latency;
    }
  }
  return 0;
}

}  // namespace aeep::cpu
