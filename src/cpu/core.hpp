// Out-of-order superscalar timing model (SimpleScalar sim-outorder style).
//
// Table-1 machine: 4-wide fetch/decode/issue/commit, 64-entry RUU (register
// update unit, a unified ROB/issue window), 32-entry LSQ, the FU pool of
// func_units.hpp, a 2-level branch predictor with 2K BTB. Trace-driven: a
// UopSource supplies the committed path; wrong-path fetch is modelled as a
// fetch bubble from a mispredicted branch's rename until its resolution.
//
// Pipeline model per cycle (reverse order so stages see last cycle's state):
//   commit  — up to 4 oldest completed ops retire; stores enter the
//             write-through path here and stall commit while the write
//             buffer is full;
//   issue   — up to 4 ready ops (deps complete, FU free, LSQ order for
//             loads) begin execution; loads access the hierarchy, with
//             store-to-load forwarding from older LSQ stores to the word;
//   dispatch— up to 4 fetched ops rename into the RUU/LSQ; branches predict
//             here and a mispredict blocks fetch until resolution;
//   fetch   — up to 4 ops enter the fetch queue, paying I-cache latency at
//             every new fetch block.
#pragma once

#include <deque>
#include <vector>

#include "cpu/branch_predictor.hpp"
#include "cpu/func_units.hpp"
#include "cpu/memory_iface.hpp"
#include "cpu/uop.hpp"

namespace aeep::cpu {

struct CoreConfig {
  unsigned width = 4;          ///< decode and issue rate (Table 1)
  unsigned ruu_entries = 64;
  unsigned lsq_entries = 32;
  unsigned fetch_queue = 16;
  FuPoolConfig fu{};
  BranchPredictorConfig bp{};
};

struct CoreStats {
  u64 cycles = 0;
  u64 committed = 0;
  u64 loads = 0;
  u64 stores = 0;
  u64 branches = 0;
  u64 commit_stall_wb_full = 0;  ///< commit slots lost to a full write buffer
  u64 fetch_stall_cycles = 0;    ///< cycles fetch was blocked on a mispredict
  BranchPredictorStats bp;

  double ipc() const {
    return cycles ? static_cast<double>(committed) / static_cast<double>(cycles) : 0.0;
  }
  u64 loads_stores() const { return loads + stores; }

  bool operator==(const CoreStats&) const = default;
};

class OutOfOrderCore {
 public:
  OutOfOrderCore(const CoreConfig& config, UopSource& source,
                 MemoryInterface& memory);

  /// Advance one cycle (all four stages). Returns ops committed this cycle.
  unsigned step();

  /// Run until `max_commits` micro-ops have committed; returns final stats.
  CoreStats run(u64 max_commits);

  Cycle now() const { return now_; }
  const CoreStats& stats() const { return stats_; }
  /// Zero statistics (not pipeline state) — used after warm-up.
  void reset_stats();
  const BranchPredictor& predictor() const { return bp_; }

 private:
  struct RuuEntry {
    MicroOp op;
    u64 seq = 0;
    bool issued = false;
    Cycle complete_cycle = 0;
    bool mispredicted = false;
  };

  unsigned commit_stage();
  void issue_stage();
  void dispatch_stage();
  void fetch_stage();

  bool deps_ready(const RuuEntry& e) const;
  bool dep_ready(u64 dep_seq) const;
  const RuuEntry* find_entry(u64 seq) const;
  /// Older store to the same 8-byte word still in the window?
  bool forwarding_store(const RuuEntry& load) const;

  CoreConfig config_;
  UopSource* source_;
  MemoryInterface* mem_;
  BranchPredictor bp_;
  FuncUnitPool fu_;

  std::vector<RuuEntry> ruu_;  ///< ring buffer
  unsigned head_ = 0;
  unsigned count_ = 0;
  unsigned lsq_count_ = 0;
  u64 next_seq_ = 0;  ///< seq of the next op to dispatch

  std::deque<MicroOp> fetchq_;
  bool fetch_blocked_ = false;   ///< waiting on a mispredicted branch
  u64 blocking_branch_seq_ = 0;
  Cycle fetch_ready_ = 0;        ///< I-cache miss in progress until here
  Addr cur_fetch_block_ = kNoAddr;

  Cycle now_ = 0;
  CoreStats stats_;

  static constexpr unsigned kFetchBlockBytes = 32;  ///< L1I line size
};

}  // namespace aeep::cpu
