#include "cpu/branch_predictor.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace aeep::cpu {

BranchPredictor::BranchPredictor(const BranchPredictorConfig& config)
    : config_(config),
      pht_(std::size_t{1} << config.history_bits, 1),  // weakly not-taken
      btb_(config.btb_entries) {
  assert(config.history_bits > 0 && config.history_bits <= 24);
  assert(is_pow2(config.btb_entries));
}

unsigned BranchPredictor::pht_index(Addr pc) const {
  const u64 mask = (u64{1} << config_.history_bits) - 1;
  return static_cast<unsigned>(((pc >> 2) ^ history_) & mask);
}

unsigned BranchPredictor::btb_index(Addr pc) const {
  return static_cast<unsigned>((pc >> 2) & (config_.btb_entries - 1));
}

BranchPredictor::Prediction BranchPredictor::predict(Addr pc) const {
  Prediction p;
  p.taken = pht_[pht_index(pc)] >= 2;
  const BtbEntry& e = btb_[btb_index(pc)];
  p.btb_hit = e.tag == pc;
  p.target = p.btb_hit ? e.target : 0;
  return p;
}

bool BranchPredictor::update(Addr pc, bool taken, Addr target) {
  ++stats_.lookups;
  const Prediction p = predict(pc);

  // Train the 2-bit counter.
  u8& ctr = pht_[pht_index(pc)];
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;

  // Shift global history.
  history_ = ((history_ << 1) | (taken ? 1u : 0u)) &
             ((u64{1} << config_.history_bits) - 1);

  // Train the BTB on taken branches.
  if (taken) {
    BtbEntry& e = btb_[btb_index(pc)];
    e.tag = pc;
    e.target = target;
  }

  if (p.taken != taken) {
    ++stats_.dir_mispredicts;
    return false;
  }
  if (taken && (!p.btb_hit || p.target != target)) {
    ++stats_.target_mispredicts;
    return false;
  }
  return true;
}

}  // namespace aeep::cpu
