// Abstract micro-op stream driving the timing model.
//
// The simulator is trace-driven: a UopSource produces an unbounded stream of
// micro-ops carrying everything timing needs — operation class, memory
// address, ground-truth branch behaviour, and dependency distances — but no
// instruction semantics (see DESIGN.md, substitution table).
#pragma once

#include "common/types.hpp"

namespace aeep::cpu {

enum class OpClass : u8 {
  kIntAlu,   ///< 1-cycle integer op (4 units)
  kIntMul,   ///< integer multiply/divide (1 unit)
  kFpAlu,    ///< floating-point add (1 unit)
  kFpMul,    ///< floating-point multiply/divide (1 unit)
  kLoad,
  kStore,
  kBranch,
};

struct MicroOp {
  OpClass cls = OpClass::kIntAlu;
  Addr pc = 0;              ///< instruction address (I-cache, predictor)
  Addr mem_addr = 0;        ///< loads/stores: effective address (8B aligned)
  u64 store_value = 0;      ///< stores: value written
  bool branch_taken = false;    ///< branches: ground-truth outcome
  Addr branch_target = 0;       ///< branches: ground-truth target
  /// Register-dependency distances: this op reads the results of the ops
  /// `dep1`/`dep2` positions earlier in the stream (0 = no dependency).
  u8 dep1 = 0;
  u8 dep2 = 0;
};

/// Unbounded micro-op producer.
class UopSource {
 public:
  virtual ~UopSource() = default;
  virtual MicroOp next() = 0;
  virtual const char* name() const = 0;
};

constexpr bool is_mem(OpClass c) {
  return c == OpClass::kLoad || c == OpClass::kStore;
}

}  // namespace aeep::cpu
