// Functional-unit pool (Table 1: 4 integer ALUs, 1 integer mult/div,
// 1 FP adder, 1 FP mult/div). Units are pipelined: each can accept one op
// per cycle; results appear after the class latency.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "cpu/uop.hpp"

namespace aeep::cpu {

struct FuClassConfig {
  unsigned count = 1;
  Cycle latency = 1;
  Cycle issue_interval = 1;  ///< cycles between issues to the same unit
};

struct FuPoolConfig {
  FuClassConfig int_alu{4, 1, 1};
  FuClassConfig int_mul{1, 3, 1};
  FuClassConfig fp_alu{1, 2, 1};
  FuClassConfig fp_mul{1, 4, 1};
};

class FuncUnitPool {
 public:
  explicit FuncUnitPool(const FuPoolConfig& config = {});

  /// Try to claim a unit for `cls` at `now`. Returns the result-ready cycle,
  /// or 0 if no unit of that class is free this cycle. (Loads/stores/branches
  /// use an integer ALU slot for address generation / compare.)
  Cycle try_issue(OpClass cls, Cycle now);

  const FuPoolConfig& config() const { return config_; }

 private:
  struct Unit {
    Cycle next_free = 0;
  };
  struct Bank {
    std::vector<Unit> units;
    Cycle latency = 1;
    Cycle issue_interval = 1;
  };

  Bank& bank_for(OpClass cls);

  FuPoolConfig config_;
  Bank int_alu_, int_mul_, fp_alu_, fp_mul_;
};

}  // namespace aeep::cpu
