// Set-associative TLB (Table 1: 64-entry 4-way ITLB, 128-entry 4-way DTLB).
// Translation itself is identity (flat physical space); the TLB only adds
// the miss penalty and tracks reach.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace aeep::cpu {

struct TlbConfig {
  unsigned entries = 64;
  unsigned ways = 4;
  unsigned page_bytes = 4096;
  Cycle miss_penalty = 30;  ///< table-walk latency
};

struct TlbStats {
  u64 accesses = 0;
  u64 misses = 0;
  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }

  bool operator==(const TlbStats&) const = default;
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& config = {});

  /// Translate; returns the added latency (0 on hit, miss_penalty on miss)
  /// and installs the entry.
  Cycle access(Addr vaddr, Cycle now);

  const TlbConfig& config() const { return config_; }
  const TlbStats& stats() const { return stats_; }
  /// Invalidate all entries and zero statistics.
  void reset();
  /// Zero statistics only (entries stay warm).
  void reset_stats() { stats_ = {}; }

 private:
  struct Entry {
    Addr vpn = kNoAddr;
    Cycle stamp = 0;
    bool valid = false;
  };

  TlbConfig config_;
  unsigned sets_;
  std::vector<Entry> entries_;
  TlbStats stats_;
};

}  // namespace aeep::cpu
