// Interface through which the core reaches the memory hierarchy.
// Implemented by sim::MemoryHierarchy (L1I + L1D + write buffer + L2 + bus).
#pragma once

#include "common/types.hpp"

namespace aeep::cpu {

class MemoryInterface {
 public:
  virtual ~MemoryInterface() = default;

  /// Instruction fetch touching the block containing `pc`. Returns the
  /// cycle the block is available.
  virtual Cycle fetch(Cycle now, Addr pc) = 0;

  /// Data load. Returns the cycle the value is available.
  virtual Cycle load(Cycle now, Addr addr) = 0;

  /// Data store presented at commit (write-through path). Returns false if
  /// the write buffer is full — the caller must retry next cycle.
  virtual bool store(Cycle now, Addr addr, u64 value) = 0;

  /// Per-cycle housekeeping: write-buffer drains, L2 cleaning FSM.
  virtual void tick(Cycle now) = 0;
};

}  // namespace aeep::cpu
