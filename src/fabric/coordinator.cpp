#include "fabric/coordinator.hpp"

#include <algorithm>
#include <utility>

#include "metrics/registry.hpp"
#include "metrics/timer.hpp"
#include "server/client.hpp"
#include "server/wire.hpp"
#include "sim/result_json.hpp"

namespace aeep::fabric {

namespace {

/// The wire embeds the human kind prefix in what(); strip it so a remote
/// simulator failure reads like the local SweepOutcome error it mirrors.
std::string strip_kind_prefix(const server::ServerError& e) {
  const std::string what = e.what();
  const std::string prefix =
      std::string(server::to_string(e.kind())) + ": ";
  return what.rfind(prefix, 0) == 0 ? what.substr(prefix.size()) : what;
}

}  // namespace

Coordinator::Coordinator(FabricConfig config)
    : config_(std::move(config)),
      registry_(config_.workers, config_.retire_after) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_attempts == 0) config_.max_attempts = 1;
  if (config_.straggler_factor < 1.0) config_.straggler_factor = 1.0;
  if (!config_.store_dir.empty())
    cache_ = std::make_unique<store::SweepCache>(
        store::StoreConfig{config_.store_dir, 4096});
}

FabricStats Coordinator::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void Coordinator::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = FabricStats{};
}

std::size_t Coordinator::probe_fleet() {
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    if (registry_.retired(i)) continue;
    const WorkerEndpoint ep = registry_.endpoint(i);
    {
      const MutexLock lock(mutex_);
      ++stats_.probes;
    }
    try {
      server::Client client(ep.host, ep.port);
      client.set_call_timeout_ms(static_cast<int>(config_.probe_timeout_ms));
      if (!config_.token.empty()) client.set_token(config_.token);
      const JsonValue h = client.health();
      if (h.get_bool("draining", false)) {
        // A draining worker is leaving voluntarily: stop dispatching to it
        // now instead of burning its failure budget on kShutdown bounces.
        registry_.retire(i, "worker is draining");
        continue;
      }
      registry_.note_success(i);
    } catch (const server::ServerError& e) {
      {
        const MutexLock lock(mutex_);
        ++stats_.probe_failures;
      }
      registry_.note_failure(
          i, std::string("health probe failed: ") + e.what());
    }
  }
  return registry_.live();
}

bool Coordinator::fleet_degraded() const {
  const std::size_t live = registry_.live();
  return live == 0 || live < config_.min_fleet;
}

std::vector<FabricOutcome> Coordinator::run(
    const std::vector<sim::SweepJob>& grid, const ProgressFn& progress) {
  std::vector<FabricOutcome> out(grid.size());
  if (grid.empty()) return out;

  RunState rs;
  rs.grid = &grid;
  rs.out = &out;
  rs.cells.resize(grid.size());
  rs.progress = progress;

  // Consult the result store before sharding anything: a hit cell is
  // delivered terminal right here (worker = "cache", zero attempts) and
  // never enters the pending queue. Lookups run unlocked — the cache has
  // its own mutex and the two never nest.
  std::vector<JsonValue> cached(grid.size());
  std::vector<char> is_hit(grid.size(), 0);
  if (cache_) {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (std::optional<JsonValue> m = cache_->lookup_metrics(grid[i])) {
        cached[i] = std::move(*m);
        is_hit[i] = 1;
      }
    }
  }
  {
    const MutexLock lock(mutex_);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (is_hit[i]) {
        Cell& c = rs.cells[i];
        c.done = true;
        FabricOutcome oc;
        oc.metrics = std::move(cached[i]);
        oc.worker = "cache";
        out[i] = std::move(oc);
        ++rs.completed;
        ++stats_.jobs_cached;
        if (rs.progress) {
          FabricProgress p{rs.completed, grid.size(), i, &grid[i], &out[i]};
          rs.progress(p);
        }
        continue;
      }
      rs.cells[i].queued = true;
      rs.pending.push_back(i);
    }
    if (rs.completed == grid.size()) rs.finished = true;
  }

  if (!config_.workers.empty()) probe_fleet();

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    if (registry_.retired(i)) continue;
    threads.emplace_back([this, i, &rs] { worker_loop(i, rs); });
  }

  // Monitor loop: watch for completion, nominate stragglers for
  // speculative re-dispatch, and absorb pending work locally once the
  // fleet has degraded below the floor. The lock is scoped per iteration
  // because speculate_stragglers/run_locally take it themselves.
  while (true) {
    {
      const MutexLock lock(mutex_);
      if (rs.completed >= grid.size()) break;
      cv_main_.wait_for(mutex_, std::chrono::milliseconds(200));
      if (rs.completed >= grid.size()) break;
    }
    speculate_stragglers(rs);
    if (fleet_degraded()) run_locally(rs);
  }
  {
    const MutexLock lock(mutex_);
    rs.finished = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads) t.join();

  // Persist what the run computed (cache hits are already stored). A
  // worker returns metrics JSON, not a RunResult, so fabric records are
  // metrics-only — enough for the next fabric/served consumer.
  if (cache_) {
    u64 inserted = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (!out[i].ok() || out[i].worker == "cache") continue;
      cache_->insert_metrics(grid[i], out[i].metrics);
      ++inserted;
    }
    const MutexLock lock(mutex_);
    stats_.store_inserts += inserted;
  }
  return out;
}

std::vector<std::size_t> Coordinator::claim_batch(RunState& rs) {
  std::vector<std::size_t> batch;
  const auto now = metrics::now();
  const MutexLock lock(mutex_);
  while (!rs.pending.empty() && batch.size() < config_.batch_size) {
    const std::size_t idx = rs.pending.front();
    rs.pending.pop_front();
    Cell& c = rs.cells[idx];
    c.queued = false;
    if (c.done) continue;  // a speculative duplicate already finished it
    ++c.attempts;
    ++c.inflight;
    c.dispatched_at = now;
    batch.push_back(idx);
  }
  return batch;
}

bool Coordinator::deliver(RunState& rs, std::size_t index,
                          FabricOutcome outcome) {
  {
    const MutexLock lock(mutex_);
    Cell& c = rs.cells[index];
    if (c.inflight > 0) --c.inflight;
    if (c.done) {
      // First result won; this duplicate computed identical metrics (same
      // seed, same options), so discarding it cannot change the output.
      ++stats_.duplicates_discarded;
      return false;
    }
    c.done = true;
    outcome.attempts = c.attempts;
    outcome.speculative = c.speculated;
    if (outcome.ok()) {
      if (outcome.worker == "local") ++stats_.jobs_local;
      else ++stats_.jobs_remote;
    }
    const double wall_ms = metrics::ms_since(c.dispatched_at);
    rs.completion_ms.push_back(wall_ms);
    static metrics::Histogram& cell_wall_us =
        metrics::Registry::instance().histogram("fabric.cell_wall_us");
    cell_wall_us.record(static_cast<u64>(wall_ms * 1000.0));
    (*rs.out)[index] = std::move(outcome);
    ++rs.completed;
    if (rs.progress) {
      FabricProgress p{rs.completed, rs.grid->size(), index,
                       &(*rs.grid)[index], &(*rs.out)[index]};
      rs.progress(p);  // under the lock: serialised, completion order
    }
    if (rs.completed == rs.grid->size()) rs.finished = true;
  }
  cv_main_.notify_all();
  cv_work_.notify_all();
  return true;
}

void Coordinator::requeue(RunState& rs, std::size_t index,
                          const std::string& error, bool charge_attempt) {
  bool out_of_attempts = false;
  {
    const MutexLock lock(mutex_);
    Cell& c = rs.cells[index];
    if (c.done || c.queued) {  // finished elsewhere / already waiting
      if (c.inflight > 0) --c.inflight;
      return;
    }
    // A cell bounced by backpressure never reached a worker; claiming it
    // must not burn retry budget, or a saturated-but-healthy fleet would
    // slowly fail its whole grid.
    if (!charge_attempt && c.attempts > 0) --c.attempts;
    if (charge_attempt && c.attempts >= config_.max_attempts) {
      out_of_attempts = true;  // deliver() below decrements inflight
    } else {
      if (c.inflight > 0) --c.inflight;
      c.queued = true;
      rs.pending.push_back(index);
      ++stats_.retries;
      static metrics::Counter& retries =
          metrics::Registry::instance().counter("fabric.retries");
      retries.increment();
    }
  }
  if (out_of_attempts) {
    FabricOutcome oc;
    oc.error = "gave up after " + std::to_string(config_.max_attempts) +
               " dispatches; last error: " + error;
    deliver(rs, index, std::move(oc));
  } else {
    cv_work_.notify_all();
  }
}

void Coordinator::speculate_stragglers(RunState& rs) {
  bool nominated = false;
  {
    const MutexLock lock(mutex_);
    if (rs.completion_ms.size() < 3) return;  // no meaningful median yet
    std::vector<double> sorted = rs.completion_ms;
    const std::size_t mid = sorted.size() / 2;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(mid),
                     sorted.end());
    const double median = sorted[mid];
    const double threshold =
        std::max(static_cast<double>(config_.straggler_min_ms),
                 config_.straggler_factor * median);
    for (std::size_t i = 0; i < rs.cells.size(); ++i) {
      Cell& c = rs.cells[i];
      if (c.done || c.queued || c.speculated || c.inflight == 0) continue;
      if (metrics::ms_since(c.dispatched_at) <= threshold) continue;
      c.speculated = true;
      c.queued = true;
      rs.pending.push_back(i);
      ++stats_.speculative_dispatches;
      nominated = true;
    }
  }
  if (nominated) cv_work_.notify_all();
}

void Coordinator::run_locally(RunState& rs) {
  std::vector<std::size_t> indices;
  {
    const MutexLock lock(mutex_);
    const auto now = metrics::now();
    while (!rs.pending.empty()) {
      const std::size_t idx = rs.pending.front();
      rs.pending.pop_front();
      Cell& c = rs.cells[idx];
      c.queued = false;
      if (c.done) continue;
      ++c.attempts;
      ++c.inflight;
      c.dispatched_at = now;
      indices.push_back(idx);
    }
  }
  if (indices.empty()) return;

  if (!config_.allow_local_fallback) {
    for (const std::size_t idx : indices) {
      FabricOutcome oc;
      oc.error = "no live workers and local fallback is disabled";
      deliver(rs, idx, std::move(oc));
    }
    return;
  }

  std::vector<sim::SweepJob> subgrid;
  subgrid.reserve(indices.size());
  for (const std::size_t idx : indices) subgrid.push_back((*rs.grid)[idx]);
  const sim::SweepRunner runner(config_.local_jobs);
  runner.run(subgrid, [&](const sim::SweepProgress& p) {
    FabricOutcome oc;
    oc.worker = "local";
    if (p.outcome->ok())
      oc.metrics = sim::run_result_json(p.outcome->result);
    else
      oc.error = p.outcome->error;
    deliver(rs, indices[p.job_index], std::move(oc));
  });
}

void Coordinator::worker_loop(std::size_t worker_idx, RunState& rs) {
  Backoff backoff(config_.backoff,
                  config_.seed + 0x9E3779B97F4A7C15ull * (worker_idx + 1));
  const WorkerEndpoint ep = registry_.endpoint(worker_idx);
  const std::string name = ep.display_name();
  // Per-worker RPC latency: one instrument per endpoint, so a slow worker
  // shows up as its own p99 rather than hiding in the fleet aggregate.
  // Failed calls record too — a timed-out RPC *is* latency.
  metrics::Histogram& rpc_us =
      metrics::Registry::instance().histogram("fabric.rpc_us." + name);

  while (true) {
    {
      const MutexLock lock(mutex_);
      while (!rs.finished && rs.pending.empty()) cv_work_.wait(mutex_);
      if (rs.finished) return;
    }
    if (registry_.retired(worker_idx)) return;

    std::vector<std::size_t> outstanding = claim_batch(rs);
    if (outstanding.empty()) continue;

    const auto settle = [&](std::size_t idx) {
      const auto it =
          std::find(outstanding.begin(), outstanding.end(), idx);
      if (it != outstanding.end()) outstanding.erase(it);
    };
    const auto run_finished = [&] {
      const MutexLock lock(mutex_);
      return rs.finished;
    };

    bool worker_failed = false;
    bool saw_busy = false;
    std::string failure;
    std::vector<std::pair<std::size_t, u64>> submitted;
    try {
      server::Client client(ep.host, ep.port);
      client.set_call_timeout_ms(static_cast<int>(config_.call_timeout_ms));
      if (!config_.token.empty()) client.set_token(config_.token);
      {
        const MutexLock lock(mutex_);
        ++stats_.dispatches;
      }

      // Shard the batch onto the worker's queue. A kBusy bounce stops
      // submitting (the rest of the batch is re-queued below) but is not a
      // health failure — the worker is alive, just saturated.
      for (const std::size_t idx : outstanding) {
        const sim::SweepJob& job = (*rs.grid)[idx];
        try {
          const metrics::ScopedTimer span(rpc_us);
          const u64 id = client.submit(
              server::job_spec_from_options(job.benchmark, job.options));
          submitted.emplace_back(idx, id);
        } catch (const server::ServerError& e) {
          if (e.kind() != server::ServerErrorKind::kBusy) throw;
          {
            const MutexLock lock(mutex_);
            ++stats_.busy_backoffs;
          }
          saw_busy = true;
          break;
        }
      }

      // Collect in submission order, polling in short chunks: every
      // round trip is bounded by call_timeout_ms, so a worker that dies
      // (or a ChaosProxy that swallows the reply) is detected by the
      // socket timeout instead of hanging the thread for the whole
      // job_wait_ms budget. Each cell completes or re-queues individually
      // so one bad cell cannot sink its batch-mates.
      for (const auto& [idx, id] : submitted) {
        const auto wait_deadline =
            metrics::now() + std::chrono::milliseconds(config_.job_wait_ms);
        try {
          while (true) {
            if (run_finished()) {  // a duplicate won the whole run already
              settle(idx);
              requeue(rs, idx, "run finished elsewhere");
              break;
            }
            const double left_ms =
                metrics::ms_between(metrics::now(), wait_deadline);
            if (left_ms <= 0.0) {
              settle(idx);
              requeue(rs, idx, "result not ready within the wait budget");
              break;
            }
            const u64 chunk = std::min<u64>(
                static_cast<u64>(left_ms) + 1,
                std::max<u64>(1, config_.call_timeout_ms / 4));
            const metrics::ScopedTimer span(rpc_us);
            const JsonValue reply = client.result(id, /*wait=*/true, chunk);
            const JsonValue* metrics = reply.find("metrics");
            if (!reply.get_bool("ready", false) || metrics == nullptr)
              continue;  // still queued/running on the worker
            FabricOutcome oc;
            oc.metrics = *metrics;
            oc.worker = name;
            settle(idx);
            deliver(rs, idx, std::move(oc));
            break;
          }
        } catch (const server::ServerError& e) {
          if (e.kind() == server::ServerErrorKind::kInternal) {
            // The simulator itself rejected this cell — deterministic, so
            // it would fail identically anywhere. Terminal, not retried.
            FabricOutcome oc;
            oc.error = strip_kind_prefix(e);
            oc.worker = name;
            settle(idx);
            deliver(rs, idx, std::move(oc));
            continue;
          }
          if (e.kind() == server::ServerErrorKind::kTimeout) {
            // Blew its deadline on *this* worker; another may be faster.
            settle(idx);
            requeue(rs, idx, strip_kind_prefix(e));
            continue;
          }
          throw;  // connection-level trouble: the whole batch is suspect
        }
      }
    } catch (const server::ServerError& e) {
      worker_failed = true;
      failure = e.what();
    } catch (const std::exception& e) {
      worker_failed = true;
      failure = e.what();
    }

    // Whatever was neither delivered nor individually re-queued goes back
    // on the queue — a batch abort must never lose a cell. Cells that
    // never reached the worker (busy bounce) are re-queued without
    // charging their retry budget.
    const bool was_submitted_failed = worker_failed;
    for (const std::size_t idx : std::vector<std::size_t>(outstanding)) {
      const bool reached_worker =
          std::any_of(submitted.begin(), submitted.end(),
                      [&](const auto& p) { return p.first == idx; });
      requeue(rs, idx,
              was_submitted_failed ? failure : "batch not completed",
              /*charge_attempt=*/reached_worker);
    }
    outstanding.clear();

    if (worker_failed) {
      {
        const MutexLock lock(mutex_);
        ++stats_.worker_failures;
      }
      if (registry_.note_failure(worker_idx, failure)) return;  // retired
      backoff_sleep(backoff);
    } else {
      registry_.note_success(worker_idx);
      backoff.reset();
      if (saw_busy) backoff_sleep(backoff);  // cool off, then reset again
      backoff.reset();
    }
  }
}

}  // namespace aeep::fabric
