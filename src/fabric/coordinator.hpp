// The coordinator side of the sweep fabric: shards a (benchmark × options)
// sweep grid into job batches and fans them over the aeep_served wire
// protocol to a registry of workers, surviving the failures ChaosProxy
// injects and real fleets suffer:
//
//  - per-worker health probes before dispatch, and consecutive-failure
//    scoring on every round trip (WorkerRegistry);
//  - jittered exponential-backoff retries (Backoff) — a failed or bounced
//    batch is re-queued and the worker cools off before its next attempt;
//  - straggler detection: an in-flight cell running far past the median
//    completion time is speculatively re-dispatched to another worker; the
//    first terminal result wins and later duplicates are discarded (cells
//    are seeded, so every copy computes identical metrics — the discard
//    cannot change the output);
//  - permanent retirement of flapping workers (HARP-style: stop retrying a
//    component that has proven itself bad), audited in the registry's
//    retirement log;
//  - graceful degradation: when the live fleet shrinks below `min_fleet`
//    (or was empty to begin with), remaining cells run on a local
//    sim::SweepRunner, so a dead fleet degrades to "slow", never "wrong".
//
// Like SweepRunner, outcomes come back indexed exactly like the submitted
// grid, and every cell is seeded by its options — so a fabric run, however
// chaotic the path, is bit-exact against a single-node run of the same
// grid. That equivalence is the CI chaos gate.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "fabric/backoff.hpp"
#include "fabric/registry.hpp"
#include "metrics/clock.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_cache.hpp"

namespace aeep::fabric {

struct FabricConfig {
  std::vector<WorkerEndpoint> workers;  ///< empty = run everything locally
  BackoffPolicy backoff{};
  u64 seed = 1;                   ///< jitter streams derive from this
  unsigned retire_after = 3;      ///< consecutive failures -> retirement
  unsigned max_attempts = 6;      ///< dispatches per cell before it fails
  std::size_t batch_size = 4;     ///< cells submitted per worker dispatch
  u64 call_timeout_ms = 10'000;   ///< per wire round trip (submit/probe)
  u64 job_wait_ms = 300'000;      ///< result-wait budget per cell
  double straggler_factor = 4.0;  ///< x median cell wall -> speculate
  u64 straggler_min_ms = 2'000;   ///< never speculate younger cells
  std::size_t min_fleet = 1;      ///< live workers below this -> degrade
  bool allow_local_fallback = true;
  unsigned local_jobs = 0;        ///< SweepRunner threads when degraded
  u64 probe_timeout_ms = 2'000;   ///< health-probe round-trip budget
  /// Result-store directory (store::SweepCache). Empty = no cache. Cells
  /// whose digest hits the store are delivered (worker = "cache") before
  /// anything is sharded to the fleet; completed cells are inserted after
  /// the run so the next identical sweep is served without dispatching.
  std::string store_dir;
  /// Shared secret attached to every worker RPC. Must match the workers'
  /// --token or dispatches bounce as kUnauthorized.
  std::string token;
};

/// One grid cell's outcome. `metrics` is the canonical
/// sim::run_result_json rendering whether the cell ran remotely (the
/// worker rendered it) or locally (we render it) — that is what makes
/// fabric output byte-comparable with single-node output.
struct FabricOutcome {
  JsonValue metrics{};
  std::string error;       ///< non-empty: the cell failed everywhere
  std::string worker;      ///< winner's endpoint name, or "local"
  unsigned attempts = 0;   ///< dispatches this cell consumed
  bool speculative = false;  ///< won by a speculative duplicate
  bool ok() const { return error.empty(); }
};

struct FabricStats {
  u64 dispatches = 0;       ///< batches sent to workers
  u64 jobs_remote = 0;      ///< cells won by the fleet
  u64 jobs_local = 0;       ///< cells won by degraded-mode fallback
  u64 jobs_cached = 0;      ///< cells served from the result store
  u64 store_inserts = 0;    ///< completed cells written to the store
  u64 retries = 0;          ///< cell re-queues after a failure
  u64 speculative_dispatches = 0;
  u64 duplicates_discarded = 0;  ///< lost the first-result-wins race
  u64 worker_failures = 0;  ///< failed round trips (all kinds)
  u64 busy_backoffs = 0;    ///< kBusy bounces absorbed with backoff
  u64 probes = 0;
  u64 probe_failures = 0;
};

/// Progress snapshot, fired (serialised) after every completed cell.
struct FabricProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
  std::size_t job_index = 0;
  const sim::SweepJob* job = nullptr;
  const FabricOutcome* outcome = nullptr;
};

class Coordinator {
 public:
  using ProgressFn = std::function<void(const FabricProgress&)>;

  explicit Coordinator(FabricConfig config);

  /// Health-probe every non-retired worker once; failures score against
  /// the worker (and can retire it). Returns the live-worker count.
  std::size_t probe_fleet();

  /// Run the whole grid to completion. Outcomes are indexed exactly like
  /// `grid`. Never throws for per-cell or per-worker trouble — a cell that
  /// cannot be computed anywhere comes back with `error` set.
  std::vector<FabricOutcome> run(const std::vector<sim::SweepJob>& grid,
                                 const ProgressFn& progress = nullptr);

  const WorkerRegistry& registry() const { return registry_; }
  FabricStats stats() const;
  void reset_stats();

 private:
  struct Cell {
    bool done = false;
    bool queued = false;      ///< sitting in pending_
    bool speculated = false;  ///< already re-dispatched once
    unsigned attempts = 0;
    unsigned inflight = 0;
    metrics::TimePoint dispatched_at{};
  };

  struct RunState {
    const std::vector<sim::SweepJob>* grid = nullptr;
    std::vector<FabricOutcome>* out = nullptr;
    std::vector<Cell> cells;
    std::deque<std::size_t> pending;
    std::size_t completed = 0;
    std::vector<double> completion_ms;  ///< for the straggler median
    ProgressFn progress;
    bool finished = false;  ///< all cells terminal; workers may exit
  };

  void worker_loop(std::size_t worker_idx, RunState& rs);
  /// Claim up to batch_size pending cells. Caller holds no lock.
  std::vector<std::size_t> claim_batch(RunState& rs);
  /// Terminal delivery; first result wins. Returns false for a discarded
  /// duplicate. Caller holds no lock.
  bool deliver(RunState& rs, std::size_t index, FabricOutcome outcome);
  /// A dispatch that did not finish: back onto the queue, or fail the cell
  /// when its attempt budget is spent. `charge_attempt` is false for cells
  /// that never reached a worker (busy bounces). Caller holds no lock.
  void requeue(RunState& rs, std::size_t index, const std::string& error,
               bool charge_attempt = true);
  void speculate_stragglers(RunState& rs);
  void run_locally(RunState& rs);
  bool fleet_degraded() const;

  FabricConfig config_;
  WorkerRegistry registry_;
  /// Present when config.store_dir is set. Internally locked; consulted
  /// before and after a run, never while holding mutex_.
  std::unique_ptr<store::SweepCache> cache_;

  /// Guards stats_ plus the per-run RunState (cells/pending/completed/
  /// finished) threaded through the private helpers — RunState is a local
  /// in run(), so its members cannot carry AEEP_GUARDED_BY themselves.
  mutable aeep::Mutex mutex_;
  aeep::CondVar cv_work_;  ///< pending gained work / finished
  aeep::CondVar cv_main_;  ///< a cell completed
  FabricStats stats_ AEEP_GUARDED_BY(mutex_){};
};

}  // namespace aeep::fabric
