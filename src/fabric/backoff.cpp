#include "fabric/backoff.hpp"

#include <chrono>
#include <thread>

namespace aeep::fabric {

Backoff::Backoff(BackoffPolicy policy, u64 seed)
    : policy_(policy), rng_(seed) {
  if (policy_.base_ms == 0) policy_.base_ms = 1;
  if (policy_.max_ms < policy_.base_ms) policy_.max_ms = policy_.base_ms;
  if (policy_.multiplier < 1.0) policy_.multiplier = 1.0;
  if (policy_.jitter < 0.0) policy_.jitter = 0.0;
  if (policy_.jitter > 1.0) policy_.jitter = 1.0;
}

u64 Backoff::next_delay_ms() {
  double ceiling = static_cast<double>(policy_.base_ms);
  for (unsigned i = 0; i < attempt_; ++i) {
    ceiling *= policy_.multiplier;
    if (ceiling >= static_cast<double>(policy_.max_ms)) break;
  }
  if (ceiling > static_cast<double>(policy_.max_ms))
    ceiling = static_cast<double>(policy_.max_ms);
  ++attempt_;
  const double jittered =
      ceiling * (1.0 - policy_.jitter * rng_.next_double());
  const double floored = jittered < 1.0 ? 1.0 : jittered;
  return static_cast<u64>(floored);
}

void backoff_sleep(Backoff& backoff) {
  // Blocking here is the point: the retry schedule's cool-off.
  // aeep-lint: allow(sleep-in-src)
  std::this_thread::sleep_for(
      std::chrono::milliseconds(backoff.next_delay_ms()));
}

}  // namespace aeep::fabric
