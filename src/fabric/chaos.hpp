// Fault injection for the wire protocol itself. A ChaosProxy sits between
// a coordinator (or any client) and one worker, relays length-prefixed
// frames byte-for-byte, and — with seeded per-frame probabilities — drops,
// delays, truncates or corrupts them, or kills the connection outright.
// This is the strike process for the fabric: just as fault::StrikeProcess
// flips bits in live cache arrays so RecoveryController's paths are
// exercised rather than assumed, ChaosProxy damages live frames so every
// coordinator recovery path (retry, re-dispatch, retirement, fallback) is
// hit in tests and CI instead of lying dormant until a real outage.
//
// Faults map onto the typed errors the peers must observe:
//   corrupt  -> flipped payload byte  -> ServerError(kProtocol) (bad JSON)
//   truncate -> short payload + close -> ServerError(kIo) mid-frame close
//   kill     -> close before forward  -> ServerError(kIo) (connection died)
//   drop     -> frame never forwarded -> caller's read times out (kIo)
//   delay    -> forwarded late        -> exercises straggler detection
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "server/socket.hpp"

namespace aeep::fabric {

/// Per-frame fault probabilities (independent draws, checked in the order
/// kill, drop, truncate, corrupt, delay; the first that fires wins).
struct ChaosPolicy {
  double kill = 0.0;      ///< close both directions before forwarding
  double drop = 0.0;      ///< swallow the frame, keep the connection
  double truncate = 0.0;  ///< forward a short payload, then close
  double corrupt = 0.0;   ///< flip one payload byte (breaks the JSON)
  double delay = 0.0;     ///< sleep delay_ms before forwarding
  u64 delay_ms = 200;
  u64 seed = 1;           ///< per-connection fault draws derive from this
};

/// Per-fault-type counters, so a test can assert the scenario it configured
/// actually happened (a chaos run that injected nothing proves nothing).
struct ChaosStats {
  u64 connections = 0;
  u64 upstream_failures = 0;  ///< worker unreachable at connect time
  u64 frames_forwarded = 0;
  u64 killed = 0;
  u64 dropped = 0;
  u64 truncated = 0;
  u64 corrupted = 0;
  u64 delayed = 0;
};

class ChaosProxy {
 public:
  /// Proxy for `upstream_host:upstream_port`, listening on 127.0.0.1:
  /// `listen_port` (0 = kernel-assigned).
  ChaosProxy(std::string upstream_host, u16 upstream_port, ChaosPolicy policy,
             u16 listen_port = 0);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Bind + spawn the accept loop. Throws ServerError(kIo) on a taken port.
  void start();

  /// The port clients should connect to.
  u16 port() const;

  /// Close the listener and every relay; joins all threads. Idempotent.
  void stop();

  ChaosStats stats() const;
  void reset_stats();

 private:
  enum class Forward { kForwarded, kSwallowed, kClosed };

  struct Relay {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void relay_connection(server::Socket client, u64 conn_id);
  /// Move one frame src -> dst, applying at most one fault.
  Forward forward_frame(server::Socket& src, server::Socket& dst,
                        Xorshift64Star& rng);

  std::string upstream_host_;
  u16 upstream_port_;
  ChaosPolicy policy_;
  u16 listen_port_;

  std::unique_ptr<server::Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> closing_{false};
  std::atomic<bool> started_{false};

  mutable aeep::Mutex mutex_;  ///< stats_ + relays_
  ChaosStats stats_ AEEP_GUARDED_BY(mutex_){};
  std::list<Relay> relays_ AEEP_GUARDED_BY(mutex_);
  u64 next_conn_id_ AEEP_GUARDED_BY(mutex_) = 1;
};

}  // namespace aeep::fabric
