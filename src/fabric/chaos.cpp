#include "fabric/chaos.hpp"

#include <chrono>
#include <vector>

#include "server/wire.hpp"

namespace aeep::fabric {

using server::ServerError;
using server::Socket;

namespace {

u32 read_u32le(const u8* in) {
  return static_cast<u32>(in[0]) | (static_cast<u32>(in[1]) << 8) |
         (static_cast<u32>(in[2]) << 16) | (static_cast<u32>(in[3]) << 24);
}

/// Bound every blocking read so a stalled peer delays stop() by at most
/// this much, not forever.
constexpr int kReadTimeoutMs = 2'000;

}  // namespace

ChaosProxy::ChaosProxy(std::string upstream_host, u16 upstream_port,
                       ChaosPolicy policy, u16 listen_port)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      policy_(policy),
      listen_port_(listen_port) {}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (started_.exchange(true)) return;
  listener_ =
      std::make_unique<server::Listener>("127.0.0.1", listen_port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

u16 ChaosProxy::port() const {
  return listener_ ? listener_->port() : listen_port_;
}

void ChaosProxy::stop() {
  if (!started_.load()) return;
  closing_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<Relay> doomed;
  {
    const MutexLock lock(mutex_);
    doomed.splice(doomed.begin(), relays_);
  }
  for (auto& relay : doomed)
    if (relay.thread.joinable()) relay.thread.join();
  if (listener_) listener_->close();
  started_.store(false);
  closing_.store(false);
}

ChaosStats ChaosProxy::stats() const {
  const MutexLock lock(mutex_);
  return stats_;
}

void ChaosProxy::reset_stats() {
  const MutexLock lock(mutex_);
  stats_ = ChaosStats{};
}

void ChaosProxy::accept_loop() {
  while (!closing_.load()) {
    std::optional<Socket> sock;
    try {
      sock = listener_->accept(200);
    } catch (const ServerError&) {
      if (closing_.load()) break;
      continue;
    }
    {
      // Reap relays that finished since the last pass.
      const MutexLock lock(mutex_);
      for (auto it = relays_.begin(); it != relays_.end();) {
        if (it->done.load()) {
          it->thread.join();
          it = relays_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!sock) continue;

    const MutexLock lock(mutex_);
    ++stats_.connections;
    const u64 conn_id = next_conn_id_++;
    relays_.emplace_back();
    Relay& entry = relays_.back();
    entry.thread =
        std::thread([this, &entry, conn_id, s = std::move(*sock)]() mutable {
          relay_connection(std::move(s), conn_id);
          entry.done.store(true);
        });
  }
}

void ChaosProxy::relay_connection(Socket client, u64 conn_id) {
  Socket upstream;
  try {
    upstream = server::connect_to(upstream_host_, upstream_port_);
  } catch (const ServerError&) {
    const MutexLock lock(mutex_);
    ++stats_.upstream_failures;
    return;  // client sees an immediate close — as if the worker vanished
  }
  // Per-connection fault draws: reproducible for a fixed policy seed and
  // connection arrival order.
  Xorshift64Star rng(policy_.seed * 0x9E3779B97F4A7C15ull + conn_id);
  try {
    while (!closing_.load()) {
      const Forward req = forward_frame(client, upstream, rng);
      if (req == Forward::kClosed) break;
      if (req == Forward::kSwallowed) continue;  // no reply is coming
      if (forward_frame(upstream, client, rng) == Forward::kClosed) break;
    }
  } catch (const ServerError&) {
    // Either side vanished mid-frame; both sockets close below.
  }
}

ChaosProxy::Forward ChaosProxy::forward_frame(Socket& src, Socket& dst,
                                              Xorshift64Star& rng) {
  // Poll so a proxy shutdown is noticed between frames.
  while (!closing_.load()) {
    if (src.wait_readable(200)) break;
  }
  if (closing_.load()) return Forward::kClosed;

  u8 prefix[4];
  if (!src.recv_exact(prefix, sizeof(prefix), kReadTimeoutMs))
    return Forward::kClosed;  // clean close between frames
  const u32 len = read_u32le(prefix);
  if (len > server::kMaxFrameBytes) return Forward::kClosed;
  std::vector<u8> payload(len);
  if (len > 0 && !src.recv_exact(payload.data(), payload.size(),
                                 kReadTimeoutMs))
    return Forward::kClosed;

  // At most one fault per frame, drawn in severity order.
  if (policy_.kill > 0.0 && rng.chance(policy_.kill)) {
    const MutexLock lock(mutex_);
    ++stats_.killed;
    return Forward::kClosed;
  }
  if (policy_.drop > 0.0 && rng.chance(policy_.drop)) {
    const MutexLock lock(mutex_);
    ++stats_.dropped;
    return Forward::kSwallowed;
  }
  if (policy_.truncate > 0.0 && rng.chance(policy_.truncate)) {
    // Forward an honest prefix but only half the payload, then close: the
    // peer observes a connection lost mid-frame.
    dst.send_all(prefix, sizeof(prefix));
    if (len > 1) dst.send_all(payload.data(), len / 2);
    {
      const MutexLock lock(mutex_);
      ++stats_.truncated;
    }
    return Forward::kClosed;
  }
  if (len > 0 && policy_.corrupt > 0.0 && rng.chance(policy_.corrupt)) {
    payload[rng.next_below(len)] ^= 0xFF;
    const MutexLock lock(mutex_);
    ++stats_.corrupted;
  } else if (policy_.delay > 0.0 && rng.chance(policy_.delay)) {
    {
      const MutexLock lock(mutex_);
      ++stats_.delayed;
    }
    // The delay fault IS a sleep — that is the injected behaviour.
    // aeep-lint: allow(sleep-in-src)
    std::this_thread::sleep_for(std::chrono::milliseconds(policy_.delay_ms));
  }

  // Counted before the bytes go out: once the peer observes the frame the
  // counter must already reflect it (a stats() racing the last reply in a
  // test would otherwise briefly under-count).
  {
    const MutexLock lock(mutex_);
    ++stats_.frames_forwarded;
  }
  dst.send_all(prefix, sizeof(prefix));
  if (len > 0) dst.send_all(payload.data(), payload.size());
  return Forward::kForwarded;
}

}  // namespace aeep::fabric
