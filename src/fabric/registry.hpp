// Fleet membership and health for the sweep fabric. Every worker the
// coordinator knows about lives here with a consecutive-failure score; a
// success wipes the score, a failure bumps it, and a worker that keeps
// flapping past the threshold is *permanently retired* — the same policy
// HARP applies to unreliable DRAM rows and RecoveryController applies to
// cache ways that keep faulting: stop retrying a component that has proven
// itself bad, and record why. The retirement log is the audit trail CI
// greps to prove a killed worker was actually detected and benched.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "metrics/clock.hpp"

namespace aeep::fabric {

/// One worker's address. `name` is how it appears in logs and the
/// retirement record; defaults to "host:port".
struct WorkerEndpoint {
  std::string host = "127.0.0.1";
  u16 port = 0;
  std::string name;

  std::string display_name() const {
    return name.empty() ? host + ":" + std::to_string(port) : name;
  }
};

/// Parse "host:port" (or bare "port", host defaulting to 127.0.0.1).
/// Throws std::invalid_argument on garbage.
WorkerEndpoint parse_endpoint(const std::string& text);

enum class WorkerState {
  kHealthy,  ///< last contact succeeded (or never contacted)
  kSuspect,  ///< >= 1 consecutive failure; still dispatched, with backoff
  kRetired,  ///< crossed the threshold; never dispatched again
};

const char* to_string(WorkerState s);

/// One permanent retirement, with enough context to audit it later.
struct RetirementRecord {
  std::string worker;            ///< endpoint display name
  std::string reason;            ///< last failure's description
  unsigned consecutive_failures = 0;
  u64 t_ms = 0;                  ///< ms since the registry was created
};

/// Thread-safe: the coordinator's worker threads score their own endpoint
/// while the monitor thread reads fleet health.
class WorkerRegistry {
 public:
  /// `retire_after` consecutive failures retire a worker; 0 means never
  /// retire (every failure still marks the worker suspect).
  WorkerRegistry(std::vector<WorkerEndpoint> workers, unsigned retire_after);

  std::size_t size() const AEEP_EXCLUDES(mutex_);

  /// Workers not (yet) retired — the fleet the coordinator can still use.
  std::size_t live() const AEEP_EXCLUDES(mutex_);

  /// By value: a reference into the registry would escape the lock and
  /// race note_failure/retire mutating the entry on another thread.
  WorkerEndpoint endpoint(std::size_t idx) const AEEP_EXCLUDES(mutex_);
  WorkerState state(std::size_t idx) const;
  bool retired(std::size_t idx) const {
    return state(idx) == WorkerState::kRetired;
  }
  unsigned consecutive_failures(std::size_t idx) const;

  /// A completed round trip: clears the failure streak, back to healthy.
  /// No-op on a retired worker (retirement is permanent).
  void note_success(std::size_t idx);

  /// A failed round trip / probe. Returns true iff *this* failure crossed
  /// the threshold and retired the worker (the caller stops using it).
  bool note_failure(std::size_t idx, const std::string& reason);

  /// Force-retire (e.g. a worker that answered "draining").
  void retire(std::size_t idx, const std::string& reason);

  std::vector<RetirementRecord> retirement_log() const;

 private:
  struct Entry {
    WorkerEndpoint endpoint;
    WorkerState state = WorkerState::kHealthy;
    unsigned consecutive_failures = 0;
  };

  void retire_locked(Entry& e, const std::string& reason)
      AEEP_REQUIRES(mutex_);
  double ms_since_epoch_locked() const AEEP_REQUIRES(mutex_);

  mutable aeep::Mutex mutex_;
  std::vector<Entry> workers_ AEEP_GUARDED_BY(mutex_);
  unsigned retire_after_;
  std::vector<RetirementRecord> log_ AEEP_GUARDED_BY(mutex_);
  metrics::TimePoint epoch_;
};

}  // namespace aeep::fabric
