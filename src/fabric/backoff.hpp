// Jittered exponential backoff — the one retry clock every layer of the
// fabric shares: the coordinator's per-worker retry loops, the chaos-test
// reconnects, and aeep_client --retries. Delays grow geometrically up to a
// cap, and a seeded jitter fraction decorrelates the retriers so a fleet of
// clients bounced by the same busy worker does not reconverge on it in
// lockstep (the thundering-herd failure mode). All randomness flows from a
// Xorshift64Star seed, so a given retry schedule is exactly reproducible.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"

namespace aeep::fabric {

/// Shape of a retry schedule. With the defaults the deterministic ceiling
/// per attempt is 50, 100, 200, 400, ... capped at 5000 ms; the jitter
/// fraction then scales each delay uniformly into [ceiling * (1 - jitter),
/// ceiling], so jitter = 0 is fully deterministic.
struct BackoffPolicy {
  u64 base_ms = 50;
  u64 max_ms = 5'000;
  double multiplier = 2.0;
  double jitter = 0.5;  ///< fraction of each delay that is randomised
};

class Backoff {
 public:
  Backoff(BackoffPolicy policy, u64 seed);

  /// Delay before the next retry; each call advances the schedule.
  u64 next_delay_ms();

  /// Back to attempt zero (call after a success).
  void reset() { attempt_ = 0; }

  /// Retries taken since construction / the last reset().
  unsigned attempt() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  Xorshift64Star rng_;
  unsigned attempt_ = 0;
};

/// next_delay_ms() + actually sleeping it. Split out so tests can check the
/// schedule without waiting through it.
void backoff_sleep(Backoff& backoff);

}  // namespace aeep::fabric
