#include "fabric/registry.hpp"

#include <stdexcept>

namespace aeep::fabric {

const char* to_string(WorkerState s) {
  switch (s) {
    case WorkerState::kHealthy: return "healthy";
    case WorkerState::kSuspect: return "suspect";
    case WorkerState::kRetired: return "retired";
  }
  return "?";
}

WorkerEndpoint parse_endpoint(const std::string& text) {
  WorkerEndpoint ep;
  std::string port_text = text;
  const auto colon = text.rfind(':');
  if (colon != std::string::npos) {
    ep.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
    if (ep.host.empty())
      throw std::invalid_argument("worker endpoint '" + text +
                                  "' has an empty host");
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("worker endpoint '" + text +
                                "' needs a numeric port (host:port)");
  const unsigned long port = std::stoul(port_text);
  if (port == 0 || port > 65535)
    throw std::invalid_argument("worker endpoint '" + text +
                                "' port out of range");
  ep.port = static_cast<u16>(port);
  return ep;
}

WorkerRegistry::WorkerRegistry(std::vector<WorkerEndpoint> workers,
                               unsigned retire_after)
    : retire_after_(retire_after),
      epoch_(metrics::now()) {
  workers_.reserve(workers.size());
  for (auto& ep : workers) workers_.push_back(Entry{std::move(ep), {}, 0});
}

std::size_t WorkerRegistry::size() const {
  const MutexLock lock(mutex_);
  return workers_.size();
}

std::size_t WorkerRegistry::live() const {
  const MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& e : workers_)
    if (e.state != WorkerState::kRetired) ++n;
  return n;
}

WorkerEndpoint WorkerRegistry::endpoint(std::size_t idx) const {
  const MutexLock lock(mutex_);
  return workers_.at(idx).endpoint;
}

WorkerState WorkerRegistry::state(std::size_t idx) const {
  const MutexLock lock(mutex_);
  return workers_.at(idx).state;
}

unsigned WorkerRegistry::consecutive_failures(std::size_t idx) const {
  const MutexLock lock(mutex_);
  return workers_.at(idx).consecutive_failures;
}

void WorkerRegistry::note_success(std::size_t idx) {
  const MutexLock lock(mutex_);
  Entry& e = workers_.at(idx);
  if (e.state == WorkerState::kRetired) return;
  e.consecutive_failures = 0;
  e.state = WorkerState::kHealthy;
}

bool WorkerRegistry::note_failure(std::size_t idx, const std::string& reason) {
  const MutexLock lock(mutex_);
  Entry& e = workers_.at(idx);
  if (e.state == WorkerState::kRetired) return false;
  ++e.consecutive_failures;
  if (retire_after_ != 0 && e.consecutive_failures >= retire_after_) {
    retire_locked(e, reason);
    return true;
  }
  e.state = WorkerState::kSuspect;
  return false;
}

void WorkerRegistry::retire(std::size_t idx, const std::string& reason) {
  const MutexLock lock(mutex_);
  Entry& e = workers_.at(idx);
  if (e.state == WorkerState::kRetired) return;
  retire_locked(e, reason);
}

void WorkerRegistry::retire_locked(Entry& e, const std::string& reason) {
  e.state = WorkerState::kRetired;
  RetirementRecord rec;
  rec.worker = e.endpoint.display_name();
  rec.reason = reason;
  rec.consecutive_failures = e.consecutive_failures;
  rec.t_ms = static_cast<u64>(ms_since_epoch_locked());
  log_.push_back(std::move(rec));
}

double WorkerRegistry::ms_since_epoch_locked() const {
  return metrics::ms_since(epoch_);
}

std::vector<RetirementRecord> WorkerRegistry::retirement_log() const {
  const MutexLock lock(mutex_);
  return log_;
}

}  // namespace aeep::fabric
