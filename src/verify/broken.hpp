// Deliberately-broken protection schemes — test fixtures for the auditor
// and the differential model checker. Each models one realistic bug class
// in the §3.3 shared-ECC-array bookkeeping; a correct verification layer
// must flag all of them within a few operations.
#pragma once

#include <functional>
#include <memory>

#include "protect/shared_ecc_array.hpp"

namespace aeep::verify {

enum class BrokenKind {
  /// before_dirty never forces the ECC-entry eviction: a full set silently
  /// accepts one more dirty line, breaking dirty-per-set <= k and leaving
  /// the extra dirty line with no ECC coverage.
  kOverCommit,
  /// on_writeback forgets to release the line's ECC entry: after a
  /// cleaning or ECC-eviction write-back the now-clean line still owns the
  /// entry, permanently blocking it for the rest of the set.
  kLeakEntry,
  /// on_write_applied corrupts the parity refresh: stored parity goes
  /// stale on every write (the bug the code-recomputation audit exists
  /// for).
  kStaleParity,
};

const char* to_string(BrokenKind k);

/// A SharedEccArrayScheme with one seeded bug. The overrides are written so
/// the scheme stays crash-free even past the first violation (no assert
/// trips, no unbounded forced-write-back loops) — the auditor, not the
/// process exit, is what must catch it.
class BrokenSharedEccScheme final : public protect::SharedEccArrayScheme {
 public:
  BrokenSharedEccScheme(cache::Cache& cache, BrokenKind kind,
                        unsigned entries_per_set = 1);

  std::string name() const override;

  std::optional<protect::ForcedWriteback> before_dirty(u64 set,
                                                       unsigned way) override;
  void on_write_applied(u64 set, unsigned way, u64 word_mask) override;
  void on_writeback(u64 set, unsigned way) override;

  BrokenKind kind() const { return kind_; }

 private:
  BrokenKind kind_;
};

/// L2Config::scheme_factory building the broken fixture.
std::function<std::unique_ptr<protect::ProtectionScheme>(cache::Cache&)>
broken_scheme_factory(BrokenKind kind, unsigned entries_per_set = 1);

}  // namespace aeep::verify
