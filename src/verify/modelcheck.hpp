// Differential model checker for the protection schemes.
//
// Drives a ProtectedL2 (any scheme, including broken test fixtures)
// through bounded operation sequences on a tiny geometry, with a runtime
// invariant Auditor attached and a trivially-correct GoldenMemory shadow,
// and cross-checks after every operation:
//
//   - the auditor's paper invariants hold;
//   - every word of the small address universe has its golden value,
//     whether it currently lives in the cache or in the memory store.
//
// Sequences come from three sources: seeded-random generation, exhaustive
// enumeration of all sequences up to a bounded length over a small op
// alphabet, and replay strings. On failure the checker shrinks the
// sequence to a minimal counterexample (greedy delta debugging) whose
// encoded form can be replayed from the aeep_modelcheck command line.
//
// Fault mode: between operations, seeded single-bit faults are injected
// into live data/parity/ECC storage and immediately healed through the
// online recovery path (parity re-fetch for clean lines, SECDED correction
// for dirty lines) — a correct scheme must still show zero divergences.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "protect/protected_l2.hpp"

namespace aeep::verify {

struct Op {
  enum class Kind : u8 { kRead, kWrite, kTick };
  Kind kind = Kind::kRead;
  u16 line = 0;  ///< index into the address universe
  u8 word = 0;   ///< word within the line (writes)
  u8 value = 0;  ///< value seed; the written word is a mix of this byte

  bool operator==(const Op&) const = default;
};

/// Compact textual form: "r3", "w3.1:7f", "t", comma-separated.
std::string encode_ops(std::span<const Op> ops);
std::optional<std::vector<Op>> decode_ops(const std::string& text);

struct ModelCheckConfig {
  protect::SchemeKind scheme = protect::SchemeKind::kUniformEcc;
  unsigned entries_per_set = 1;  ///< for kSharedEccArray
  /// Tiny by design: 4 sets x 2 ways x 2-word (16-byte) lines.
  cache::CacheGeometry geometry{128, 2, 16};
  /// Lines in the address universe; > total_lines forces conflict misses.
  unsigned address_lines = 16;
  Cycle cleaning_interval = 0;
  protect::CleaningPolicy cleaning_policy =
      protect::CleaningPolicy::kWrittenBit;
  bool inject_faults = false;
  unsigned fault_every = 7;  ///< ops between injected single-bit faults
  u64 seed = 1;
  unsigned audit_every = 1;
  /// Overrides `scheme` when set (broken test fixtures).
  std::function<std::unique_ptr<protect::ProtectionScheme>(cache::Cache&)>
      scheme_factory;
  std::string label;  ///< report name; defaults to the scheme name

  std::string scheme_label() const;
};

struct CheckFailure {
  std::size_t op_index = 0;  ///< op after which the failure surfaced
  std::string kind;          ///< "invariant" or "divergence"
  std::string detail;
};

struct RunReport {
  bool ok = true;
  std::optional<CheckFailure> failure;
  u64 ops_run = 0;
  u64 audits = 0;
  u64 faults_injected = 0;
  u64 wb[protect::kNumWbCauses] = {0, 0, 0};
  u64 ecc_entry_evictions = 0;  ///< shared scheme only
  cache::CacheStats cache;
};

/// Execute one op sequence under full checking.
RunReport run_sequence(const ModelCheckConfig& config,
                       std::span<const Op> ops);

/// Seeded-random op mix over the configured universe.
std::vector<Op> random_ops(const ModelCheckConfig& config, u64 seed,
                           std::size_t count);

/// Greedily remove ops while the sequence keeps failing. Precondition:
/// run_sequence(config, failing) fails. Returns the minimal sequence.
std::vector<Op> shrink(const ModelCheckConfig& config,
                       std::vector<Op> failing);

struct DiffReport {
  bool ok = true;
  std::string detail;
  std::vector<RunReport> runs;  ///< uniform, non-uniform, shared
};

/// Run the same sequence through all three real schemes and cross-check
/// scheme-independent observables: hit/miss behaviour must be identical,
/// uniform and non-uniform must produce identical write-back traffic, and
/// the shared scheme's ECC-eviction accounting must balance.
DiffReport run_differential(const ModelCheckConfig& base,
                            std::span<const Op> ops);

/// All sequences of length exactly `len` over a small alphabet (reads and
/// single-word writes over `alphabet_lines` lines, plus a time jump),
/// checked under `config`. Returns the first failure, if any, together
/// with the number of sequences executed.
struct ExhaustiveReport {
  u64 sequences = 0;
  u64 ops = 0;
  std::optional<std::vector<Op>> counterexample;
};
ExhaustiveReport exhaustive_check(const ModelCheckConfig& config,
                                  unsigned alphabet_lines, unsigned len);

}  // namespace aeep::verify
