#include "verify/auditor.hpp"

#include <set>
#include <sstream>

#include "protect/shared_ecc_array.hpp"

namespace aeep::verify {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << rule << " at set=" << set << " way=" << way << " op#" << op_seq;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

Auditor::Auditor(protect::ProtectedL2& l2, AuditorConfig config)
    : l2_(&l2), config_(config) {
  l2_->set_audit_hook([this](Cycle now) { on_op(now); });
}

Auditor::~Auditor() { l2_->set_audit_hook(nullptr); }

void Auditor::on_op(Cycle /*now*/) {
  ++ops_seen_;
  if (config_.check_every != 0 && ops_seen_ % config_.check_every == 0)
    audit();
}

void Auditor::add(std::string rule, u64 set, unsigned way,
                  std::string detail) {
  ++total_violations_;
  ++found_this_audit_;
  if (violations_.size() < config_.max_recorded)
    violations_.push_back(
        {std::move(rule), set, way, ops_seen_, std::move(detail)});
}

void Auditor::audit_line(u64 set, unsigned way) {
  const cache::Cache& cache = l2_->cache_model();
  const cache::CacheLineMeta& m = cache.meta(set, way);

  if (cache.is_retired(set, way)) {
    if (m.valid)
      add("retired-slot-valid", set, way, "fused-off way holds a valid line");
    return;
  }
  if (!m.valid) {
    if (m.dirty) add("invalid-line-dirty", set, way, "");
    return;
  }

  if (m.written && !m.dirty)
    add("written-implies-dirty", set, way,
        "written bit set on a clean line (§3.2)");

  if (!l2_->config().maintain_codes) return;
  protect::ProtectionScheme& scheme = l2_->scheme();
  const auto data = cache.data(set, way);
  const bool poisoned = l2_->recovery().poisoned(set, way);

  if (m.dirty && scheme.ecc_words(set, way).empty())
    add("dirty-line-uncovered", set, way,
        "dirty line has no ECC words (scheme=" + scheme.name() + ")");

  if (config_.check_codes && !poisoned) {
    const auto par = scheme.parity_words(set, way);
    for (std::size_t w = 0; w < par.size(); ++w) {
      if (par[w] != parity_.encode(data[w])) {
        std::ostringstream os;
        os << "stored parity of word " << w << " is stale";
        add("code-mismatch-parity", set, way, os.str());
      }
    }
    const auto check = scheme.ecc_words(set, way);
    for (std::size_t w = 0; w < check.size(); ++w) {
      if (check[w] != secded_.encode(data[w])) {
        std::ostringstream os;
        os << "stored ECC of word " << w << " is stale";
        add("code-mismatch-ecc", set, way, os.str());
      }
    }
  }

  if (config_.check_clean_vs_memory && !m.dirty && !poisoned) {
    const Addr base = cache.line_addr(set, way);
    const mem::MemoryStore& memory = l2_->memory();
    for (std::size_t w = 0; w < data.size(); ++w) {
      if (data[w] != memory.read_word(base + 8 * w)) {
        std::ostringstream os;
        os << "clean line word " << w << " differs from memory at 0x"
           << std::hex << base + 8 * w;
        add("clean-line-memory-mismatch", set, way, os.str());
      }
    }
  }
}

void Auditor::audit_shared_scheme() {
  auto* shared =
      dynamic_cast<protect::SharedEccArrayScheme*>(&l2_->scheme());
  if (shared == nullptr) return;

  const cache::Cache& cache = l2_->cache_model();
  const cache::CacheGeometry& geom = cache.geometry();
  const unsigned k = shared->entries_per_set();

  for (u64 set = 0; set < geom.num_sets(); ++set) {
    const unsigned dirty = cache.count_dirty_in_set(set);
    if (dirty > k) {
      std::ostringstream os;
      os << dirty << " dirty lines with only " << k << " ECC entries (§3.3)";
      add("dirty-per-set-exceeds-k", set, 0, os.str());
    }
    std::set<int> owned;
    for (unsigned way = 0; way < geom.ways; ++way) {
      const int entry = shared->entry_of(set, way);
      const cache::CacheLineMeta& m = cache.meta(set, way);
      if (m.valid && m.dirty && entry < 0)
        add("dirty-without-entry", set, way,
            "dirty line owns no ECC entry");
      if (entry >= 0 && !(m.valid && m.dirty)) {
        std::ostringstream os;
        os << "ECC entry " << entry << " owned by a "
           << (m.valid ? "clean" : "invalid") << " line";
        add("entry-implies-dirty", set, way, os.str());
      }
      if (entry >= 0 && !owned.insert(entry).second) {
        std::ostringstream os;
        os << "ECC entry " << entry << " claimed by two ways";
        add("entry-double-owned", set, way, os.str());
      }
    }
  }
}

u64 Auditor::audit() {
  ++audits_run_;
  found_this_audit_ = 0;

  const cache::Cache& cache = l2_->cache_model();
  const cache::CacheGeometry& geom = cache.geometry();

  u64 dirty_recount = 0;
  for (u64 set = 0; set < geom.num_sets(); ++set) {
    for (unsigned way = 0; way < geom.ways; ++way) {
      audit_line(set, way);
      const cache::CacheLineMeta& m = cache.meta(set, way);
      if (m.valid && m.dirty) ++dirty_recount;
    }
  }
  if (dirty_recount != cache.dirty_count()) {
    std::ostringstream os;
    os << "incremental dirty_count=" << cache.dirty_count()
       << " but recount=" << dirty_recount;
    add("dirty-count-mismatch", 0, 0, os.str());
  }

  audit_shared_scheme();
  return found_this_audit_;
}

u64 Auditor::audit_write_buffer(const cache::WriteBuffer& wbuf) {
  found_this_audit_ = 0;
  const unsigned words = wbuf.line_bytes() / 8;
  const u64 legal_mask =
      words >= 64 ? ~u64{0} : (u64{1} << words) - 1;

  std::set<Addr> lines;
  for (std::size_t i = 0; i < wbuf.size(); ++i) {
    const cache::WriteBufferView e = wbuf.view(i);
    if (e.word_mask == 0)
      add("wbuf-empty-mask", 0, 0, "buffered entry carries no words");
    if ((e.word_mask & ~legal_mask) != 0)
      add("wbuf-mask-range", 0, 0, "word mask wider than the line");
    if (e.words.size() != words)
      add("wbuf-size-mismatch", 0, 0, "payload span mis-sized");
    if ((e.line & (wbuf.line_bytes() - 1)) != 0)
      add("wbuf-misaligned", 0, 0, "entry address not line-aligned");
    if (!lines.insert(e.line).second)
      add("wbuf-dup-line", 0, 0,
          "two entries for one line (coalescing CAM failed)");
    // The buffered line, if resident, must not sit in a fused-off way.
    const cache::ProbeResult pr = l2_->cache_model().probe(e.line);
    if (pr.hit && l2_->cache_model().is_retired(pr.set, pr.way))
      add("wbuf-targets-retired-way", pr.set, pr.way,
          "buffered line resident in a fused-off way");
  }
  if (wbuf.size() > wbuf.capacity())
    add("wbuf-overfull", 0, 0, "occupancy exceeds capacity");
  return found_this_audit_;
}

std::string Auditor::report() const {
  if (clean()) return {};
  std::ostringstream os;
  os << total_violations_ << " invariant violation(s) across " << audits_run_
     << " audit(s), " << ops_seen_ << " op(s):\n";
  for (const Violation& v : violations_) os << "  " << v.to_string() << "\n";
  if (total_violations_ > violations_.size())
    os << "  ... and " << total_violations_ - violations_.size()
       << " more (recording capped)\n";
  return os.str();
}

}  // namespace aeep::verify
