#include "verify/broken.hpp"

namespace aeep::verify {

const char* to_string(BrokenKind k) {
  switch (k) {
    case BrokenKind::kOverCommit: return "over-commit";
    case BrokenKind::kLeakEntry: return "leak-entry";
    case BrokenKind::kStaleParity: return "stale-parity";
  }
  return "?";
}

BrokenSharedEccScheme::BrokenSharedEccScheme(cache::Cache& cache,
                                             BrokenKind kind,
                                             unsigned entries_per_set)
    : SharedEccArrayScheme(cache, entries_per_set), kind_(kind) {}

std::string BrokenSharedEccScheme::name() const {
  return std::string("broken-") + to_string(kind_) + "(" +
         SharedEccArrayScheme::name() + ")";
}

std::optional<protect::ForcedWriteback> BrokenSharedEccScheme::before_dirty(
    u64 set, unsigned way) {
  auto fw = SharedEccArrayScheme::before_dirty(set, way);
  switch (kind_) {
    case BrokenKind::kOverCommit:
      // The bug: never force the eviction; the caller's line goes dirty
      // without ever receiving an ECC entry.
      if (fw) return std::nullopt;
      break;
    case BrokenKind::kLeakEntry:
      // The leaked entry makes the base scheme nominate an already-clean
      // victim forever; swallow those nominations so the controller's
      // forced-write-back loop terminates and the corruption persists in
      // plain sight for the auditor.
      if (fw && !cache().meta(fw->set, fw->way).dirty) return std::nullopt;
      break;
    case BrokenKind::kStaleParity:
      break;
  }
  return fw;
}

void BrokenSharedEccScheme::on_write_applied(u64 set, unsigned way,
                                             u64 word_mask) {
  // Both bug modes above can leave a dirty line without an entry; the base
  // implementation would dereference the missing entry, so skip the ECC
  // refresh exactly as the buggy hardware would (no entry, nowhere to
  // write check bits).
  if (entry_of(set, way) < 0) return;
  SharedEccArrayScheme::on_write_applied(set, way, word_mask);
  if (kind_ == BrokenKind::kStaleParity) {
    // The bug: the parity refresh writes the wrong word — model it as a
    // single stale parity bit on the first written word.
    auto par = parity_words(set, way);
    if (!par.empty()) par[0] ^= 1;
  }
}

void BrokenSharedEccScheme::on_writeback(u64 set, unsigned way) {
  if (kind_ == BrokenKind::kLeakEntry) return;  // the bug: entry never freed
  SharedEccArrayScheme::on_writeback(set, way);
}

std::function<std::unique_ptr<protect::ProtectionScheme>(cache::Cache&)>
broken_scheme_factory(BrokenKind kind, unsigned entries_per_set) {
  return [kind, entries_per_set](cache::Cache& cache) {
    return std::make_unique<BrokenSharedEccScheme>(cache, kind,
                                                   entries_per_set);
  };
}

}  // namespace aeep::verify
