// Runtime invariant auditor for a ProtectedL2.
//
// Re-derives the paper's §3.2/§3.3 invariants from scratch after every
// operation (or every N, configurable) and reports any line where the
// incremental state the controller and scheme maintain has drifted from
// the ground truth:
//
//   - written bit set  =>  the line is dirty (§3.2: the written bit only
//     annotates dirty lines between cleaning inspections);
//   - a dirty line is always ECC-covered (the core protection claim);
//   - SharedEccArrayScheme: at most `entries_per_set` dirty lines per set,
//     and the entry map agrees with the dirty bits in both directions;
//   - stored parity / ECC check words match recomputation over the live
//     payload (codes are never stale);
//   - clean lines are byte-identical to the memory store (so parity's
//     re-fetch repair story is actually available);
//   - retired ways never hold valid lines;
//   - the cache's incremental dirty_count() matches a full recount.
//
// Violations carry (set, way, op-sequence) context so a failing run can be
// replayed and trimmed. The auditor attaches to the L2's audit hook and
// never mutates any state it inspects.
#pragma once

#include <string>
#include <vector>

#include "cache/write_buffer.hpp"
#include "ecc/parity.hpp"
#include "ecc/secded.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::verify {

struct AuditorConfig {
  /// Audit on every Nth operation observed through the hook (1 = every op,
  /// 0 = only when audit() is called explicitly).
  unsigned check_every = 1;
  /// Recompute parity/ECC words and compare against the stored codes.
  /// Disable while un-healed injected faults are in flight.
  bool check_codes = true;
  /// Compare clean resident lines word-for-word against the memory store.
  bool check_clean_vs_memory = true;
  /// Violations kept with full context; the rest are only counted.
  std::size_t max_recorded = 64;
};

struct Violation {
  std::string rule;    ///< stable identifier, e.g. "dirty-per-set-exceeds-k"
  u64 set = 0;
  unsigned way = 0;
  u64 op_seq = 0;      ///< operations observed when the audit fired
  std::string detail;  ///< human-readable specifics

  std::string to_string() const;
};

class Auditor {
 public:
  explicit Auditor(protect::ProtectedL2& l2, AuditorConfig config = {});
  ~Auditor();

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Run every check now; returns the number of new violations found.
  u64 audit();

  /// Consistency of a write buffer feeding this L2 (coalescing CAM rules:
  /// line-aligned, in-range masks, no duplicate lines, sized payloads).
  /// Returns new violations found.
  u64 audit_write_buffer(const cache::WriteBuffer& wbuf);

  u64 ops_seen() const { return ops_seen_; }
  u64 audits_run() const { return audits_run_; }
  u64 total_violations() const { return total_violations_; }
  bool clean() const { return total_violations_ == 0; }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Multi-line report of everything recorded (empty string when clean).
  std::string report() const;

 private:
  void on_op(Cycle now);
  void add(std::string rule, u64 set, unsigned way, std::string detail);
  void audit_line(u64 set, unsigned way);
  void audit_shared_scheme();

  protect::ProtectedL2* l2_;
  AuditorConfig config_;
  ecc::ParityCodec parity_;
  ecc::SecdedCodec secded_;
  u64 ops_seen_ = 0;
  u64 audits_run_ = 0;
  u64 total_violations_ = 0;
  u64 found_this_audit_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace aeep::verify
