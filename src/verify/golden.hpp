// Trivially-correct golden reference model for the differential checker.
//
// A cache hierarchy is, observably, a memory: every store becomes the
// newest value of its word and every load returns the newest value. This
// model implements exactly that — a flat word map with no caching, no
// protection and no timing — so any state a real ProtectedL2 exposes
// (resident line payloads, the backing MemoryStore after a drain) can be
// cross-checked against it word by word. Kept deliberately independent of
// cache::Cache and mem::MemoryStore internals: the only shared definition
// is MemoryStore::pristine_word, the simulator-wide meaning of "memory
// content that was never written".
#pragma once

#include <map>

#include "common/types.hpp"
#include "mem/memory_store.hpp"

namespace aeep::verify {

class GoldenMemory {
 public:
  /// Newest value of the aligned 8-byte word at `addr`.
  u64 read(Addr addr) const {
    const auto it = words_.find(addr);
    return it == words_.end() ? mem::MemoryStore::pristine_word(addr)
                              : it->second;
  }

  /// A store of `value` to the aligned 8-byte word at `addr` retired.
  void write(Addr addr, u64 value) { words_[addr] = value; }

  std::size_t words_written() const { return words_.size(); }

 private:
  std::map<Addr, u64> words_;
};

}  // namespace aeep::verify
