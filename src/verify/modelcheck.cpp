#include "verify/modelcheck.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "protect/shared_ecc_array.hpp"
#include "verify/auditor.hpp"
#include "verify/golden.hpp"

namespace aeep::verify {

namespace {

/// Deterministic payload word for a one-byte value seed.
u64 value_word(u8 value) {
  u64 z = static_cast<u64>(value) + 0xD1B54A32D192ED03ull;
  z = (z ^ (z >> 29)) * 0xFF51AFD7ED558CCDull;
  z = (z ^ (z >> 32)) * 0xC4CEB9FE1A85EC53ull;
  return z ^ (z >> 30);
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string encode_ops(std::span<const Op> ops) {
  std::ostringstream os;
  bool first = true;
  for (const Op& op : ops) {
    if (!first) os << ',';
    first = false;
    switch (op.kind) {
      case Op::Kind::kRead:
        os << 'r' << op.line;
        break;
      case Op::Kind::kWrite:
        os << 'w' << op.line << '.' << static_cast<unsigned>(op.word) << ':'
           << hex_digit(op.value >> 4) << hex_digit(op.value & 0xF);
        break;
      case Op::Kind::kTick:
        os << 't';
        break;
    }
  }
  return os.str();
}

std::optional<std::vector<Op>> decode_ops(const std::string& text) {
  std::vector<Op> ops;
  std::size_t i = 0;
  const auto parse_uint = [&](u64 limit) -> std::optional<u64> {
    if (i >= text.size() || text[i] < '0' || text[i] > '9')
      return std::nullopt;
    u64 v = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      v = v * 10 + static_cast<u64>(text[i] - '0');
      if (v > limit) return std::nullopt;
      ++i;
    }
    return v;
  };
  while (i < text.size()) {
    Op op;
    const char c = text[i++];
    if (c == 'r') {
      op.kind = Op::Kind::kRead;
      const auto line = parse_uint(0xFFFF);
      if (!line) return std::nullopt;
      op.line = static_cast<u16>(*line);
    } else if (c == 'w') {
      op.kind = Op::Kind::kWrite;
      const auto line = parse_uint(0xFFFF);
      if (!line || i >= text.size() || text[i] != '.') return std::nullopt;
      ++i;
      const auto word = parse_uint(63);
      if (!word || i >= text.size() || text[i] != ':') return std::nullopt;
      ++i;
      if (i + 1 >= text.size()) return std::nullopt;
      const int hi = hex_value(text[i]);
      const int lo = hex_value(text[i + 1]);
      if (hi < 0 || lo < 0) return std::nullopt;
      i += 2;
      op.line = static_cast<u16>(*line);
      op.word = static_cast<u8>(*word);
      op.value = static_cast<u8>((hi << 4) | lo);
    } else if (c == 't') {
      op.kind = Op::Kind::kTick;
    } else {
      return std::nullopt;
    }
    ops.push_back(op);
    if (i < text.size()) {
      if (text[i] != ',') return std::nullopt;
      ++i;
    }
  }
  return ops;
}

std::string ModelCheckConfig::scheme_label() const {
  if (!label.empty()) return label;
  std::string s = protect::to_string(scheme);
  if (scheme == protect::SchemeKind::kSharedEccArray)
    s += "(k=" + std::to_string(entries_per_set) + ")";
  if (inject_faults) s += "+faults";
  return s;
}

namespace {

/// One harness instance: L2 + shadow golden memory + attached auditor.
struct Harness {
  mem::MemoryStore memory;
  mem::SplitTransactionBus bus{{8, 20}};
  protect::ProtectedL2 l2;
  GoldenMemory golden;
  Auditor auditor;
  Xorshift64Star fault_rng;
  Cycle now = 0;

  explicit Harness(const ModelCheckConfig& config)
      : l2(make_l2_config(config), bus, memory),
        auditor(l2, {config.audit_every, /*check_codes=*/true,
                     /*check_clean_vs_memory=*/true, 16}),
        fault_rng(config.seed ^ 0xFA17FA17FA17FA17ull) {}

  static protect::L2Config make_l2_config(const ModelCheckConfig& config) {
    protect::L2Config cfg;
    cfg.geometry = config.geometry;
    cfg.geometry.validate();
    cfg.hit_latency = 4;
    cfg.scheme = config.scheme;
    cfg.ecc_entries_per_set = config.entries_per_set;
    cfg.cleaning_interval = config.cleaning_interval;
    cfg.cleaning_policy = config.cleaning_policy;
    cfg.maintain_codes = true;
    cfg.recovery.check_on_access = config.inject_faults;
    cfg.recovery.due_policy = protect::DuePolicy::kDropRefetch;
    cfg.replacement = cache::ReplacementPolicy::kLru;
    cfg.seed = config.seed;
    cfg.scheme_factory = config.scheme_factory;
    return cfg;
  }
};

/// Flip one live stored bit (data, parity or ECC) of a random valid line,
/// then immediately heal it through the online recovery path by touching
/// the line. Single-bit by construction, so a correct scheme must recover.
bool inject_and_heal(Harness& h, const ModelCheckConfig& config) {
  cache::Cache& cache = h.l2.cache_model();
  const cache::CacheGeometry& geom = cache.geometry();
  std::vector<std::pair<u64, unsigned>> candidates;
  for (u64 set = 0; set < geom.num_sets(); ++set)
    for (unsigned way = 0; way < geom.ways; ++way)
      if (cache.meta(set, way).valid && !cache.is_retired(set, way))
        candidates.emplace_back(set, way);
  if (candidates.empty()) return false;
  const auto [set, way] =
      candidates[h.fault_rng.next_below(candidates.size())];

  protect::ProtectionScheme& scheme = h.l2.scheme();
  auto data = cache.data(set, way);
  auto par = scheme.parity_words(set, way);
  auto ecc = scheme.ecc_words(set, way);
  const bool dirty = cache.meta(set, way).dirty;
  unsigned targets[3];
  unsigned num_targets = 0;
  targets[num_targets++] = 0;  // data is always live
  // Parity faults only on clean lines: parity is the clean-line detection
  // mechanism. A dirty line validates through SECDED, so a flipped parity
  // bit there would sit stale until the next write — not a healable fault.
  if (!par.empty() && !dirty) targets[num_targets++] = 1;
  if (!ecc.empty()) targets[num_targets++] = 2;
  switch (targets[h.fault_rng.next_below(num_targets)]) {
    case 0: {
      const u64 w = h.fault_rng.next_below(data.size());
      data[w] ^= u64{1} << h.fault_rng.next_below(64);
      break;
    }
    case 1:
      par[h.fault_rng.next_below(par.size())] ^= 1;
      break;
    default: {
      const u64 w = h.fault_rng.next_below(ecc.size());
      ecc[w] ^= u64{1} << h.fault_rng.next_below(8);
      break;
    }
  }
  (void)config;
  // Heal: the demand access validates (check_on_access) and repairs via
  // SECDED correction or parity re-fetch before the next cross-check.
  h.now += 1;
  h.l2.read(h.now, cache.line_addr(set, way));
  return true;
}

/// Compare every word of the address universe against the golden model,
/// whether it lives in the cache or in the memory store.
std::optional<std::string> find_divergence(Harness& h,
                                           const ModelCheckConfig& config) {
  const unsigned words = config.geometry.words_per_line();
  for (unsigned l = 0; l < config.address_lines; ++l) {
    const Addr base = static_cast<Addr>(l) * config.geometry.line_bytes;
    const cache::ProbeResult pr = h.l2.cache_model().probe(base);
    for (unsigned w = 0; w < words; ++w) {
      const Addr addr = base + 8 * w;
      const u64 expected = h.golden.read(addr);
      const u64 actual = pr.hit ? h.l2.cache_model().data(pr.set, pr.way)[w]
                                : h.memory.read_word(addr);
      if (actual != expected) {
        std::ostringstream os;
        os << "line " << l << " word " << w << " ("
           << (pr.hit ? "cached" : "in memory") << ") = 0x" << std::hex
           << actual << ", golden 0x" << expected;
        return os.str();
      }
    }
  }
  return std::nullopt;
}

void execute_op(Harness& h, const ModelCheckConfig& config, const Op& op) {
  const unsigned words = config.geometry.words_per_line();
  const unsigned line =
      config.address_lines ? op.line % config.address_lines : 0;
  const Addr base = static_cast<Addr>(line) * config.geometry.line_bytes;
  switch (op.kind) {
    case Op::Kind::kRead:
      h.now += 3;
      h.l2.read(h.now, base);
      break;
    case Op::Kind::kWrite: {
      h.now += 3;
      const unsigned w = op.word % words;
      std::vector<u64> payload(words, 0);
      payload[w] = value_word(op.value);
      h.l2.write(h.now, base, u64{1} << w, payload);
      h.golden.write(base + 8 * w, payload[w]);
      break;
    }
    case Op::Kind::kTick:
      h.now += 101;
      break;
  }
  h.l2.tick(h.now);
}

}  // namespace

RunReport run_sequence(const ModelCheckConfig& config,
                       std::span<const Op> ops) {
  Harness h(config);
  RunReport report;

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const u64 before = h.auditor.total_violations();
    execute_op(h, config, ops[i]);
    if (config.inject_faults && config.fault_every != 0 &&
        (i + 1) % config.fault_every == 0) {
      if (inject_and_heal(h, config)) ++report.faults_injected;
    }
    ++report.ops_run;

    if (h.auditor.total_violations() > before) {
      report.ok = false;
      report.failure = {i, "invariant", h.auditor.report()};
      break;
    }
    if (auto div = find_divergence(h, config)) {
      report.ok = false;
      report.failure = {i, "divergence", *div};
      break;
    }
  }

  report.audits = h.auditor.audits_run();
  for (unsigned c = 0; c < protect::kNumWbCauses; ++c)
    report.wb[c] = h.l2.wb_count(static_cast<protect::WbCause>(c));
  if (auto* shared = dynamic_cast<protect::SharedEccArrayScheme*>(
          &h.l2.scheme()))
    report.ecc_entry_evictions = shared->ecc_entry_evictions();
  report.cache = h.l2.cache_model().stats();
  return report;
}

std::vector<Op> random_ops(const ModelCheckConfig& config, u64 seed,
                           std::size_t count) {
  Xorshift64Star rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    const u64 roll = rng.next_below(100);
    if (roll < 45) {
      op.kind = Op::Kind::kRead;
      op.line = static_cast<u16>(rng.next_below(config.address_lines));
    } else if (roll < 90) {
      op.kind = Op::Kind::kWrite;
      op.line = static_cast<u16>(rng.next_below(config.address_lines));
      op.word = static_cast<u8>(
          rng.next_below(config.geometry.words_per_line()));
      op.value = static_cast<u8>(rng.next());
    } else {
      op.kind = Op::Kind::kTick;
    }
    ops.push_back(op);
  }
  return ops;
}

std::vector<Op> shrink(const ModelCheckConfig& config,
                       std::vector<Op> failing) {
  const auto fails = [&](const std::vector<Op>& seq) {
    return !run_sequence(config, seq).ok;
  };
  if (!fails(failing)) return failing;  // precondition violated; keep as-is

  std::size_t chunk = std::max<std::size_t>(1, failing.size() / 2);
  unsigned budget = 2000;  // bound the number of re-runs
  while (budget > 0) {
    bool removed = false;
    for (std::size_t start = 0;
         start + chunk <= failing.size() && budget > 0;) {
      std::vector<Op> candidate;
      candidate.reserve(failing.size() - chunk);
      candidate.insert(candidate.end(), failing.begin(),
                       failing.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(
          candidate.end(),
          failing.begin() + static_cast<std::ptrdiff_t>(start + chunk),
          failing.end());
      --budget;
      if (fails(candidate)) {
        failing = std::move(candidate);
        removed = true;  // retry same start against the shorter sequence
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return failing;
}

DiffReport run_differential(const ModelCheckConfig& base,
                            std::span<const Op> ops) {
  DiffReport diff;
  // Fault sites depend on scheme-specific storage, so injections would
  // perturb each scheme's access stream differently; the differential
  // cross-check is only meaningful fault-free.
  ModelCheckConfig cfg = base;
  cfg.inject_faults = false;
  cfg.scheme_factory = nullptr;

  const protect::SchemeKind kinds[3] = {protect::SchemeKind::kUniformEcc,
                                        protect::SchemeKind::kNonUniform,
                                        protect::SchemeKind::kSharedEccArray};
  for (const protect::SchemeKind kind : kinds) {
    cfg.scheme = kind;
    cfg.label.clear();
    diff.runs.push_back(run_sequence(cfg, ops));
    if (!diff.runs.back().ok) {
      diff.ok = false;
      diff.detail = std::string(protect::to_string(kind)) +
                    " failed standalone checks: " +
                    diff.runs.back().failure->detail;
      return diff;
    }
  }

  const RunReport& uni = diff.runs[0];
  const RunReport& non = diff.runs[1];
  const RunReport& sha = diff.runs[2];
  std::ostringstream os;
  const auto expect_eq = [&](u64 a, u64 b, const char* what) {
    if (a != b) {
      diff.ok = false;
      os << what << " diverged (" << a << " vs " << b << "); ";
    }
  };
  // Allocation behaviour is scheme-independent: hit/miss/fill streams must
  // be bit-identical across all three schemes.
  for (const RunReport* r : {&non, &sha}) {
    expect_eq(uni.cache.reads, r->cache.reads, "reads");
    expect_eq(uni.cache.writes, r->cache.writes, "writes");
    expect_eq(uni.cache.read_hits, r->cache.read_hits, "read hits");
    expect_eq(uni.cache.write_hits, r->cache.write_hits, "write hits");
    expect_eq(uni.cache.fills, r->cache.fills, "fills");
  }
  // Neither baseline scheme ever forces write-backs, so their traffic is
  // identical, cause by cause.
  for (unsigned c = 0; c < protect::kNumWbCauses; ++c)
    expect_eq(uni.wb[c], non.wb[c], "uniform vs non-uniform write-backs");
  expect_eq(uni.wb[static_cast<unsigned>(protect::WbCause::kEccEviction)], 0,
            "uniform ECC-WB (must be zero)");
  // §3.3 accounting: every shared-scheme ECC eviction is one forced WB.
  expect_eq(
      sha.wb[static_cast<unsigned>(protect::WbCause::kEccEviction)],
      sha.ecc_entry_evictions, "shared ECC-WB vs entry evictions");
  if (!diff.ok) diff.detail = os.str();
  return diff;
}

ExhaustiveReport exhaustive_check(const ModelCheckConfig& config,
                                  unsigned alphabet_lines, unsigned len) {
  // Alphabet: read each line, write word 0 of each line (value = line+1),
  // and a time jump — 2*alphabet_lines + 1 symbols.
  std::vector<Op> alphabet;
  for (unsigned l = 0; l < alphabet_lines; ++l)
    alphabet.push_back({Op::Kind::kRead, static_cast<u16>(l), 0, 0});
  for (unsigned l = 0; l < alphabet_lines; ++l)
    alphabet.push_back({Op::Kind::kWrite, static_cast<u16>(l), 0,
                        static_cast<u8>(l + 1)});
  alphabet.push_back({Op::Kind::kTick, 0, 0, 0});

  ExhaustiveReport report;
  std::vector<std::size_t> index(len, 0);
  std::vector<Op> seq(len);
  for (;;) {
    for (unsigned i = 0; i < len; ++i) seq[i] = alphabet[index[i]];
    ++report.sequences;
    report.ops += len;
    if (!run_sequence(config, seq).ok) {
      report.counterexample = seq;
      return report;
    }
    // Odometer increment.
    unsigned pos = 0;
    while (pos < len && ++index[pos] == alphabet.size()) {
      index[pos] = 0;
      ++pos;
    }
    if (pos == len) break;
  }
  return report;
}

}  // namespace aeep::verify
