// Process-wide registry of named histograms and counters.
//
// Naming convention: dotted lowercase paths with the unit as the final
// suffix — "server.queue_wait_us", "fabric.rpc_us.127.0.0.1:7501",
// "store.hits". One Registry::instance() serves the whole process so the
// metrics wire endpoint, the access-log summaries and the tools all read
// the same truth.
//
// Locking: the name maps are guarded by one aeep::Mutex, taken only on
// first registration, snapshot and reset. histogram()/counter() return
// references with stable addresses (std::map nodes never move), so hot
// paths resolve their instruments once — at construction time or in a
// function-local static — and then record wait-free forever after. The
// registry mutex is a leaf: no registry method calls out while holding it,
// so it can be taken under any caller lock without ordering concerns.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "metrics/histogram.hpp"

namespace aeep::metrics {

/// Monotonic event counter. value() returns the plain integer (this is the
/// accessor the unchecked-optional-value lint rule exempts by name).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(u64 n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance every subsystem instruments into.
  static Registry& instance();

  /// The named histogram, created empty on first use. The reference stays
  /// valid (and its address stable) for the registry's lifetime — resolve
  /// once, record forever.
  Histogram& histogram(const std::string& name) AEEP_EXCLUDES(mutex_);

  /// The named counter, same contract as histogram().
  Counter& counter(const std::string& name) AEEP_EXCLUDES(mutex_);

  /// All histograms (name-sorted) snapshotted at one pass.
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const
      AEEP_EXCLUDES(mutex_);

  /// All counters (name-sorted) read at one pass.
  std::vector<std::pair<std::string, u64>> counters() const
      AEEP_EXCLUDES(mutex_);

  /// Whole-registry snapshot:
  ///   {"histograms": {name: <HistogramSnapshot JSON>},
  ///    "counters":   {name: <u64>}}
  /// The document the metrics wire endpoint and aeep_metrics dump emit.
  JsonValue snapshot_json() const AEEP_EXCLUDES(mutex_);

  /// Zero every instrument (names stay registered). Epoch boundaries are
  /// soft: records in flight on other threads may land on either side.
  void reset() AEEP_EXCLUDES(mutex_);

 private:
  mutable aeep::Mutex mutex_;
  /// node-based maps: references handed out survive later insertions.
  std::map<std::string, Histogram> histograms_ AEEP_GUARDED_BY(mutex_);
  std::map<std::string, Counter> counters_ AEEP_GUARDED_BY(mutex_);
};

}  // namespace aeep::metrics
