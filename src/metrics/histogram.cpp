#include "metrics/histogram.hpp"

#include <algorithm>

namespace aeep::metrics {

double HistogramSnapshot::mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank in [1, count]: the k-th smallest recorded value estimates this
  // percentile. p=0 asks for the 1st (the min), p=100 for the count-th
  // (the max).
  const double target = std::max(
      1.0, p / 100.0 * static_cast<double>(count));
  // The extreme ranks are known exactly — never interpolate them.
  if (target <= 1.0) return static_cast<double>(min);
  if (target >= static_cast<double>(count)) return static_cast<double>(max);
  u64 cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const u64 in_bucket = buckets[i];
    if (static_cast<double>(cum + in_bucket) < target) {
      cum += in_bucket;
      continue;
    }
    // The target rank falls in this bucket: interpolate linearly across
    // its value range, then clamp to the exact extremes — a one-sample
    // histogram (min == max) therefore reports that exact sample.
    const double lo = static_cast<double>(bucket_lower_bound(i));
    const double hi =
        i >= kHistogramBuckets - 1
            ? static_cast<double>(
                  std::max(max, bucket_lower_bound(i)))  // saturating top
            : static_cast<double>(bucket_upper_bound(i)) + 1.0;
    const double frac =
        (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
    double v = lo + frac * (hi - lo);
    v = std::min(v, static_cast<double>(max));
    v = std::max(v, static_cast<double>(min));
    return v;
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  const bool was_empty = count == 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i)
    buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  min = was_empty ? other.min : std::min(min, other.min);
  max = was_empty ? other.max : std::max(max, other.max);
}

std::optional<HistogramSnapshot> HistogramSnapshot::diff_since(
    const HistogramSnapshot& older) const {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] < older.buckets[i]) return std::nullopt;
    out.buckets[i] = buckets[i] - older.buckets[i];
    out.count += out.buckets[i];
  }
  out.sum = sum >= older.sum ? sum - older.sum : 0;
  // Interval min/max cannot be recovered from totals; bound them by the
  // occupied buckets so percentile clamping stays sound. The top bucket's
  // upper envelope is the all-time max (the tightest bound available).
  if (out.count > 0) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (out.buckets[i] != 0) {
        out.min = bucket_lower_bound(i);
        break;
      }
    }
    for (std::size_t i = kHistogramBuckets; i-- > 0;) {
      if (out.buckets[i] != 0) {
        out.max =
            i >= kHistogramBuckets - 1 ? max : bucket_upper_bound(i);
        break;
      }
    }
  }
  return out;
}

JsonValue HistogramSnapshot::to_json() const {
  JsonValue j = JsonValue::object();
  j.set("count", JsonValue::number(count));
  j.set("sum", JsonValue::number(sum));
  j.set("min", JsonValue::number(min));
  j.set("max", JsonValue::number(max));
  j.set("mean", JsonValue::number(mean()));
  j.set("p50", JsonValue::number(percentile(50)));
  j.set("p90", JsonValue::number(percentile(90)));
  j.set("p99", JsonValue::number(percentile(99)));
  j.set("p999", JsonValue::number(percentile(99.9)));
  JsonValue sparse = JsonValue::array();
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    JsonValue pair = JsonValue::array();
    pair.push(JsonValue::number(u64{i}));
    pair.push(JsonValue::number(buckets[i]));
    sparse.push(std::move(pair));
  }
  j.set("buckets", std::move(sparse));
  return j;
}

std::optional<HistogramSnapshot> HistogramSnapshot::from_json(
    const JsonValue& doc) {
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* sparse = doc.find("buckets");
  if (sparse == nullptr || !sparse->is_array()) return std::nullopt;
  HistogramSnapshot out;
  for (const JsonValue& pair : sparse->elements()) {
    if (!pair.is_array() || pair.elements().size() != 2) return std::nullopt;
    const u64 idx = pair.elements()[0].as_u64(kHistogramBuckets);
    if (idx >= kHistogramBuckets) return std::nullopt;
    out.buckets[idx] = pair.elements()[1].as_u64(0);
    out.count += out.buckets[idx];
  }
  // The derived count must agree with the raw buckets; a mismatch means a
  // corrupted or hand-edited document.
  if (out.count != doc.get_u64("count", out.count)) return std::nullopt;
  out.sum = doc.get_u64("sum", 0);
  out.min = doc.get_u64("min", 0);
  out.max = doc.get_u64("max", 0);
  return out;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  const u64 mn = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 || mn == ~u64{0} ? 0 : mn;
  s.max = s.count == 0 ? 0 : max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~u64{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

}  // namespace aeep::metrics
