// The one sanctioned monotonic clock in src/: every latency measurement
// flows through these helpers so the raw-clock lint rule can ban ad-hoc
// std::chrono::steady_clock::now() timing everywhere else. Ad-hoc timing
// is how instrumentation rots — a hand-rolled duration_cast sees one call
// site, a metrics::Histogram fed through these helpers sees the fleet.
//
// Units convention: histograms record *microseconds* (names end in _us);
// human-facing logs render milliseconds. The helpers exist for both so a
// call site never writes its own duration arithmetic.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace aeep::metrics {

using MonotonicClock = std::chrono::steady_clock;
using TimePoint = MonotonicClock::time_point;
using Duration = MonotonicClock::duration;

inline TimePoint now() { return MonotonicClock::now(); }

/// Elapsed microseconds from `t0` to `t1`, clamped at zero (a non-monotonic
/// pair — e.g. a deadline computed before `t0` — must not wrap to 2^64).
inline u64 us_between(TimePoint t0, TimePoint t1) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  return us > 0 ? static_cast<u64>(us) : 0;
}

inline u64 us_since(TimePoint t0) { return us_between(t0, now()); }

inline double ms_between(TimePoint t0, TimePoint t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

inline double ms_since(TimePoint t0) { return ms_between(t0, now()); }

inline double seconds_between(TimePoint t0, TimePoint t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace aeep::metrics
