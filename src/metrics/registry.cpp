#include "metrics/registry.hpp"

namespace aeep::metrics {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mutex_);
  return histograms_[name];
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  return counters_[name];
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms()
    const {
  const MutexLock lock(mutex_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.snapshot());
  return out;
}

std::vector<std::pair<std::string, u64>> Registry::counters() const {
  const MutexLock lock(mutex_);
  std::vector<std::pair<std::string, u64>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

JsonValue Registry::snapshot_json() const {
  JsonValue doc = JsonValue::object();
  JsonValue hists = JsonValue::object();
  for (const auto& [name, snap] : histograms())
    hists.set(name, snap.to_json());
  doc.set("histograms", std::move(hists));
  JsonValue counts = JsonValue::object();
  for (const auto& [name, value] : counters())
    counts.set(name, JsonValue::number(value));
  doc.set("counters", std::move(counts));
  return doc;
}

void Registry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, c] : counters_) c.reset();
}

}  // namespace aeep::metrics
