// Lock-cheap log-bucketed latency histogram (joernblog histogram.c style).
//
// Fixed layout: 64 buckets on a log2 scale. Bucket 0 holds exact zeros;
// bucket i (1..62) holds values in [2^(i-1), 2^i); bucket 63 saturates —
// everything >= 2^62 lands there, so no recordable u64 is ever dropped.
// The layout is a compile-time constant, which is what makes merge
// lossless: two histograms (from two fabric workers, two snapshots, two
// runs) merge by elementwise bucket addition, and (a+b)+c == a+(b+c).
//
// record() is wait-free — one relaxed fetch_add on the bucket plus relaxed
// updates of the exact sum/min/max — so it is safe from any thread,
// including under a caller's mutex (it takes none of its own). snapshot()
// is a relaxed read of all counters: consistent enough for monitoring
// (bucket sums define `count`), not a linearisable cut, and documented as
// such. Percentile estimation interpolates inside the target bucket and
// clamps against the exact min/max, so a one-sample histogram reports that
// exact sample at every percentile.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/json.hpp"
#include "common/types.hpp"

namespace aeep::metrics {

inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for a value: 0 for 0, otherwise floor(log2(v)) + 1,
/// saturating at 63.
constexpr std::size_t bucket_index(u64 value) {
  if (value == 0) return 0;
  std::size_t idx = 0;
  while (value != 0) {
    value >>= 1;
    ++idx;
  }
  return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
}

/// Inclusive lower bound of bucket `i` under the log2 layout.
constexpr u64 bucket_lower_bound(std::size_t i) {
  if (i == 0) return 0;
  return u64{1} << (i - 1);
}

/// Inclusive upper bound of bucket `i`. The saturating top bucket's upper
/// bound is the largest u64.
constexpr u64 bucket_upper_bound(std::size_t i) {
  if (i == 0) return 0;
  if (i >= kHistogramBuckets - 1) return ~u64{0};
  return (u64{1} << i) - 1;
}

/// Plain-data copy of a histogram at one moment: what crosses the wire,
/// lands in JSON snapshots, and merges across fabric workers. `count` is
/// always the sum of `buckets` — merge and diff preserve that invariant.
struct HistogramSnapshot {
  u64 buckets[kHistogramBuckets] = {};
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;  ///< exact smallest recorded value; 0 when count == 0
  u64 max = 0;  ///< exact largest recorded value; 0 when count == 0

  bool empty() const { return count == 0; }

  /// Arithmetic mean of recorded values; 0 when empty.
  double mean() const;

  /// Estimated value at percentile `p` in [0, 100]. Exact for the
  /// population's min (p=0) and max (p=100); interior percentiles
  /// interpolate linearly inside the covering log2 bucket. 0 when empty.
  double percentile(double p) const;

  /// Lossless union: elementwise bucket addition, exact sum, combined
  /// min/max. Associative and commutative — fabric aggregation can fold
  /// worker snapshots in any order.
  void merge(const HistogramSnapshot& other);

  /// The interval histogram between an older snapshot of the *same*
  /// histogram and this one: elementwise bucket subtraction. min/max of
  /// the interval population are unknowable from totals, so they are
  /// re-derived from the occupied bucket bounds (conservative envelope).
  /// Returns nullopt when `older` is not a prefix of this history (some
  /// bucket would go negative — e.g. the histogram was reset in between).
  std::optional<HistogramSnapshot> diff_since(
      const HistogramSnapshot& older) const;

  /// Wire rendering: raw buckets (sparse [index, count] pairs) plus the
  /// exact scalars and derived mean/p50/p90/p99/p999 for human and CI
  /// consumption. from_json reads only the raw fields back.
  JsonValue to_json() const;
  static std::optional<HistogramSnapshot> from_json(const JsonValue& doc);
};

/// The live, concurrently-recorded histogram. Fixed footprint, no
/// allocation, no mutex; safe to record from any number of threads.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Wait-free. `value` is whatever unit the histogram's name declares
  /// (the convention is microseconds, names ending in _us).
  void record(u64 value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    update_min(value);
    update_max(value);
  }

  /// Relaxed read of every counter. Torn against concurrent record()s by
  /// design (monitoring, not accounting): `count` is derived from the
  /// bucket array so it always equals the buckets' sum, while sum/min/max
  /// may trail by the handful of records in flight.
  HistogramSnapshot snapshot() const;

  /// Zero every counter. Not atomic against concurrent record()s — callers
  /// that need a consistent epoch boundary (Registry::reset) serialise
  /// recording threads themselves or accept the raciness.
  void reset();

 private:
  void update_min(u64 value) {
    u64 cur = min_.load(std::memory_order_relaxed);
    while (value < cur &&
           !min_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }
  void update_max(u64 value) {
    u64 cur = max_.load(std::memory_order_relaxed);
    while (value > cur &&
           !max_.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::atomic<u64> buckets_[kHistogramBuckets] = {};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~u64{0}};
  std::atomic<u64> max_{0};
};

}  // namespace aeep::metrics
