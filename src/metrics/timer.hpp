// Instrumentation spans: measure one stage's wall clock and record it into
// a Histogram in microseconds.
//
//   metrics::ScopedTimer t(h_store_lookup_);   // starts now
//   ... stage ...
//   // records on scope exit; or t.stop() to record early and read the us
//
// The span holds only a Histogram* and a TimePoint — cheap enough for the
// per-request and per-job paths it instruments. cancel() disarms a span
// whose stage aborted (an exception path that should not pollute the
// latency distribution still destroys the timer; wrap-and-cancel decides).
#pragma once

#include "metrics/clock.hpp"
#include "metrics/histogram.hpp"

namespace aeep::metrics {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& into) : into_(&into), start_(now()) {}
  ~ScopedTimer() {
    if (into_ != nullptr) into_->record(us_since(start_));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit; returns the recorded value.
  u64 stop() {
    const u64 us = us_since(start_);
    if (into_ != nullptr) into_->record(us);
    into_ = nullptr;
    return us;
  }

  /// Disarm: destroy without recording.
  void cancel() { into_ = nullptr; }

  /// Microseconds elapsed so far (does not record).
  u64 elapsed_us() const { return us_since(start_); }

 private:
  Histogram* into_;
  TimePoint start_;
};

}  // namespace aeep::metrics
