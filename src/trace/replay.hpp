// Trace-driven frontend: re-drives the real L1/write-buffer/L2 models (and
// whichever protection scheme is configured) from a recorded access stream,
// skipping the out-of-order core entirely. Cycle semantics mirror the core
// exactly — tick(c) fires for every cycle c, before any access issued at c —
// so replaying a trace under the configuration it was captured with
// reproduces the execution-driven dirty/write-back metrics bit-for-bit.
// Replaying under a *different* protection configuration is the usual
// trace-driven approximation: the stream's issue cycles are those of the
// captured machine.
#pragma once

#include <string>

#include "sim/hierarchy.hpp"
#include "sim/system.hpp"
#include "trace/reader.hpp"

namespace aeep::trace {

struct ReplayConfig {
  sim::HierarchyConfig hierarchy{};
  std::string trace_path;
};

class ReplayDriver {
 public:
  explicit ReplayDriver(ReplayConfig config);

  /// Replay the whole trace and assemble the run metrics. The result's
  /// `benchmark` / `floating_point` fields are left for the caller (the
  /// trace does not know them); core stats carry the capture summary's
  /// committed/load/store counts and the replayed cycle count so IPC and
  /// per-instruction rates stay meaningful.
  sim::RunResult run();

  u64 events_replayed() const { return events_; }
  /// Stores a foreign trace forced through a full write buffer (always 0
  /// for self-captured traces; the capture only records accepted stores).
  u64 forced_flushes() const { return forced_flushes_; }

 private:
  ReplayConfig config_;
  u64 events_ = 0;
  u64 forced_flushes_ = 0;
};

}  // namespace aeep::trace
