// Capture sink the memory hierarchy drives during an execution-driven run.
//
// The hierarchy calls one hook per L2-visible access (instruction-block
// fetch, load, accepted store) plus the warm-up statistics reset; the sink
// forwards them to a chunked TraceWriter. finish() seals the file with the
// core's end-of-run summary so replays can reproduce per-instruction rates.
#pragma once

#include <string>

#include "trace/writer.hpp"

namespace aeep::trace {

class CaptureSink {
 public:
  CaptureSink(const std::string& path, u32 line_bytes)
      : writer_(path, line_bytes) {}

  void on_fetch(Cycle now, Addr pc) {
    writer_.append({EventKind::kFetch, now, pc, 0});
  }
  void on_load(Cycle now, Addr addr) {
    writer_.append({EventKind::kLoad, now, addr, 0});
  }
  void on_store(Cycle now, Addr addr, u64 value) {
    writer_.append({EventKind::kStore, now, addr, value});
  }
  void on_stats_reset(Cycle now) {
    writer_.append({EventKind::kStatsReset, now, 0, 0});
  }

  /// Seal the trace at core cycle `end_tick` with the measured-phase
  /// committed/load/store counts.
  void finish(Cycle end_tick, u64 committed, u64 loads, u64 stores) {
    writer_.finish({end_tick, committed, loads, stores, 0});
  }

  u64 events() const { return writer_.events_written(); }
  const std::string& path() const { return writer_.path(); }

 private:
  TraceWriter writer_;
};

}  // namespace aeep::trace
