#include "trace/replay.hpp"

#include <utility>

namespace aeep::trace {

ReplayDriver::ReplayDriver(ReplayConfig config) : config_(std::move(config)) {
  // Replay never re-captures; a capture path here is almost certainly a
  // copied execution config, and honouring it would overwrite the input.
  config_.hierarchy.capture_path.clear();
}

sim::RunResult ReplayDriver::run() {
  sim::MemoryHierarchy hier(config_.hierarchy);
  TraceReader reader(config_.trace_path);

  Cycle ticked = 0;      // next cycle whose tick() has not fired yet
  Cycle reset_tick = 0;  // warm-up boundary (0 when the trace has none)
  TraceEvent e;
  while (reader.next(e)) {
    if (e.kind == EventKind::kStatsReset) {
      // The core resets stats between steps: after tick(T-1), before
      // tick(T). Catch the clock up to (not including) the reset cycle.
      while (ticked < e.tick) hier.tick(ticked++);
      hier.reset_stats(e.tick);
      reset_tick = e.tick;
      continue;
    }
    // tick(T) precedes any access issued at T (the core ticks the hierarchy
    // at the top of every cycle).
    while (ticked <= e.tick) hier.tick(ticked++);
    switch (e.kind) {
      case EventKind::kFetch:
        (void)hier.fetch(e.tick, e.addr);
        break;
      case EventKind::kLoad:
        (void)hier.load(e.tick, e.addr);
        break;
      case EventKind::kStore:
        if (!hier.store(e.tick, e.addr, e.value)) {
          // Self-captured traces only record accepted stores, so the
          // buffer can only be full for externally ingested streams whose
          // issue cycles never let it drain. Force room rather than drop.
          hier.flush_write_buffer(e.tick);
          ++forced_flushes_;
          (void)hier.store(e.tick, e.addr, e.value);
        }
        break;
      case EventKind::kStatsReset:
        break;  // handled above
    }
    ++events_;
  }

  const TraceSummary& s = reader.summary();
  while (ticked < s.end_tick) hier.tick(ticked++);
  hier.l2().finalize(s.end_tick);

  sim::RunResult r;
  r.core.committed = s.committed;
  r.core.loads = s.loads;
  r.core.stores = s.stores;
  r.core.cycles = s.end_tick - reset_tick;

  const auto& l2 = hier.l2();
  r.avg_dirty_fraction = l2.avg_dirty_fraction();
  r.avg_dirty_lines = static_cast<u64>(l2.avg_dirty_lines() + 0.5);
  r.peak_dirty_lines = l2.peak_dirty_lines();
  r.wb_replacement = l2.wb_count(protect::WbCause::kReplacement);
  r.wb_cleaning = l2.wb_count(protect::WbCause::kCleaning);
  r.wb_ecc = l2.wb_count(protect::WbCause::kEccEviction);

  r.recovery = l2.recovery().stats();
  r.retired_ways = l2.cache_model().retired_ways();
  r.retired_capacity_fraction = l2.retired_capacity_fraction();
  r.panicked = l2.recovery().panicked();
  if (const auto* sp = hier.strikes()) r.strikes = sp->stats();

  r.l1i = hier.l1i().stats();
  r.l1d = hier.l1d().stats();
  r.l2 = l2.cache_model().stats();
  r.wbuf = hier.write_buffer().stats();
  r.bus = hier.bus().stats();
  r.itlb = hier.itlb().stats();
  r.dtlb = hier.dtlb().stats();
  events_ = reader.events_read();
  return r;
}

}  // namespace aeep::trace
