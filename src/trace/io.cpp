#include "trace/io.hpp"

#include <array>
#include <cstring>
#include <map>

#include "common/crc64.hpp"
#include "common/mutex.hpp"

namespace aeep::trace {

void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

u64 get_varint(const std::vector<u8>& buf, std::size_t& pos) {
  u64 v = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= buf.size())
      throw TraceError(TraceErrorKind::kTruncated, "payload ends mid-varint");
    const u8 byte = buf[pos++];
    if (shift == 63 && (byte & ~u8{1}) != 0)
      throw TraceError(TraceErrorKind::kCorrupt, "varint overflows 64 bits");
    v |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63)
      throw TraceError(TraceErrorKind::kCorrupt, "varint longer than 10 bytes");
  }
}

namespace {
std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> t{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
}  // namespace

u32 crc32(const u8* data, std::size_t n) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

FileWriter::FileWriter(const std::string& path, bool append)
    : path_(path), file_(std::fopen(path.c_str(), append ? "ab" : "wb")) {
  if (!file_)
    throw TraceError(TraceErrorKind::kIo, "cannot open for writing: " + path);
}

FileWriter::~FileWriter() {
  // Best effort on the unwinding path; close() explicitly to observe errors.
  if (file_) std::fclose(file_);
  file_ = nullptr;
}

void FileWriter::write_bytes(const void* data, std::size_t n) {
  if (!file_)
    throw TraceError(TraceErrorKind::kIo, "write after close: " + path_);
  if (n == 0) return;
  if (std::fwrite(data, 1, n, file_) != n)
    throw TraceError(TraceErrorKind::kIo, "short write: " + path_);
  bytes_ += n;
}

void FileWriter::write_u8(u8 v) { write_bytes(&v, 1); }

void FileWriter::write_u32(u32 v) {
  const u8 b[4] = {static_cast<u8>(v), static_cast<u8>(v >> 8),
                   static_cast<u8>(v >> 16), static_cast<u8>(v >> 24)};
  write_bytes(b, 4);
}

void FileWriter::flush() {
  if (!file_)
    throw TraceError(TraceErrorKind::kIo, "flush after close: " + path_);
  if (std::fflush(file_) != 0)
    throw TraceError(TraceErrorKind::kIo, "flush failed: " + path_);
}

void FileWriter::close() {
  if (!file_) return;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) throw TraceError(TraceErrorKind::kIo, "close failed: " + path_);
}

FileReader::FileReader(const std::string& path)
    : path_(path), file_(std::fopen(path.c_str(), "rb")) {
  if (!file_)
    throw TraceError(TraceErrorKind::kIo, "cannot open for reading: " + path);
}

FileReader::~FileReader() {
  if (file_) std::fclose(file_);
  file_ = nullptr;
}

void FileReader::read_bytes(void* out, std::size_t n) {
  if (n == 0) return;
  if (std::fread(out, 1, n, file_) != n)
    throw TraceError(TraceErrorKind::kTruncated, "short read: " + path_);
}

u8 FileReader::read_u8() {
  u8 v = 0;
  read_bytes(&v, 1);
  return v;
}

u32 FileReader::read_u32() {
  u8 b[4];
  read_bytes(b, 4);
  return static_cast<u32>(b[0]) | static_cast<u32>(b[1]) << 8 |
         static_cast<u32>(b[2]) << 16 | static_cast<u32>(b[3]) << 24;
}

bool FileReader::at_eof() {
  const int c = std::fgetc(file_);
  if (c == EOF) return true;
  std::ungetc(c, file_);
  return false;
}

u64 FileReader::size() {
  if (size_known_) return size_;
  const long here = std::ftell(file_);
  if (here < 0 || std::fseek(file_, 0, SEEK_END) != 0)
    throw TraceError(TraceErrorKind::kIo, "cannot seek: " + path_);
  const long end = std::ftell(file_);
  if (end < 0 || std::fseek(file_, here, SEEK_SET) != 0)
    throw TraceError(TraceErrorKind::kIo, "cannot seek: " + path_);
  size_ = static_cast<u64>(end);
  size_known_ = true;
  return size_;
}

u64 FileReader::tell() {
  const long here = std::ftell(file_);
  if (here < 0)
    throw TraceError(TraceErrorKind::kIo, "cannot tell: " + path_);
  return static_cast<u64>(here);
}

void FileReader::seek(u64 offset) {
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0)
    throw TraceError(TraceErrorKind::kIo, "cannot seek: " + path_);
  std::clearerr(file_);
}

u64 FileReader::whole_file_digest() {
  if (digest_known_) return digest_;
  const u64 here = tell();
  seek(0);
  Crc64 crc;
  std::array<u8, 65536> buf;
  std::size_t got = 0;
  while ((got = std::fread(buf.data(), 1, buf.size(), file_)) > 0)
    crc.update(buf.data(), got);
  if (std::ferror(file_))
    throw TraceError(TraceErrorKind::kIo, "read failed: " + path_);
  seek(here);
  digest_ = crc.value();
  digest_known_ = true;
  return digest_;
}

u64 file_digest(const std::string& path) {
  static aeep::Mutex mu;
  static std::map<std::string, u64> memo;
  {
    const MutexLock lock(mu);
    const auto it = memo.find(path);
    if (it != memo.end()) return it->second;
  }
  // Digest outside the lock: two threads may race to digest the same path,
  // but both compute the same value, so the second insert is a no-op.
  FileReader reader(path);
  const u64 digest = reader.whole_file_digest();
  const MutexLock lock(mu);
  memo.emplace(path, digest);
  return digest;
}

}  // namespace aeep::trace
