// Streaming trace writer: buffers events into delta-encoded chunks and
// appends each with its own CRC; finish() seals the file with the footer.
#pragma once

#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/io.hpp"

namespace aeep::trace {

class TraceWriter {
 public:
  /// Opens `path` and writes the header. `line_bytes` is recorded so tools
  /// can sanity-check a trace against the replay geometry.
  TraceWriter(const std::string& path, u32 line_bytes,
              u32 chunk_events = kDefaultChunkEvents);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const TraceEvent& e);

  /// Flush the pending chunk, write the footer (with `summary.events`
  /// filled in from the actual count) and close. Append after finish is a
  /// logic error. Safe to call twice.
  void finish(TraceSummary summary);

  u64 events_written() const { return events_; }
  const std::string& path() const { return file_.path(); }

 private:
  void flush_chunk();

  FileWriter file_;
  std::vector<u8> payload_;
  u32 chunk_events_;
  u32 pending_ = 0;     ///< events in payload_
  u64 events_ = 0;
  Cycle prev_tick_ = 0; ///< delta state, reset every chunk
  Addr prev_addr_ = 0;
  bool finished_ = false;
};

}  // namespace aeep::trace
