#include "trace/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "metrics/clock.hpp"
#include "trace/io.hpp"
#include "trace/replay.hpp"

namespace aeep::trace {

double relative_error(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

namespace {
MetricDiff diff_one(const char* name, double exec, double replay) {
  return {name, exec, replay, relative_error(exec, replay)};
}
}  // namespace

std::vector<MetricDiff> diff_metrics(const sim::RunResult& exec,
                                     const sim::RunResult& replay) {
  std::vector<MetricDiff> m;
  m.push_back(diff_one("avg_dirty_fraction", exec.avg_dirty_fraction,
                       replay.avg_dirty_fraction));
  m.push_back(diff_one("wb_replacement",
                       static_cast<double>(exec.wb_replacement),
                       static_cast<double>(replay.wb_replacement)));
  m.push_back(diff_one("wb_cleaning", static_cast<double>(exec.wb_cleaning),
                       static_cast<double>(replay.wb_cleaning)));
  m.push_back(diff_one("wb_ecc", static_cast<double>(exec.wb_ecc),
                       static_cast<double>(replay.wb_ecc)));
  m.push_back(diff_one("wb_total", static_cast<double>(exec.wb_total()),
                       static_cast<double>(replay.wb_total())));
  m.push_back(diff_one("l2_accesses", static_cast<double>(exec.l2.accesses()),
                       static_cast<double>(replay.l2.accesses())));
  m.push_back(diff_one("l2_misses", static_cast<double>(exec.l2.misses()),
                       static_cast<double>(replay.l2.misses())));
  return m;
}

std::string ValidationReport::to_text() const {
  std::ostringstream os;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s: exec %.2fs, replay %.2fs (%.1fx), %llu events, %llu bytes\n",
                benchmark.c_str(), exec_seconds, replay_seconds, speedup(),
                static_cast<unsigned long long>(trace_events),
                static_cast<unsigned long long>(trace_bytes));
  os << buf;
  for (const auto& m : metrics) {
    std::snprintf(buf, sizeof(buf), "  %-20s exec %-14.6g replay %-14.6g rel %.2e %s\n",
                  m.name.c_str(), m.exec, m.replay, m.rel_err,
                  m.within(tolerance) ? "ok" : "EXCEEDS TOLERANCE");
    os << buf;
  }
  os << "  => " << (pass ? "PASS" : "FAIL") << " (tolerance "
     << tolerance * 100.0 << "%)\n";
  return os.str();
}

ValidationReport cross_validate(const sim::SystemConfig& cfg,
                                const std::string& trace_path,
                                double tolerance) {
  ValidationReport rep;
  rep.benchmark = cfg.benchmark;
  rep.trace_path = trace_path;
  rep.tolerance = tolerance;

  sim::SystemConfig exec_cfg = cfg;
  exec_cfg.hierarchy.capture_path = trace_path;
  const auto t0 = metrics::now();
  sim::System system(exec_cfg);
  const sim::RunResult exec_result = system.run();
  const auto t1 = metrics::now();

  ReplayConfig rc;
  rc.hierarchy = cfg.hierarchy;
  rc.trace_path = trace_path;
  ReplayDriver driver(std::move(rc));
  const auto t2 = metrics::now();
  const sim::RunResult replay_result = driver.run();
  const auto t3 = metrics::now();

  rep.exec_seconds = metrics::seconds_between(t0, t1);
  rep.replay_seconds = metrics::seconds_between(t2, t3);
  rep.trace_events = driver.events_replayed();
  try {
    FileReader trace_file(trace_path);
    rep.trace_bytes = trace_file.size();
  } catch (const TraceError&) {
    // Size is informational; a vanished trace file does not fail validation
    // (the replay above already read it).
  }
  rep.metrics = diff_metrics(exec_result, replay_result);
  rep.pass = std::all_of(rep.metrics.begin(), rep.metrics.end(),
                         [&](const MetricDiff& m) { return m.within(tolerance); });
  return rep;
}

}  // namespace aeep::trace
