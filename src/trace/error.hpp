// Typed failures for trace I/O. Every malformed input — wrong magic,
// unsupported version, short read, checksum mismatch, undecodable payload —
// surfaces as a TraceError with a machine-checkable kind, so callers (and
// the round-trip tests) can distinguish "file damaged in transit" from
// "wrong tool version" without parsing message strings.
#pragma once

#include <stdexcept>
#include <string>

namespace aeep::trace {

enum class TraceErrorKind {
  kIo,          ///< open/read/write failed at the OS level
  kBadMagic,    ///< not a trace file at all
  kBadVersion,  ///< trace format newer/older than this reader
  kTruncated,   ///< clean prefix but the file ends mid-structure / no footer
  kCorrupt,     ///< structure present but inconsistent (CRC, counts, kinds)
};

const char* to_string(TraceErrorKind k);

class TraceError : public std::runtime_error {
 public:
  TraceError(TraceErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(to_string(kind)) + ": " + message),
        kind_(kind) {}

  TraceErrorKind kind() const { return kind_; }

 private:
  TraceErrorKind kind_;
};

inline const char* to_string(TraceErrorKind k) {
  switch (k) {
    case TraceErrorKind::kIo: return "trace io error";
    case TraceErrorKind::kBadMagic: return "trace bad magic";
    case TraceErrorKind::kBadVersion: return "trace version mismatch";
    case TraceErrorKind::kTruncated: return "trace truncated";
    case TraceErrorKind::kCorrupt: return "trace corrupt";
  }
  return "trace error";
}

}  // namespace aeep::trace
