#include "trace/writer.hpp"

#include <cassert>

namespace aeep::trace {

TraceWriter::TraceWriter(const std::string& path, u32 line_bytes,
                         u32 chunk_events)
    : file_(path), chunk_events_(chunk_events == 0 ? 1 : chunk_events) {
  file_.write_u32(kTraceMagic);
  file_.write_u32(kTraceVersion);
  file_.write_u32(line_bytes);
  file_.write_u32(0);  // reserved
  payload_.reserve(static_cast<std::size_t>(chunk_events_) * 8);
}

TraceWriter::~TraceWriter() {
  // An unfinished writer leaves a footer-less file behind, which readers
  // reject as truncated — exactly right for a crashed capture.
}

void TraceWriter::append(const TraceEvent& e) {
  if (finished_)
    throw TraceError(TraceErrorKind::kIo, "append after finish: " + path());
  if (e.tick < prev_tick_)
    throw TraceError(TraceErrorKind::kCorrupt,
                     "event ticks must be non-decreasing");
  payload_.push_back(static_cast<u8>(e.kind));
  put_varint(payload_, e.tick - prev_tick_);
  prev_tick_ = e.tick;
  if (e.kind != EventKind::kStatsReset) {
    put_varint(payload_,
               zigzag(static_cast<i64>(e.addr) - static_cast<i64>(prev_addr_)));
    prev_addr_ = e.addr;
  }
  if (e.kind == EventKind::kStore) put_varint(payload_, e.value);
  ++pending_;
  ++events_;
  if (pending_ >= chunk_events_) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (pending_ == 0) return;
  file_.write_u8(kDataChunkTag);
  file_.write_u32(static_cast<u32>(payload_.size()));
  file_.write_u32(pending_);
  file_.write_u32(crc32(payload_));
  file_.write_bytes(payload_.data(), payload_.size());
  payload_.clear();
  pending_ = 0;
  prev_tick_ = 0;  // per-chunk delta restart: chunks decode independently
  prev_addr_ = 0;
}

void TraceWriter::finish(TraceSummary summary) {
  if (finished_) return;
  flush_chunk();
  summary.events = events_;
  std::vector<u8> footer;
  put_varint(footer, summary.end_tick);
  put_varint(footer, summary.committed);
  put_varint(footer, summary.loads);
  put_varint(footer, summary.stores);
  put_varint(footer, summary.events);
  file_.write_u8(kFooterTag);
  file_.write_u32(static_cast<u32>(footer.size()));
  file_.write_u32(crc32(footer));
  file_.write_bytes(footer.data(), footer.size());
  file_.close();
  finished_ = true;
}

}  // namespace aeep::trace
