// Streaming trace reader: decodes one chunk at a time (constant memory in
// the trace length), verifies every chunk's CRC and event count, and
// surfaces malformed input as typed TraceErrors — see error.hpp.
#pragma once

#include <string>
#include <vector>

#include "trace/format.hpp"
#include "trace/io.hpp"

namespace aeep::trace {

class TraceReader {
 public:
  /// Opens `path` and validates the header (magic, version).
  explicit TraceReader(const std::string& path);

  /// Decode the next event into `out`. Returns false once the footer has
  /// been reached (then `summary()` is valid); throws TraceError on any
  /// malformed input, including a file that ends without a footer.
  bool next(TraceEvent& out);

  /// Capture-side run summary; only valid after next() returned false.
  const TraceSummary& summary() const { return summary_; }

  u32 line_bytes() const { return line_bytes_; }
  u64 events_read() const { return events_; }
  u64 chunks_read() const { return chunks_; }
  const std::string& path() const { return file_.path(); }

 private:
  /// Load and CRC-check the next chunk; fills payload_ (data) or summary_
  /// (footer). Returns false when the footer was consumed.
  bool load_chunk();

  FileReader file_;
  u32 line_bytes_ = 0;
  std::vector<u8> payload_;
  std::size_t pos_ = 0;
  u32 chunk_left_ = 0;  ///< events remaining in the current chunk
  Cycle prev_tick_ = 0;
  Addr prev_addr_ = 0;
  u64 events_ = 0;
  u64 chunks_ = 0;
  bool done_ = false;
  TraceSummary summary_{};
};

}  // namespace aeep::trace
