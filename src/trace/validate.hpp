// Cross-validation harness: run one workload execution-driven (capturing a
// trace as it goes), replay the trace through the same hierarchy
// configuration, and diff the paper's metrics. Self-captured replays must
// agree essentially exactly; the CI gate enforces a 1% relative tolerance
// and reports the per-cell replay speedup.
#pragma once

#include <string>
#include <vector>

#include "sim/system.hpp"

namespace aeep::trace {

struct MetricDiff {
  std::string name;
  double exec = 0.0;
  double replay = 0.0;
  double rel_err = 0.0;  ///< |exec - replay| / max(|exec|, |replay|); 0 if both 0
  bool within(double tolerance) const { return rel_err <= tolerance; }
};

struct ValidationReport {
  std::string benchmark;
  std::string trace_path;
  double tolerance = 0.01;
  std::vector<MetricDiff> metrics;
  bool pass = false;
  double exec_seconds = 0.0;
  double replay_seconds = 0.0;
  u64 trace_events = 0;
  u64 trace_bytes = 0;

  double speedup() const {
    return replay_seconds > 0.0 ? exec_seconds / replay_seconds : 0.0;
  }
  /// Multi-line human-readable summary (also used by the CI gate's log).
  std::string to_text() const;
};

/// Relative error with a both-zero special case.
double relative_error(double a, double b);

/// The metric set the gate compares: dirty ratio and the WB / Clean-WB /
/// ECC-WB breakdown (ECC-WB is the shared-ECC conflict-eviction count).
std::vector<MetricDiff> diff_metrics(const sim::RunResult& exec,
                                     const sim::RunResult& replay);

/// Run `cfg` both ways, writing the captured trace to `trace_path`.
ValidationReport cross_validate(const sim::SystemConfig& cfg,
                                const std::string& trace_path,
                                double tolerance = 0.01);

}  // namespace aeep::trace
