#include "trace/reader.hpp"

namespace aeep::trace {

TraceReader::TraceReader(const std::string& path) : file_(path) {
  u32 magic = 0, version = 0;
  try {
    magic = file_.read_u32();
  } catch (const TraceError&) {
    throw TraceError(TraceErrorKind::kTruncated, "no header: " + path);
  }
  if (magic != kTraceMagic)
    throw TraceError(TraceErrorKind::kBadMagic, "not a trace file: " + path);
  version = file_.read_u32();
  if (version != kTraceVersion)
    throw TraceError(TraceErrorKind::kBadVersion,
                     "trace is v" + std::to_string(version) + ", reader is v" +
                         std::to_string(kTraceVersion) + ": " + path);
  line_bytes_ = file_.read_u32();
  (void)file_.read_u32();  // reserved
}

bool TraceReader::load_chunk() {
  if (file_.at_eof())
    throw TraceError(TraceErrorKind::kTruncated,
                     "file ends without a footer: " + path());
  const u8 tag = file_.read_u8();
  if (tag == kDataChunkTag) {
    const u32 payload_bytes = file_.read_u32();
    const u32 event_count = file_.read_u32();
    const u32 crc = file_.read_u32();
    if (event_count == 0)
      throw TraceError(TraceErrorKind::kCorrupt, "empty data chunk: " + path());
    payload_.resize(payload_bytes);
    file_.read_bytes(payload_.data(), payload_bytes);
    if (crc32(payload_) != crc)
      throw TraceError(TraceErrorKind::kCorrupt,
                       "chunk CRC mismatch (chunk " + std::to_string(chunks_) +
                           "): " + path());
    pos_ = 0;
    chunk_left_ = event_count;
    prev_tick_ = 0;
    prev_addr_ = 0;
    ++chunks_;
    return true;
  }
  if (tag == kFooterTag) {
    const u32 payload_bytes = file_.read_u32();
    const u32 crc = file_.read_u32();
    payload_.resize(payload_bytes);
    file_.read_bytes(payload_.data(), payload_bytes);
    if (crc32(payload_) != crc)
      throw TraceError(TraceErrorKind::kCorrupt,
                       "footer CRC mismatch: " + path());
    std::size_t p = 0;
    summary_.end_tick = get_varint(payload_, p);
    summary_.committed = get_varint(payload_, p);
    summary_.loads = get_varint(payload_, p);
    summary_.stores = get_varint(payload_, p);
    summary_.events = get_varint(payload_, p);
    if (p != payload_.size())
      throw TraceError(TraceErrorKind::kCorrupt,
                       "footer has trailing bytes: " + path());
    if (summary_.events != events_)
      throw TraceError(TraceErrorKind::kCorrupt,
                       "footer event count " + std::to_string(summary_.events) +
                           " != " + std::to_string(events_) +
                           " events decoded: " + path());
    if (!file_.at_eof())
      throw TraceError(TraceErrorKind::kCorrupt,
                       "data after the footer: " + path());
    done_ = true;
    return false;
  }
  throw TraceError(TraceErrorKind::kCorrupt,
                   "unknown chunk tag " + std::to_string(tag) + ": " + path());
}

bool TraceReader::next(TraceEvent& out) {
  if (done_) return false;
  if (chunk_left_ == 0 && !load_chunk()) return false;

  if (pos_ >= payload_.size())
    throw TraceError(TraceErrorKind::kCorrupt,
                     "chunk payload shorter than its event count: " + path());
  const u8 kind_byte = payload_[pos_++];
  if (!is_valid_kind(kind_byte))
    throw TraceError(TraceErrorKind::kCorrupt,
                     "unknown event kind " + std::to_string(kind_byte) + ": " +
                         path());
  out.kind = static_cast<EventKind>(kind_byte);
  out.tick = prev_tick_ + get_varint(payload_, pos_);
  prev_tick_ = out.tick;
  if (out.kind != EventKind::kStatsReset) {
    const i64 delta = unzigzag(get_varint(payload_, pos_));
    out.addr = static_cast<Addr>(static_cast<i64>(prev_addr_) + delta);
    prev_addr_ = out.addr;
  } else {
    out.addr = 0;
  }
  out.value = out.kind == EventKind::kStore ? get_varint(payload_, pos_) : 0;
  --chunk_left_;
  if (chunk_left_ == 0 && pos_ != payload_.size())
    throw TraceError(TraceErrorKind::kCorrupt,
                     "chunk has trailing bytes: " + path());
  ++events_;
  return true;
}

}  // namespace aeep::trace
