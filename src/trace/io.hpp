// Low-level checked binary I/O for the trace subsystem.
//
// This file (with io.cpp) is the repo's single home for raw fread/fwrite:
// lint rule 5 bans them everywhere else so that every binary read in the
// tree goes through these helpers and gets short-read / short-write
// detection and typed TraceError failures for free. The varint and CRC32
// routines used by the chunk codec live here too so they can be unit-tested
// in isolation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/error.hpp"

namespace aeep::trace {

// --- Varints ---------------------------------------------------------------

/// Append `v` to `out` as a base-128 varint (LEB128, 1-10 bytes).
void put_varint(std::vector<u8>& out, u64 v);

/// Zigzag-fold a signed delta so small magnitudes encode small.
constexpr u64 zigzag(i64 v) {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}
constexpr i64 unzigzag(u64 v) {
  return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

/// Decode one varint from [pos, end). Advances `pos` past it. Throws
/// TraceError(kCorrupt) on overlong/overflowing encodings and
/// TraceError(kTruncated) when the buffer ends mid-varint.
u64 get_varint(const std::vector<u8>& buf, std::size_t& pos);

// --- CRC32 (IEEE 802.3 polynomial, as used by zip/png) ---------------------

u32 crc32(const u8* data, std::size_t n);
inline u32 crc32(const std::vector<u8>& v) { return crc32(v.data(), v.size()); }

// --- Checked files ---------------------------------------------------------

/// Write-only binary file; every write is verified complete.
class FileWriter {
 public:
  /// `append` opens in "ab" mode — the result store's segment file grows
  /// record by record across process lifetimes; truncating it on open
  /// would throw the cache away.
  explicit FileWriter(const std::string& path, bool append = false);
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void write_bytes(const void* data, std::size_t n);
  void write_u8(u8 v);
  void write_u32(u32 v);  ///< little-endian

  /// Push buffered bytes to the OS so a reader opening (or seeking) the
  /// same path observes everything written so far. Throws on I/O error.
  void flush();

  /// Flush and close; further writes are a logic error. Safe to call twice.
  void close();

  u64 bytes_written() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  u64 bytes_ = 0;
};

/// Read-only binary file with explicit EOF handling: `read_bytes` throws
/// kTruncated on a short read, `at_eof()` probes for a clean end between
/// structures.
class FileReader {
 public:
  explicit FileReader(const std::string& path);
  ~FileReader();

  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;

  void read_bytes(void* out, std::size_t n);
  u8 read_u8();
  u32 read_u32();  ///< little-endian

  /// True iff the next read would hit end-of-file.
  bool at_eof();

  /// Total file size in bytes (cached on first call).
  u64 size();

  /// Current read offset from the start of the file.
  u64 tell();

  /// Reposition to an absolute byte offset (clears a sticky EOF).
  void seek(u64 offset);

  /// CRC64 of the entire file contents, computed once per FileReader and
  /// cached — ReplayDriver, validate and the result store all need the
  /// same digest and must not each re-read the trace to get it. The read
  /// position is preserved across the call.
  u64 whole_file_digest();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::FILE* file_;
  bool size_known_ = false;
  u64 size_ = 0;
  bool digest_known_ = false;
  u64 digest_ = 0;
};

/// Process-wide memoised whole-file CRC64. Trace files are immutable
/// inputs, so one digest per path per process is sound; a path whose
/// contents change mid-run (nothing in the tree does that) would need a
/// fresh FileReader::whole_file_digest() instead.
u64 file_digest(const std::string& path);

}  // namespace aeep::trace
