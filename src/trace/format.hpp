// On-disk format of the L2-visible access trace (the ".aeept" files).
//
// Everything the paper's protection metrics need — dirty ratio, the three
// write-back classes, shared-ECC conflicts — is a function of the access
// stream the core presents to the memory hierarchy: the ordered sequence of
// instruction fetches, loads and accepted stores with their issue cycles.
// A trace records exactly that stream, so a replay can re-drive the real
// L1/write-buffer/L2 models without paying for the out-of-order core.
//
// Layout (all integers little-endian):
//
//   File   := Header Chunk* Footer
//   Header := magic u32 ("AEL2") | version u32 | line_bytes u32 | reserved u32
//   Chunk  := tag u8 (kDataChunkTag)
//             payload_bytes u32 | event_count u32 | crc32(payload) u32
//             payload
//   Footer := tag u8 (kFooterTag)
//             payload_bytes u32 | crc32(payload) u32
//             payload (varints: end_tick, committed, loads, stores, events)
//
// A data-chunk payload is a run of events. Each event is one kind byte
// followed by a varint tick delta and (for accesses) a zigzag-varint
// address delta; stores append the stored 64-bit word as a varint. Delta
// state (previous tick / previous address) resets at every chunk boundary,
// so each chunk decodes independently and a CRC failure pinpoints the
// damaged region. The footer doubles as the end-of-stream marker: a file
// without one is reported as truncated, never silently accepted.
#pragma once

#include "common/types.hpp"

namespace aeep::trace {

inline constexpr u32 kTraceMagic = 0x324C4541;  // "AEL2"
inline constexpr u32 kTraceVersion = 1;

inline constexpr u8 kDataChunkTag = 0x01;
inline constexpr u8 kFooterTag = 0x02;

/// Events per data chunk the writer targets (format allows any count >= 1).
inline constexpr u32 kDefaultChunkEvents = 4096;

/// What one trace record describes.
enum class EventKind : u8 {
  kFetch = 0,      ///< instruction-block fetch (fills through the L2)
  kLoad = 1,       ///< data load presented to the L1D
  kStore = 2,      ///< store accepted by the write buffer (carries the word)
  kStatsReset = 3, ///< warm-up boundary: statistics were zeroed here
};

/// Is `k` a valid on-disk kind byte?
constexpr bool is_valid_kind(u8 k) { return k <= static_cast<u8>(EventKind::kStatsReset); }

/// One decoded trace record.
struct TraceEvent {
  EventKind kind = EventKind::kFetch;
  Cycle tick = 0;  ///< cycle the access was issued (monotonic non-decreasing)
  Addr addr = 0;   ///< accessed address (0 for kStatsReset)
  u64 value = 0;   ///< stored word (kStore only)

  bool operator==(const TraceEvent&) const = default;
};

/// Footer payload: the capture-side run summary. Replays use it to finish
/// the clock at the right cycle and to report the capture's committed-op and
/// load/store counts (needed for per-instruction rates the stream alone
/// cannot reconstruct exactly — squashed wrong-path accesses are in the
/// stream but not in the committed counts).
struct TraceSummary {
  Cycle end_tick = 0;  ///< core cycle the measured run finished at
  u64 committed = 0;   ///< committed micro-ops of the measured phase
  u64 loads = 0;       ///< committed loads of the measured phase
  u64 stores = 0;      ///< committed stores of the measured phase
  u64 events = 0;      ///< total events across all data chunks

  bool operator==(const TraceSummary&) const = default;
};

}  // namespace aeep::trace
