// Split-transaction off-chip memory bus + DRAM latency model.
//
// Table 1 of the paper: main memory is 8 bytes wide with a 100-cycle access
// latency, and §5.2 assumes a split-transaction bus. Demand reads wait for
// queuing + access latency + line transfer; write-backs are posted — they
// occupy bus bandwidth (delaying later transactions) but nobody waits on
// them. This is exactly the coupling through which the paper's extra
// cleaning/ECC-eviction write-backs can cost IPC.
#pragma once

#include "common/stats.hpp"
#include "common/types.hpp"

namespace aeep::mem {

struct BusConfig {
  unsigned width_bytes = 8;    ///< bytes transferred per bus cycle
  Cycle memory_latency = 100;  ///< DRAM access latency in CPU cycles
};

struct BusStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 bytes_read = 0;
  u64 bytes_written = 0;
  u64 busy_cycles = 0;        ///< cycles the data bus was occupied
  u64 queue_delay_cycles = 0; ///< total cycles transactions waited for the bus

  bool operator==(const BusStats&) const = default;
};

class SplitTransactionBus {
 public:
  explicit SplitTransactionBus(const BusConfig& config = {});

  /// Demand line read. Returns the cycle at which the full line is available
  /// to the requester.
  Cycle read(Cycle now, Addr addr, unsigned bytes);

  /// Posted write-back. Occupies bandwidth; returns the cycle the transfer
  /// finishes (informational — the cache does not stall on it).
  Cycle write(Cycle now, Addr addr, unsigned bytes);

  /// First cycle >= now at which a new transaction could start.
  Cycle next_free(Cycle now) const;

  const BusConfig& config() const { return config_; }
  const BusStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  Cycle occupy(Cycle now, unsigned bytes);

  BusConfig config_;
  BusStats stats_;
  Cycle next_free_ = 0;
};

}  // namespace aeep::mem
