#include "mem/memory_store.hpp"

#include <cassert>

namespace aeep::mem {

u64 MemoryStore::pristine_word(Addr addr) {
  // splitmix64 of the word address: cheap, deterministic, well mixed.
  u64 z = (addr >> 3) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

u64 MemoryStore::read_word(Addr addr) const {
  assert(addr % 8 == 0);
  const auto it = words_.find(addr);
  return it == words_.end() ? pristine_word(addr) : it->second;
}

void MemoryStore::write_word(Addr addr, u64 value) {
  assert(addr % 8 == 0);
  words_[addr] = value;
}

void MemoryStore::read_line(Addr base, std::span<u64> out) const {
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = read_word(base + i * 8);
}

void MemoryStore::write_line(Addr base, std::span<const u64> in) {
  for (std::size_t i = 0; i < in.size(); ++i)
    write_word(base + i * 8, in[i]);
}

}  // namespace aeep::mem
