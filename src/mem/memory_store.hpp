// Functional backing store for main memory.
//
// Timing lives in SplitTransactionBus; this class only holds contents. The
// store is sparse: untouched words read as a deterministic hash of their
// address ("pristine" content), so a clean cache line can always be
// re-fetched and compared bit-for-bit — the property the paper's parity
// protection of clean lines relies on.
#pragma once

#include <span>
#include <unordered_map>

#include "common/types.hpp"

namespace aeep::mem {

class MemoryStore {
 public:
  /// Deterministic pristine content of an aligned 8-byte word.
  static u64 pristine_word(Addr addr);

  /// Read an aligned 8-byte word.
  u64 read_word(Addr addr) const;

  /// Write an aligned 8-byte word.
  void write_word(Addr addr, u64 value);

  /// Read `out.size()` consecutive words starting at an aligned base.
  void read_line(Addr base, std::span<u64> out) const;

  /// Write consecutive words starting at an aligned base.
  void write_line(Addr base, std::span<const u64> in);

  /// Number of words ever written (sparse map size).
  std::size_t dirty_words() const { return words_.size(); }

 private:
  std::unordered_map<Addr, u64> words_;
};

}  // namespace aeep::mem
