#include "mem/bus.hpp"

#include <algorithm>
#include <cassert>

namespace aeep::mem {

SplitTransactionBus::SplitTransactionBus(const BusConfig& config)
    : config_(config) {
  assert(config_.width_bytes > 0);
}

Cycle SplitTransactionBus::occupy(Cycle now, unsigned bytes) {
  const Cycle beats =
      (bytes + config_.width_bytes - 1) / config_.width_bytes;
  const Cycle start = std::max(now, next_free_);
  stats_.queue_delay_cycles += start - now;
  stats_.busy_cycles += beats;
  next_free_ = start + beats;
  return start;
}

Cycle SplitTransactionBus::read(Cycle now, Addr /*addr*/, unsigned bytes) {
  // Request phase occupies the bus for the transfer beats after the DRAM
  // access completes; with a split-transaction bus the address tenure is
  // folded into the access latency.
  const Cycle start = occupy(now, bytes);
  ++stats_.reads;
  stats_.bytes_read += bytes;
  const Cycle beats =
      (bytes + config_.width_bytes - 1) / config_.width_bytes;
  return start + config_.memory_latency + beats;
}

Cycle SplitTransactionBus::write(Cycle now, Addr /*addr*/, unsigned bytes) {
  const Cycle start = occupy(now, bytes);
  ++stats_.writes;
  stats_.bytes_written += bytes;
  const Cycle beats =
      (bytes + config_.width_bytes - 1) / config_.width_bytes;
  return start + beats;
}

Cycle SplitTransactionBus::next_free(Cycle now) const {
  return std::max(now, next_free_);
}

}  // namespace aeep::mem
