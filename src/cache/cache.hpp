// Set-associative cache state model.
//
// This class owns tags, status bits (valid / dirty / written), replacement
// state and line payloads. It deliberately contains no timing and no
// protection logic: timing lives in the controllers (src/cpu, src/sim) and
// protection in the policies (src/protect), which manipulate status bits
// through this interface. The `written` bit is the paper's §3.2 addition:
// cleared on fill, set when a line is modified more than once.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cache/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace aeep::cache {

enum class ReplacementPolicy { kLru, kFifo, kRandom };

struct CacheLineMeta {
  u64 tag = 0;
  bool valid = false;
  bool dirty = false;
  bool written = false;  ///< set on the *second* write since fill (§3.2)
  Cycle stamp = 0;       ///< last-use (LRU) or fill (FIFO) timestamp
};

struct ProbeResult {
  bool hit = false;
  u64 set = 0;
  unsigned way = 0;
};

/// Description of a line about to be displaced by a fill.
struct Victim {
  bool valid = false;   ///< false: the chosen way was empty
  Addr addr = kNoAddr;  ///< base address of the displaced line
  bool dirty = false;
  bool written = false;
  unsigned way = 0;
};

struct CacheStats {
  u64 reads = 0;
  u64 read_hits = 0;
  u64 writes = 0;
  u64 write_hits = 0;
  u64 fills = 0;
  u64 evictions = 0;
  u64 dirty_evictions = 0;

  u64 accesses() const { return reads + writes; }
  u64 misses() const { return accesses() - read_hits - write_hits; }

  bool operator==(const CacheStats&) const = default;
};

class Cache {
 public:
  explicit Cache(const CacheGeometry& geometry,
                 ReplacementPolicy replacement = ReplacementPolicy::kLru,
                 u64 seed = 1);

  const CacheGeometry& geometry() const { return geom_; }
  ReplacementPolicy replacement() const { return repl_; }

  /// Tag lookup; no state change.
  ProbeResult probe(Addr addr) const;

  /// Refresh replacement state after a hit.
  void touch(u64 set, unsigned way, Cycle now);

  /// Choose the way a fill of this set would displace (invalid way first,
  /// else per replacement policy) and describe the line currently there.
  Victim pick_victim(u64 set);

  /// Install a clean line at (set, way). Caller must have disposed of the
  /// previous occupant (see pick_victim). `payload` may be empty to leave
  /// the data words zeroed. Resets dirty and written bits per §3.2.
  void install(u64 set, unsigned way, Addr addr, Cycle now,
               std::span<const u64> payload = {});

  /// Invalidate a line (drops dirty state; caller handles any write-back).
  void invalidate(u64 set, unsigned way);

  // --- Graceful degradation: way retirement -------------------------------
  /// Fuse off (set, way): the slot never hits and pick_victim never chooses
  /// it again, shrinking the set's effective associativity. The caller must
  /// have disposed of any resident line first (invalidate + write-back).
  /// At least one way per set must stay active (enforced by assert).
  void retire_way(u64 set, unsigned way);
  bool is_retired(u64 set, unsigned way) const {
    return retired_[line_index(set, way)] != 0;
  }
  /// Non-retired ways remaining in one set.
  unsigned active_ways(u64 set) const;
  /// Total retired (set, way) slots across the cache.
  u64 retired_ways() const { return retired_count_; }

  // --- Status-bit management (maintains the dirty-line count). ---
  void mark_dirty(u64 set, unsigned way);
  void clear_dirty(u64 set, unsigned way);
  void set_written(u64 set, unsigned way, bool value);

  const CacheLineMeta& meta(u64 set, unsigned way) const;
  Addr line_addr(u64 set, unsigned way) const;

  /// Current number of dirty lines — the quantity Figures 1/3/4/7 track.
  u64 dirty_count() const { return dirty_count_; }

  /// First dirty way in a set, if any.
  std::optional<unsigned> find_dirty_way(u64 set) const;
  unsigned count_dirty_in_set(u64 set) const;

  std::span<u64> data(u64 set, unsigned way);
  std::span<const u64> data(u64 set, unsigned way) const;

  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  /// Invalidate everything and zero statistics.
  void reset();

 private:
  std::size_t line_index(u64 set, unsigned way) const {
    return static_cast<std::size_t>(set) * geom_.ways + way;
  }

  CacheGeometry geom_;
  ReplacementPolicy repl_;
  std::vector<CacheLineMeta> lines_;
  std::vector<u64> payload_;
  std::vector<u8> retired_;  ///< per-slot fuse bits (way retirement)
  u64 retired_count_ = 0;
  u64 dirty_count_ = 0;
  CacheStats stats_;
  Xorshift64Star rng_;
};

}  // namespace aeep::cache
