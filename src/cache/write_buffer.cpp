#include "cache/write_buffer.hpp"

#include <cassert>

#include "common/bitops.hpp"

namespace aeep::cache {

WriteBuffer::WriteBuffer(unsigned entries, unsigned line_bytes)
    : capacity_(entries), line_bytes_(line_bytes) {
  assert(entries > 0);
  assert(is_pow2(line_bytes) && line_bytes >= 8);
}

WriteBuffer::PushResult WriteBuffer::push(Addr addr, u64 value) {
  const Addr line = line_of(addr);
  const unsigned word = static_cast<unsigned>((addr - line) / 8);
  // Fully associative search; 16 entries, so a linear scan matches the
  // hardware CAM and is cheap.
  for (auto& e : fifo_) {
    if (e.line == line) {
      e.word_mask |= u64{1} << word;
      e.words[word] = value;
      ++stats_.stores;
      ++stats_.coalesced;
      return PushResult::kCoalesced;
    }
  }
  if (full()) {
    ++stats_.full_events;
    return PushResult::kFull;
  }
  WriteBufferEntry e;
  e.line = line;
  e.word_mask = u64{1} << word;
  if (!free_words_.empty()) {
    e.words = std::move(free_words_.back());
    free_words_.pop_back();
  }
  e.words.assign(line_bytes_ / 8, 0);
  e.words[word] = value;
  fifo_.push_back(std::move(e));
  ++stats_.stores;
  return PushResult::kNew;
}

const WriteBufferEntry* WriteBuffer::front() const {
  return fifo_.empty() ? nullptr : &fifo_.front();
}

WriteBufferEntry WriteBuffer::pop() {
  assert(!fifo_.empty());
  WriteBufferEntry e = std::move(fifo_.front());
  fifo_.pop_front();
  ++stats_.drains;
  return e;
}

void WriteBuffer::recycle(WriteBufferEntry&& e) {
  // Keep at most one spare vector per CAM slot, and never more than
  // kFreeListBound overall; anything beyond that could only accumulate if
  // callers recycle entries they never popped.
  if (free_words_.size() < free_list_bound() &&
      e.words.capacity() >= line_bytes_ / 8) {
    free_words_.push_back(std::move(e.words));
    if (free_words_.size() > stats_.free_list_peak)
      stats_.free_list_peak = free_words_.size();
  }
}

void WriteBuffer::reset() {
  fifo_.clear();
  stats_ = {};
}

}  // namespace aeep::cache
