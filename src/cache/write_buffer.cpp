#include "cache/write_buffer.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"

namespace aeep::cache {

WriteBuffer::WriteBuffer(unsigned entries, unsigned line_bytes)
    : capacity_(entries),
      line_bytes_(line_bytes),
      lines_(entries, 0),
      masks_(entries, 0),
      stamps_(entries, 0),
      words_(static_cast<std::size_t>(entries) * (line_bytes / 8), 0) {
  assert(entries > 0);
  assert(is_pow2(line_bytes) && line_bytes >= 8);
}

WriteBuffer::PushResult WriteBuffer::push(Addr addr, u64 value, Cycle now) {
  const Addr line = line_of(addr);
  const unsigned word = static_cast<unsigned>((addr - line) / 8);
  // Fully associative search, matching the hardware CAM: a linear scan of
  // the dense tag column (the masks/words columns are only touched on hit).
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t s = slot_of(i);
    if (lines_[s] == line) {
      masks_[s] |= u64{1} << word;
      words_[s * words_per_line() + word] = value;
      ++stats_.stores;
      ++stats_.coalesced;
      return PushResult::kCoalesced;
    }
  }
  if (full()) {
    ++stats_.full_events;
    return PushResult::kFull;
  }
  const std::size_t s = slot_of(count_);
  lines_[s] = line;
  masks_[s] = u64{1} << word;
  stamps_[s] = now;
  u64* w = words_.data() + s * words_per_line();
  std::fill_n(w, words_per_line(), u64{0});
  w[word] = value;
  ++count_;
  ++stats_.stores;
  return PushResult::kNew;
}

WriteBufferView WriteBuffer::view(std::size_t i) const {
  assert(i < count_);
  const std::size_t s = slot_of(i);
  WriteBufferView v;
  v.line = lines_[s];
  v.word_mask = masks_[s];
  v.words = {words_.data() + s * words_per_line(), words_per_line()};
  v.stamp = stamps_[s];
  return v;
}

Cycle WriteBuffer::front_stamp() const {
  assert(count_ > 0);
  return stamps_[head_];
}

WriteBufferEntry WriteBuffer::pop() {
  assert(count_ > 0);
  const std::size_t s = head_;
  WriteBufferEntry e;
  e.line = lines_[s];
  e.word_mask = masks_[s];
  if (!free_words_.empty()) {
    e.words = std::move(free_words_.back());
    free_words_.pop_back();
  }
  const u64* w = words_.data() + s * words_per_line();
  e.words.assign(w, w + words_per_line());
  head_ = slot_of(1);
  --count_;
  ++stats_.drains;
  return e;
}

void WriteBuffer::recycle(WriteBufferEntry&& e) {
  // Keep at most one spare vector per CAM slot, and never more than
  // kFreeListBound overall; anything beyond that could only accumulate if
  // callers recycle entries they never popped.
  if (free_words_.size() < free_list_bound() &&
      e.words.capacity() >= words_per_line()) {
    free_words_.push_back(std::move(e.words));
    if (free_words_.size() > stats_.free_list_peak)
      stats_.free_list_peak = free_words_.size();
  }
}

void WriteBuffer::reset() {
  head_ = 0;
  count_ = 0;
  stats_ = {};
}

}  // namespace aeep::cache
