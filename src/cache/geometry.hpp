// Cache geometry: size / associativity / line size and the address slicing
// they induce. All three are required to be powers of two.
#pragma once

#include <stdexcept>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace aeep::cache {

struct CacheGeometry {
  u64 size_bytes = 1 * MiB;
  unsigned ways = 4;
  unsigned line_bytes = 64;

  constexpr u64 num_sets() const { return size_bytes / (static_cast<u64>(ways) * line_bytes); }
  constexpr u64 total_lines() const { return num_sets() * ways; }
  constexpr unsigned words_per_line() const { return line_bytes / 8; }

  constexpr unsigned offset_bits() const { return log2_exact(line_bytes); }
  constexpr unsigned index_bits() const { return log2_exact(num_sets()); }

  constexpr Addr line_base(Addr a) const { return a & ~static_cast<Addr>(line_bytes - 1); }
  constexpr u64 set_index(Addr a) const { return (a >> offset_bits()) & (num_sets() - 1); }
  constexpr u64 tag_of(Addr a) const { return a >> (offset_bits() + index_bits()); }
  constexpr Addr addr_of(u64 tag, u64 set) const {
    return (tag << (offset_bits() + index_bits())) | (set << offset_bits());
  }

  /// Throws if the geometry is not realisable.
  void validate() const {
    if (!is_pow2(size_bytes) || !is_pow2(ways) || !is_pow2(line_bytes))
      throw std::invalid_argument("cache geometry fields must be powers of two");
    if (line_bytes < 8) throw std::invalid_argument("line must be >= 8 bytes");
    if (static_cast<u64>(ways) * line_bytes > size_bytes)
      throw std::invalid_argument("cache smaller than one set");
  }
};

/// Table-1 geometries from the paper.
inline constexpr CacheGeometry kL1IGeometry{32 * KiB, 4, 32};
inline constexpr CacheGeometry kL1DGeometry{32 * KiB, 4, 32};
inline constexpr CacheGeometry kL2Geometry{1 * MiB, 4, 64};

}  // namespace aeep::cache
