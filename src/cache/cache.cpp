#include "cache/cache.hpp"

#include <algorithm>
#include <cassert>

namespace aeep::cache {

Cache::Cache(const CacheGeometry& geometry, ReplacementPolicy replacement,
             u64 seed)
    : geom_(geometry), repl_(replacement), rng_(seed) {
  geom_.validate();
  lines_.resize(geom_.total_lines());
  payload_.resize(geom_.total_lines() * geom_.words_per_line(), 0);
  retired_.assign(geom_.total_lines(), 0);
}

ProbeResult Cache::probe(Addr addr) const {
  const u64 set = geom_.set_index(addr);
  const u64 tag = geom_.tag_of(addr);
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const CacheLineMeta& m = lines_[line_index(set, w)];
    if (m.valid && m.tag == tag) return {true, set, w};
  }
  return {false, set, 0};
}

void Cache::touch(u64 set, unsigned way, Cycle now) {
  if (repl_ == ReplacementPolicy::kLru)
    lines_[line_index(set, way)].stamp = now;
}

Victim Cache::pick_victim(u64 set) {
  // Prefer an invalid (and not retired) way.
  for (unsigned w = 0; w < geom_.ways; ++w) {
    if (is_retired(set, w)) continue;
    if (!lines_[line_index(set, w)].valid) {
      Victim v;
      v.valid = false;
      v.way = w;
      return v;
    }
  }
  unsigned choice = geom_.ways;  // sentinel: no active way found yet
  switch (repl_) {
    case ReplacementPolicy::kLru:
    case ReplacementPolicy::kFifo: {
      Cycle best = ~Cycle{0};
      for (unsigned w = 0; w < geom_.ways; ++w) {
        if (is_retired(set, w)) continue;
        const Cycle s = lines_[line_index(set, w)].stamp;
        if (choice == geom_.ways || s < best) {
          best = s;
          choice = w;
        }
      }
      break;
    }
    case ReplacementPolicy::kRandom: {
      const unsigned n = active_ways(set);
      assert(n > 0);
      unsigned pick = static_cast<unsigned>(rng_.next_below(n));
      for (unsigned w = 0; w < geom_.ways; ++w) {
        if (is_retired(set, w)) continue;
        if (pick-- == 0) {
          choice = w;
          break;
        }
      }
      break;
    }
  }
  assert(choice < geom_.ways && "a set must keep at least one active way");
  const CacheLineMeta& m = lines_[line_index(set, choice)];
  Victim v;
  v.valid = true;
  v.addr = geom_.addr_of(m.tag, set);
  v.dirty = m.dirty;
  v.written = m.written;
  v.way = choice;
  return v;
}

void Cache::install(u64 set, unsigned way, Addr addr, Cycle now,
                    std::span<const u64> payload) {
  assert(way < geom_.ways);
  assert(!is_retired(set, way) && "cannot install into a retired way");
  assert(geom_.set_index(addr) == set);
  CacheLineMeta& m = lines_[line_index(set, way)];
  if (m.valid) {
    ++stats_.evictions;
    if (m.dirty) {
      ++stats_.dirty_evictions;
      --dirty_count_;
    }
  }
  m.tag = geom_.tag_of(addr);
  m.valid = true;
  m.dirty = false;
  m.written = false;
  m.stamp = now;
  ++stats_.fills;

  auto dst = data(set, way);
  if (!payload.empty()) {
    assert(payload.size() == dst.size());
    std::copy(payload.begin(), payload.end(), dst.begin());
  }
}

void Cache::invalidate(u64 set, unsigned way) {
  CacheLineMeta& m = lines_[line_index(set, way)];
  if (m.valid && m.dirty) --dirty_count_;
  m.valid = false;
  m.dirty = false;
  m.written = false;
}

void Cache::retire_way(u64 set, unsigned way) {
  assert(way < geom_.ways);
  assert(!lines_[line_index(set, way)].valid &&
         "dispose of the resident line before retiring its way");
  u8& fuse = retired_[line_index(set, way)];
  if (fuse) return;
  assert(active_ways(set) > 1 && "a set must keep at least one active way");
  fuse = 1;
  ++retired_count_;
}

unsigned Cache::active_ways(u64 set) const {
  unsigned n = 0;
  for (unsigned w = 0; w < geom_.ways; ++w)
    if (!is_retired(set, w)) ++n;
  return n;
}

void Cache::mark_dirty(u64 set, unsigned way) {
  CacheLineMeta& m = lines_[line_index(set, way)];
  assert(m.valid);
  if (!m.dirty) {
    m.dirty = true;
    ++dirty_count_;
  }
}

void Cache::clear_dirty(u64 set, unsigned way) {
  CacheLineMeta& m = lines_[line_index(set, way)];
  if (m.valid && m.dirty) {
    m.dirty = false;
    --dirty_count_;
  }
}

void Cache::set_written(u64 set, unsigned way, bool value) {
  CacheLineMeta& m = lines_[line_index(set, way)];
  assert(m.valid);
  m.written = value;
}

const CacheLineMeta& Cache::meta(u64 set, unsigned way) const {
  return lines_[line_index(set, way)];
}

Addr Cache::line_addr(u64 set, unsigned way) const {
  const CacheLineMeta& m = lines_[line_index(set, way)];
  assert(m.valid);
  return geom_.addr_of(m.tag, set);
}

std::optional<unsigned> Cache::find_dirty_way(u64 set) const {
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const CacheLineMeta& m = lines_[line_index(set, w)];
    if (m.valid && m.dirty) return w;
  }
  return std::nullopt;
}

unsigned Cache::count_dirty_in_set(u64 set) const {
  unsigned n = 0;
  for (unsigned w = 0; w < geom_.ways; ++w) {
    const CacheLineMeta& m = lines_[line_index(set, w)];
    if (m.valid && m.dirty) ++n;
  }
  return n;
}

std::span<u64> Cache::data(u64 set, unsigned way) {
  const std::size_t base = line_index(set, way) * geom_.words_per_line();
  return {payload_.data() + base, geom_.words_per_line()};
}

std::span<const u64> Cache::data(u64 set, unsigned way) const {
  const std::size_t base = line_index(set, way) * geom_.words_per_line();
  return {payload_.data() + base, geom_.words_per_line()};
}

void Cache::reset() {
  for (auto& m : lines_) m = CacheLineMeta{};
  std::fill(payload_.begin(), payload_.end(), 0);
  std::fill(retired_.begin(), retired_.end(), u8{0});
  retired_count_ = 0;
  dirty_count_ = 0;
  stats_ = {};
}

}  // namespace aeep::cache
