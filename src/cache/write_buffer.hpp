// Fully-associative coalescing write buffer between the write-through L1D
// and the L2 (16 entries in the paper's setup, per Skadron & Clark).
//
// Stores enqueue at 8-byte-word granularity and are grouped into entries at
// L2-line granularity; a store to a line already buffered coalesces into
// the existing entry (no extra L2 traffic). Each entry carries the written
// words and a valid mask so the drain applies exactly the stored bytes.
// Timing (when entries drain, full-buffer stalls) is owned by the memory
// hierarchy controller; this class is the logical CAM + FIFO.
//
// Storage is struct-of-arrays: line tags, word masks, and enqueue stamps
// live in dense parallel arrays over a fixed ring of `capacity` slots, and
// the line payloads sit in one flat `capacity * words_per_line` block. The
// CAM lookup in push() therefore walks a contiguous 8-byte-stride tag array
// instead of pointer-chasing a deque of entry structs, and the hierarchy's
// age check reads the stamp column without a parallel side queue.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace aeep::cache {

/// Materialised entry, handed out by pop() for the drain path. The words
/// vector is recyclable via recycle() so steady-state drains stay
/// allocation-free.
struct WriteBufferEntry {
  Addr line = 0;            ///< line base address (L2 line granularity)
  u64 word_mask = 0;        ///< bit w set: words[w] holds store data
  std::vector<u64> words;   ///< line_bytes/8 slots
};

/// Zero-copy read-only view of a buffered entry (valid until the next
/// mutating call on the buffer).
struct WriteBufferView {
  Addr line = 0;
  u64 word_mask = 0;
  std::span<const u64> words;
  Cycle stamp = 0;  ///< cycle the entry was created (for age-based drains)
};

struct WriteBufferStats {
  u64 stores = 0;      ///< stores accepted (new entry or coalesced)
  u64 coalesced = 0;   ///< stores merged into an existing entry
  u64 drains = 0;      ///< entries handed to L2
  u64 full_events = 0; ///< stores that found the buffer full (before retry)
  u64 free_list_peak = 0;  ///< high-water mark of recycled line storage

  bool operator==(const WriteBufferStats&) const = default;
};

class WriteBuffer {
 public:
  /// Hard ceiling on recycled line-storage vectors, independent of the
  /// configured entry count: a misconfigured 4096-entry buffer must not
  /// turn the recycling optimisation into an unbounded memory sink.
  static constexpr std::size_t kFreeListBound = 64;

  explicit WriteBuffer(unsigned entries = 16, unsigned line_bytes = 64);

  enum class PushResult { kNew, kCoalesced, kFull };

  /// Present a store of `value` to (8-byte-aligned) `addr`. `now` stamps a
  /// freshly created entry (coalescing keeps the original stamp, matching
  /// the drain-on-age policy which watches the oldest store of the line).
  PushResult push(Addr addr, u64 value, Cycle now = 0);

  /// Oldest entry, without removing it. Buffer must be non-empty.
  WriteBufferView front() const { return view(0); }

  /// The i-th oldest entry (i < size()); used by the invariant auditor to
  /// check CAM consistency.
  WriteBufferView view(std::size_t i) const;

  /// Enqueue cycle of the oldest entry. Buffer must be non-empty.
  Cycle front_stamp() const;

  /// Remove the oldest entry after draining it to L2. The returned entry's
  /// words vector comes from the recycle pool when one is available.
  WriteBufferEntry pop();

  /// Return a drained entry's storage for reuse. Steady state then runs
  /// with zero heap allocations: pop() takes a recycled words vector when
  /// one is available instead of allocating a fresh one.
  void recycle(WriteBufferEntry&& e);

  bool full() const { return count_ >= capacity_; }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  unsigned capacity() const { return capacity_; }
  unsigned line_bytes() const { return line_bytes_; }

  /// Recycled storage currently held; never exceeds
  /// min(capacity(), kFreeListBound).
  std::size_t free_list_size() const { return free_words_.size(); }
  /// The bound recycle() enforces for this buffer.
  std::size_t free_list_bound() const {
    return capacity_ < kFreeListBound ? capacity_ : kFreeListBound;
  }

  const WriteBufferStats& stats() const { return stats_; }
  /// Drop all entries and zero statistics.
  void reset();
  /// Zero statistics only (entries stay).
  void reset_stats() { stats_ = {}; }

 private:
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(line_bytes_ - 1); }
  unsigned words_per_line() const { return line_bytes_ / 8; }
  /// Ring slot of the i-th oldest entry.
  std::size_t slot_of(std::size_t i) const {
    const std::size_t s = head_ + i;
    return s >= capacity_ ? s - capacity_ : s;
  }

  unsigned capacity_;
  unsigned line_bytes_;
  std::size_t head_ = 0;   ///< ring slot of the oldest entry
  std::size_t count_ = 0;  ///< live entries
  // Struct-of-arrays columns, indexed by ring slot.
  std::vector<Addr> lines_;    ///< line tags (the CAM)
  std::vector<u64> masks_;     ///< per-entry valid-word masks
  std::vector<Cycle> stamps_;  ///< per-entry enqueue cycles
  std::vector<u64> words_;     ///< flat payload, capacity * words_per_line
  std::vector<std::vector<u64>> free_words_;  ///< recycled pop() storage
  WriteBufferStats stats_;
};

}  // namespace aeep::cache
