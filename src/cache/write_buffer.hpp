// Fully-associative coalescing write buffer between the write-through L1D
// and the L2 (16 entries in the paper's setup, per Skadron & Clark).
//
// Stores enqueue at 8-byte-word granularity and are grouped into entries at
// L2-line granularity; a store to a line already buffered coalesces into
// the existing entry (no extra L2 traffic). Each entry carries the written
// words and a valid mask so the drain applies exactly the stored bytes.
// Timing (when entries drain, full-buffer stalls) is owned by the memory
// hierarchy controller; this class is the logical CAM + FIFO.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace aeep::cache {

struct WriteBufferEntry {
  Addr line = 0;            ///< line base address (L2 line granularity)
  u64 word_mask = 0;        ///< bit w set: words[w] holds store data
  std::vector<u64> words;   ///< line_bytes/8 slots
};

struct WriteBufferStats {
  u64 stores = 0;      ///< stores accepted (new entry or coalesced)
  u64 coalesced = 0;   ///< stores merged into an existing entry
  u64 drains = 0;      ///< entries handed to L2
  u64 full_events = 0; ///< stores that found the buffer full (before retry)
  u64 free_list_peak = 0;  ///< high-water mark of recycled line storage

  bool operator==(const WriteBufferStats&) const = default;
};

class WriteBuffer {
 public:
  /// Hard ceiling on recycled line-storage vectors, independent of the
  /// configured entry count: a misconfigured 4096-entry buffer must not
  /// turn the recycling optimisation into an unbounded memory sink.
  static constexpr std::size_t kFreeListBound = 64;

  explicit WriteBuffer(unsigned entries = 16, unsigned line_bytes = 64);

  enum class PushResult { kNew, kCoalesced, kFull };

  /// Present a store of `value` to (8-byte-aligned) `addr`.
  PushResult push(Addr addr, u64 value);

  /// Oldest entry (does not remove).
  const WriteBufferEntry* front() const;

  /// All buffered entries, oldest first (read-only; used by the invariant
  /// auditor to check CAM consistency).
  const std::deque<WriteBufferEntry>& entries() const { return fifo_; }

  /// Remove the oldest entry after draining it to L2.
  WriteBufferEntry pop();

  /// Return a drained entry's storage for reuse. Steady state then runs
  /// with zero heap allocations: push() takes a recycled words vector when
  /// one is available instead of allocating a fresh one.
  void recycle(WriteBufferEntry&& e);

  bool full() const { return fifo_.size() >= capacity_; }
  bool empty() const { return fifo_.empty(); }
  std::size_t size() const { return fifo_.size(); }
  unsigned capacity() const { return capacity_; }
  unsigned line_bytes() const { return line_bytes_; }

  /// Recycled storage currently held; never exceeds
  /// min(capacity(), kFreeListBound).
  std::size_t free_list_size() const { return free_words_.size(); }
  /// The bound recycle() enforces for this buffer.
  std::size_t free_list_bound() const {
    return capacity_ < kFreeListBound ? capacity_ : kFreeListBound;
  }

  const WriteBufferStats& stats() const { return stats_; }
  /// Drop all entries and zero statistics.
  void reset();
  /// Zero statistics only (entries stay).
  void reset_stats() { stats_ = {}; }

 private:
  Addr line_of(Addr a) const { return a & ~static_cast<Addr>(line_bytes_ - 1); }

  unsigned capacity_;
  unsigned line_bytes_;
  std::deque<WriteBufferEntry> fifo_;  ///< oldest first
  std::vector<std::vector<u64>> free_words_;  ///< recycled entry storage
  WriteBufferStats stats_;
};

}  // namespace aeep::cache
