#include "ecc/wide_secded.hpp"

#include <cassert>
#include <stdexcept>

#include "common/bitops.hpp"

namespace aeep::ecc {

unsigned WideSecdedCodec::check_bits_for(unsigned data_bits) {
  // Smallest r with 2^r >= data_bits + r + 1, plus the overall parity bit.
  unsigned r = 1;
  while ((u64{1} << r) < data_bits + r + 1) ++r;
  return r + 1;
}

WideSecdedCodec::WideSecdedCodec(unsigned data_bits)
    : data_bits_(data_bits), hamming_bits_(check_bits_for(data_bits) - 1) {
  if (data_bits < 8 || data_bits > 4096)
    throw std::invalid_argument("WideSecdedCodec: data_bits out of range");
  max_pos_ = data_bits_ + hamming_bits_;  // positions 1..max_pos_
  pos_of_data_.resize(data_bits_);
  data_of_pos_.assign(max_pos_ + 1, -1);
  unsigned d = 0;
  for (unsigned p = 1; p <= max_pos_; ++p) {
    if (is_pow2(p)) continue;  // check position
    pos_of_data_[d] = p;
    data_of_pos_[p] = static_cast<int>(d);
    ++d;
  }
  assert(d == data_bits_);
}

u64 WideSecdedCodec::encode(std::span<const u64> data) const {
  u64 check = 0;
  for (unsigned i = 0; i < hamming_bits_; ++i) {
    unsigned parity = 0;
    for (unsigned d = 0; d < data_bits_; ++d) {
      if ((pos_of_data_[d] >> i) & 1u) parity ^= data_bit(data, d);
    }
    check |= static_cast<u64>(parity) << i;
  }
  unsigned overall = parity64(check);
  for (unsigned d = 0; d < data_bits_; ++d) overall ^= data_bit(data, d);
  check |= static_cast<u64>(overall) << hamming_bits_;
  return check;
}

u64 WideSecdedCodec::hamming_syndrome(std::span<const u64> data,
                                      u64 check) const {
  u64 syndrome = 0;
  for (unsigned i = 0; i < hamming_bits_; ++i) {
    unsigned parity = bit_of(check, i);
    for (unsigned d = 0; d < data_bits_; ++d) {
      if ((pos_of_data_[d] >> i) & 1u) parity ^= data_bit(data, d);
    }
    syndrome |= static_cast<u64>(parity) << i;
  }
  return syndrome;
}

unsigned WideSecdedCodec::overall_parity(std::span<const u64> data,
                                         u64 check) const {
  unsigned p = parity64(check & ((u64{1} << (hamming_bits_ + 1)) - 1));
  for (unsigned d = 0; d < data_bits_; ++d) p ^= data_bit(data, d);
  return p;
}

WideDecodeResult WideSecdedCodec::decode(std::span<u64> data,
                                         u64& check) const {
  WideDecodeResult r;
  const u64 syndrome = hamming_syndrome(data, check);
  const unsigned mismatch = overall_parity(data, check);

  if (syndrome == 0 && mismatch == 0) return r;
  if (syndrome == 0 && mismatch == 1) {
    r.status = DecodeStatus::kCorrectedSingle;
    check = flip_bit(check, hamming_bits_);
    r.corrected_bit = data_bits_ + hamming_bits_;
    return r;
  }
  if (mismatch == 0) {
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  if (syndrome > max_pos_ || (!is_pow2(syndrome) &&
                              data_of_pos_[static_cast<unsigned>(syndrome)] < 0)) {
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  r.status = DecodeStatus::kCorrectedSingle;
  if (is_pow2(syndrome)) {
    const unsigned ci = log2_exact(syndrome);
    check = flip_bit(check, ci);
    r.corrected_bit = data_bits_ + ci;
  } else {
    const unsigned d =
        static_cast<unsigned>(data_of_pos_[static_cast<unsigned>(syndrome)]);
    flip_data_bit(data, d);
    r.corrected_bit = d;
  }
  return r;
}

}  // namespace aeep::ecc
