// Width-parameterised SECDED: extended Hamming over an arbitrary data width
// (8..4096 bits). Used to study the protection-granularity trade-off the
// paper's 8b-per-64b assumption sits in: wider granules need fewer check
// bits per data bit (512b data needs only 11+1 check bits, 2.3% overhead,
// vs 12.5% at 64b) but correct only one error per granule.
//
// This codec is for analysis benches and tests; the fixed SecdedCodec
// remains the fast path for the 64-bit word granularity the paper assumes.
#pragma once

#include <span>
#include <vector>

#include "ecc/codec.hpp"

namespace aeep::ecc {

struct WideDecodeResult {
  DecodeStatus status = DecodeStatus::kOk;
  /// For kCorrectedSingle: index of the repaired bit — data bits are
  /// 0..data_bits-1, check bits data_bits..data_bits+check_bits-1.
  unsigned corrected_bit = 0;
};

class WideSecdedCodec {
 public:
  /// `data_bits` in [8, 4096].
  explicit WideSecdedCodec(unsigned data_bits);

  unsigned data_bits() const { return data_bits_; }
  /// Hamming check bits + 1 overall parity bit.
  unsigned check_bits() const { return hamming_bits_ + 1; }
  /// Storage overhead as a fraction of the data bits.
  double overhead() const {
    return static_cast<double>(check_bits()) / static_cast<double>(data_bits_);
  }

  /// Data is packed LSB-first across words; bits beyond data_bits() are
  /// ignored. Returns the packed check bits (fits in a u64; <= 14 bits).
  u64 encode(std::span<const u64> data) const;

  /// Validates and repairs a single-bit error in place (data or check).
  WideDecodeResult decode(std::span<u64> data, u64& check) const;

  /// Check bits needed for a given width (static helper for area tables).
  static unsigned check_bits_for(unsigned data_bits);

 private:
  unsigned data_bit(std::span<const u64> data, unsigned i) const {
    return static_cast<unsigned>((data[i / 64] >> (i % 64)) & 1u);
  }
  static void flip_data_bit(std::span<u64> data, unsigned i) {
    data[i / 64] ^= u64{1} << (i % 64);
  }

  u64 hamming_syndrome(std::span<const u64> data, u64 check) const;
  unsigned overall_parity(std::span<const u64> data, u64 check) const;

  unsigned data_bits_;
  unsigned hamming_bits_;
  unsigned max_pos_;                      ///< highest codeword position
  std::vector<unsigned> pos_of_data_;     ///< data bit -> codeword position
  std::vector<int> data_of_pos_;          ///< position -> data bit / -1 check
};

}  // namespace aeep::ecc
