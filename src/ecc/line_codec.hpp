// Applies a word codec across an entire cache line.
//
// A 64-byte line is eight 64-bit words; each word carries its own check
// bits (8b for SECDED, 1b for parity), matching how the paper counts area:
// 64B line -> 64 ECC bits or 8 parity bits.
#pragma once

#include <memory>
#include <vector>

#include "ecc/codec.hpp"

namespace aeep::ecc {

/// Data payload of a line plus its stored check bits, word by word.
struct ProtectedLine {
  std::vector<u64> data;    ///< line_bytes / 8 words
  std::vector<u64> check;   ///< one check word per data word (low bits used)
};

/// Outcome of validating a full line: the worst per-word status plus counts.
struct LineDecodeResult {
  DecodeStatus worst = DecodeStatus::kOk;
  unsigned words_ok = 0;
  unsigned words_corrected = 0;
  unsigned words_detected = 0;   ///< detected but not corrected
  std::vector<u64> data;         ///< corrected payload
};

class LineCodec {
 public:
  /// `line_bytes` must be a positive multiple of 8.
  LineCodec(const WordCodec& word_codec, unsigned line_bytes);

  unsigned words_per_line() const { return words_; }
  unsigned check_bits_per_line() const { return words_ * codec_->check_bits(); }
  const WordCodec& word_codec() const { return *codec_; }

  /// Compute check words for a payload of words_per_line() words.
  std::vector<u64> encode(const std::vector<u64>& data) const;

  /// Validate/correct a stored line.
  LineDecodeResult decode(const ProtectedLine& line) const;

 private:
  const WordCodec* codec_;
  unsigned words_;
};

/// Severity order for aggregating statuses (Ok < Corrected < Detected*).
DecodeStatus worse(DecodeStatus a, DecodeStatus b);

}  // namespace aeep::ecc
