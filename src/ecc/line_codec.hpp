// Applies a word codec across an entire cache line.
//
// A 64-byte line is eight 64-bit words; each word carries its own check
// bits (8b for SECDED, 1b for parity), matching how the paper counts area:
// 64B line -> 64 ECC bits or 8 parity bits.
//
// Two API levels:
//  - scratch-buffer encode/decode over std::span (the hot path: zero heap
//    allocations — callers bring their own buffers and reuse them);
//  - *_alloc conveniences that return freshly allocated vectors, kept for
//    tests and one-shot callers and implemented on top of the scratch API.
#pragma once

#include <span>
#include <vector>

#include "ecc/codec.hpp"

namespace aeep::ecc {

/// Data payload of a line plus its stored check bits, word by word.
struct ProtectedLine {
  std::vector<u64> data;    ///< line_bytes / 8 words
  std::vector<u64> check;   ///< one check word per data word (low bits used)
};

/// What validating a full line concluded: worst per-word status + counts.
/// This is the allocation-free core of LineDecodeResult.
struct LineDecodeSummary {
  DecodeStatus worst = DecodeStatus::kOk;
  unsigned words_ok = 0;
  unsigned words_corrected = 0;
  unsigned words_detected = 0;   ///< detected but not corrected

  bool operator==(const LineDecodeSummary&) const = default;
};

/// Legacy allocating decode result: the summary plus a corrected copy.
struct LineDecodeResult {
  DecodeStatus worst = DecodeStatus::kOk;
  unsigned words_ok = 0;
  unsigned words_corrected = 0;
  unsigned words_detected = 0;
  std::vector<u64> data;         ///< corrected payload
};

class LineCodec {
 public:
  /// `line_bytes` must be a positive multiple of 8.
  LineCodec(const WordCodec& word_codec, unsigned line_bytes);

  unsigned words_per_line() const { return words_; }
  unsigned check_bits_per_line() const { return words_ * codec_->check_bits(); }
  const WordCodec& word_codec() const { return *codec_; }

  // --- Scratch-buffer hot path (no heap allocation) -----------------------

  /// Compute check words for `data` into caller-owned `check_out`. Both
  /// spans must hold words_per_line() words. Routed through the codec's
  /// batched (SWAR) implementation; bit-identical to per-word encode().
  void encode(std::span<const u64> data, std::span<u64> check_out) const;

  /// Recompute check words only for the words set in `dirty_mask` (bit w =
  /// word w); the other check_out entries are left untouched. This is the
  /// silent-write-elision entry point: the write buffer's dirty mask says
  /// which words actually changed, so clean words keep their (still valid)
  /// stored codes and cost nothing.
  void encode_dirty(std::span<const u64> data, u64 dirty_mask,
                    std::span<u64> check_out) const;

  /// Validate a stored line, writing the corrected payload into
  /// caller-owned `data_out` (may alias `data` for in-place repair). All
  /// spans must hold words_per_line() words. Fast path: a batched
  /// mismatch scan clears clean lines without ever entering the scalar
  /// syndrome decoder; only flagged words take the slow path.
  LineDecodeSummary decode(std::span<const u64> data,
                           std::span<const u64> check,
                           std::span<u64> data_out) const;

  // --- Allocating conveniences -------------------------------------------

  /// Returns freshly allocated check words for a payload.
  std::vector<u64> encode_alloc(std::span<const u64> data) const;

  /// Validate/correct a stored line into a freshly allocated result.
  LineDecodeResult decode_alloc(const ProtectedLine& line) const;

 private:
  const WordCodec* codec_;
  unsigned words_;
};

/// Severity order for aggregating statuses (Ok < Corrected < Detected*).
DecodeStatus worse(DecodeStatus a, DecodeStatus b);

}  // namespace aeep::ecc
