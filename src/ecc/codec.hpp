// Word-level error-code interface.
//
// All codecs in this library operate on 64-bit data words — the granularity
// the paper uses ("every 64 bits of data requires 8 bits for ECC" / "1 bit
// parity check code"). A codec computes `check_bits()` check bits for each
// word; `decode` recomputes them from possibly-corrupted data+check and
// reports what it can conclude.
#pragma once

#include <string>

#include "common/types.hpp"

namespace aeep::ecc {

/// What a decoder concluded about a (data, check) pair.
enum class DecodeStatus {
  kOk,                 ///< no error indicated
  kCorrectedSingle,    ///< single-bit error found and corrected
  kDetectedDouble,     ///< double-bit error detected (uncorrectable)
  kDetectedError,      ///< error detected, no correction capability (parity)
};

const char* to_string(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kOk;
  u64 data = 0;        ///< corrected data word (valid unless kDetected*)
  u64 check = 0;       ///< corrected check bits
  /// For kCorrectedSingle: which codeword bit was flipped. Data bits are
  /// reported as 0..63, check bits as 64..(64+check_bits-1).
  unsigned corrected_bit = 0;
};

/// Abstract per-word codec.
class WordCodec {
 public:
  virtual ~WordCodec() = default;

  /// Human-readable name, e.g. "secded(72,64)".
  virtual std::string name() const = 0;

  /// Number of check bits per 64-bit data word.
  virtual unsigned check_bits() const = 0;

  /// True if decode can repair single-bit errors.
  virtual bool corrects_single() const = 0;

  /// Compute check bits for a data word.
  virtual u64 encode(u64 data) const = 0;

  /// Validate (and possibly correct) a stored word.
  virtual DecodeResult decode(u64 data, u64 check) const = 0;
};

}  // namespace aeep::ecc
