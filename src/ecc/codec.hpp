// Word-level error-code interface.
//
// All codecs in this library operate on 64-bit data words — the granularity
// the paper uses ("every 64 bits of data requires 8 bits for ECC" / "1 bit
// parity check code"). A codec computes `check_bits()` check bits for each
// word; `decode` recomputes them from possibly-corrupted data+check and
// reports what it can conclude.
#pragma once

#include <cassert>
#include <span>
#include <string>

#include "common/types.hpp"

namespace aeep::ecc {

/// What a decoder concluded about a (data, check) pair.
enum class DecodeStatus {
  kOk,                 ///< no error indicated
  kCorrectedSingle,    ///< single-bit error found and corrected
  kDetectedDouble,     ///< double-bit error detected (uncorrectable)
  kDetectedError,      ///< error detected, no correction capability (parity)
};

const char* to_string(DecodeStatus s);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kOk;
  u64 data = 0;        ///< corrected data word (valid unless kDetected*)
  u64 check = 0;       ///< corrected check bits
  /// For kCorrectedSingle: which codeword bit was flipped. Data bits are
  /// reported as 0..63, check bits as 64..(64+check_bits-1).
  unsigned corrected_bit = 0;
};

/// Abstract per-word codec.
class WordCodec {
 public:
  virtual ~WordCodec() = default;

  /// Human-readable name, e.g. "secded(72,64)".
  virtual std::string name() const = 0;

  /// Number of check bits per 64-bit data word.
  virtual unsigned check_bits() const = 0;

  /// True if decode can repair single-bit errors.
  virtual bool corrects_single() const = 0;

  /// Compute check bits for a data word.
  virtual u64 encode(u64 data) const = 0;

  /// Validate (and possibly correct) a stored word.
  virtual DecodeResult decode(u64 data, u64 check) const = 0;

  /// Mask selecting the live check bits (the low check_bits() bits).
  u64 check_mask() const {
    const unsigned b = check_bits();
    return b >= 64 ? ~u64{0} : (u64{1} << b) - 1;
  }

  // --- Batched hot path ---------------------------------------------------
  // Whole-line entry points. The defaults below loop the scalar hooks, so
  // every codec is correct for free; the production codecs override them
  // with SWAR implementations that hoist constants, drop the per-word
  // virtual dispatch, and expose independent popcount/fold chains to the
  // CPU. Batched and scalar results are bit-identical by contract
  // (equivalence-tested in ecc_test).

  /// check_out[w] = encode(data[w]) for every word.
  virtual void encode_batch(std::span<const u64> data,
                            std::span<u64> check_out) const {
    assert(check_out.size() >= data.size());
    for (std::size_t w = 0; w < data.size(); ++w)
      check_out[w] = encode(data[w]);
  }

  /// Like encode_batch, but only for words with bit w set in `word_mask`;
  /// other check_out entries are left untouched (silent-write elision).
  virtual void encode_batch_masked(std::span<const u64> data, u64 word_mask,
                                   std::span<u64> check_out) const {
    assert(data.size() <= 64 && check_out.size() >= data.size());
    for (std::size_t w = 0; w < data.size(); ++w)
      if (word_mask & (u64{1} << w)) check_out[w] = encode(data[w]);
  }

  /// Bit w set iff stored check[w] disagrees with re-encoding data[w] —
  /// i.e. exactly the words a decode would flag. The clean-line fast path:
  /// a zero mask means every word is kOk and the scalar decoder (syndrome
  /// walk, branches) can be skipped entirely.
  virtual u64 mismatch_mask(std::span<const u64> data,
                            std::span<const u64> check) const {
    assert(data.size() <= 64 && check.size() >= data.size());
    const u64 live = check_mask();
    u64 mm = 0;
    for (std::size_t w = 0; w < data.size(); ++w)
      if (encode(data[w]) != (check[w] & live)) mm |= u64{1} << w;
    return mm;
  }
};

}  // namespace aeep::ecc
