// SECDED(72,64): extended Hamming code — Single Error Correction, Double
// Error Detection. 8 check bits per 64-bit data word, exactly the overhead
// the paper attributes to Itanium/POWER4 L2 ECC (12.5%).
#pragma once

#include <array>

#include "ecc/codec.hpp"

namespace aeep::ecc {

/// Extended Hamming implementation:
///  - codeword positions 1..71 hold a Hamming(71,64) code: check bits at the
///    power-of-two positions {1,2,4,8,16,32,64}, data bits fill the rest;
///  - an overall parity bit (check bit 7) covers all 71 positions, upgrading
///    single-error correction to SECDED.
///
/// Check-bit word layout returned by encode(): bits 0..6 are the Hamming
/// check bits c0..c6 (for positions 1,2,4,...,64), bit 7 is overall parity.
class SecdedCodec final : public WordCodec {
 public:
  SecdedCodec();

  std::string name() const override { return "secded(72,64)"; }
  unsigned check_bits() const override { return 8; }
  bool corrects_single() const override { return true; }
  u64 encode(u64 data) const override;
  DecodeResult decode(u64 data, u64 check) const override;

  // Batched overrides: table-driven position fold — eight L1-hot byte
  // lookups per word replace nine software popcounts (the build targets
  // baseline x86-64, so std::popcount is a ~12-op SWAR sequence), and there
  // is no virtual dispatch inside the line loop.
  void encode_batch(std::span<const u64> data,
                    std::span<u64> check_out) const override;
  void encode_batch_masked(std::span<const u64> data, u64 word_mask,
                           std::span<u64> check_out) const override;
  u64 mismatch_mask(std::span<const u64> data,
                    std::span<const u64> check) const override;

  /// Number of Hamming check bits (excluding the overall parity bit).
  static constexpr unsigned kHammingBits = 7;
  /// Highest occupied codeword position (1-based).
  static constexpr unsigned kMaxPos = 71;

 private:
  // pos_of_data_[d] = codeword position (1..71) of data bit d.
  std::array<unsigned, 64> pos_of_data_{};
  // data_of_pos_[p] = data bit index at position p, or kCheckPos if p is a
  // check position, kUnusedPos if p is out of range.
  static constexpr unsigned kCheckPos = 0xFFu;
  static constexpr unsigned kUnusedPos = 0xFEu;
  std::array<unsigned, kMaxPos + 1> data_of_pos_{};
  // column_mask_[i]: data bits covered by Hamming check bit i.
  std::array<u64, kHammingBits> column_mask_{};
  // byte_fold_[k][v]: XOR of the codeword positions of the set bits of byte
  // value v at data-byte index k (bits 0..6 — all seven Hamming check-bit
  // contributions at once), with the parity of v itself in bit 7. XORing
  // the eight chunk entries of a word yields its Hamming check bits and
  // overall data parity in one accumulator; 2 KiB total, L1-resident.
  std::array<std::array<u8, 256>, 8> byte_fold_{};

  /// Hamming check bits + overall parity of one word via byte_fold_.
  u64 fold_word(u64 d) const;

  /// Expand (data, hamming check bits) into the 72-entry position-indexed
  /// bit vector (index 0 unused by the Hamming part).
  u64 hamming_syndrome(u64 data, u64 check) const;
  unsigned parity_over_codeword(u64 data, u64 check) const;
};

}  // namespace aeep::ecc
