#include "ecc/line_codec.hpp"

#include <cassert>
#include <stdexcept>

namespace aeep::ecc {

namespace {
int severity(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return 0;
    case DecodeStatus::kCorrectedSingle: return 1;
    case DecodeStatus::kDetectedError: return 2;
    case DecodeStatus::kDetectedDouble: return 3;
  }
  return 4;
}
}  // namespace

DecodeStatus worse(DecodeStatus a, DecodeStatus b) {
  return severity(a) >= severity(b) ? a : b;
}

LineCodec::LineCodec(const WordCodec& word_codec, unsigned line_bytes)
    : codec_(&word_codec), words_(line_bytes / 8) {
  if (line_bytes == 0 || line_bytes % 8 != 0)
    throw std::invalid_argument("line_bytes must be a positive multiple of 8");
}

std::vector<u64> LineCodec::encode(const std::vector<u64>& data) const {
  assert(data.size() == words_);
  std::vector<u64> check(words_);
  for (unsigned w = 0; w < words_; ++w) check[w] = codec_->encode(data[w]);
  return check;
}

LineDecodeResult LineCodec::decode(const ProtectedLine& line) const {
  assert(line.data.size() == words_ && line.check.size() == words_);
  LineDecodeResult out;
  out.data.resize(words_);
  for (unsigned w = 0; w < words_; ++w) {
    const DecodeResult r = codec_->decode(line.data[w], line.check[w]);
    out.data[w] = r.data;
    out.worst = worse(out.worst, r.status);
    switch (r.status) {
      case DecodeStatus::kOk: ++out.words_ok; break;
      case DecodeStatus::kCorrectedSingle: ++out.words_corrected; break;
      case DecodeStatus::kDetectedError:
      case DecodeStatus::kDetectedDouble: ++out.words_detected; break;
    }
  }
  return out;
}

}  // namespace aeep::ecc
