#include "ecc/line_codec.hpp"

#include <cassert>
#include <stdexcept>

namespace aeep::ecc {

namespace {
int severity(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return 0;
    case DecodeStatus::kCorrectedSingle: return 1;
    case DecodeStatus::kDetectedError: return 2;
    case DecodeStatus::kDetectedDouble: return 3;
  }
  return 4;
}
}  // namespace

DecodeStatus worse(DecodeStatus a, DecodeStatus b) {
  return severity(a) >= severity(b) ? a : b;
}

LineCodec::LineCodec(const WordCodec& word_codec, unsigned line_bytes)
    : codec_(&word_codec), words_(line_bytes / 8) {
  if (line_bytes == 0 || line_bytes % 8 != 0)
    throw std::invalid_argument("line_bytes must be a positive multiple of 8");
}

void LineCodec::encode(std::span<const u64> data,
                       std::span<u64> check_out) const {
  assert(data.size() == words_ && check_out.size() == words_);
  codec_->encode_batch(data, check_out);
}

void LineCodec::encode_dirty(std::span<const u64> data, u64 dirty_mask,
                             std::span<u64> check_out) const {
  assert(data.size() == words_ && check_out.size() == words_);
  codec_->encode_batch_masked(data, dirty_mask, check_out);
}

LineDecodeSummary LineCodec::decode(std::span<const u64> data,
                                    std::span<const u64> check,
                                    std::span<u64> data_out) const {
  assert(data.size() == words_ && check.size() == words_ &&
         data_out.size() == words_);
  LineDecodeSummary out;
  // Batched clean scan first: on the overwhelmingly common clean line this
  // is one SWAR re-encode + compare per word and no branches into the
  // scalar decoder. Words the scan flags get the full syndrome treatment;
  // a flagged word is flagged by the scalar decoder too (same re-encode),
  // so the two paths agree bit for bit.
  const u64 mm = codec_->mismatch_mask(data, check);
  if (mm == 0) {
    for (unsigned w = 0; w < words_; ++w) data_out[w] = data[w];
    out.words_ok = words_;
    return out;
  }
  for (unsigned w = 0; w < words_; ++w) {
    if ((mm & (u64{1} << w)) == 0) {
      data_out[w] = data[w];
      ++out.words_ok;
      continue;
    }
    const DecodeResult r = codec_->decode(data[w], check[w]);
    data_out[w] = r.data;  // on kDetected* every codec echoes the stored word
    out.worst = worse(out.worst, r.status);
    switch (r.status) {
      case DecodeStatus::kOk: ++out.words_ok; break;
      case DecodeStatus::kCorrectedSingle: ++out.words_corrected; break;
      case DecodeStatus::kDetectedError:
      case DecodeStatus::kDetectedDouble: ++out.words_detected; break;
    }
  }
  return out;
}

std::vector<u64> LineCodec::encode_alloc(std::span<const u64> data) const {
  std::vector<u64> check(words_);
  encode(data, check);
  return check;
}

LineDecodeResult LineCodec::decode_alloc(const ProtectedLine& line) const {
  LineDecodeResult out;
  out.data.resize(words_);
  const LineDecodeSummary s = decode(line.data, line.check, out.data);
  out.worst = s.worst;
  out.words_ok = s.words_ok;
  out.words_corrected = s.words_corrected;
  out.words_detected = s.words_detected;
  return out;
}

}  // namespace aeep::ecc
