// Parity check codes: detect any odd number of bit errors, correct nothing.
#pragma once

#include "ecc/codec.hpp"

namespace aeep::ecc {

/// One even/odd parity bit per 64-bit word — the code the paper uses for
/// clean L2 lines, L1 caches, tags and status bits (as in Itanium).
class ParityCodec final : public WordCodec {
 public:
  /// `odd` selects odd parity (stored bit makes total popcount odd).
  explicit ParityCodec(bool odd = false) : odd_(odd) {}

  std::string name() const override;
  unsigned check_bits() const override { return 1; }
  bool corrects_single() const override { return false; }
  u64 encode(u64 data) const override;
  DecodeResult decode(u64 data, u64 check) const override;

  // Batched overrides: one POPCNT per word with the odd/even flip hoisted
  // out of the loop.
  void encode_batch(std::span<const u64> data,
                    std::span<u64> check_out) const override;
  u64 mismatch_mask(std::span<const u64> data,
                    std::span<const u64> check) const override;

  bool odd() const { return odd_; }

 private:
  bool odd_;
};

/// One parity bit per byte (8 check bits per word). Detects any odd number
/// of errors within each byte; included as the finer-granularity variant
/// used by some commercial tag arrays, and exercised by the ablations.
class ByteParityCodec final : public WordCodec {
 public:
  std::string name() const override { return "byte-parity(9,8)x8"; }
  unsigned check_bits() const override { return 8; }
  bool corrects_single() const override { return false; }
  u64 encode(u64 data) const override;
  DecodeResult decode(u64 data, u64 check) const override;

  // Batched overrides using the SWAR fold + multiply-pack (see parity.cpp).
  void encode_batch(std::span<const u64> data,
                    std::span<u64> check_out) const override;
  u64 mismatch_mask(std::span<const u64> data,
                    std::span<const u64> check) const override;
};

}  // namespace aeep::ecc
