#include "ecc/parity.hpp"

#include "common/bitops.hpp"

namespace aeep::ecc {

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kCorrectedSingle: return "corrected-single";
    case DecodeStatus::kDetectedDouble: return "detected-double";
    case DecodeStatus::kDetectedError: return "detected-error";
  }
  return "?";
}

std::string ParityCodec::name() const {
  return odd_ ? "parity-odd(65,64)" : "parity-even(65,64)";
}

u64 ParityCodec::encode(u64 data) const {
  const unsigned p = parity64(data);
  return odd_ ? (p ^ 1u) : p;
}

DecodeResult ParityCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 1u;
  const u64 expect = encode(data);
  r.status = (expect == (check & 1u)) ? DecodeStatus::kOk
                                      : DecodeStatus::kDetectedError;
  return r;
}

u64 ByteParityCodec::encode(u64 data) const {
  u64 check = 0;
  for (unsigned b = 0; b < 8; ++b) {
    const u64 byte = bits_of(data, b * 8, 8);
    check |= static_cast<u64>(parity64(byte)) << b;
  }
  return check;
}

DecodeResult ByteParityCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 0xFFu;
  r.status = (encode(data) == (check & 0xFFu)) ? DecodeStatus::kOk
                                               : DecodeStatus::kDetectedError;
  return r;
}

}  // namespace aeep::ecc
