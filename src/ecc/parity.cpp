#include "ecc/parity.hpp"

#include "common/bitops.hpp"

namespace aeep::ecc {

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kCorrectedSingle: return "corrected-single";
    case DecodeStatus::kDetectedDouble: return "detected-double";
    case DecodeStatus::kDetectedError: return "detected-error";
  }
  return "?";
}

std::string ParityCodec::name() const {
  return odd_ ? "parity-odd(65,64)" : "parity-even(65,64)";
}

u64 ParityCodec::encode(u64 data) const {
  const unsigned p = parity64(data);
  return odd_ ? (p ^ 1u) : p;
}

DecodeResult ParityCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 1u;
  const u64 expect = encode(data);
  r.status = (expect == (check & 1u)) ? DecodeStatus::kOk
                                      : DecodeStatus::kDetectedError;
  return r;
}

void ParityCodec::encode_batch(std::span<const u64> data,
                               std::span<u64> check_out) const {
  assert(check_out.size() >= data.size());
  const u64 flip = odd_ ? 1u : 0u;
  for (std::size_t w = 0; w < data.size(); ++w)
    check_out[w] = static_cast<u64>(parity64(data[w])) ^ flip;
}

u64 ParityCodec::mismatch_mask(std::span<const u64> data,
                               std::span<const u64> check) const {
  assert(data.size() <= 64 && check.size() >= data.size());
  const u64 flip = odd_ ? 1u : 0u;
  u64 mm = 0;
  for (std::size_t w = 0; w < data.size(); ++w) {
    const u64 expect = static_cast<u64>(parity64(data[w])) ^ flip;
    mm |= static_cast<u64>(expect != (check[w] & 1u)) << w;
  }
  return mm;
}

namespace {

/// All eight per-byte parity bits of one word in ~8 ALU ops: a SWAR
/// shift/XOR fold reduces each byte's parity into its lowest bit, then the
/// multiply-pack gathers those eight spaced bits into one byte. The partial
/// products of the 0x0102...80 multiplier never carry into byte 7, so bit b
/// of the result is exactly the parity of byte b.
u64 byte_parity_swar(u64 v) {
  v ^= v >> 4;
  v ^= v >> 2;
  v ^= v >> 1;
  return ((v & 0x0101010101010101ULL) * 0x0102040810204080ULL) >> 56;
}

}  // namespace

u64 ByteParityCodec::encode(u64 data) const { return byte_parity_swar(data); }

DecodeResult ByteParityCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 0xFFu;
  r.status = (encode(data) == (check & 0xFFu)) ? DecodeStatus::kOk
                                               : DecodeStatus::kDetectedError;
  return r;
}

void ByteParityCodec::encode_batch(std::span<const u64> data,
                                   std::span<u64> check_out) const {
  assert(check_out.size() >= data.size());
  for (std::size_t w = 0; w < data.size(); ++w)
    check_out[w] = byte_parity_swar(data[w]);
}

u64 ByteParityCodec::mismatch_mask(std::span<const u64> data,
                                   std::span<const u64> check) const {
  assert(data.size() <= 64 && check.size() >= data.size());
  u64 mm = 0;
  for (std::size_t w = 0; w < data.size(); ++w)
    mm |= static_cast<u64>(byte_parity_swar(data[w]) != (check[w] & 0xFFu))
          << w;
  return mm;
}

}  // namespace aeep::ecc
