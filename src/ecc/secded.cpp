#include "ecc/secded.hpp"

#include "common/bitops.hpp"

namespace aeep::ecc {

SecdedCodec::SecdedCodec() {
  data_of_pos_.fill(kUnusedPos);
  unsigned d = 0;
  for (unsigned p = 1; p <= kMaxPos; ++p) {
    if (is_pow2(p)) {
      data_of_pos_[p] = kCheckPos;
    } else {
      data_of_pos_[p] = d;
      pos_of_data_[d] = p;
      ++d;
    }
  }
  // 71 positions minus 7 power-of-two check positions leaves exactly 64.
  static_assert(kMaxPos - kHammingBits == 64);

  // Column masks: check bit i covers every data bit whose codeword position
  // has bit i set. Turns encode/syndrome into 7 AND+POPCNT operations.
  for (unsigned i = 0; i < kHammingBits; ++i) {
    u64 mask = 0;
    for (unsigned dd = 0; dd < 64; ++dd) {
      if ((pos_of_data_[dd] >> i) & 1u) mask |= u64{1} << dd;
    }
    column_mask_[i] = mask;
  }
}

u64 SecdedCodec::encode(u64 data) const {
  u64 check = 0;
  for (unsigned i = 0; i < kHammingBits; ++i)
    check |= static_cast<u64>(parity64(data & column_mask_[i])) << i;
  // Overall parity over the 71 Hamming codeword bits (data + c0..c6).
  const unsigned overall = parity64(data) ^ parity64(check & 0x7Fu);
  check |= static_cast<u64>(overall) << kHammingBits;
  return check;
}

u64 SecdedCodec::hamming_syndrome(u64 data, u64 check) const {
  // Syndrome bit i = stored c_i XOR recomputed c_i; the syndrome equals the
  // XOR of the positions of all erroneous bits.
  u64 syndrome = 0;
  for (unsigned i = 0; i < kHammingBits; ++i) {
    const unsigned p =
        bit_of(check, i) ^ parity64(data & column_mask_[i]);
    syndrome |= static_cast<u64>(p) << i;
  }
  return syndrome;
}

unsigned SecdedCodec::parity_over_codeword(u64 data, u64 check) const {
  return parity64(data) ^ parity64(check & 0xFFu);
}

DecodeResult SecdedCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 0xFFu;

  const u64 syndrome = hamming_syndrome(data, check);
  // With the stored overall-parity bit included, total parity of the full
  // 72-bit codeword is 0 when intact; 1 indicates an odd number of flips.
  const unsigned overall_mismatch = parity_over_codeword(data, check);

  if (syndrome == 0 && overall_mismatch == 0) {
    r.status = DecodeStatus::kOk;
    return r;
  }
  if (syndrome == 0 && overall_mismatch == 1) {
    // Only the overall parity bit itself flipped.
    r.status = DecodeStatus::kCorrectedSingle;
    r.check = flip_bit(r.check, kHammingBits);
    r.corrected_bit = 64 + kHammingBits;
    return r;
  }
  if (overall_mismatch == 0) {
    // Nonzero syndrome with an even number of flips: double error.
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  // Odd number of flips with nonzero syndrome: single error at position
  // `syndrome` — if that is a real codeword position.
  if (syndrome > kMaxPos || data_of_pos_[syndrome] == kUnusedPos) {
    // Invalid position: a multi-bit error that aliased.
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  r.status = DecodeStatus::kCorrectedSingle;
  const unsigned at = data_of_pos_[static_cast<unsigned>(syndrome)];
  if (at == kCheckPos) {
    const unsigned ci = log2_exact(syndrome);
    r.check = flip_bit(r.check, ci);
    r.corrected_bit = 64 + ci;
  } else {
    r.data = flip_bit(r.data, at);
    r.corrected_bit = at;
  }
  return r;
}

}  // namespace aeep::ecc
