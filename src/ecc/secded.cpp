#include "ecc/secded.hpp"

#include "common/bitops.hpp"

namespace aeep::ecc {

SecdedCodec::SecdedCodec() {
  data_of_pos_.fill(kUnusedPos);
  unsigned d = 0;
  for (unsigned p = 1; p <= kMaxPos; ++p) {
    if (is_pow2(p)) {
      data_of_pos_[p] = kCheckPos;
    } else {
      data_of_pos_[p] = d;
      pos_of_data_[d] = p;
      ++d;
    }
  }
  // 71 positions minus 7 power-of-two check positions leaves exactly 64.
  static_assert(kMaxPos - kHammingBits == 64);

  // Column masks: check bit i covers every data bit whose codeword position
  // has bit i set. Turns encode/syndrome into 7 AND+POPCNT operations.
  for (unsigned i = 0; i < kHammingBits; ++i) {
    u64 mask = 0;
    for (unsigned dd = 0; dd < 64; ++dd) {
      if ((pos_of_data_[dd] >> i) & 1u) mask |= u64{1} << dd;
    }
    column_mask_[i] = mask;
  }

  // Byte-fold tables for the batched paths: check bit i is the XOR over set
  // data bits of bit i of that bit's codeword position, so XOR-accumulating
  // positions chunk by chunk computes all seven check bits together. Bit 7
  // carries the chunk's own parity, which accumulates to parity64(word).
  for (unsigned k = 0; k < 8; ++k) {
    for (unsigned v = 0; v < 256; ++v) {
      unsigned acc = 0;
      for (unsigned j = 0; j < 8; ++j) {
        if ((v >> j) & 1u) acc ^= pos_of_data_[k * 8 + j];
      }
      byte_fold_[k][v] =
          static_cast<u8>((acc & 0x7Fu) | ((popcount64(v) & 1u) << 7));
    }
  }
}

u64 SecdedCodec::encode(u64 data) const {
  u64 check = 0;
  for (unsigned i = 0; i < kHammingBits; ++i)
    check |= static_cast<u64>(parity64(data & column_mask_[i])) << i;
  // Overall parity over the 71 Hamming codeword bits (data + c0..c6).
  const unsigned overall = parity64(data) ^ parity64(check & 0x7Fu);
  check |= static_cast<u64>(overall) << kHammingBits;
  return check;
}

// Batched hot path. Eight byte-table lookups per word compute all seven
// Hamming check bits and the data parity in one XOR accumulator — where
// the scalar path pays seven AND + software-popcount column folds (the
// build targets baseline x86-64, so std::popcount is a ~12-op SWAR
// sequence) behind an opaque virtual call per word. The 2 KiB table stays
// L1-resident across a line, and the eight words' chains are independent
// so the CPU overlaps the loads.
u64 SecdedCodec::fold_word(u64 d) const {
  unsigned acc = byte_fold_[0][d & 0xFFu];
  acc ^= byte_fold_[1][(d >> 8) & 0xFFu];
  acc ^= byte_fold_[2][(d >> 16) & 0xFFu];
  acc ^= byte_fold_[3][(d >> 24) & 0xFFu];
  acc ^= byte_fold_[4][(d >> 32) & 0xFFu];
  acc ^= byte_fold_[5][(d >> 40) & 0xFFu];
  acc ^= byte_fold_[6][(d >> 48) & 0xFFu];
  acc ^= byte_fold_[7][(d >> 56) & 0xFFu];
  const unsigned c = acc & 0x7Fu;
  // Overall parity = parity64(d) (bit 7 of acc) ^ parity of the 7-bit c.
  unsigned p = c ^ (c >> 4);
  p ^= p >> 2;
  p ^= p >> 1;
  return c | ((((acc >> 7) ^ p) & 1u) << kHammingBits);
}

void SecdedCodec::encode_batch(std::span<const u64> data,
                               std::span<u64> check_out) const {
  assert(check_out.size() >= data.size());
  for (std::size_t w = 0; w < data.size(); ++w)
    check_out[w] = fold_word(data[w]);
}

void SecdedCodec::encode_batch_masked(std::span<const u64> data, u64 word_mask,
                                      std::span<u64> check_out) const {
  assert(data.size() <= 64 && check_out.size() >= data.size());
  if (data.size() < 64) word_mask &= (u64{1} << data.size()) - 1;
  if (word_mask + 1 == (data.size() < 64 ? u64{1} << data.size() : 0)) {
    // Fully dirty line: take the straight-line batch loop.
    encode_batch(data, check_out);
    return;
  }
  // Sparse masks walk only the set bits (clear-lowest-bit iteration), so a
  // single-word store re-encodes one word, not eight.
  std::span<const u64> all{data};
  for (u64 m = word_mask; m != 0; m &= m - 1) {
    const auto w = static_cast<std::size_t>(std::countr_zero(m));
    encode_batch(all.subspan(w, 1), check_out.subspan(w, 1));
  }
}

u64 SecdedCodec::mismatch_mask(std::span<const u64> data,
                               std::span<const u64> check) const {
  assert(data.size() <= 64 && check.size() >= data.size());
  u64 mm = 0;
  for (std::size_t w = 0; w < data.size(); ++w)
    mm |= static_cast<u64>(fold_word(data[w]) != (check[w] & 0xFFu)) << w;
  return mm;
}

u64 SecdedCodec::hamming_syndrome(u64 data, u64 check) const {
  // Syndrome bit i = stored c_i XOR recomputed c_i; the syndrome equals the
  // XOR of the positions of all erroneous bits.
  u64 syndrome = 0;
  for (unsigned i = 0; i < kHammingBits; ++i) {
    const unsigned p =
        bit_of(check, i) ^ parity64(data & column_mask_[i]);
    syndrome |= static_cast<u64>(p) << i;
  }
  return syndrome;
}

unsigned SecdedCodec::parity_over_codeword(u64 data, u64 check) const {
  return parity64(data) ^ parity64(check & 0xFFu);
}

DecodeResult SecdedCodec::decode(u64 data, u64 check) const {
  DecodeResult r;
  r.data = data;
  r.check = check & 0xFFu;

  const u64 syndrome = hamming_syndrome(data, check);
  // With the stored overall-parity bit included, total parity of the full
  // 72-bit codeword is 0 when intact; 1 indicates an odd number of flips.
  const unsigned overall_mismatch = parity_over_codeword(data, check);

  if (syndrome == 0 && overall_mismatch == 0) {
    r.status = DecodeStatus::kOk;
    return r;
  }
  if (syndrome == 0 && overall_mismatch == 1) {
    // Only the overall parity bit itself flipped.
    r.status = DecodeStatus::kCorrectedSingle;
    r.check = flip_bit(r.check, kHammingBits);
    r.corrected_bit = 64 + kHammingBits;
    return r;
  }
  if (overall_mismatch == 0) {
    // Nonzero syndrome with an even number of flips: double error.
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  // Odd number of flips with nonzero syndrome: single error at position
  // `syndrome` — if that is a real codeword position.
  if (syndrome > kMaxPos || data_of_pos_[syndrome] == kUnusedPos) {
    // Invalid position: a multi-bit error that aliased.
    r.status = DecodeStatus::kDetectedDouble;
    return r;
  }
  r.status = DecodeStatus::kCorrectedSingle;
  const unsigned at = data_of_pos_[static_cast<unsigned>(syndrome)];
  if (at == kCheckPos) {
    const unsigned ci = log2_exact(syndrome);
    r.check = flip_bit(r.check, ci);
    r.corrected_bit = 64 + ci;
  } else {
    r.data = flip_bit(r.data, at);
    r.corrected_bit = at;
  }
  return r;
}

}  // namespace aeep::ecc
