// aeep_lint's rule engine: the six tools/lint.sh grep rules re-implemented
// over the token stream (no comment/string false positives), plus the
// concurrency rules a grep cannot express.
//
// Every rule reports `file:line` findings and honours an inline escape
// hatch: a comment containing `aeep-lint: allow(<rule>)` suppresses that
// rule on the comment's own line and on the line directly below it —
// trailing and preceding-line placements both work. Multiple rules may be
// listed: `aeep-lint: allow(rule-a, rule-b)`.
//
// Rule applicability is path-based (repo-relative, forward slashes), which
// is how the grep rules scoped themselves; `lint_file` takes the path and
// the file content so tests can drive rules from embedded fixture strings
// without touching the filesystem.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/lexer.hpp"

namespace aeep::analysis {

struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string description;
};

/// Every rule aeep_lint enforces, in report order (the README catalog is
/// generated from this).
const std::vector<RuleInfo>& rule_catalog();

/// Lint one file. `path` must be repo-relative with forward slashes
/// (e.g. "src/ecc/parity.cpp") — rule scoping keys off it.
std::vector<Finding> lint_file(const std::string& path,
                               const std::string& source);

/// Render a finding as the "file:line: [rule] message" report line.
std::string format_finding(const Finding& f);

}  // namespace aeep::analysis
