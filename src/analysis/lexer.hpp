// Token-aware C++ lexer for aeep_lint.
//
// The grep rules in the old tools/lint.sh could not tell code from prose:
// the word "new" inside an error message, "rand(" quoted in a comment, or a
// banned pattern inside a raw string all tripped them. This lexer splits a
// translation unit into identifiers, punctuation, literals and comments —
// enough structure for every lint rule to match on *code* tokens only and
// for allow-comments to be recognised as comments, not text.
//
// It is deliberately not a preprocessor or parser: no macro expansion, no
// #include following, no grammar. Rules match shallow token patterns, which
// is exactly the level the grep rules worked at — minus their
// false-positive classes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace aeep::analysis {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the lexer does not split them)
  kNumber,      ///< pp-number, including 1'000'000 digit separators
  kString,      ///< "...", prefixed (u8"", L"") and raw (R"(...)") strings
  kCharLiteral, ///< '...'
  kComment,     ///< // to end of line, or /* ... */ (may span lines)
  kPunct,       ///< one operator/punctuator; "::" and "->" stay one token
};

struct Token {
  TokenKind kind;
  std::string text;   ///< exact source spelling (comments keep delimiters)
  std::size_t line;   ///< 1-based line where the token starts
};

/// Lex `source` into tokens. Never throws on malformed input: an unclosed
/// literal or comment becomes one token running to end-of-input, so a lint
/// pass cannot crash on a file that the real compiler would reject anyway.
std::vector<Token> lex(const std::string& source);

}  // namespace aeep::analysis
