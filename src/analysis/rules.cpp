#include "analysis/rules.hpp"

#include <set>
#include <utility>

namespace aeep::analysis {

namespace {

// Rule names — these are what allow-comments and reports use.
constexpr const char* kRawRand = "raw-rand";
constexpr const char* kOptionalValue = "unchecked-optional-value";
constexpr const char* kStatsReset = "stats-reset";
constexpr const char* kEccAlloc = "ecc-allocating-codec";
constexpr const char* kRawFileIo = "raw-file-io";
constexpr const char* kRawFsCall = "raw-fs-call";
constexpr const char* kRawSocket = "raw-socket";
constexpr const char* kMutexGuard = "mutex-guard";
constexpr const char* kThreadDetach = "thread-detach";
constexpr const char* kNakedNew = "naked-new-delete";
constexpr const char* kSleep = "sleep-in-src";
constexpr const char* kHotQueue = "deque-in-hot-path";
constexpr const char* kRawClock = "raw-clock";

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Lines suppressed per rule by `aeep-lint: allow(rule, ...)` comments. An
/// allow on line N covers findings on N (trailing comment) and N+1
/// (comment on its own line above the code).
class AllowSet {
 public:
  explicit AllowSet(const std::vector<Token>& tokens) {
    for (const Token& t : tokens) {
      if (t.kind != TokenKind::kComment) continue;
      const auto marker = t.text.find("aeep-lint:");
      if (marker == std::string::npos) continue;
      const auto open = t.text.find("allow(", marker);
      if (open == std::string::npos) continue;
      const auto close = t.text.find(')', open);
      if (close == std::string::npos) continue;
      std::string list = t.text.substr(open + 6, close - open - 6);
      std::string rule;
      auto flush = [&] {
        if (!rule.empty()) {
          allowed_.emplace(t.line, rule);
          allowed_.emplace(t.line + 1, rule);
        }
        rule.clear();
      };
      for (const char c : list) {
        if (c == ',') flush();
        else if (c != ' ' && c != '\t') rule += c;
      }
      flush();
    }
  }

  bool allowed(const std::string& rule, std::size_t line) const {
    return allowed_.count({line, rule}) != 0;
  }

 private:
  std::set<std::pair<std::size_t, std::string>> allowed_;
};

/// Shared per-file context handed to each rule.
struct FileContext {
  const std::string& path;
  const std::vector<Token>& code;  ///< comment tokens stripped
  const AllowSet& allows;
  std::vector<Finding>& findings;

  void report(const char* rule, std::size_t line, std::string message) {
    if (allows.allowed(rule, line)) return;
    findings.push_back(Finding{rule, path, line, std::move(message)});
  }
};

// --- rule: raw-rand --------------------------------------------------------
// rand()/srand() calls: all stochastic behaviour must flow from a seeded
// Xorshift64Star so every run is exactly reproducible.
void check_raw_rand(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if ((is_ident(code[i], "rand") || is_ident(code[i], "srand")) &&
        is_punct(code[i + 1], "(")) {
      ctx.report(kRawRand, code[i].line,
                 "raw " + code[i].text +
                     "() is banned; use a seeded Xorshift64Star");
    }
  }
}

// --- rule: unchecked-optional-value ----------------------------------------
// `).value()` dereferences an optional unchecked. The stats-registry
// Counter/Gauge accessors are exempt — their value() returns a plain
// integer, not an optional — and the token matcher resolves the exemption
// by finding the actual callee instead of grepping the whole line.
void check_optional_value(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 4 < code.size(); ++i) {
    if (!(is_punct(code[i], ")") && is_punct(code[i + 1], ".") &&
          is_ident(code[i + 2], "value") && is_punct(code[i + 3], "(") &&
          is_punct(code[i + 4], ")")))
      continue;
    // Walk back over the balanced call to find the callee identifier.
    std::size_t depth = 1;
    std::size_t j = i;
    while (j > 0 && depth > 0) {
      --j;
      if (is_punct(code[j], ")")) ++depth;
      else if (is_punct(code[j], "(")) --depth;
    }
    const bool exempt =
        depth == 0 && j > 0 &&
        (is_ident(code[j - 1], "counter") || is_ident(code[j - 1], "gauge"));
    if (!exempt) {
      ctx.report(kOptionalValue, code[i + 2].line,
                 "unchecked ).value() is banned; test the optional first");
    }
  }
}

// --- rule: stats-reset -----------------------------------------------------
// A header declaring a `struct ...Stats` must also declare a reset path
// (reset_stats / reset_metrics, or a non-const `...Stats& stats()`
// accessor), so warm-up resets cannot silently skip it.
void check_stats_reset(FileContext& ctx) {
  const auto& code = ctx.code;
  std::size_t first_struct_line = 0;
  std::string first_struct_name;
  bool has_reset = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if ((t.text == "struct") && i + 1 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        ends_with(code[i + 1].text, "Stats") && first_struct_line == 0) {
      first_struct_line = t.line;
      first_struct_name = code[i + 1].text;
    }
    if (t.text == "reset_stats" || t.text == "reset_metrics")
      has_reset = true;
    if (ends_with(t.text, "Stats") && i + 4 < code.size() &&
        is_punct(code[i + 1], "&") &&
        is_ident(code[i + 2], "stats") && is_punct(code[i + 3], "(") &&
        is_punct(code[i + 4], ")"))
      has_reset = true;
  }
  if (first_struct_line != 0 && !has_reset) {
    ctx.report(kStatsReset, first_struct_line,
               "struct " + first_struct_name +
                   " has no reset path (reset_stats/reset_metrics or a "
                   "non-const ...Stats& stats() accessor); warm-up would "
                   "leak into it");
  }
}

// --- rule: ecc-allocating-codec --------------------------------------------
// Under src/ecc/, functions named exactly encode/decode must not return
// std::vector — the line-codec hot path is allocation-free by contract.
// Allocating conveniences must be named *_alloc.
void check_ecc_alloc(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 4 < code.size(); ++i) {
    if (!(is_ident(code[i], "std") && is_punct(code[i + 1], "::") &&
          is_ident(code[i + 2], "vector") && is_punct(code[i + 3], "<")))
      continue;
    // Skip the balanced template argument list.
    std::size_t depth = 1;
    std::size_t j = i + 4;
    while (j < code.size() && depth > 0) {
      if (is_punct(code[j], "<")) ++depth;
      else if (is_punct(code[j], ">")) --depth;
      ++j;
    }
    // Qualified declarator: Namespace::Class::encode — land on the last
    // identifier in the chain.
    while (j + 1 < code.size() &&
           code[j].kind == TokenKind::kIdentifier &&
           is_punct(code[j + 1], "::"))
      j += 2;
    if (j + 1 < code.size() &&
        (is_ident(code[j], "encode") || is_ident(code[j], "decode")) &&
        is_punct(code[j + 1], "(")) {
      ctx.report(kEccAlloc, code[j].line,
                 "std::vector-returning " + code[j].text +
                     "() is banned under src/ecc/; use the span "
                     "scratch-buffer API or name the convenience *_alloc");
    }
  }
}

// --- rule: raw-file-io -----------------------------------------------------
// Binary file I/O must go through trace::FileReader/FileWriter, which turn
// short reads/writes into typed TraceErrors.
void check_raw_file_io(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if ((is_ident(code[i], "fread") || is_ident(code[i], "fwrite")) &&
        is_punct(code[i + 1], "(")) {
      ctx.report(kRawFileIo, code[i].line,
                 "raw " + code[i].text +
                     "() outside src/trace/io is banned; use "
                     "trace::FileReader/FileWriter so short I/O raises a "
                     "typed error");
    }
  }
}

// --- rule: raw-fs-call -----------------------------------------------------
// File lifecycle calls (fopen/rename/remove/...) outside src/store and
// src/trace: the result store's crash-safety story (append + flush,
// write-temp-then-rename, torn-tail truncation) only holds if nothing else
// in the tree opens or renames files behind its back. Everything else goes
// through trace::FileReader/FileWriter or the store; the handful of
// deliberate call sites (the access log's rotation, report writers) carry
// an allow-comment each so a new one is a conscious decision.
void check_raw_fs_call(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "fopen" && t.text != "freopen" && t.text != "rename" &&
        t.text != "remove" && t.text != "unlink" && t.text != "creat" &&
        t.text != "open")
      continue;
    if (!is_punct(code[i + 1], "(")) continue;
    if (i > 0) {
      const Token& prev = code[i - 1];
      // Member calls (log_.open, vec.remove) are someone else's API.
      if (is_punct(prev, ".") || is_punct(prev, "->")) continue;
      // Qualified names: only std::X is the banned libc call —
      // std::filesystem::rename is the checked wrapper, AccessLog::open a
      // definition.
      if (is_punct(prev, "::")) {
        if (!(i >= 2 && is_ident(code[i - 2], "std"))) continue;
      } else if (prev.kind == TokenKind::kIdentifier) {
        // `void open(`-style declarations: a preceding identifier is a
        // return type or specifier, not a call position.
        continue;
      }
    }
    ctx.report(kRawFsCall, t.line,
               "direct " + t.text +
                   "() outside src/store and src/trace is banned; use "
                   "trace::FileReader/FileWriter or the result store "
                   "(deliberate: aeep-lint: allow(raw-fs-call))");
  }
}

// --- rule: raw-socket ------------------------------------------------------
// Network I/O must go through server::Socket/Listener, which retry short
// transfers and EINTR and raise typed ServerErrors.
void check_raw_socket(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "socket" && t.text != "send" && t.text != "recv" &&
        t.text != "sendto" && t.text != "recvfrom")
      continue;
    if (!is_punct(code[i + 1], "(")) continue;
    // Member calls (sock.send_all-style helpers) are someone else's API;
    // the ban is on the global C functions.
    if (i > 0 && (is_punct(code[i - 1], ".") || is_punct(code[i - 1], "->")))
      continue;
    ctx.report(kRawSocket, t.line,
               "raw " + t.text +
                   "() outside src/server/socket.* is banned; use "
                   "server::Socket/Listener so short transfers raise a "
                   "typed error");
  }
}

// --- rule: mutex-guard -----------------------------------------------------
// A class holding a mutex member must annotate at least one member with
// AEEP_GUARDED_BY / AEEP_PT_GUARDED_BY — otherwise Clang's thread-safety
// analysis has nothing to check and the mutex guards only by convention.
void check_mutex_guard(FileContext& ctx) {
  const auto& code = ctx.code;

  struct ClassScope {
    std::size_t open_depth = 0;
    std::size_t mutex_line = 0;  ///< 0: no mutex member seen
    bool has_guard = false;
  };
  std::vector<ClassScope> stack;
  std::size_t depth = 0;
  bool pending_class = false;

  auto is_mutex_type = [](const std::string& s) {
    return s == "mutex" || s == "timed_mutex" || s == "recursive_mutex" ||
           s == "recursive_timed_mutex" || s == "shared_mutex" ||
           s == "shared_timed_mutex";
  };

  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (is_punct(t, "{")) {
      if (pending_class) {
        stack.push_back(ClassScope{depth, 0, false});
        pending_class = false;
      }
      ++depth;
      continue;
    }
    if (is_punct(t, "}")) {
      if (depth > 0) --depth;
      if (!stack.empty() && stack.back().open_depth == depth) {
        const ClassScope done = stack.back();
        stack.pop_back();
        if (done.mutex_line != 0 && !done.has_guard) {
          ctx.report(kMutexGuard, done.mutex_line,
                     "class has a mutex member but no AEEP_GUARDED_BY "
                     "sibling; the thread-safety analysis cannot protect "
                     "anything");
        }
      }
      continue;
    }
    // A declarator's '(' or a terminating ';' means the class/struct
    // keyword introduced a declaration, not a definition about to open.
    if (pending_class && (is_punct(t, ";") || is_punct(t, "(")))
      pending_class = false;
    if (t.kind != TokenKind::kIdentifier) continue;

    if ((t.text == "class" || t.text == "struct") &&
        !(i > 0 && is_ident(code[i - 1], "enum")))
      pending_class = true;

    if (stack.empty()) continue;
    // std::mutex (and cousins) member.
    if (is_mutex_type(t.text) && i >= 2 && is_punct(code[i - 1], "::") &&
        is_ident(code[i - 2], "std") && i + 1 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        stack.back().mutex_line == 0)
      stack.back().mutex_line = t.line;
    // aeep::Mutex member (the annotated wrapper).
    if (t.text == "Mutex" && i + 1 < code.size() &&
        code[i + 1].kind == TokenKind::kIdentifier &&
        stack.back().mutex_line == 0)
      stack.back().mutex_line = t.line;
    if (t.text == "AEEP_GUARDED_BY" || t.text == "AEEP_PT_GUARDED_BY")
      stack.back().has_guard = true;
  }
}

// --- rule: thread-detach ---------------------------------------------------
// A detached thread outlives all shutdown paths: nothing joins it, TSan
// cannot see its end, and the process exits under it. Keep the handle.
void check_thread_detach(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 2 < code.size(); ++i) {
    if ((is_punct(code[i], ".") || is_punct(code[i], "->")) &&
        is_ident(code[i + 1], "detach") && is_punct(code[i + 2], "(")) {
      ctx.report(kThreadDetach, code[i + 1].line,
                 ".detach() is banned; keep the handle and join it on "
                 "shutdown");
    }
  }
}

// --- rule: naked-new-delete ------------------------------------------------
// Raw new/delete in src/ bypasses RAII; the codebase's only sanctioned
// manual reuse is free-list code, which must carry an allow-comment.
void check_naked_new(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Token& t = code[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "new" && t.text != "delete") continue;
    if (i > 0 && is_ident(code[i - 1], "operator"))
      continue;  // operator new/delete overload declarations
    if (t.text == "delete" && i > 0 && is_punct(code[i - 1], "="))
      continue;  // `= delete;` deleted functions
    ctx.report(kNakedNew, t.line,
               "naked " + t.text +
                   " in src/ is banned; use std::make_unique / containers "
                   "(free-list code: aeep-lint: allow(naked-new-delete))");
  }
}

// --- rule: sleep-in-src ----------------------------------------------------
// A sleep in library code is either a poll loop that should block on a
// condition variable or a latency bomb on a hot path. Deliberate delays
// (backoff schedules, chaos injection) carry an allow-comment.
void check_sleep(FileContext& ctx) {
  const auto& code = ctx.code;
  for (const Token& t : code) {
    if (is_ident(t, "sleep_for") || is_ident(t, "sleep_until")) {
      ctx.report(kSleep, t.line,
                 t.text +
                     " in src/ is banned; wait on a condition variable "
                     "(deliberate delays: aeep-lint: allow(sleep-in-src))");
    }
  }
}

// --- rule: deque-in-hot-path -----------------------------------------------
// std::deque / std::queue under src/sim and src/server: the sweep pool and
// the job server dispatch on the lock-free aeep::MpmcQueue, and per-entry
// state belongs in dense SoA arrays — a node-based queue there reintroduces
// either a mutex-guarded hot path or pointer-chasing scans.
void check_hot_queue(FileContext& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i + 3 < code.size(); ++i) {
    if (!(is_ident(code[i], "std") && is_punct(code[i + 1], "::") &&
          (is_ident(code[i + 2], "deque") || is_ident(code[i + 2], "queue")) &&
          is_punct(code[i + 3], "<")))
      continue;
    ctx.report(kHotQueue, code[i + 2].line,
               "std::" + code[i + 2].text +
                   " in src/sim|src/server is banned; use aeep::MpmcQueue "
                   "for work hand-off or a dense SoA ring for per-entry "
                   "state (deliberate: aeep-lint: allow(deque-in-hot-path))");
  }
}

// --- rule: raw-clock -------------------------------------------------------
// Ad-hoc std::chrono::steady_clock::now() timing in src/ outside
// src/metrics: every latency measurement flows through metrics::now() /
// us_between / ScopedTimer so the reading lands in a Histogram the fleet
// can see, not in one call site's hand-rolled duration_cast. (The metrics
// clock wrapper itself is the one sanctioned user.)
void check_raw_clock(FileContext& ctx) {
  const auto& code = ctx.code;
  for (const Token& t : code) {
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "steady_clock" && t.text != "high_resolution_clock")
      continue;
    ctx.report(kRawClock, t.line,
               "raw std::chrono::" + t.text +
                   " in src/ is banned; time through metrics::now() / "
                   "metrics::ScopedTimer so the measurement lands in a "
                   "Histogram");
  }
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {kRawRand,
       "no rand()/srand(); all randomness flows from seeded Xorshift64Star"},
      {kOptionalValue,
       "no unchecked ).value() on optionals (stats Counter/Gauge exempt)"},
      {kStatsReset,
       "src/ headers declaring struct ...Stats must declare a reset path"},
      {kEccAlloc,
       "no std::vector-returning encode()/decode() under src/ecc/"},
      {kRawFileIo,
       "no raw fread()/fwrite() outside src/trace/io (tests exempt)"},
      {kRawFsCall,
       "no direct fopen/rename/remove outside src/store + src/trace "
       "(tests exempt)"},
      {kRawSocket,
       "no raw socket()/send()/recv() outside src/server/socket.*"},
      {kMutexGuard,
       "src/ classes with a mutex member need an AEEP_GUARDED_BY sibling"},
      {kThreadDetach, "no std::thread::detach(); join on shutdown"},
      {kNakedNew, "no naked new/delete in src/ outside free-list code"},
      {kSleep, "no sleep_for/sleep_until in src/; wait on a condvar"},
      {kHotQueue,
       "no std::deque/std::queue under src/sim|src/server; use MpmcQueue "
       "or a dense SoA ring"},
      {kRawClock,
       "no std::chrono::steady_clock outside src/metrics; time through "
       "metrics::now()/ScopedTimer"},
  };
  return catalog;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::string& source) {
  const std::vector<Token> tokens = lex(source);
  const AllowSet allows(tokens);
  std::vector<Token> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens)
    if (t.kind != TokenKind::kComment) code.push_back(t);

  std::vector<Finding> findings;
  FileContext ctx{path, code, allows, findings};

  const bool in_src = starts_with(path, "src/");
  const bool in_tests = starts_with(path, "tests/");

  check_raw_rand(ctx);
  check_optional_value(ctx);
  if (in_src && ends_with(path, ".hpp")) check_stats_reset(ctx);
  if (starts_with(path, "src/ecc/")) check_ecc_alloc(ctx);
  if (!in_tests && !starts_with(path, "src/trace/io."))
    check_raw_file_io(ctx);
  if (!in_tests && !starts_with(path, "src/store/") &&
      !starts_with(path, "src/trace/"))
    check_raw_fs_call(ctx);
  if (!starts_with(path, "src/server/socket.")) check_raw_socket(ctx);
  if (in_src && path != "src/common/mutex.hpp") check_mutex_guard(ctx);
  check_thread_detach(ctx);
  if (in_src) check_naked_new(ctx);
  if (in_src) check_sleep(ctx);
  if (starts_with(path, "src/sim/") || starts_with(path, "src/server/"))
    check_hot_queue(ctx);
  if (in_src && !starts_with(path, "src/metrics/")) check_raw_clock(ctx);

  return findings;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
         f.message;
}

}  // namespace aeep::analysis
