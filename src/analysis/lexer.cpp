#include "analysis/lexer.hpp"

namespace aeep::analysis {

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// String-literal prefixes that may precede a quote. R-suffixed forms
/// start a raw string instead of an escaped one.
bool is_string_prefix(const std::string& id, bool& raw) {
  if (id == "R" || id == "u8R" || id == "uR" || id == "UR" || id == "LR") {
    raw = true;
    return true;
  }
  raw = false;
  return id == "u8" || id == "u" || id == "U" || id == "L";
}

class Cursor {
 public:
  explicit Cursor(const std::string& src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  std::size_t line() const { return line_; }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  Cursor c(source);

  auto emit = [&](TokenKind kind, std::string text, std::size_t line) {
    out.push_back(Token{kind, std::move(text), line});
  };

  // Consume an escaped literal body up to the unescaped `quote`.
  auto take_quoted = [&](std::string& text, char quote) {
    while (!c.done()) {
      const char ch = c.take();
      text += ch;
      if (ch == '\\' && !c.done()) {
        text += c.take();  // escaped char, e.g. the quote or backslash
        continue;
      }
      if (ch == quote) return;
    }
  };

  // Consume a raw-string body: the opening `"` was taken; read the
  // delimiter up to `(`, then scan for `)delim"`.
  auto take_raw = [&](std::string& text) {
    std::string delim;
    while (!c.done() && c.peek() != '(') {
      const char ch = c.take();
      text += ch;
      delim += ch;
    }
    if (c.done()) return;
    text += c.take();  // '('
    const std::string close = ")" + delim + "\"";
    std::string window;
    while (!c.done()) {
      const char ch = c.take();
      text += ch;
      window += ch;
      if (window.size() > close.size())
        window.erase(window.begin(),
                     window.end() - static_cast<long>(close.size()));
      if (window == close) return;
    }
  };

  while (!c.done()) {
    const char ch = c.peek();
    const std::size_t line = c.line();

    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n' || ch == '\f' ||
        ch == '\v') {
      c.take();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      std::string text;
      while (!c.done() && c.peek() != '\n') text += c.take();
      emit(TokenKind::kComment, std::move(text), line);
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      std::string text;
      text += c.take();
      text += c.take();
      while (!c.done()) {
        const char body = c.take();
        text += body;
        if (body == '*' && c.peek() == '/') {
          text += c.take();
          break;
        }
      }
      emit(TokenKind::kComment, std::move(text), line);
      continue;
    }

    // Identifiers, keywords, and prefixed string literals.
    if (is_ident_start(ch)) {
      std::string id;
      while (!c.done() && is_ident_char(c.peek())) id += c.take();
      bool raw = false;
      if (c.peek() == '"' && is_string_prefix(id, raw)) {
        std::string text = id;
        text += c.take();  // opening quote
        if (raw) take_raw(text);
        else take_quoted(text, '"');
        emit(TokenKind::kString, std::move(text), line);
        continue;
      }
      if (c.peek() == '\'' && (id == "u8" || id == "u" || id == "U" ||
                               id == "L")) {
        std::string text = id;
        text += c.take();
        take_quoted(text, '\'');
        emit(TokenKind::kCharLiteral, std::move(text), line);
        continue;
      }
      emit(TokenKind::kIdentifier, std::move(id), line);
      continue;
    }

    // Numbers (pp-number: digits, letters, ., ', and +/- after eEpP) —
    // lexing 1'000'000 as one token keeps the ' out of char-literal logic.
    if (is_digit(ch) || (ch == '.' && is_digit(c.peek(1)))) {
      std::string text;
      text += c.take();
      while (!c.done()) {
        const char nc = c.peek();
        if (is_ident_char(nc) || nc == '.') {
          text += c.take();
          continue;
        }
        if (nc == '\'' && is_ident_char(c.peek(1))) {
          text += c.take();  // digit separator
          continue;
        }
        if ((nc == '+' || nc == '-') && !text.empty()) {
          const char prev = text.back();
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            text += c.take();
            continue;
          }
        }
        break;
      }
      emit(TokenKind::kNumber, std::move(text), line);
      continue;
    }

    // Plain string / char literals.
    if (ch == '"') {
      std::string text;
      text += c.take();
      take_quoted(text, '"');
      emit(TokenKind::kString, std::move(text), line);
      continue;
    }
    if (ch == '\'') {
      std::string text;
      text += c.take();
      take_quoted(text, '\'');
      emit(TokenKind::kCharLiteral, std::move(text), line);
      continue;
    }

    // Punctuation. Only the two operators rules match on ("::", "->")
    // are kept multi-character; everything else is one char.
    if (ch == ':' && c.peek(1) == ':') {
      c.take();
      c.take();
      emit(TokenKind::kPunct, "::", line);
      continue;
    }
    if (ch == '-' && c.peek(1) == '>') {
      c.take();
      c.take();
      emit(TokenKind::kPunct, "->", line);
      continue;
    }
    emit(TokenKind::kPunct, std::string(1, c.take()), line);
  }

  return out;
}

}  // namespace aeep::analysis
