// Online recovery under live strike pressure: sweep the accelerated strike
// rate across the three protection schemes and measure what error handling
// costs while the workload runs — recovery outcomes, the IPC lost to
// correction stalls / re-fetch round trips / recovery re-fills, and the
// capacity surrendered to way retirement.
//
// The rate-scale ladder multiplies the raw 90nm-class per-bit strike rate
// (~1e-19 per bit-cycle) up to where a ~10^6-cycle run sees real work; 0 is
// the strike-free baseline each scheme's IPC delta is measured against.
//
//   online_recovery [--benchmark=gzip] [--instructions=400K] [--mbu=0.25]
//                   [--threshold=8] [--due-policy=drop]
#include "bench_util.hpp"

using namespace aeep;

namespace {

struct Row {
  double rate_scale;
  sim::RunResult result;
};

Row run_once(const std::string& bench_name, protect::SchemeKind scheme,
             double rate_scale, double mbu, unsigned threshold,
             protect::DuePolicy policy, const bench::CommonOptions& opt) {
  sim::ExperimentOptions eo;
  eo.scheme = scheme;
  eo.instructions = opt.instructions;
  eo.warmup_instructions = 0;  // strike stats accumulate from cycle 0
  eo.seed = opt.seed;
  eo.cleaning_interval = u64{1} << 18;
  eo.strikes_enabled = rate_scale > 0.0;
  eo.strike_rate_scale = rate_scale;
  eo.strike_double_bit_fraction = mbu;
  eo.retirement_threshold = threshold;
  eo.due_policy = policy;
  Row row;
  row.rate_scale = rate_scale;
  row.result = sim::run_benchmark(bench_name, eo);
  return row;
}

std::string rate_label(double scale) {
  if (scale <= 0.0) return "off";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0e", scale);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  opt.instructions = args.get_u64("instructions", 400'000);
  const std::string bench_name = args.get("benchmark", "gzip");
  const double mbu = args.get_double("mbu", 0.25);
  const unsigned threshold =
      static_cast<unsigned>(args.get_u64("threshold", 8));
  const std::string due = args.get("due-policy", "drop");
  const protect::DuePolicy policy =
      due == "panic"    ? protect::DuePolicy::kPanic
      : due == "poison" ? protect::DuePolicy::kPoison
                        : protect::DuePolicy::kDropRefetch;
  bench::reject_unknown_flags(args);
  opt.warmup = 0;
  bench::print_header("Online recovery: strike-rate sweep", opt);
  std::printf("benchmark %s, MBU fraction %.2f, retirement threshold %u, "
              "DUE policy %s\n\n",
              bench_name.c_str(), mbu, threshold, to_string(policy));

  const std::vector<double> ladder = {0.0, 5e8, 2e9, 8e9};
  const std::vector<std::pair<protect::SchemeKind, const char*>> schemes = {
      {protect::SchemeKind::kUniformEcc, "uniform-ecc"},
      {protect::SchemeKind::kNonUniform, "non-uniform"},
      {protect::SchemeKind::kSharedEccArray, "shared-ecc"},
  };

  TextTable t({"scheme", "rate", "IPC", "dIPC%", "corr", "refetch", "DUE",
               "dropped", "retired", "stall-cyc"});
  for (const auto& [scheme, name] : schemes) {
    double base_ipc = 0.0;
    for (double scale : ladder) {
      const Row row =
          run_once(bench_name, scheme, scale, mbu, threshold, policy, opt);
      const double ipc = row.result.ipc();
      if (scale == 0.0) base_ipc = ipc;
      const double dipc =
          base_ipc > 0.0 ? 100.0 * (ipc - base_ipc) / base_ipc : 0.0;
      const auto& rec = row.result.recovery;
      t.add_row({name, rate_label(scale), TextTable::fmt(ipc, 3),
                 TextTable::fmt(dipc, 2), std::to_string(rec.corrected),
                 std::to_string(rec.refetched), std::to_string(rec.due_events),
                 std::to_string(rec.lines_dropped),
                 std::to_string(row.result.retired_ways),
                 std::to_string(rec.stall_cycles)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("dIPC%% is relative to the same scheme with strikes off; the\n"
              "loss combines recovery stalls, re-fetch bus traffic, and the\n"
              "misses added by dropped lines and retired capacity.\n");
  return 0;
}
