// Online recovery under live strike pressure: sweep the accelerated strike
// rate across the three protection schemes and measure what error handling
// costs while the workload runs — recovery outcomes, the IPC lost to
// correction stalls / re-fetch round trips / recovery re-fills, and the
// capacity surrendered to way retirement.
//
// The rate-scale ladder multiplies the raw 90nm-class per-bit strike rate
// (~1e-19 per bit-cycle) up to where a ~10^6-cycle run sees real work; 0 is
// the strike-free baseline each scheme's IPC delta is measured against.
//
//   online_recovery [--benchmark=gzip] [--instructions=400K] [--mbu=0.25]
//                   [--threshold=8] [--due-policy=drop]
//                   [--jobs=N] [--json=out.json]
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

namespace {

std::string rate_label(double scale) {
  if (scale <= 0.0) return "off";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0e", scale);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  bench::require_exec_frontend(opt, "online strike campaigns need the live core clock");
  opt.instructions = args.get_u64("instructions", 400'000);
  const std::string bench_name = args.get("benchmark", "gzip");
  const double mbu = args.get_double("mbu", 0.25);
  const unsigned threshold =
      static_cast<unsigned>(args.get_u64("threshold", 8));
  const std::string due = args.get("due-policy", "drop");
  const protect::DuePolicy policy =
      due == "panic"    ? protect::DuePolicy::kPanic
      : due == "poison" ? protect::DuePolicy::kPoison
                        : protect::DuePolicy::kDropRefetch;
  bench::reject_unknown_flags(args);
  opt.warmup = 0;
  bench::print_header("Online recovery: strike-rate sweep", opt);
  std::printf("benchmark %s, MBU fraction %.2f, retirement threshold %u, "
              "DUE policy %s\n\n",
              bench_name.c_str(), mbu, threshold, to_string(policy));

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("online_recovery", opt, jobs);
  json.set_config("benchmark", JsonValue::string(bench_name));
  json.set_config("mbu", JsonValue::number(mbu));
  json.set_config("threshold", JsonValue::number(u64{threshold}));
  json.set_config("due_policy", JsonValue::string(to_string(policy)));

  const std::vector<double> ladder = {0.0, 5e8, 2e9, 8e9};
  const std::vector<std::pair<protect::SchemeKind, const char*>> schemes = {
      {protect::SchemeKind::kUniformEcc, "uniform-ecc"},
      {protect::SchemeKind::kNonUniform, "non-uniform"},
      {protect::SchemeKind::kSharedEccArray, "shared-ecc"},
  };

  std::vector<sim::SweepJob> grid;
  for (const auto& [scheme, name] : schemes) {
    for (double scale : ladder) {
      sim::ExperimentOptions eo;
      eo.scheme = scheme;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = 0;  // strike stats accumulate from cycle 0
      eo.seed = opt.seed;
      eo.cleaning_interval = u64{1} << 18;
      eo.strikes_enabled = scale > 0.0;
      eo.strike_rate_scale = scale;
      eo.strike_double_bit_fraction = mbu;
      eo.retirement_threshold = threshold;
      eo.due_policy = policy;
      grid.push_back(
          {bench_name, eo, std::string(name) + "@" + rate_label(scale)});
    }
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable t({"scheme", "rate", "IPC", "dIPC%", "corr", "refetch", "DUE",
               "dropped", "retired", "stall-cyc"});
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    double base_ipc = 0.0;
    for (std::size_t l = 0; l < ladder.size(); ++l) {
      const sim::RunResult& r = results[s * ladder.size() + l];
      const double scale = ladder[l];
      const double ipc = r.ipc();
      if (scale == 0.0) base_ipc = ipc;
      const double dipc =
          base_ipc > 0.0 ? 100.0 * (ipc - base_ipc) / base_ipc : 0.0;
      const auto& rec = r.recovery;
      t.add_row({schemes[s].second, rate_label(scale), TextTable::fmt(ipc, 3),
                 TextTable::fmt(dipc, 2), std::to_string(rec.corrected),
                 std::to_string(rec.refetched), std::to_string(rec.due_events),
                 std::to_string(rec.lines_dropped),
                 std::to_string(r.retired_ways),
                 std::to_string(rec.stall_cycles)});
      json.add_cell(bench_name, grid[s * ladder.size() + l].tag,
                    bench::run_result_metrics(r));
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("dIPC%% is relative to the same scheme with strikes off; the\n"
              "loss combines recovery stalls, re-fetch bus traffic, and the\n"
              "misses added by dropped lines and retired capacity.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
