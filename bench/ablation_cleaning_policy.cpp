// Ablation: cleaning-policy comparison at a fixed interval — the paper's
// written-bit heuristic vs naive write-back-everything, a cache-decay-style
// 2-bit counter (Kaxiras et al., the paper's inspiration), and eager
// write-back on an idle bus (Lee et al., cited as related work). Shows the
// dirty%-vs-traffic frontier each policy reaches.
//
//   ablation_cleaning_policy [--interval=1M] [--suite=all] ...
#include "bench_util.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Ablation: cleaning policies", opt);
  std::printf("cleaning interval: %s cycles\n\n",
              bench::interval_label(interval).c_str());

  struct Policy {
    protect::CleaningPolicy kind;
    unsigned decay_threshold;
  };
  const std::vector<Policy> policies = {
      {protect::CleaningPolicy::kWrittenBit, 2},
      {protect::CleaningPolicy::kNaive, 2},
      {protect::CleaningPolicy::kDecayCounter, 2},
      {protect::CleaningPolicy::kDecayCounter, 4},
      {protect::CleaningPolicy::kEagerIdle, 2},
  };

  TextTable table({"policy", "avg dirty%", "Clean-WB/ls", "total WB/ls",
                   "avg IPC"});
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  for (const auto& pol : policies) {
    double dirty = 0, cleanwb = 0, total = 0, ipc = 0;
    for (const auto& name : benchmarks) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;
      eo.cleaning_interval = interval;
      eo.cleaning_policy = pol.kind;
      eo.decay_threshold = pol.decay_threshold;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      const sim::RunResult r = sim::run_benchmark(name, eo);
      dirty += r.avg_dirty_fraction;
      const double ls = static_cast<double>(r.core.loads_stores());
      cleanwb += ls ? static_cast<double>(r.wb_cleaning) / ls : 0.0;
      total += r.wb_per_ls();
      ipc += r.ipc();
    }
    const double n = static_cast<double>(benchmarks.size());
    std::string label = to_string(pol.kind);
    if (pol.kind == protect::CleaningPolicy::kDecayCounter)
      label += "(t=" + std::to_string(pol.decay_threshold) + ")";
    table.add_row({label, TextTable::pct(dirty / n, 1),
                   TextTable::pct(cleanwb / n, 2), TextTable::pct(total / n, 2),
                   TextTable::fmt(ipc / n, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nwritten-bit is the paper's 1-bit decay counter: nearly the"
              " dirty reduction of naive cleaning\nwith less premature"
              " traffic; higher decay thresholds trade dirty%% for traffic.\n");
  return 0;
}
