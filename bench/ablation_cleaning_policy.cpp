// Ablation: cleaning-policy comparison at a fixed interval — the paper's
// written-bit heuristic vs naive write-back-everything, a cache-decay-style
// 2-bit counter (Kaxiras et al., the paper's inspiration), and eager
// write-back on an idle bus (Lee et al., cited as related work). Shows the
// dirty%-vs-traffic frontier each policy reaches.
//
//   ablation_cleaning_policy [--interval=1M] [--suite=all]
//                            [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Ablation: cleaning policies", opt);
  std::printf("cleaning interval: %s cycles\n\n",
              bench::interval_label(interval).c_str());

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("ablation_cleaning_policy", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  struct Policy {
    protect::CleaningPolicy kind;
    unsigned decay_threshold;
    std::string label;
  };
  std::vector<Policy> policies = {
      {protect::CleaningPolicy::kWrittenBit, 2, ""},
      {protect::CleaningPolicy::kNaive, 2, ""},
      {protect::CleaningPolicy::kDecayCounter, 2, ""},
      {protect::CleaningPolicy::kDecayCounter, 4, ""},
      {protect::CleaningPolicy::kEagerIdle, 2, ""},
  };
  for (auto& pol : policies) {
    pol.label = to_string(pol.kind);
    if (pol.kind == protect::CleaningPolicy::kDecayCounter)
      pol.label += "(t=" + std::to_string(pol.decay_threshold) + ")";
  }

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& pol : policies) {
    for (const auto& name : benchmarks) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;
      eo.cleaning_interval = interval;
      eo.cleaning_policy = pol.kind;
      eo.decay_threshold = pol.decay_threshold;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      bench::apply_frontend(eo, opt);
      grid.push_back({name, eo, pol.label});
    }
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"policy", "avg dirty%", "Clean-WB/ls", "total WB/ls",
                   "avg IPC"});
  const double n = static_cast<double>(benchmarks.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    double dirty = 0, cleanwb = 0, total = 0, ipc = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
      const sim::RunResult& r = results[p * benchmarks.size() + b];
      dirty += r.avg_dirty_fraction;
      const double ls = static_cast<double>(r.core.loads_stores());
      cleanwb += ls ? static_cast<double>(r.wb_cleaning) / ls : 0.0;
      total += r.wb_per_ls();
      ipc += r.ipc();
      json.add_cell(benchmarks[b], policies[p].label,
                    bench::run_result_metrics(r));
    }
    table.add_row({policies[p].label, TextTable::pct(dirty / n, 1),
                   TextTable::pct(cleanwb / n, 2), TextTable::pct(total / n, 2),
                   TextTable::fmt(ipc / n, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nwritten-bit is the paper's 1-bit decay counter: nearly the"
              " dirty reduction of naive cleaning\nwith less premature"
              " traffic; higher decay thresholds trade dirty%% for traffic.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
