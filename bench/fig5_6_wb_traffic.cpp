// Figures 5 & 6: write-back traffic as a percentage of all loads/stores for
// each cleaning interval vs the original configuration, FP (Fig. 5) and INT
// (Fig. 6) benchmarks. The paper's finding: 1M-interval cleaning approaches
// org traffic (FP 1.13% vs 1.08%; INT 1.16% vs 1.12%), while aggressive
// small intervals inflate it with premature write-backs.
//
//   fig5_6_wb_traffic [--suite=fp|int|all] [--instructions=2M] ...
#include "bench_util.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::reject_unknown_flags(args);
  bench::print_header(
      "Figures 5/6: write-back traffic (% of loads/stores) vs interval", opt);

  const auto intervals = bench::cleaning_intervals();
  std::vector<std::string> header{"benchmark"};
  for (const u64 i : intervals) header.push_back(bench::interval_label(i));
  header.push_back("org");
  TextTable table(header);

  std::vector<double> sums(intervals.size() + 1, 0.0);
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  for (const auto& name : benchmarks) {
    std::vector<std::string> row{name};
    for (std::size_t k = 0; k <= intervals.size(); ++k) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;
      eo.cleaning_interval = k < intervals.size() ? intervals[k] : 0;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      const sim::RunResult r = sim::run_benchmark(name, eo);
      sums[k] += r.wb_per_ls();
      row.push_back(TextTable::pct(r.wb_per_ls(), 2));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (double s : sums)
    avg.push_back(TextTable::pct(s / static_cast<double>(benchmarks.size()), 2));
  table.add_row(std::move(avg));

  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: 1M cleaning approaches org (fp: 1.13%% vs 1.08%%,"
      " int: 1.16%% vs 1.12%%); 64K is noticeably more aggressive.\n");
  return 0;
}
