// Figures 5 & 6: write-back traffic as a percentage of all loads/stores for
// each cleaning interval vs the original configuration, FP (Fig. 5) and INT
// (Fig. 6) benchmarks. The paper's finding: 1M-interval cleaning approaches
// org traffic (FP 1.13% vs 1.08%; INT 1.16% vs 1.12%), while aggressive
// small intervals inflate it with premature write-backs.
//
//   fig5_6_wb_traffic [--suite=fp|int|all] [--instructions=2M]
//                     [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::reject_unknown_flags(args);
  bench::print_header(
      "Figures 5/6: write-back traffic (% of loads/stores) vs interval", opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("fig5_6_wb_traffic", opt, jobs);

  const auto intervals = bench::cleaning_intervals();
  const std::size_t cols = intervals.size() + 1;  // ladder + "org"
  std::vector<std::string> header{"benchmark"};
  for (const u64 i : intervals) header.push_back(bench::interval_label(i));
  header.push_back("org");
  TextTable table(header);

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    for (std::size_t k = 0; k < cols; ++k) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;
      eo.cleaning_interval = k < intervals.size() ? intervals[k] : 0;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      bench::apply_frontend(eo, opt);
      grid.push_back({name, eo, bench::interval_label(eo.cleaning_interval)});
    }
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  std::vector<double> sums(cols, 0.0);
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    std::vector<std::string> row{benchmarks[b]};
    for (std::size_t k = 0; k < cols; ++k) {
      const sim::RunResult& r = results[b * cols + k];
      sums[k] += r.wb_per_ls();
      row.push_back(TextTable::pct(r.wb_per_ls(), 2));
      json.add_cell(benchmarks[b], grid[b * cols + k].tag,
                    bench::run_result_metrics(r));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (double s : sums)
    avg.push_back(TextTable::pct(s / static_cast<double>(benchmarks.size()), 2));
  table.add_row(std::move(avg));

  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: 1M cleaning approaches org (fp: 1.13%% vs 1.08%%,"
      " int: 1.16%% vs 1.12%%); 64K is noticeably more aggressive.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
