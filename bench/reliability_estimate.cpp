// Reliability projection: combines the measured dirty/clean residency
// profile of a run with standard double-strike-window arithmetic to compare
// the expected SDC and DUE FIT of parity-only, the paper's non-uniform
// scheme, and uniform ECC — i.e. what the 59% area saving costs (and does
// not cost) in reliability, and why cleaning helps reliability too (less
// dirty residency = smaller DUE window).
//
//   reliability_estimate [--benchmark=swim] [--fitlambda=1e-19] ...
#include "bench_util.hpp"
#include "fault/reliability.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  const std::string bench_name = args.get("benchmark", "swim");
  const double lambda = args.get_double("fitlambda", 1e-19);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Reliability projection (SDC/DUE windows)", opt);

  auto run_with = [&](Cycle clean_interval) {
    sim::ExperimentOptions eo;
    eo.scheme = protect::SchemeKind::kNonUniform;
    eo.cleaning_interval = clean_interval;
    eo.instructions = opt.instructions;
    eo.warmup_instructions = opt.warmup;
    eo.seed = opt.seed;
    bench::apply_frontend(eo, opt);
    return sim::run_benchmark(bench_name, eo);
  };
  const sim::RunResult org = run_with(0);
  const sim::RunResult cleaned = run_with(interval);

  auto profile_of = [&](const sim::RunResult& r) {
    fault::ResidencyProfile pr;
    const double total = static_cast<double>(cache::kL2Geometry.total_lines());
    pr.avg_dirty_lines = r.avg_dirty_fraction * total;
    pr.avg_clean_lines = total - pr.avg_dirty_lines;
    // Residency between validations: a line is re-validated whenever it is
    // re-fetched or written back; approximate with cycles / turnover.
    const double turnover =
        std::max<double>(1.0, static_cast<double>(r.l2.fills + r.wb_total()));
    pr.clean_residency = static_cast<double>(r.core.cycles) * total / turnover;
    pr.dirty_residency = pr.clean_residency;
    return pr;
  };

  fault::ReliabilityParams params;
  params.lambda_per_bit_cycle = lambda;

  TextTable table({"configuration", "SDC rate/cycle", "DUE rate/cycle",
                   "recovered/cycle"});
  auto add = [&](const fault::ReliabilityEstimate& e, const char* suffix) {
    char sdc[32], due[32], rec[32];
    std::snprintf(sdc, sizeof sdc, "%.3e", e.sdc_rate);
    std::snprintf(due, sizeof due, "%.3e", e.due_rate);
    std::snprintf(rec, sizeof rec, "%.3e", e.recovered_rate);
    table.add_row({e.scheme + std::string(suffix), sdc, due, rec});
  };
  const auto pr_org = profile_of(org);
  const auto pr_cln = profile_of(cleaned);
  add(fault::estimate_parity_only(pr_org, params), "");
  add(fault::estimate_uniform_ecc(pr_org, params), "");
  add(fault::estimate_non_uniform(pr_org, params), ", no cleaning");
  add(fault::estimate_non_uniform(pr_cln, params), ", 1M cleaning");
  std::printf("%s", table.render().c_str());

  std::printf("\nreading the table:\n"
              " - parity-only loses dirty data on ANY strike: the DUE column"
              " is why write-back\n   caches cannot ship with parity alone;\n"
              " - the paper's scheme matches uniform ECC's DUE and adds only"
              " the clean-line\n   same-word-double SDC term, at 59%% less"
              " storage;\n"
              " - cleaning shrinks the dirty population, cutting the DUE"
              " window further.\n");
  return 0;
}
