// Figure 8: write-back traffic (% of loads/stores) under the full scheme,
// split into Clean-WB (dirty-line cleaning), WB (normal replacement
// write-backs) and ECC-WB (ECC-entry evictions). The paper's finding:
// ECC-WB dominates; totals average 1.20% (FP) and 1.19% (INT) vs the
// original 1.08% / 1.12% — a small increase.
//
//   fig8_wb_breakdown [--instructions=2M] [--interval=1M]
//                     [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Figure 8: write-back breakdown, full proposed scheme",
                      opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("fig8_wb_breakdown", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    sim::ExperimentOptions org;
    org.scheme = protect::SchemeKind::kUniformEcc;
    org.instructions = opt.instructions;
    org.warmup_instructions = opt.warmup;
    org.seed = opt.seed;
    bench::apply_frontend(org, opt);
    grid.push_back({name, org, "org"});

    sim::ExperimentOptions ours = org;
    ours.scheme = protect::SchemeKind::kSharedEccArray;
    ours.ecc_entries_per_set = 1;
    ours.cleaning_interval = interval;
    grid.push_back({name, ours, "proposed"});
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"benchmark", "suite", "Clean-WB", "WB", "ECC-WB", "total",
                   "org total"});
  double sum_total = 0.0, sum_org = 0.0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const sim::RunResult& o = results[2 * i];
    const sim::RunResult& r = results[2 * i + 1];
    const double ls = static_cast<double>(r.core.loads_stores());
    auto pct_of_ls = [&](u64 n) {
      return ls ? static_cast<double>(n) / ls : 0.0;
    };
    sum_total += r.wb_per_ls();
    sum_org += o.wb_per_ls();
    table.add_row({benchmarks[i], r.floating_point ? "fp" : "int",
                   TextTable::pct(pct_of_ls(r.wb_cleaning), 2),
                   TextTable::pct(pct_of_ls(r.wb_replacement), 2),
                   TextTable::pct(pct_of_ls(r.wb_ecc), 2),
                   TextTable::pct(r.wb_per_ls(), 2),
                   TextTable::pct(o.wb_per_ls(), 2)});
    json.add_cell(benchmarks[i], "org", bench::run_result_metrics(o));
    json.add_cell(benchmarks[i], "proposed", bench::run_result_metrics(r));
  }
  std::printf("%s", table.render().c_str());
  const double n = static_cast<double>(benchmarks.size());
  std::printf("\naverage total: %s vs org %s   (paper: 1.20%%/1.19%% vs"
              " 1.08%%/1.12%%; ECC-WB dominates)\n",
              TextTable::pct(sum_total / n, 2).c_str(),
              TextTable::pct(sum_org / n, 2).c_str());
  return json.write(opt.json_path) ? 0 : 1;
}
