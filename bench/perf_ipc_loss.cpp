// §5.2 performance results: IPC loss of the full proposed scheme (shared
// ECC array + 1M cleaning) relative to the conventional configuration, from
// the extra write-back traffic on the split-transaction bus. The paper
// reports 0.14% (FP) and 0.65% (INT) average loss.
//
//   perf_ipc_loss [--instructions=2M] [--interval=1M] ...
#include "bench_util.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("§5.2: IPC loss of the proposed scheme", opt);

  TextTable table({"benchmark", "suite", "IPC org", "IPC proposed", "loss"});
  double fp_loss = 0.0, int_loss = 0.0;
  unsigned fp_n = 0, int_n = 0;
  for (const auto& name : bench::suite_benchmarks(opt.suite)) {
    sim::ExperimentOptions org;
    org.scheme = protect::SchemeKind::kUniformEcc;
    org.instructions = opt.instructions;
    org.warmup_instructions = opt.warmup;
    org.seed = opt.seed;
    const sim::RunResult o = sim::run_benchmark(name, org);

    sim::ExperimentOptions ours = org;
    ours.scheme = protect::SchemeKind::kSharedEccArray;
    ours.ecc_entries_per_set = 1;
    ours.cleaning_interval = interval;
    const sim::RunResult r = sim::run_benchmark(name, ours);

    const double loss = (o.ipc() - r.ipc()) / o.ipc();
    if (r.floating_point) {
      fp_loss += loss;
      ++fp_n;
    } else {
      int_loss += loss;
      ++int_n;
    }
    table.add_row({name, r.floating_point ? "fp" : "int",
                   TextTable::fmt(o.ipc(), 3), TextTable::fmt(r.ipc(), 3),
                   TextTable::pct(loss, 2)});
  }
  std::printf("%s", table.render().c_str());
  if (fp_n)
    std::printf("\naverage FP loss : %s  (paper: 0.14%%)",
                TextTable::pct(fp_loss / fp_n, 2).c_str());
  if (int_n)
    std::printf("\naverage INT loss: %s  (paper: 0.65%%)",
                TextTable::pct(int_loss / int_n, 2).c_str());
  std::printf("\n");
  return 0;
}
