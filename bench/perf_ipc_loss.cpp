// §5.2 performance results: IPC loss of the full proposed scheme (shared
// ECC array + 1M cleaning) relative to the conventional configuration, from
// the extra write-back traffic on the split-transaction bus. The paper
// reports 0.14% (FP) and 0.65% (INT) average loss.
//
//   perf_ipc_loss [--instructions=2M] [--interval=1M]
//                 [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::require_exec_frontend(opt, "IPC loss is a core-timing metric");
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("§5.2: IPC loss of the proposed scheme", opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("perf_ipc_loss", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    sim::ExperimentOptions org;
    org.scheme = protect::SchemeKind::kUniformEcc;
    org.instructions = opt.instructions;
    org.warmup_instructions = opt.warmup;
    org.seed = opt.seed;
    grid.push_back({name, org, "org"});

    sim::ExperimentOptions ours = org;
    ours.scheme = protect::SchemeKind::kSharedEccArray;
    ours.ecc_entries_per_set = 1;
    ours.cleaning_interval = interval;
    grid.push_back({name, ours, "proposed"});
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"benchmark", "suite", "IPC org", "IPC proposed", "loss"});
  double fp_loss = 0.0, int_loss = 0.0;
  unsigned fp_n = 0, int_n = 0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const sim::RunResult& o = results[2 * i];
    const sim::RunResult& r = results[2 * i + 1];
    const double loss = (o.ipc() - r.ipc()) / o.ipc();
    if (r.floating_point) {
      fp_loss += loss;
      ++fp_n;
    } else {
      int_loss += loss;
      ++int_n;
    }
    table.add_row({benchmarks[i], r.floating_point ? "fp" : "int",
                   TextTable::fmt(o.ipc(), 3), TextTable::fmt(r.ipc(), 3),
                   TextTable::pct(loss, 2)});
    json.add_cell(benchmarks[i], "org", bench::run_result_metrics(o));
    json.add_cell(benchmarks[i], "proposed", bench::run_result_metrics(r));
  }
  std::printf("%s", table.render().c_str());
  if (fp_n)
    std::printf("\naverage FP loss : %s  (paper: 0.14%%)",
                TextTable::pct(fp_loss / fp_n, 2).c_str());
  if (int_n)
    std::printf("\naverage INT loss: %s  (paper: 0.65%%)",
                TextTable::pct(int_loss / int_n, 2).c_str());
  std::printf("\n");
  return json.write(opt.json_path) ? 0 : 1;
}
