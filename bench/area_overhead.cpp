// §5.2 area numbers: protection-storage overhead of the conventional
// uniform-ECC L2 (132 KB) vs the proposed scheme (54 KB) — a 59% reduction —
// with the full component breakdown, plus the §3.1 motivating estimate and
// a geometry sweep showing how the saving scales with cache size and
// associativity.
//
//   area_overhead
#include <cstdio>

#include "bench_util.hpp"
#include "protect/area_model.hpp"

using namespace aeep;

namespace {

void print_report(const protect::AreaReport& r) {
  std::printf("%s\n", r.scheme.c_str());
  for (const auto& c : r.components) {
    std::printf("  %-28s %8.1f KB\n", c.name.c_str(),
                static_cast<double>(c.bits) / 8.0 / 1024.0);
  }
  std::printf("  %-28s %8.1f KB\n", "TOTAL", r.total_kib());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::reject_unknown_flags(args);
  std::printf("=== Area overhead for error protection (paper §5.2) ===\n\n");

  const cache::CacheGeometry l2 = cache::kL2Geometry;
  const auto conv = protect::conventional_area(l2);
  const auto prop = protect::proposed_area(l2, 1);

  print_report(conv);
  std::printf("\n");
  print_report(prop);
  std::printf("\nreduction: %.1f%%   (paper: 59%%, 132KB -> 54KB)\n",
              100.0 * prop.reduction_vs(conv));

  // §3.1 motivating estimate: parity everywhere + ECC sized for the average
  // dirty population (51.6% of lines) — "saving 48KB".
  const auto motiv = protect::non_uniform_area(l2, 0.516);
  std::printf("\n§3.1 estimate with 51.6%% dirty lines: %.1f KB (vs %.1f KB"
              " conventional)\n",
              motiv.total_kib(), conv.total_kib());

  // Geometry sweep: the saving grows with associativity (one shared entry
  // replaces `ways` per-way ECC arrays) and is stable across sizes.
  std::printf("\ngeometry sweep (1 ECC entry per set):\n");
  TextTable table({"L2 size", "ways", "conventional", "proposed", "reduction"});
  for (const u64 size : {u64{512} * KiB, u64{1} * MiB, u64{2} * MiB, u64{4} * MiB}) {
    for (const unsigned ways : {2u, 4u, 8u}) {
      cache::CacheGeometry g{size, ways, 64};
      const auto c = protect::conventional_area(g);
      const auto p = protect::proposed_area(g, 1);
      table.add_row({std::to_string(size / KiB) + "KB", std::to_string(ways),
                     TextTable::fmt(c.total_kib(), 1) + "KB",
                     TextTable::fmt(p.total_kib(), 1) + "KB",
                     TextTable::pct(p.reduction_vs(c), 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
