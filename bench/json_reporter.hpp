// Machine-readable results for the figure benches (--json=<path>).
//
// Every bench that accepts the common options can hand its per-cell metrics
// to a JsonReporter and get a stable, diffable JSON file: insertion-ordered
// keys, a fixed top-level schema, and one "cells" entry per (benchmark, tag)
// pair. CI diffs the key structure of a fresh smoke run against the
// committed BENCH_sweep.json to catch schema drift.
//
// Schema (version 2):
//   {
//     "schema_version": 2,
//     "experiment":     "<bench name>",
//     "git_rev":        "<short rev or 'unknown'>",
//     "jobs":           <worker count used>,
//     "wall_clock_seconds": <double>,
//     "config":         { instructions, warmup, seed, suite, ... },
//     "cells": [ { "benchmark": ..., "tag": ...,
//                  "wall_clock_seconds": <double>, "metrics": {...} }, ... ]
//   }
// v2 adds the per-cell wall_clock_seconds: each cell's own compute time
// (0.0 when the bench has no per-cell timing). Consumers comparing cells
// for value identity across worker counts must strip it first — it is the
// one field that legitimately differs between otherwise bit-exact runs.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "sim/result_json.hpp"
#include "sim/system.hpp"

namespace aeep::bench {

/// Best-effort short git revision; "unknown" outside a work tree.
inline std::string git_short_rev() {
  std::string rev = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof(buf), p)) {
      std::string s(buf);
      while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
      if (!s.empty()) rev = s;
    }
    ::pclose(p);
  }
#endif
  return rev;
}

/// The per-run metrics every bench exports, in one stable key order —
/// the same rendering the aeep_served wire protocol uses, so a bench cell
/// and a server job result are key-for-key comparable.
inline JsonValue run_result_metrics(const sim::RunResult& r) {
  return sim::run_result_json(r);
}

/// Accumulates one bench invocation's results and writes the --json file.
class JsonReporter {
 public:
  JsonReporter(std::string experiment, const CommonOptions& o, unsigned jobs) {
    root_ = JsonValue::object();
    root_.set("schema_version", JsonValue::number(u64{2}));
    root_.set("experiment", JsonValue::string(std::move(experiment)));
    root_.set("git_rev", JsonValue::string(git_short_rev()));
    root_.set("jobs", JsonValue::number(u64{jobs}));
    root_.set("wall_clock_seconds", JsonValue::number(0.0));
    JsonValue config = JsonValue::object();
    config.set("instructions", JsonValue::number(o.instructions));
    config.set("warmup", JsonValue::number(o.warmup));
    config.set("seed", JsonValue::number(o.seed));
    config.set("suite", JsonValue::string(o.suite));
    config.set("frontend", JsonValue::string(o.frontend));
    root_.set("config", std::move(config));
    root_.set("cells", JsonValue::array());
    start_ = std::chrono::steady_clock::now();
  }

  /// Add a bench-specific configuration key (sweep axis values etc.).
  void set_config(const std::string& key, JsonValue v) {
    root_.find("config")->set(key, std::move(v));
  }

  /// Record one result cell. `wall_seconds` is the cell's own compute time
  /// (schema v2); benches without per-cell timing leave the 0.0 default.
  void add_cell(const std::string& benchmark, const std::string& tag,
                JsonValue metrics, double wall_seconds = 0.0) {
    JsonValue cell = JsonValue::object();
    cell.set("benchmark", JsonValue::string(benchmark));
    cell.set("tag", JsonValue::string(tag));
    cell.set("wall_clock_seconds", JsonValue::number(wall_seconds));
    cell.set("metrics", std::move(metrics));
    root_.find("cells")->push(std::move(cell));
  }

  /// Seconds since construction (the bench's wall clock).
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Stamp the wall clock and write the file; no-op when `path` is empty.
  /// Returns false (with a message on stderr) when the file cannot be
  /// written.
  bool write(const std::string& path) {
    if (path.empty()) return true;
    root_.set("wall_clock_seconds", JsonValue::number(elapsed_seconds()));
    // Whole-document overwrite of a human-readable report.
    FILE* f = std::fopen(path.c_str(), "w");  // aeep-lint: allow(raw-fs-call)
    if (!f) {
      std::fprintf(stderr, "cannot write --json file: %s\n", path.c_str());
      return false;
    }
    const std::string text = root_.dump(2) + "\n";
    const bool ok = std::fputs(text.c_str(), f) >= 0;
    std::fclose(f);
    if (ok) std::fprintf(stderr, "wrote %s\n", path.c_str());
    return ok;
  }

 private:
  JsonValue root_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace aeep::bench
