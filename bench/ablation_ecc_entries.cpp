// Ablation of the §3.3 ECC-array capacity: sweep the number of shared ECC
// entries per set (1 = the paper's design, up to ways = equivalent to
// per-way ECC). More entries cost area linearly but reduce ECC-WB traffic;
// the paper's k=1 point trades a small traffic increase for the 4x ECC
// storage reduction.
//
//   ablation_ecc_entries [--interval=1M] [--suite=all]
//                        [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"
#include "protect/area_model.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Ablation: shared ECC array entries per set", opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("ablation_ecc_entries", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  const std::vector<unsigned> entry_counts = {1u, 2u, 4u};
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const unsigned k : entry_counts) {
    for (const auto& name : benchmarks) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kSharedEccArray;
      eo.ecc_entries_per_set = k;
      eo.cleaning_interval = interval;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      bench::apply_frontend(eo, opt);
      grid.push_back({name, eo, "k=" + std::to_string(k)});
    }
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  const auto conv = protect::conventional_area(cache::kL2Geometry);
  TextTable table({"entries/set", "area", "reduction", "avg dirty%",
                   "avg ECC-WB/ls", "avg total WB/ls", "avg IPC"});
  const double n = static_cast<double>(benchmarks.size());
  for (std::size_t ki = 0; ki < entry_counts.size(); ++ki) {
    const unsigned k = entry_counts[ki];
    double dirty = 0, eccwb = 0, total = 0, ipc = 0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
      const sim::RunResult& r = results[ki * benchmarks.size() + b];
      dirty += r.avg_dirty_fraction;
      const double ls = static_cast<double>(r.core.loads_stores());
      eccwb += ls ? static_cast<double>(r.wb_ecc) / ls : 0.0;
      total += r.wb_per_ls();
      ipc += r.ipc();
      json.add_cell(benchmarks[b], "k=" + std::to_string(k),
                    bench::run_result_metrics(r));
    }
    const auto area = protect::proposed_area(cache::kL2Geometry, k);
    table.add_row({std::to_string(k),
                   TextTable::fmt(area.total_kib(), 0) + "KB",
                   TextTable::pct(area.reduction_vs(conv), 1),
                   TextTable::pct(dirty / n, 1), TextTable::pct(eccwb / n, 2),
                   TextTable::pct(total / n, 2), TextTable::fmt(ipc / n, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: k=1 (the paper) minimises area; ECC-WB traffic"
              " shrinks as k grows.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
