// Ablation of the §3.3 ECC-array capacity: sweep the number of shared ECC
// entries per set (1 = the paper's design, up to ways = equivalent to
// per-way ECC). More entries cost area linearly but reduce ECC-WB traffic;
// the paper's k=1 point trades a small traffic increase for the 4x ECC
// storage reduction.
//
//   ablation_ecc_entries [--interval=1M] [--suite=all] ...
#include "bench_util.hpp"
#include "protect/area_model.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Ablation: shared ECC array entries per set", opt);

  const auto conv = protect::conventional_area(cache::kL2Geometry);
  TextTable table({"entries/set", "area", "reduction", "avg dirty%",
                   "avg ECC-WB/ls", "avg total WB/ls", "avg IPC"});
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  for (const unsigned k : {1u, 2u, 4u}) {
    double dirty = 0, eccwb = 0, total = 0, ipc = 0;
    for (const auto& name : benchmarks) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kSharedEccArray;
      eo.ecc_entries_per_set = k;
      eo.cleaning_interval = interval;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      const sim::RunResult r = sim::run_benchmark(name, eo);
      dirty += r.avg_dirty_fraction;
      const double ls = static_cast<double>(r.core.loads_stores());
      eccwb += ls ? static_cast<double>(r.wb_ecc) / ls : 0.0;
      total += r.wb_per_ls();
      ipc += r.ipc();
    }
    const double n = static_cast<double>(benchmarks.size());
    const auto area = protect::proposed_area(cache::kL2Geometry, k);
    table.add_row({std::to_string(k),
                   TextTable::fmt(area.total_kib(), 0) + "KB",
                   TextTable::pct(area.reduction_vs(conv), 1),
                   TextTable::pct(dirty / n, 1), TextTable::pct(eccwb / n, 2),
                   TextTable::pct(total / n, 2), TextTable::fmt(ipc / n, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: k=1 (the paper) minimises area; ECC-WB traffic"
              " shrinks as k grows.\n");
  return 0;
}
