// Fault-injection validation (the executable form of §2/§3's protection
// claims): run a benchmark under each scheme with real check bits, then
// inject single- and double-bit flips into the L2 data / parity / ECC
// arrays and classify what the scheme's read path does with them.
//
// Expected: under the proposed scheme every single-bit flip is recovered
// (dirty lines by SECDED correction, clean lines by parity + refetch), and
// double-bit flips in dirty data are detected (DUE) — identical guarantees
// to uniform ECC at 59% less storage. A parity-only L2 (no ECC anywhere)
// would instead lose dirty data silently or unrecoverably.
//
//   fault_injection [--injections=2000] [--instructions=500K] ...
#include "bench_util.hpp"
#include "fault/injector.hpp"

using namespace aeep;

namespace {

struct Row {
  std::string label;
  fault::CampaignTally tally;
};

Row run_campaign(const std::string& bench_name, protect::SchemeKind scheme,
                 const bench::CommonOptions& opt, u64 injections,
                 unsigned flips, fault::FaultTarget target) {
  sim::SystemConfig cfg;
  cfg.benchmark = bench_name;
  cfg.seed = opt.seed;
  cfg.instructions = opt.instructions;
  cfg.warmup_instructions = opt.warmup;
  cfg.hierarchy.l2.scheme = scheme;
  cfg.hierarchy.l2.cleaning_interval = 0;
  cfg.hierarchy.l2.maintain_codes = true;  // real codes required

  sim::System system(cfg);
  system.run();
  system.hierarchy().flush_write_buffer(system.core().now());

  fault::FaultCampaign campaign(system.hierarchy().l2(), opt.seed + 7);
  for (u64 i = 0; i < injections; ++i) campaign.inject(target, flips);

  Row row;
  row.label = std::string(to_string(target)) + " x" + std::to_string(flips);
  row.tally = campaign.tally();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  bench::require_exec_frontend(opt, "fault campaigns inject into the execution-driven run");
  opt.instructions = args.get_u64("instructions", 500'000);
  opt.warmup = args.get_u64("warmup", 200'000);
  const u64 injections = args.get_u64("injections", 2000);
  const std::string bench_name = args.get("benchmark", "gzip");
  bench::reject_unknown_flags(args);
  bench::print_header("Fault injection: protection guarantees", opt);
  std::printf("benchmark %s, %llu injections per cell\n\n", bench_name.c_str(),
              static_cast<unsigned long long>(injections));

  const std::vector<std::pair<std::string, protect::SchemeKind>> schemes = {
      {"uniform-ecc (conventional)", protect::SchemeKind::kUniformEcc},
      {"shared-ecc-array (proposed)", protect::SchemeKind::kSharedEccArray},
      {"non-uniform (unbounded ECC)", protect::SchemeKind::kNonUniform},
  };

  for (const auto& [label, kind] : schemes) {
    std::printf("--- %s ---\n", label.c_str());
    TextTable table({"fault", "injections", "recovered", "DUE", "SDC",
                     "miscorrected", "dirty hit%"});
    for (const auto target :
         {fault::FaultTarget::kData, fault::FaultTarget::kParity,
          fault::FaultTarget::kEcc}) {
      for (const unsigned flips : {1u, 2u}) {
        const Row row =
            run_campaign(bench_name, kind, opt, injections, flips, target);
        if (row.tally.injections == 0) continue;  // target absent in scheme
        const auto& t = row.tally;
        table.add_row(
            {row.label, std::to_string(t.injections),
             TextTable::pct(t.rate(fault::FaultClass::kRecovered), 2),
             TextTable::pct(t.rate(fault::FaultClass::kDetectedUnrecoverable), 2),
             TextTable::pct(t.rate(fault::FaultClass::kSilentCorruption), 2),
             TextTable::pct(t.rate(fault::FaultClass::kMiscorrected), 2),
             TextTable::pct(t.injections
                                ? static_cast<double>(t.dirty_line_hits) /
                                      static_cast<double>(t.injections)
                                : 0.0,
                            1)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("expected: single-bit faults 100%% recovered under every scheme;"
              "\n          double-bit data faults -> DUE on dirty lines,"
              " refetch-recovered on clean lines.\n");
  return 0;
}
