// Figure 1: percentage of dirty cache lines per cycle in the 1 MB 4-way L2
// under the conventional architecture (no cleaning, uniform ECC), for the
// 14 SPEC2000-like benchmarks. The paper reports a 51.6% average with
// apsi, mesa, gap and parser dirty-heavy.
//
//   fig1_dirty_baseline [--instructions=2M] [--warmup=2M] [--seed=42]
//                       [--jobs=N] [--json=out.json]
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::reject_unknown_flags(args);
  bench::print_header("Figure 1: dirty lines per cycle, baseline L2", opt);

  sim::ExperimentOptions eo;
  eo.scheme = protect::SchemeKind::kUniformEcc;
  eo.cleaning_interval = 0;
  eo.instructions = opt.instructions;
  eo.warmup_instructions = opt.warmup;
  eo.seed = opt.seed;
  bench::apply_frontend(eo, opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("fig1_dirty_baseline", opt, jobs);

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) grid.push_back({name, eo, "baseline"});
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"benchmark", "suite", "dirty lines/cycle", "avg dirty lines",
                   "L2 miss rate", "IPC"});
  double sum = 0.0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const sim::RunResult& r = results[i];
    sum += r.avg_dirty_fraction;
    const double l2_miss =
        r.l2.accesses() ? static_cast<double>(r.l2.misses()) /
                              static_cast<double>(r.l2.accesses())
                        : 0.0;
    table.add_row({benchmarks[i], r.floating_point ? "fp" : "int",
                   TextTable::pct(r.avg_dirty_fraction),
                   std::to_string(r.avg_dirty_lines),
                   TextTable::pct(l2_miss), TextTable::fmt(r.ipc(), 3)});
    json.add_cell(benchmarks[i], "baseline", bench::run_result_metrics(r));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\naverage dirty lines/cycle: %s   (paper: 51.6%%)\n",
              TextTable::pct(sum / static_cast<double>(benchmarks.size()))
                  .c_str());
  return json.write(opt.json_path) ? 0 : 1;
}
