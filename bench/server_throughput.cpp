// server_throughput — load generator for the aeep_served job service.
//
//   server_throughput --connections=8 --jobs-total=400 [--json=FILE]
//
// By default it self-hosts: captures the smoke-suite traces into a scratch
// directory, starts an in-process JobServer on an ephemeral port, then
// hammers it over real TCP from N concurrent client connections submitting
// trace-replay jobs round-robin across the smoke benchmarks. Point it at
// an external server with --host/--port (then --trace-dir names traces the
// *server* must already have registered — the names, not the files, cross
// the wire).
//
// A kBusy reply (bounded-queue backpressure) is counted and retried after
// a short backoff; it is load shedding working as designed. Anything else
// that fails — submit error, failed job, lost connection — counts as
// `dropped`, and the acceptance gate is simple: jobs_per_sec >= 250 with
// dropped == 0 on the smoke config (raised from 100 when dispatch moved to
// the lock-free MpmcQueue). The --json cell carries jobs/sec plus
// client-observed latency percentiles (submit -> result received).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "json_reporter.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "sim/experiment.hpp"

using namespace aeep;

namespace {

struct LoadStats {
  std::vector<double> latencies_ms;
  u64 completed = 0;
  u64 busy_replies = 0;
  u64 dropped = 0;
  std::mutex mutex;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) / 100.0 + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Capture one smoke trace per benchmark into `dir` (tiny runs: the bench
/// measures service throughput, not simulator speed).
void capture_traces(const std::string& dir, const bench::CommonOptions& o) {
  std::filesystem::create_directories(dir);
  for (const auto& b : sim::smoke_benchmarks()) {
    sim::ExperimentOptions eo;
    eo.instructions = o.instructions;
    eo.warmup_instructions = o.warmup;
    eo.seed = o.seed;
    eo.capture_path = dir + "/" + b + ".aeept";
    sim::run_benchmark(b, eo);
    std::fprintf(stderr, "captured %s\n", eo.capture_path.c_str());
  }
}

void worker(const std::string& host, u16 port, u64 jobs,
            const bench::CommonOptions& o, unsigned worker_id,
            LoadStats& stats) {
  const auto benchmarks = sim::smoke_benchmarks();
  try {
    server::Client client(host, port);
    for (u64 i = 0; i < jobs; ++i) {
      server::JobSpec spec;
      spec.benchmark = benchmarks[(worker_id + i) % benchmarks.size()];
      spec.frontend = sim::Frontend::kTrace;
      spec.instructions = o.instructions;
      spec.warmup = o.warmup;
      spec.seed = o.seed;
      const auto t0 = std::chrono::steady_clock::now();
      u64 job_id = 0;
      while (true) {
        try {
          job_id = client.submit(spec);
          break;
        } catch (const server::ServerError& e) {
          if (e.kind() != server::ServerErrorKind::kBusy) throw;
          {
            const std::lock_guard<std::mutex> lock(stats.mutex);
            ++stats.busy_replies;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      const JsonValue reply = client.result(job_id, /*wait=*/true,
                                            /*wait_ms=*/120'000);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      const std::lock_guard<std::mutex> lock(stats.mutex);
      if (reply.get_bool("ready", false)) {
        ++stats.completed;
        stats.latencies_ms.push_back(ms);
      } else {
        ++stats.dropped;
      }
    }
  } catch (const server::ServerError& e) {
    std::fprintf(stderr, "worker %u dropped out: %s\n", worker_id, e.what());
    const std::lock_guard<std::mutex> lock(stats.mutex);
    ++stats.dropped;  // at minimum the in-flight job is gone
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions o = bench::parse_common(args);
  // Throughput defaults: small jobs, the point is requests/sec.
  if (!args.has("instructions")) o.instructions = 50'000;
  if (!args.has("warmup")) o.warmup = 5'000;
  const u64 connections = args.get_u64("connections", 8);
  const u64 jobs_total = args.get_u64("jobs-total", 400);
  const std::string ext_host = args.get("host", "");
  const u16 ext_port = static_cast<u16>(args.get_u64("port", 0));
  const u64 queue_capacity = args.get_u64("queue-capacity", 256);
  const u64 max_batch = args.get_u64("max-batch", 16);
  bench::reject_unknown_flags(args);

  // Self-host unless pointed at an external server.
  std::unique_ptr<server::JobServer> local;
  std::string host = ext_host;
  u16 port = ext_port;
  if (ext_host.empty()) {
    std::string dir = o.trace_dir;
    if (dir.empty()) {
      dir = (std::filesystem::temp_directory_path() /
             "aeep_server_throughput_traces")
                .string();
      capture_traces(dir, o);
    }
    server::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = o.jobs;
    cfg.queue_capacity = static_cast<std::size_t>(queue_capacity);
    cfg.max_batch = static_cast<std::size_t>(max_batch);
    cfg.max_connections = static_cast<std::size_t>(connections) + 8;
    cfg.trace_dir = dir;
    local = std::make_unique<server::JobServer>(cfg);
    local->start();
    host = "127.0.0.1";
    port = local->port();
    std::fprintf(stderr, "self-hosted aeep_served on port %u (%s)\n",
                 unsigned{port}, dir.c_str());
  }

  bench::JsonReporter reporter("server_throughput", o,
                               static_cast<unsigned>(connections));
  reporter.set_config("connections", JsonValue::number(connections));
  reporter.set_config("jobs_total", JsonValue::number(jobs_total));
  reporter.set_config("queue_capacity", JsonValue::number(queue_capacity));
  reporter.set_config("max_batch", JsonValue::number(max_batch));

  LoadStats stats;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (u64 c = 0; c < connections; ++c) {
    const u64 share = jobs_total / connections +
                      (c < jobs_total % connections ? 1 : 0);
    threads.emplace_back(worker, host, port, share, std::cref(o),
                         static_cast<unsigned>(c), std::ref(stats));
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::sort(stats.latencies_ms.begin(), stats.latencies_ms.end());
  const double jobs_per_sec =
      seconds > 0.0 ? static_cast<double>(stats.completed) / seconds : 0.0;

  JsonValue metrics = JsonValue::object();
  metrics.set("jobs_per_sec", JsonValue::number(jobs_per_sec));
  metrics.set("completed", JsonValue::number(stats.completed));
  metrics.set("dropped", JsonValue::number(stats.dropped));
  metrics.set("busy_replies", JsonValue::number(stats.busy_replies));
  metrics.set("wall_seconds", JsonValue::number(seconds));
  metrics.set("p50_ms", JsonValue::number(percentile(stats.latencies_ms, 50)));
  metrics.set("p90_ms", JsonValue::number(percentile(stats.latencies_ms, 90)));
  metrics.set("p99_ms", JsonValue::number(percentile(stats.latencies_ms, 99)));
  metrics.set("max_ms", JsonValue::number(
                            stats.latencies_ms.empty()
                                ? 0.0
                                : stats.latencies_ms.back()));
  reporter.add_cell("smoke", "aggregate", std::move(metrics));

  std::printf("=== server_throughput ===\n");
  std::printf("%llu jobs over %llu connections in %.2fs\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(connections), seconds);
  std::printf("throughput: %.1f jobs/sec\n", jobs_per_sec);
  std::printf("latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
              percentile(stats.latencies_ms, 50),
              percentile(stats.latencies_ms, 90),
              percentile(stats.latencies_ms, 99),
              stats.latencies_ms.empty() ? 0.0 : stats.latencies_ms.back());
  std::printf("backpressure: %llu busy replies (retried), %llu dropped\n",
              static_cast<unsigned long long>(stats.busy_replies),
              static_cast<unsigned long long>(stats.dropped));
  if (!reporter.write(o.json_path)) return 1;

  if (local) local->drain();
  return stats.dropped == 0 ? 0 : 1;
}
