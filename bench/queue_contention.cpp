// Contention microbench for the lock-free MpmcQueue against the
// mutex+deque hand-off it replaced in the sweep pool and the job server.
// P producers push `ops` tickets, P consumers drain them; both queue
// implementations run the identical schedule, so ops/sec is directly
// comparable. The point of the numbers: under multi-producer contention the
// CAS ring keeps scaling while the mutex path serialises.
//
//   queue_contention [--ops=1000000] [--threads=N] [--capacity=1024]
//                    [--json=out.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "json_reporter.hpp"
#include "common/bitops.hpp"
#include "common/mpmc_queue.hpp"

using namespace aeep;

namespace {

/// The baseline: what WorkerQueue / JobServer::queue_ looked like before
/// this queue existed — every operation takes a mutex.
class MutexDequeQueue {
 public:
  explicit MutexDequeQueue(std::size_t capacity) : capacity_(capacity) {}

  bool try_push(std::size_t v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (fifo_.size() >= capacity_) return false;
    fifo_.push_back(v);
    return true;
  }

  bool try_pop(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (fifo_.empty()) return false;
    out = fifo_.front();
    fifo_.pop_front();
    return true;
  }

 private:
  std::size_t capacity_;
  std::mutex mutex_;
  std::deque<std::size_t> fifo_;
};

struct Result {
  double ops_per_sec = 0.0;
  u64 popped = 0;
};

template <typename Queue>
Result drive(Queue& q, unsigned producers, unsigned consumers, u64 ops) {
  std::atomic<u64> popped{0};
  std::atomic<bool> done{false};
  const u64 per_producer = ops / producers;
  const u64 total = per_producer * producers;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&q, per_producer] {
      for (u64 i = 0; i < per_producer; ++i) {
        while (!q.try_push(static_cast<std::size_t>(i)))
          std::this_thread::yield();
      }
    });
  }
  for (unsigned c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      std::size_t v = 0;
      while (true) {
        if (q.try_pop(v)) {
          popped.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire)) {
          while (q.try_pop(v)) popped.fetch_add(1, std::memory_order_relaxed);
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (unsigned p = 0; p < producers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (unsigned c = 0; c < consumers; ++c) threads[producers + c].join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;

  Result r;
  r.popped = popped.load();
  r.ops_per_sec =
      dt.count() > 0.0 ? static_cast<double>(total) / dt.count() : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 ops = args.get_u64("ops", 1'000'000);
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned max_side = static_cast<unsigned>(
      args.get_u64("threads", hw > 2 ? hw / 2 : 1));
  const auto capacity = static_cast<std::size_t>(
      std::max<u64>(2, ceil_pow2(args.get_u64("capacity", 1024))));
  bench::reject_unknown_flags(args);

  std::printf("=== queue_contention: MpmcQueue vs mutex+deque ===\n");
  std::printf("%llu ops per config, capacity %zu\n\n",
              static_cast<unsigned long long>(ops), capacity);

  bench::JsonReporter json("queue_contention", opt, max_side);
  json.set_config("ops", JsonValue::number(ops));
  json.set_config("capacity", JsonValue::number(u64{capacity}));

  TextTable table({"producers x consumers", "queue", "ops/s", "speedup"});
  bool lost_ops = false;

  for (unsigned side = 1; side <= max_side; side *= 2) {
    MpmcQueue<std::size_t> mpmc(capacity);
    MutexDequeQueue locked(capacity);
    const Result lock_r = drive(locked, side, side, ops);
    const Result mpmc_r = drive(mpmc, side, side, ops);
    const u64 expected = (ops / side) * side;
    if (mpmc_r.popped != expected || lock_r.popped != expected)
      lost_ops = true;
    const double speedup = lock_r.ops_per_sec > 0.0
                               ? mpmc_r.ops_per_sec / lock_r.ops_per_sec
                               : 0.0;
    const std::string label =
        std::to_string(side) + "x" + std::to_string(side);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.2fM", lock_r.ops_per_sec / 1e6);
    table.add_row({label, "mutex-deque", rate, "1.00x"});
    std::snprintf(rate, sizeof(rate), "%.2fM", mpmc_r.ops_per_sec / 1e6);
    table.add_row({label, "mpmc", rate, TextTable::fmt(speedup, 2) + "x"});

    for (const auto& [which, r] :
         {std::pair<const char*, const Result*>{"mutex-deque", &lock_r},
          std::pair<const char*, const Result*>{"mpmc", &mpmc_r}}) {
      JsonValue metrics = JsonValue::object();
      metrics.set("ops_per_sec", JsonValue::number(r->ops_per_sec));
      metrics.set("popped", JsonValue::number(r->popped));
      json.add_cell(which, label, std::move(metrics));
    }
  }

  std::printf("%s", table.render().c_str());
  if (lost_ops) std::fprintf(stderr, "FAIL: ops lost or duplicated\n");
  if (!json.write(opt.json_path)) return 1;
  return lost_ops ? 1 : 0;
}
