// Figures 3 & 4: percentage of dirty cache lines per cycle for different
// cleaning intervals (64K, 256K, 1M, 4M processor cycles), plus the original
// no-cleaning configuration ("org"), for the FP (Fig. 3) and INT (Fig. 4)
// benchmarks. The paper's finding: smaller intervals reduce the dirty
// percentage roughly linearly; streaming codes see little benefit at 4M.
//
//   fig3_4_cleaning_sweep [--suite=fp|int|all] [--instructions=2M]
//                         [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::reject_unknown_flags(args);
  bench::print_header(
      "Figures 3/4: dirty lines per cycle vs cleaning interval", opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("fig3_4_cleaning_sweep", opt, jobs);

  const auto intervals = bench::cleaning_intervals();
  const std::size_t cols = intervals.size() + 1;  // ladder + "org"
  std::vector<std::string> header{"benchmark"};
  for (const u64 i : intervals) header.push_back(bench::interval_label(i));
  header.push_back("org");
  TextTable table(header);

  // Whole grid up front: benchmarks × (ladder + org), fanned out at once so
  // the pool is never starved between table rows.
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    for (std::size_t k = 0; k < cols; ++k) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;  // unlimited ECC: isolates cleaning
      eo.cleaning_interval = k < intervals.size() ? intervals[k] : 0;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      bench::apply_frontend(eo, opt);
      grid.push_back({name, eo, bench::interval_label(eo.cleaning_interval)});
    }
  }
  std::vector<double> cell_walls;
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid, &cell_walls);

  std::vector<double> sums(cols, 0.0);
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    std::vector<std::string> row{benchmarks[b]};
    for (std::size_t k = 0; k < cols; ++k) {
      const sim::RunResult& r = results[b * cols + k];
      sums[k] += r.avg_dirty_fraction;
      row.push_back(TextTable::pct(r.avg_dirty_fraction, 1));
      json.add_cell(benchmarks[b], grid[b * cols + k].tag,
                    bench::run_result_metrics(r), cell_walls[b * cols + k]);
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (double s : sums)
    avg.push_back(TextTable::pct(s / static_cast<double>(benchmarks.size()), 1));
  table.add_row(std::move(avg));

  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: dirty%% falls roughly linearly with smaller intervals;\n"
      "       ~2K dirty lines (12.5%%) needs ~256K, ~4K lines (25%%) ~1M.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
