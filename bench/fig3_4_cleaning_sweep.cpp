// Figures 3 & 4: percentage of dirty cache lines per cycle for different
// cleaning intervals (64K, 256K, 1M, 4M processor cycles), plus the original
// no-cleaning configuration ("org"), for the FP (Fig. 3) and INT (Fig. 4)
// benchmarks. The paper's finding: smaller intervals reduce the dirty
// percentage roughly linearly; streaming codes see little benefit at 4M.
//
//   fig3_4_cleaning_sweep [--suite=fp|int|all] [--instructions=2M] ...
#include "bench_util.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  bench::reject_unknown_flags(args);
  bench::print_header(
      "Figures 3/4: dirty lines per cycle vs cleaning interval", opt);

  const auto intervals = bench::cleaning_intervals();
  std::vector<std::string> header{"benchmark"};
  for (const u64 i : intervals) header.push_back(bench::interval_label(i));
  header.push_back("org");
  TextTable table(header);

  std::vector<double> sums(intervals.size() + 1, 0.0);
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  for (const auto& name : benchmarks) {
    std::vector<std::string> row{name};
    for (std::size_t k = 0; k <= intervals.size(); ++k) {
      sim::ExperimentOptions eo;
      eo.scheme = protect::SchemeKind::kNonUniform;  // unlimited ECC: isolates cleaning
      eo.cleaning_interval = k < intervals.size() ? intervals[k] : 0;
      eo.instructions = opt.instructions;
      eo.warmup_instructions = opt.warmup;
      eo.seed = opt.seed;
      const sim::RunResult r = sim::run_benchmark(name, eo);
      sums[k] += r.avg_dirty_fraction;
      row.push_back(TextTable::pct(r.avg_dirty_fraction, 1));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (double s : sums)
    avg.push_back(TextTable::pct(s / static_cast<double>(benchmarks.size()), 1));
  table.add_row(std::move(avg));

  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper: dirty%% falls roughly linearly with smaller intervals;\n"
      "       ~2K dirty lines (12.5%%) needs ~256K, ~4K lines (25%%) ~1M.\n");
  return 0;
}
