// Scrubbing study (extension): latent single-bit errors accumulate in
// rarely-touched lines until a second strike makes them unrecoverable. This
// bench injects singles epoch by epoch into a warmed L2 image and compares
// end-state damage with and without a background scrubber, across scrub
// rates — quantifying how scrubbing composes with the paper's scheme.
//
//   scrubbing_study [--scheme=shared] [--epochs=40] [--strikes=300] ...
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "protect/scrubber.hpp"
#include "sim/system.hpp"

using namespace aeep;

namespace {

struct Outcome {
  u64 corrected_by_scrub = 0;
  u64 refetched_by_scrub = 0;
  u64 final_uncorrectable = 0;
  u64 final_corrected = 0;
};

/// Scrub every `scrub_every` epochs (0 = never); after all epochs, validate
/// the full cache and count unrecoverable lines.
Outcome run_campaign(protect::SchemeKind scheme, unsigned epochs,
                     unsigned strikes_per_epoch, unsigned scrub_every,
                     u64 seed, const bench::CommonOptions& opt) {
  sim::SystemConfig cfg;
  cfg.benchmark = "vpr";
  cfg.seed = seed;
  cfg.warmup_instructions = 0;
  cfg.instructions = opt.instructions;
  cfg.hierarchy.l2.scheme = scheme;
  cfg.hierarchy.l2.maintain_codes = true;
  sim::System system(cfg);
  system.run();
  system.hierarchy().flush_write_buffer(system.core().now());

  auto& l2 = system.hierarchy().l2();
  cache::Cache& cache = l2.cache_model();
  const auto& geom = cfg.hierarchy.l2.geometry;
  Xorshift64Star rng(seed + 17);

  protect::Scrubber scrubber(l2, 1);  // schedule unused; scrub_all on demand
  Outcome out;

  // Inject raw strikes WITHOUT running the check path (latent errors).
  auto strike = [&]() {
    for (unsigned tries = 0; tries < 1024; ++tries) {
      const u64 set = rng.next_below(geom.num_sets());
      const unsigned way = static_cast<unsigned>(rng.next_below(geom.ways));
      if (!cache.meta(set, way).valid) continue;
      auto data = cache.data(set, way);
      const unsigned bit =
          static_cast<unsigned>(rng.next_below(geom.line_bytes * 8));
      data[bit / 64] ^= u64{1} << (bit % 64);
      return;
    }
  };

  for (unsigned e = 1; e <= epochs; ++e) {
    for (unsigned s = 0; s < strikes_per_epoch; ++s) strike();
    if (scrub_every && e % scrub_every == 0) {
      const auto before = scrubber.stats();
      scrubber.scrub_all(0);
      out.corrected_by_scrub +=
          scrubber.stats().words_corrected - before.words_corrected;
      out.refetched_by_scrub +=
          scrubber.stats().lines_refetched - before.lines_refetched;
    }
  }

  // Demand-read everything at the end: what survived?
  for (u64 set = 0; set < geom.num_sets(); ++set) {
    for (unsigned way = 0; way < geom.ways; ++way) {
      if (!cache.meta(set, way).valid) continue;
      const auto rc = l2.scheme().check_read(set, way, l2.memory());
      if (rc.outcome == protect::ReadOutcome::kUncorrectable)
        ++out.final_uncorrectable;
      else if (rc.outcome == protect::ReadOutcome::kCorrected ||
               rc.outcome == protect::ReadOutcome::kRefetched)
        ++out.final_corrected;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  bench::require_exec_frontend(opt, "scrub scheduling is driven by the live core clock");
  opt.instructions = args.get_u64("instructions", 400'000);
  const unsigned epochs = static_cast<unsigned>(args.get_u64("epochs", 40));
  const unsigned strikes =
      static_cast<unsigned>(args.get_u64("strikes", 300));
  bench::reject_unknown_flags(args);
  bench::print_header("Scrubbing study: latent-error accumulation", opt);
  std::printf("%u epochs x %u strikes into a warm vpr L2 image\n\n", epochs,
              strikes);

  TextTable table({"scheme", "scrub cadence", "scrub-corrected",
                   "scrub-refetched", "end uncorrectable", "end corrected"});
  for (const auto scheme : {protect::SchemeKind::kUniformEcc,
                            protect::SchemeKind::kSharedEccArray}) {
    for (const unsigned cadence : {0u, 8u, 1u}) {
      const Outcome o =
          run_campaign(scheme, epochs, strikes, cadence, opt.seed, opt);
      table.add_row({to_string(scheme),
                     cadence == 0 ? "never" : "every " + std::to_string(cadence),
                     std::to_string(o.corrected_by_scrub),
                     std::to_string(o.refetched_by_scrub),
                     std::to_string(o.final_uncorrectable),
                     std::to_string(o.final_corrected)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nmore frequent scrubbing removes singles before they pair:"
              " end-state uncorrectable\nlines drop monotonically with"
              " cadence, under both protection schemes.\n");
  return 0;
}
