// Figure 7: percentage of dirty cache lines per cycle under the full
// proposed scheme — 1M-cycle dirty-line cleaning plus the shared ECC array
// with one entry per set. The paper's finding: every benchmark drops below
// 25% (the array caps dirty lines at one per set = 4K of 16K lines), and the
// dirty-heavy benchmarks (apsi, mesa, gap, parser) collapse because ECC
// entry evictions clean them.
//
//   fig7_dirty_full_scheme [--instructions=2M] [--interval=1M]
//                          [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Figure 7: dirty lines per cycle, full proposed scheme",
                      opt);

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("fig7_dirty_full_scheme", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  // Two cells per benchmark: conventional baseline and the full scheme.
  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    sim::ExperimentOptions base;
    base.scheme = protect::SchemeKind::kUniformEcc;
    base.instructions = opt.instructions;
    base.warmup_instructions = opt.warmup;
    base.seed = opt.seed;
    bench::apply_frontend(base, opt);
    grid.push_back({name, base, "baseline"});

    sim::ExperimentOptions ours = base;
    ours.scheme = protect::SchemeKind::kSharedEccArray;
    ours.ecc_entries_per_set = 1;
    ours.cleaning_interval = interval;
    grid.push_back({name, ours, "proposed"});
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"benchmark", "suite", "baseline dirty", "proposed dirty",
                   "peak dirty lines"});
  double sum = 0.0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const sim::RunResult& b = results[2 * i];
    const sim::RunResult& r = results[2 * i + 1];
    sum += r.avg_dirty_fraction;
    table.add_row({benchmarks[i], r.floating_point ? "fp" : "int",
                   TextTable::pct(b.avg_dirty_fraction, 1),
                   TextTable::pct(r.avg_dirty_fraction, 1),
                   std::to_string(r.peak_dirty_lines)});
    json.add_cell(benchmarks[i], "baseline", bench::run_result_metrics(b));
    json.add_cell(benchmarks[i], "proposed", bench::run_result_metrics(r));
  }
  std::printf("%s", table.render().c_str());
  std::printf("\naverage proposed dirty: %s   (paper: below 25%% everywhere;"
              " 4K-line hard cap = 25%%)\n",
              TextTable::pct(sum / static_cast<double>(benchmarks.size()), 1)
                  .c_str());
  return json.write(opt.json_path) ? 0 : 1;
}
