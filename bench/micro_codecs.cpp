// google-benchmark microbenchmarks for the hot primitives: SECDED and
// parity encode/decode, cache probe/fill, predictor lookup and the zipf
// sampler. These quantify simulator throughput, not the paper's results.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "cpu/branch_predictor.hpp"
#include "ecc/parity.hpp"
#include "ecc/secded.hpp"

using namespace aeep;

static void BM_SecdedEncode(benchmark::State& state) {
  const ecc::SecdedCodec codec;
  Xorshift64Star rng(1);
  u64 x = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(x));
    x = x * 6364136223846793005ull + 1;
  }
}
BENCHMARK(BM_SecdedEncode);

static void BM_SecdedDecodeClean(benchmark::State& state) {
  const ecc::SecdedCodec codec;
  Xorshift64Star rng(2);
  const u64 data = rng.next();
  const u64 check = codec.encode(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(data, check));
  }
}
BENCHMARK(BM_SecdedDecodeClean);

static void BM_SecdedDecodeCorrect(benchmark::State& state) {
  const ecc::SecdedCodec codec;
  Xorshift64Star rng(3);
  const u64 data = rng.next();
  const u64 check = codec.encode(data);
  unsigned bit = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.decode(flip_bit(data, bit), check));
    bit = (bit + 1) & 63;
  }
}
BENCHMARK(BM_SecdedDecodeCorrect);

static void BM_ParityEncode(benchmark::State& state) {
  const ecc::ParityCodec codec;
  u64 x = 0x123456789ABCDEFull;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.encode(x));
    x = x * 6364136223846793005ull + 1;
  }
}
BENCHMARK(BM_ParityEncode);

static void BM_CacheProbeHit(benchmark::State& state) {
  cache::Cache c(cache::kL2Geometry);
  Xorshift64Star rng(4);
  std::vector<Addr> addrs;
  for (int i = 0; i < 1024; ++i) {
    const Addr a = (rng.next() % (1 * MiB)) & ~Addr{63};
    const auto pr = c.probe(a);
    const auto v = c.pick_victim(pr.set);
    c.install(pr.set, v.way, a, 0);
    addrs.push_back(a);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.probe(addrs[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_CacheProbeHit);

static void BM_PredictorUpdate(benchmark::State& state) {
  cpu::BranchPredictor bp;
  Xorshift64Star rng(5);
  Addr pc = 0x400000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bp.update(pc, rng.chance(0.8), pc - 64));
    pc += 4;
    if (pc > 0x410000) pc = 0x400000;
  }
}
BENCHMARK(BM_PredictorUpdate);

static void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler z(16384, 0.9, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.sample());
  }
}
BENCHMARK(BM_ZipfSample);

BENCHMARK_MAIN();
