// Self-timed microbenchmarks for the line-codec hot path: words/second for
// parity, byte-parity and SECDED line encode + decode through the legacy
// allocating API vs the scratch-buffer API, with heap allocations counted
// per call via a global operator-new hook. The scratch path must be
// allocation-free — the bench exits non-zero if it ever allocates, which is
// the repo's executable proof of the "zero allocations per line
// encode/decode" claim.
//
// Also times the batched SWAR whole-line paths against the word-at-a-time
// virtual-dispatch baseline (the pre-batching LineCodec inner loop),
// verifies they agree bit-for-bit, and — with --min-secded-speedup=X —
// exits non-zero unless batched SECDED encode is at least X times faster
// than word-at-a-time. CI pins X=2.
//
//   micro_codecs [--lines=65536] [--json=out.json] [--min-secded-speedup=X]
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "json_reporter.hpp"
#include "common/rng.hpp"
#include "ecc/line_codec.hpp"
#include "ecc/parity.hpp"
#include "ecc/secded.hpp"

namespace {
std::atomic<aeep::u64> g_allocations{0};

// Counting hook: every heap allocation in the process bumps the counter.
// The timed loops read it before/after, so any allocation inside a codec
// call is attributed to that call.
void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace aeep;

namespace {

constexpr unsigned kLineBytes = 64;
constexpr unsigned kWords = kLineBytes / 8;

struct Measurement {
  double words_per_sec = 0.0;
  double allocs_per_call = 0.0;
  u64 checksum = 0;  ///< defeats dead-code elimination; also printed
};

template <typename Body>
Measurement timed(u64 calls, u64 words_per_call, Body&& body) {
  Measurement m;
  const u64 allocs_before = g_allocations.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  for (u64 i = 0; i < calls; ++i) m.checksum += body(i);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - start;
  const u64 allocs =
      g_allocations.load(std::memory_order_relaxed) - allocs_before;
  m.words_per_sec = dt.count() > 0.0
                        ? static_cast<double>(calls * words_per_call) /
                              dt.count()
                        : 0.0;
  m.allocs_per_call =
      static_cast<double>(allocs) / static_cast<double>(calls);
  return m;
}

std::string rate(double words_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fM", words_per_sec / 1e6);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 lines = args.get_u64("lines", u64{1} << 16);
  const double min_secded_speedup =
      args.get_double("min-secded-speedup", 0.0);
  bench::reject_unknown_flags(args);

  std::printf("=== micro_codecs: line codec throughput ===\n");
  std::printf("64B lines (8 words), %llu lines per timed loop\n\n",
              static_cast<unsigned long long>(lines));

  bench::JsonReporter json("micro_codecs", opt, 1);
  json.set_config("lines", JsonValue::number(lines));
  json.set_config("line_bytes", JsonValue::number(u64{kLineBytes}));

  const ecc::ParityCodec parity;
  const ecc::ByteParityCodec byte_parity;
  const ecc::SecdedCodec secded;
  const std::vector<std::pair<const char*, const ecc::WordCodec*>> codecs = {
      {"parity", &parity},
      {"byte-parity", &byte_parity},
      {"secded", &secded},
  };

  // One shared input line, re-randomised per call from a cheap LCG so the
  // codec cannot specialise on constant data.
  Xorshift64Star rng(7);
  std::vector<u64> data(kWords);
  for (auto& w : data) w = rng.next();

  TextTable table({"codec", "op", "API", "words/s", "allocs/call"});
  bool scratch_allocated = false;
  bool equivalence_broken = false;
  double secded_speedup = 0.0;

  for (const auto& [name, codec] : codecs) {
    const ecc::LineCodec lc(*codec, kLineBytes);
    std::vector<u64> check(kWords), out(kWords);
    lc.encode(data, check);
    ecc::ProtectedLine line{data, check};

    struct Case {
      const char* op;
      const char* api;
      Measurement m;
      bool is_scratch;
    };
    std::vector<Case> cases;

    cases.push_back({"encode", "alloc",
                     timed(lines, kWords,
                           [&](u64 i) {
                             data[i % kWords] ^= i | 1;
                             return lc.encode_alloc(data)[0];
                           }),
                     false});
    cases.push_back({"encode", "scratch",
                     timed(lines, kWords,
                           [&](u64 i) {
                             data[i % kWords] ^= i | 1;
                             lc.encode(data, check);
                             return check[0];
                           }),
                     true});
    // Batched SWAR line encode vs the word-at-a-time virtual-dispatch
    // baseline (what LineCodec::encode did before batching). Same input
    // mutation schedule, so the words/s figures are directly comparable.
    std::vector<u64> scalar_check(kWords);
    const Measurement scalar_m = timed(lines, kWords, [&](u64 i) {
      data[i % kWords] ^= i | 1;
      for (unsigned w = 0; w < kWords; ++w)
        scalar_check[w] = codec->encode(data[w]);
      return scalar_check[0];
    });
    cases.push_back({"encode", "scalar-words", scalar_m, false});
    const Measurement batched_m = timed(lines, kWords, [&](u64 i) {
      data[i % kWords] ^= i | 1;
      codec->encode_batch(data, check);
      return check[0];
    });
    cases.push_back({"encode", "batched", batched_m, true});
    if (std::string(name) == "secded" && scalar_m.words_per_sec > 0.0)
      secded_speedup = batched_m.words_per_sec / scalar_m.words_per_sec;

    // The two paths must agree bit-for-bit on the final mutated line (and
    // the batched mismatch scan must see the agreement as all-clean).
    codec->encode_batch(data, check);
    for (unsigned w = 0; w < kWords; ++w) {
      if (check[w] != codec->encode(data[w])) {
        std::fprintf(stderr,
                     "%s: batched encode diverges from scalar at word %u\n",
                     name, w);
        equivalence_broken = true;
      }
    }
    if (codec->mismatch_mask(data, check) != 0) {
      std::fprintf(stderr, "%s: mismatch_mask flags a clean line\n", name);
      equivalence_broken = true;
    }

    // Re-sync the stored check words with the mutated payload so the decode
    // loops run the clean path (the hot case in the simulator).
    lc.encode(line.data, line.check);
    cases.push_back({"decode", "alloc",
                     timed(lines, kWords,
                           [&](u64) { return lc.decode_alloc(line).data[0]; }),
                     false});
    cases.push_back({"decode", "scratch",
                     timed(lines, kWords,
                           [&](u64) {
                             lc.decode(line.data, line.check, out);
                             return out[0];
                           }),
                     true});

    for (const auto& c : cases) {
      table.add_row({name, c.op, c.api, rate(c.m.words_per_sec),
                     TextTable::fmt(c.m.allocs_per_call, 2)});
      if (c.is_scratch && c.m.allocs_per_call > 0.0) scratch_allocated = true;
      JsonValue metrics = JsonValue::object();
      metrics.set("words_per_sec", JsonValue::number(c.m.words_per_sec));
      metrics.set("allocs_per_call", JsonValue::number(c.m.allocs_per_call));
      json.add_cell(name, std::string(c.op) + ":" + c.api, std::move(metrics));
    }
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nscratch-API allocations per encode/decode: %s\n",
              scratch_allocated ? "NONZERO (regression!)" : "zero");
  std::printf("batched vs scalar equivalence: %s\n",
              equivalence_broken ? "BROKEN (regression!)" : "bit-exact");
  std::printf("secded batched/scalar encode speedup: %.2fx", secded_speedup);
  if (min_secded_speedup > 0.0)
    std::printf(" (gate: >=%.2fx)", min_secded_speedup);
  std::printf("\n");
  json.set_config("secded_batched_speedup",
                  JsonValue::number(secded_speedup));
  if (!json.write(opt.json_path)) return 1;
  if (equivalence_broken) return 1;
  if (min_secded_speedup > 0.0 && secded_speedup < min_secded_speedup) {
    std::fprintf(stderr,
                 "secded batched encode speedup %.2fx is below the %.2fx "
                 "gate\n",
                 secded_speedup, min_secded_speedup);
    return 1;
  }
  return scratch_allocated ? 1 : 0;
}
