// Shared helpers for the figure-regeneration benches: common CLI options,
// run headers, and the cleaning-interval ladder the paper sweeps.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "store/sweep_cache.hpp"

namespace aeep::bench {

struct CommonOptions {
  u64 instructions = 2'000'000;
  u64 warmup = 2'000'000;
  u64 seed = 42;
  std::string suite = "all";      ///< all | fp | int | smoke
  unsigned jobs = 0;              ///< sweep workers; 0 = hardware concurrency
  std::string json_path;          ///< --json=<path>: machine-readable results
  std::string frontend = "exec";  ///< exec | trace (see --trace-dir)
  std::string trace_dir;          ///< frontend=trace: <dir>/<benchmark>.aeept
  std::string store_dir;          ///< --store=DIR: result-store cache
};

inline CommonOptions parse_common(const CliArgs& args) {
  CommonOptions o;
  o.instructions = args.get_u64("instructions", o.instructions);
  o.warmup = args.get_u64("warmup", o.warmup);
  o.seed = args.get_u64("seed", o.seed);
  o.suite = args.get("suite", o.suite);
  o.jobs = static_cast<unsigned>(args.get_u64("jobs", o.jobs));
  o.json_path = args.get("json", o.json_path);
  o.frontend = args.get("frontend", o.frontend);
  o.trace_dir = args.get("trace-dir", o.trace_dir);
  o.store_dir = args.get("store", o.store_dir);
  if (o.frontend != "exec" && o.frontend != "trace") {
    std::fprintf(stderr, "unknown --frontend=%s (exec | trace)\n",
                 o.frontend.c_str());
    std::exit(2);
  }
  if (o.frontend == "trace" && o.trace_dir.empty()) {
    std::fprintf(stderr,
                 "--frontend=trace needs --trace-dir=DIR with one "
                 "<benchmark>.aeept per benchmark (see: aeep_trace capture)\n");
    std::exit(2);
  }
  return o;
}

/// Copy the frontend selection into a sweep cell's options.
inline void apply_frontend(sim::ExperimentOptions& eo, const CommonOptions& o) {
  if (o.frontend == "trace") {
    eo.frontend = sim::Frontend::kTrace;
    eo.trace_dir = o.trace_dir;
  }
}

/// For benches whose metrics only exist execution-driven (core IPC, online
/// strike campaigns): refuse --frontend=trace with a clear reason.
inline void require_exec_frontend(const CommonOptions& o, const char* why) {
  if (o.frontend != "exec") {
    std::fprintf(stderr, "--frontend=trace is not supported here: %s\n", why);
    std::exit(2);
  }
}

/// Worker count a bench should hand to SweepRunner: --jobs when given,
/// otherwise one per hardware thread.
inline unsigned resolve_jobs(const CommonOptions& o) {
  return o.jobs == 0 ? sim::SweepRunner::default_jobs() : o.jobs;
}

/// The one sweep entry point the figure benches share: run_or_throw with
/// the --store result cache in front when one was requested. Cached cells
/// round-trip every RunResult field, so a warm re-run's tables and --json
/// cells are byte-identical to the run that populated the store.
inline std::vector<sim::RunResult> run_sweep(
    const CommonOptions& o, const std::vector<sim::SweepJob>& grid,
    std::vector<double>* wall_seconds = nullptr) {
  const sim::SweepRunner runner(resolve_jobs(o));
  if (o.store_dir.empty())
    return runner.run_or_throw(grid, sim::stderr_progress(), wall_seconds);
  std::unique_ptr<store::SweepCache> cache;
  try {
    cache = std::make_unique<store::SweepCache>(
        store::StoreConfig{o.store_dir, 4096});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot open --store=%s: %s\n", o.store_dir.c_str(),
                 e.what());
    std::exit(1);
  }
  std::vector<sim::RunResult> results = store::run_grid_cached(
      runner, grid, cache.get(), sim::stderr_progress(), wall_seconds);
  const store::SweepCacheStats s = cache->stats();
  std::fprintf(stderr, "store: hits=%llu misses=%llu inserts=%llu (%s)\n",
               static_cast<unsigned long long>(s.hits),
               static_cast<unsigned long long>(s.misses),
               static_cast<unsigned long long>(s.inserts),
               o.store_dir.c_str());
  return results;
}

inline std::vector<std::string> suite_benchmarks(const std::string& suite) {
  if (suite == "fp") return sim::fp_benchmarks();
  if (suite == "int") return sim::int_benchmarks();
  if (suite == "smoke") return sim::smoke_benchmarks();
  if (suite != "all") {
    std::fprintf(stderr, "unknown --suite=%s (all | fp | int | smoke)\n",
                 suite.c_str());
    std::exit(2);
  }
  return sim::all_benchmarks();
}

inline void reject_unknown_flags(const CliArgs& args) {
  const auto unused = args.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag(s):");
    for (const auto& k : unused) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\naccepted flags:");
    for (const auto& k : args.queried()) std::fprintf(stderr, " --%s", k.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

inline void print_header(const char* experiment, const CommonOptions& o) {
  std::printf("=== %s ===\n", experiment);
  std::printf("machine: Table-1 four-issue OoO, 1MB 4-way 64B write-back L2\n");
  std::printf("run: %llu committed micro-ops after %llu warm-up, seed %llu\n",
              static_cast<unsigned long long>(o.instructions),
              static_cast<unsigned long long>(o.warmup),
              static_cast<unsigned long long>(o.seed));
  std::printf("frontend: %s%s%s\n", o.frontend.c_str(),
              o.trace_dir.empty() ? "" : ", traces from ",
              o.trace_dir.c_str());
  std::printf("sweep workers: %u\n\n", resolve_jobs(o));
}

/// The paper's cleaning-interval ladder: 64K to 4M cycles, x4 steps.
inline std::vector<u64> cleaning_intervals() {
  return {u64{64} << 10, u64{256} << 10, u64{1} << 20, u64{4} << 20};
}

inline std::string interval_label(u64 interval) {
  if (interval == 0) return "org";
  if (interval >= (u64{1} << 20) && interval % (u64{1} << 20) == 0)
    return std::to_string(interval >> 20) + "M";
  return std::to_string(interval >> 10) + "K";
}

}  // namespace aeep::bench
