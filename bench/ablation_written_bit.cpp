// Ablation of the §3.2 written-bit heuristic: compare cleaning that only
// writes back dirty lines whose written bit is clear (the paper's design)
// against naive cleaning that writes back every dirty line it inspects.
// The written bit should achieve nearly the same dirty-line reduction with
// markedly less premature write-back traffic on rewrite-heavy workloads.
//
//   ablation_written_bit [--interval=1M] [--suite=all]
//                        [--jobs=N] [--json=out.json] ...
#include "bench_util.hpp"
#include "json_reporter.hpp"

using namespace aeep;

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const bench::CommonOptions opt = bench::parse_common(args);
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Ablation: written-bit heuristic vs naive cleaning",
                      opt);
  std::printf("cleaning interval: %s cycles\n\n",
              bench::interval_label(interval).c_str());

  const unsigned jobs = bench::resolve_jobs(opt);
  bench::JsonReporter json("ablation_written_bit", opt, jobs);
  json.set_config("interval", JsonValue::number(interval));

  const auto benchmarks = bench::suite_benchmarks(opt.suite);
  std::vector<sim::SweepJob> grid;
  for (const auto& name : benchmarks) {
    sim::ExperimentOptions eo;
    eo.scheme = protect::SchemeKind::kNonUniform;
    eo.cleaning_interval = interval;
    eo.instructions = opt.instructions;
    eo.warmup_instructions = opt.warmup;
    eo.seed = opt.seed;
    bench::apply_frontend(eo, opt);

    eo.cleaning_policy = protect::CleaningPolicy::kWrittenBit;
    grid.push_back({name, eo, "written-bit"});
    eo.cleaning_policy = protect::CleaningPolicy::kNaive;
    grid.push_back({name, eo, "naive"});
  }
  const std::vector<sim::RunResult> results =
      bench::run_sweep(opt, grid);

  TextTable table({"benchmark", "dirty% written-bit", "dirty% naive",
                   "WB/ls written-bit", "WB/ls naive"});
  double sd_wb = 0, sd_nv = 0, st_wb = 0, st_nv = 0;
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const sim::RunResult& with_bit = results[2 * i];
    const sim::RunResult& naive = results[2 * i + 1];
    sd_wb += with_bit.avg_dirty_fraction;
    sd_nv += naive.avg_dirty_fraction;
    st_wb += with_bit.wb_per_ls();
    st_nv += naive.wb_per_ls();
    table.add_row({benchmarks[i], TextTable::pct(with_bit.avg_dirty_fraction, 1),
                   TextTable::pct(naive.avg_dirty_fraction, 1),
                   TextTable::pct(with_bit.wb_per_ls(), 2),
                   TextTable::pct(naive.wb_per_ls(), 2)});
    json.add_cell(benchmarks[i], "written-bit",
                  bench::run_result_metrics(with_bit));
    json.add_cell(benchmarks[i], "naive", bench::run_result_metrics(naive));
  }
  const double n = static_cast<double>(benchmarks.size());
  table.add_row({"average", TextTable::pct(sd_wb / n, 1),
                 TextTable::pct(sd_nv / n, 1), TextTable::pct(st_wb / n, 2),
                 TextTable::pct(st_nv / n, 2)});
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: similar dirty%% but naive cleaning pays more"
              " write-back traffic on rewrite-heavy codes.\n");
  return json.write(opt.json_path) ? 0 : 1;
}
