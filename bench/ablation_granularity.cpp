// Ablation: ECC protection granularity. The paper (and Itanium) uses 8
// check bits per 64 data bits (12.5%). Wider granules amortise check bits
// (SECDED over 512 bits costs 2.5%) but correct only one error per granule
// — this bench quantifies both sides: the area column analytically, the
// multi-bit vulnerability by Monte-Carlo double-strike injection through
// the real width-parameterised codec.
//
//   ablation_granularity [--trials=20000] [--seed=42]
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ecc/wide_secded.hpp"
#include "protect/area_model.hpp"

using namespace aeep;

namespace {

/// Fraction of uniformly-placed double strikes in a 64-byte line that a
/// per-granule SECDED arrangement fails to correct (both strikes in one
/// granule -> detected-double).
/// Extract granule `g` of the 512-bit line into LSB-packed words.
std::vector<u64> extract_granule(const std::vector<u64>& line, unsigned g,
                                 unsigned granule_bits) {
  std::vector<u64> out((granule_bits + 63) / 64, 0);
  const unsigned base = g * granule_bits;
  for (unsigned b = 0; b < granule_bits; ++b) {
    const unsigned src = base + b;
    const u64 bit = (line[src / 64] >> (src % 64)) & 1u;
    out[b / 64] |= bit << (b % 64);
  }
  return out;
}

void implant_granule(std::vector<u64>& line, unsigned g, unsigned granule_bits,
                     const std::vector<u64>& packed) {
  const unsigned base = g * granule_bits;
  for (unsigned b = 0; b < granule_bits; ++b) {
    const unsigned dst = base + b;
    const u64 bit = (packed[b / 64] >> (b % 64)) & 1u;
    line[dst / 64] =
        (line[dst / 64] & ~(u64{1} << (dst % 64))) | (bit << (dst % 64));
  }
}

double double_strike_due_rate(unsigned granule_bits, u64 trials, u64 seed) {
  const ecc::WideSecdedCodec codec(granule_bits);
  const unsigned granules = 512 / granule_bits;
  Xorshift64Star rng(seed);
  u64 due = 0;
  std::vector<u64> data(8), golden(8);
  for (u64 t = 0; t < trials; ++t) {
    for (auto& w : data) w = rng.next();
    golden = data;
    // Encode every granule.
    std::vector<u64> checks(granules);
    for (unsigned g = 0; g < granules; ++g) {
      checks[g] = codec.encode(extract_granule(data, g, granule_bits));
    }
    // Two distinct strikes anywhere in the 512 data bits.
    const unsigned b1 = static_cast<unsigned>(rng.next_below(512));
    unsigned b2 = b1;
    while (b2 == b1) b2 = static_cast<unsigned>(rng.next_below(512));
    data[b1 / 64] ^= u64{1} << (b1 % 64);
    data[b2 / 64] ^= u64{1} << (b2 % 64);
    // Decode every granule (repairing singles); any detected-double or
    // residual corruption counts as a failure.
    bool failed = false;
    for (unsigned g = 0; g < granules; ++g) {
      std::vector<u64> packed = extract_granule(data, g, granule_bits);
      const auto r = codec.decode(packed, checks[g]);
      if (r.status == ecc::DecodeStatus::kDetectedDouble) failed = true;
      implant_granule(data, g, granule_bits, packed);
    }
    if (!failed && data != golden) failed = true;  // would be SDC
    if (failed) ++due;
  }
  return static_cast<double>(due) / static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  const u64 trials = args.get_u64("trials", 20000);
  const u64 seed = args.get_u64("seed", 42);
  std::printf("=== Ablation: SECDED protection granularity (64B line) ===\n\n");

  const cache::CacheGeometry geom = cache::kL2Geometry;
  TextTable table({"granule", "check bits/line", "overhead", "L2 ECC total",
                   "2-strike DUE rate"});
  for (const unsigned g : {32u, 64u, 128u, 256u, 512u}) {
    const unsigned cb = ecc::WideSecdedCodec::check_bits_for(g);
    const unsigned per_line = cb * (512 / g);
    const double overhead = static_cast<double>(per_line) / 512.0;
    const double total_kb =
        static_cast<double>(geom.total_lines()) * per_line / 8.0 / 1024.0;
    const double due = double_strike_due_rate(g, trials, seed + g);
    table.add_row({std::to_string(g) + "b", std::to_string(per_line),
                   TextTable::pct(overhead, 1),
                   TextTable::fmt(total_kb, 0) + "KB",
                   TextTable::pct(due, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nthe paper's 64b granule (12.5%%, the Itanium arrangement)"
              " balances area against the\nodds that two strikes land in one"
              " granule; 512b granules cost 4x less storage but\nturn every"
              " in-line double strike into a DUE.\n");
  return 0;
}
