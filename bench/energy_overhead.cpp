// Energy comparison (the Li et al. [11] motivation the paper cites):
// protection energy per scheme from a measured run — codec logic, check-bit
// array accesses, and extra write-back traffic. The structural claim: most
// L2 reads hit clean lines, where a 1-bit parity check replaces a SECDED
// decode and the 16KB parity array replaces a 128KB ECC array lookup.
//
//   energy_overhead [--benchmark=gcc] [--instructions=2M] ...
#include "bench_util.hpp"
#include "protect/energy_model.hpp"

using namespace aeep;

namespace {

protect::EnergyEvents events_from(const sim::RunResult& r,
                                  const sim::RunResult& org) {
  protect::EnergyEvents ev;
  ev.l2_reads = r.l2.reads;
  ev.l2_writes = r.l2.writes;
  ev.l2_fills = r.l2.fills;
  ev.clean_read_fraction_permille =
      static_cast<u64>((1.0 - r.avg_dirty_fraction) * 1000.0);
  ev.writebacks = r.wb_total();
  ev.baseline_writebacks = org.wb_total();
  return ev;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse_cli_or_exit(argc, argv);
  bench::CommonOptions opt = bench::parse_common(args);
  const std::string bench_name = args.get("benchmark", "gcc");
  const u64 interval = args.get_u64("interval", u64{1} << 20);
  bench::reject_unknown_flags(args);
  bench::print_header("Protection energy comparison", opt);
  std::printf("benchmark: %s, cleaning interval %s\n\n", bench_name.c_str(),
              bench::interval_label(interval).c_str());

  sim::ExperimentOptions base;
  base.instructions = opt.instructions;
  base.warmup_instructions = opt.warmup;
  base.seed = opt.seed;
  bench::apply_frontend(base, opt);

  sim::ExperimentOptions org_opts = base;
  org_opts.scheme = protect::SchemeKind::kUniformEcc;
  const sim::RunResult org = sim::run_benchmark(bench_name, org_opts);

  sim::ExperimentOptions prop_opts = base;
  prop_opts.scheme = protect::SchemeKind::kSharedEccArray;
  prop_opts.cleaning_interval = interval;
  const sim::RunResult prop = sim::run_benchmark(bench_name, prop_opts);

  const auto& geom = cache::kL2Geometry;
  const auto e_org = protect::estimate_energy(
      protect::SchemeKind::kUniformEcc, events_from(org, org), geom, 1);
  const auto e_prop = protect::estimate_energy(
      protect::SchemeKind::kSharedEccArray, events_from(prop, org), geom, 1);

  TextTable table({"scheme", "codec (uJ)", "check arrays (uJ)",
                   "extra traffic (uJ)", "total (uJ)"});
  for (const auto* e : {&e_org, &e_prop}) {
    table.add_row({e->scheme, TextTable::fmt(e->codec_pj / 1e6, 2),
                   TextTable::fmt(e->check_storage_pj / 1e6, 2),
                   TextTable::fmt(e->extra_traffic_pj / 1e6, 2),
                   TextTable::fmt(e->total_pj() / 1e6, 2)});
  }
  std::printf("%s", table.render().c_str());
  const double saving = 1.0 - e_prop.total_pj() / e_org.total_pj();
  std::printf("\nprotection-energy saving: %s over %llu committed micro-ops\n",
              TextTable::pct(saving, 1).c_str(),
              static_cast<unsigned long long>(opt.instructions));
  std::printf("(per-event energies are documented assumptions in"
              " protect/energy_model.hpp — the split, not\nthe absolute"
              " numbers, is the result)\n");
  return 0;
}
