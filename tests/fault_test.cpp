// Tests for the soft-error injection framework: classification correctness
// and the protection guarantees of each scheme under single- and double-bit
// faults, exercised end-to-end through a small simulated system.
#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"

namespace aeep::fault {
namespace {

/// A small warmed-up system with real check bits, ready for injections.
class FaultTest : public ::testing::TestWithParam<protect::SchemeKind> {
 protected:
  std::unique_ptr<sim::System> make_system(protect::SchemeKind scheme) {
    sim::SystemConfig cfg;
    cfg.benchmark = "gzip";
    cfg.seed = 99;
    cfg.warmup_instructions = 0;
    cfg.instructions = 120'000;
    cfg.hierarchy.l2.scheme = scheme;
    cfg.hierarchy.l2.maintain_codes = true;
    auto system = std::make_unique<sim::System>(cfg);
    system->run();
    system->hierarchy().flush_write_buffer(system->core().now());
    return system;
  }
};

TEST_P(FaultTest, SingleBitDataFlipsAlwaysRecovered) {
  auto system = make_system(GetParam());
  FaultCampaign campaign(system->hierarchy().l2(), 3);
  for (int i = 0; i < 400; ++i) {
    const auto r = campaign.inject(FaultTarget::kData, 1);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->cls, FaultClass::kRecovered)
        << "outcome " << to_string(r->outcome) << " dirty "
        << r->line_was_dirty;
  }
  EXPECT_EQ(campaign.tally().of(FaultClass::kRecovered), 400u);
}

TEST_P(FaultTest, SingleBitEccFlipsAreHarmless) {
  auto system = make_system(GetParam());
  FaultCampaign campaign(system->hierarchy().l2(), 4);
  for (int i = 0; i < 200; ++i) {
    const auto r = campaign.inject(FaultTarget::kEcc, 1);
    if (!r) continue;  // no dirty line found (unlikely after a run)
    EXPECT_EQ(r->cls, FaultClass::kRecovered);
  }
}

TEST_P(FaultTest, DoubleBitDataFlipsNeverSilent) {
  auto system = make_system(GetParam());
  FaultCampaign campaign(system->hierarchy().l2(), 5);
  for (int i = 0; i < 400; ++i) {
    const auto r = campaign.inject(FaultTarget::kData, 2);
    ASSERT_TRUE(r.has_value());
    // Word parity misses double flips within one word, but the injector
    // spreads flips across the whole line, so most double flips land in
    // different words. For flips in one word of a *dirty* line SECDED
    // detects (DUE); on a clean line refetch recovers. Either way, silent
    // corruption must be impossible for data under ECC... except the
    // clean-line same-word case under parity, which the scheme cannot see
    // but which is *still recoverable* — the line is clean. We therefore
    // assert: dirty lines never yield SDC.
    if (r->line_was_dirty) {
      EXPECT_NE(r->cls, FaultClass::kSilentCorruption);
      EXPECT_NE(r->cls, FaultClass::kMiscorrected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, FaultTest,
    ::testing::Values(protect::SchemeKind::kUniformEcc,
                      protect::SchemeKind::kNonUniform,
                      protect::SchemeKind::kSharedEccArray),
    [](const auto& info) {
      switch (info.param) {
        case protect::SchemeKind::kUniformEcc: return "UniformEcc";
        case protect::SchemeKind::kNonUniform: return "NonUniform";
        case protect::SchemeKind::kSharedEccArray: return "SharedEccArray";
      }
      return "Unknown";
    });

TEST(FaultClassification, ParityTargetAbsentUnderUniformEcc) {
  sim::SystemConfig cfg;
  cfg.benchmark = "gzip";
  cfg.warmup_instructions = 0;
  cfg.instructions = 50'000;
  cfg.hierarchy.l2.scheme = protect::SchemeKind::kUniformEcc;
  sim::System system(cfg);
  system.run();
  FaultCampaign campaign(system.hierarchy().l2(), 6);
  EXPECT_FALSE(campaign.inject(FaultTarget::kParity, 1).has_value());
}

TEST(FaultClassification, TallyAccumulates) {
  sim::SystemConfig cfg;
  cfg.benchmark = "gzip";
  cfg.warmup_instructions = 0;
  cfg.instructions = 50'000;
  cfg.hierarchy.l2.scheme = protect::SchemeKind::kSharedEccArray;
  sim::System system(cfg);
  system.run();
  FaultCampaign campaign(system.hierarchy().l2(), 7);
  for (int i = 0; i < 50; ++i) campaign.inject_anywhere(1);
  EXPECT_GT(campaign.tally().injections, 0u);
  u64 sum = 0;
  for (unsigned c = 0; c < kNumFaultClasses; ++c)
    sum += campaign.tally().by_class[c];
  EXPECT_EQ(sum, campaign.tally().injections);
}

/// A small stand-alone L2 whose line population the test controls exactly.
class InjectEdgeCases : public ::testing::Test {
 protected:
  std::unique_ptr<protect::ProtectedL2> make_l2(protect::SchemeKind scheme) {
    protect::L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets x 8 words
    cfg.scheme = scheme;
    cfg.maintain_codes = true;
    return std::make_unique<protect::ProtectedL2>(cfg, bus_, memory_);
  }

  void fill_clean(protect::ProtectedL2& l2, unsigned lines) {
    for (unsigned i = 0; i < lines; ++i)
      l2.read(10 * i, l2.config().geometry.line_base(Addr{0x40000} + i * 64));
  }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
};

TEST_F(InjectEdgeCases, EccTargetNeedsDirtyLinesUnderSharedScheme) {
  // An all-clean cache under the shared-ECC scheme holds no live ECC bits:
  // asking for an ECC flip must decline rather than corrupt dead storage.
  auto l2 = make_l2(protect::SchemeKind::kSharedEccArray);
  fill_clean(*l2, 32);
  FaultCampaign campaign(*l2, 11);
  EXPECT_FALSE(campaign.inject(FaultTarget::kEcc, 1).has_value());
  EXPECT_EQ(campaign.tally().injections, 0u);  // declined strikes don't tally
}

TEST_F(InjectEdgeCases, InjectAnywhereSurvivesAllCleanSharedCache) {
  // inject_anywhere rolls a storage-weighted target; ECC rolls land in dead
  // storage here and must come back nullopt, everything else must recover.
  auto l2 = make_l2(protect::SchemeKind::kSharedEccArray);
  fill_clean(*l2, 32);
  FaultCampaign campaign(*l2, 12);
  unsigned landed = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = campaign.inject_anywhere(1);
    if (!r) continue;
    ++landed;
    EXPECT_EQ(r->cls, FaultClass::kRecovered);
    EXPECT_FALSE(r->line_was_dirty);
  }
  EXPECT_GT(landed, 0u);
  EXPECT_EQ(campaign.tally().injections, landed);
}

TEST_F(InjectEdgeCases, MoreFlipsThanLiveBitsDeclines) {
  auto l2 = make_l2(protect::SchemeKind::kNonUniform);
  fill_clean(*l2, 8);
  FaultCampaign campaign(*l2, 13);
  const unsigned words = l2->config().geometry.words_per_line();  // 8
  // Parity carries one live bit per word; words+1 flips cannot fit.
  EXPECT_FALSE(campaign.inject(FaultTarget::kParity, words + 1).has_value());
  EXPECT_TRUE(campaign.inject(FaultTarget::kParity, words).has_value());
  // A 64B line holds 512 data bits; 513 distinct flips cannot fit.
  EXPECT_FALSE(campaign.inject(FaultTarget::kData, words * 64 + 1).has_value());
  EXPECT_TRUE(campaign.inject(FaultTarget::kData, words * 64).has_value());
}

TEST_F(InjectEdgeCases, TallyRatesSumToOne) {
  auto l2 = make_l2(protect::SchemeKind::kNonUniform);
  fill_clean(*l2, 32);
  // Mix dirty lines in so every fault class is reachable.
  for (unsigned i = 0; i < 8; ++i) {
    const Addr a = l2->config().geometry.line_base(Addr{0x40000} + i * 64);
    l2->write(1000 + i, a, ~u64{0}, std::vector<u64>(8, 0xD1));
  }
  FaultCampaign campaign(*l2, 14);
  for (int i = 0; i < 300; ++i) campaign.inject_anywhere(1 + i % 2);
  const auto& tally = campaign.tally();
  ASSERT_GT(tally.injections, 0u);
  double sum = 0.0;
  for (unsigned c = 0; c < kNumFaultClasses; ++c)
    sum += tally.rate(static_cast<FaultClass>(c));
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(FaultClassification, Names) {
  EXPECT_STREQ(to_string(FaultTarget::kData), "data");
  EXPECT_STREQ(to_string(FaultTarget::kParity), "parity");
  EXPECT_STREQ(to_string(FaultTarget::kEcc), "ecc");
  EXPECT_STREQ(to_string(FaultClass::kRecovered), "recovered");
  EXPECT_STREQ(to_string(FaultClass::kDetectedUnrecoverable), "DUE");
  EXPECT_STREQ(to_string(FaultClass::kSilentCorruption), "SDC");
  EXPECT_STREQ(to_string(FaultClass::kMiscorrected), "miscorrected");
}

}  // namespace
}  // namespace aeep::fault
