// Tests for the extension modules: cleaning-policy variants (decay counter,
// eager-idle), the protection energy model, and the analytic reliability
// estimator.
#include <gtest/gtest.h>

#include "fault/reliability.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/energy_model.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::protect {
namespace {

// ---------------------------------------------------------------------------
// Cleaning-policy variants (written-bit and naive covered in protect_test).
// ---------------------------------------------------------------------------

class PolicyTest : public ::testing::Test {
 protected:
  L2Config config(CleaningPolicy policy, unsigned threshold = 2) {
    L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets
    cfg.scheme = SchemeKind::kNonUniform;
    cfg.cleaning_interval = 1600;  // one set per 100 cycles
    cfg.cleaning_policy = policy;
    cfg.decay_threshold = threshold;
    return cfg;
  }
  std::vector<u64> line_of(u64 v) { return std::vector<u64>(8, v); }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
};

TEST_F(PolicyTest, DecayCounterWaitsThresholdInspections) {
  ProtectedL2 l2(config(CleaningPolicy::kDecayCounter, 3), bus_, memory_);
  l2.write(0, 0x0, 0x1, line_of(1));
  // Set 0 is inspected at 100, 1700, 3300; threshold 3 cleans on the third.
  Cycle t = 1;
  for (; t <= 3200; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 0u);
  for (; t <= 3400; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
}

TEST_F(PolicyTest, DecayCounterResetByWrites) {
  ProtectedL2 l2(config(CleaningPolicy::kDecayCounter, 2), bus_, memory_);
  l2.write(0, 0x0, 0x1, line_of(1));
  // Inspections at 100 (age 1); rewrite at 200 resets the counter, so the
  // inspection at 1700 only re-ages it (1) and 3300 cleans (2).
  for (Cycle t = 1; t <= 150; ++t) l2.tick(t);
  l2.write(200, 0x0, 0x2, line_of(2));
  Cycle t = 201;
  for (; t <= 3200; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 0u);
  for (; t <= 3400; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
}

TEST_F(PolicyTest, EagerIdleCleansOnlyWhenBusFree) {
  ProtectedL2 l2(config(CleaningPolicy::kEagerIdle), bus_, memory_);
  l2.write(0, 0x0, 0x1, line_of(1));
  // Saturate the bus right before the inspection of set 0 at t=100.
  bus_.write(99, 0x100000, 64);  // busy through ~107
  for (Cycle t = 1; t <= 110; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 0u);  // bus was busy at t=100
  // Next pass (t=1700) finds the bus idle and cleans.
  for (Cycle t = 111; t <= 1750; ++t) l2.tick(t);
  EXPECT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
}

TEST_F(PolicyTest, EagerIdlePicksLruDirtyLine) {
  ProtectedL2 l2(config(CleaningPolicy::kEagerIdle), bus_, memory_);
  const auto& geom = l2.config().geometry;
  const Addr a = geom.addr_of(1, 0), b = geom.addr_of(2, 0);
  l2.write(0, a, 0x1, line_of(0xA));   // older
  l2.write(50, b, 0x1, line_of(0xB));  // newer
  for (Cycle t = 51; t <= 110; ++t) l2.tick(t);
  ASSERT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
  // a (the LRU dirty line) was cleaned; b is still dirty.
  const auto pa = l2.cache_model().probe(a);
  const auto pb = l2.cache_model().probe(b);
  EXPECT_FALSE(l2.cache_model().meta(pa.set, pa.way).dirty);
  EXPECT_TRUE(l2.cache_model().meta(pb.set, pb.way).dirty);
}

TEST(PolicyNames, ToString) {
  EXPECT_STREQ(to_string(CleaningPolicy::kWrittenBit), "written-bit");
  EXPECT_STREQ(to_string(CleaningPolicy::kNaive), "naive");
  EXPECT_STREQ(to_string(CleaningPolicy::kDecayCounter), "decay-counter");
  EXPECT_STREQ(to_string(CleaningPolicy::kEagerIdle), "eager-idle");
}

// ---------------------------------------------------------------------------
// Energy model
// ---------------------------------------------------------------------------

EnergyEvents typical_events() {
  EnergyEvents ev;
  ev.l2_reads = 100000;
  ev.l2_writes = 30000;
  ev.l2_fills = 20000;
  ev.clean_read_fraction_permille = 600;
  ev.writebacks = 21000;
  ev.baseline_writebacks = 20000;
  return ev;
}

TEST(EnergyModel, ProposedCheaperThanUniformOnCleanReads) {
  const auto ev = typical_events();
  const auto uni = estimate_energy(SchemeKind::kUniformEcc, ev,
                                   cache::kL2Geometry, 1);
  const auto prop = estimate_energy(SchemeKind::kSharedEccArray, ev,
                                    cache::kL2Geometry, 1);
  EXPECT_GT(uni.total_pj(), 0.0);
  EXPECT_LT(prop.codec_pj, uni.codec_pj);
  EXPECT_LT(prop.check_storage_pj, uni.check_storage_pj);
}

TEST(EnergyModel, ExtraTrafficOnlyAboveBaseline) {
  auto ev = typical_events();
  ev.writebacks = ev.baseline_writebacks;  // no extra traffic
  const auto prop = estimate_energy(SchemeKind::kSharedEccArray, ev,
                                    cache::kL2Geometry, 1);
  EXPECT_DOUBLE_EQ(prop.extra_traffic_pj, 0.0);
  ev.writebacks = ev.baseline_writebacks + 500;
  const auto prop2 = estimate_energy(SchemeKind::kSharedEccArray, ev,
                                     cache::kL2Geometry, 1);
  EXPECT_GT(prop2.extra_traffic_pj, 0.0);
}

TEST(EnergyModel, BaselineHasNoExtraTrafficTerm) {
  const auto uni = estimate_energy(SchemeKind::kUniformEcc, typical_events(),
                                   cache::kL2Geometry, 1);
  EXPECT_DOUBLE_EQ(uni.extra_traffic_pj, 0.0);
}

TEST(EnergyModel, MoreCleanReadsCheaperProposed) {
  auto ev = typical_events();
  ev.clean_read_fraction_permille = 200;
  const auto dirty_heavy = estimate_energy(SchemeKind::kSharedEccArray, ev,
                                           cache::kL2Geometry, 1);
  ev.clean_read_fraction_permille = 900;
  const auto clean_heavy = estimate_energy(SchemeKind::kSharedEccArray, ev,
                                           cache::kL2Geometry, 1);
  EXPECT_LT(clean_heavy.codec_pj, dirty_heavy.codec_pj);
  EXPECT_LT(clean_heavy.check_storage_pj, dirty_heavy.check_storage_pj);
}

}  // namespace
}  // namespace aeep::protect

namespace aeep::fault {
namespace {

ResidencyProfile typical_profile() {
  ResidencyProfile pr;
  pr.avg_clean_lines = 8000;
  pr.avg_dirty_lines = 8000;
  pr.clean_residency = 1e6;
  pr.dirty_residency = 1e6;
  return pr;
}

TEST(Reliability, UniformEccHasNoSdc) {
  const auto e = estimate_uniform_ecc(typical_profile());
  EXPECT_DOUBLE_EQ(e.sdc_rate, 0.0);
  EXPECT_GT(e.due_rate, 0.0);
}

TEST(Reliability, ParityOnlyDueDominatesEverything) {
  const auto parity = estimate_parity_only(typical_profile());
  const auto paper = estimate_non_uniform(typical_profile());
  const auto uniform = estimate_uniform_ecc(typical_profile());
  // Single-strike loss vs double-strike loss: orders of magnitude apart.
  EXPECT_GT(parity.due_rate, paper.due_rate * 1e6);
  EXPECT_GT(parity.due_rate, uniform.due_rate * 1e6);
}

TEST(Reliability, PaperSchemeMatchesUniformDue) {
  const auto paper = estimate_non_uniform(typical_profile());
  const auto uniform = estimate_uniform_ecc(typical_profile());
  // Same dirty population, same granule: identical DUE exposure.
  EXPECT_DOUBLE_EQ(paper.due_rate, uniform.due_rate);
  // The cost of the 59% saving: a (tiny) clean-line SDC term.
  EXPECT_GT(paper.sdc_rate, 0.0);
  EXPECT_LT(paper.sdc_rate, paper.due_rate * 2.0);
}

TEST(Reliability, CleaningShrinksDueExposure) {
  auto with_cleaning = typical_profile();
  with_cleaning.avg_dirty_lines = 3000;   // cleaned population
  with_cleaning.dirty_residency = 3e5;    // shorter dirty windows
  const auto before = estimate_non_uniform(typical_profile());
  const auto after = estimate_non_uniform(with_cleaning);
  EXPECT_LT(after.due_rate, before.due_rate);
}

TEST(Reliability, RatesScaleQuadraticallyWithLambda) {
  ReliabilityParams p1, p2;
  p1.lambda_per_bit_cycle = 1e-19;
  p2.lambda_per_bit_cycle = 2e-19;
  const auto e1 = estimate_non_uniform(typical_profile(), p1);
  const auto e2 = estimate_non_uniform(typical_profile(), p2);
  EXPECT_NEAR(e2.sdc_rate / e1.sdc_rate, 4.0, 1e-6);  // double-strike term
  EXPECT_NEAR(e2.due_rate / e1.due_rate, 4.0, 1e-6);
}

TEST(Reliability, FitConversion) {
  // 1e-15 events/cycle at 1 GHz = 1e-6/s = 3.6e-3/hour = 3.6e6 FIT.
  EXPECT_NEAR(ReliabilityEstimate::to_fit(1e-15, 1e9), 3.6e6, 1.0);
}

TEST(Reliability, ZeroWindowMeansNoDoubleStrikes) {
  auto pr = typical_profile();
  pr.clean_residency = 0;
  pr.dirty_residency = 0;
  const auto e = estimate_non_uniform(pr);
  EXPECT_DOUBLE_EQ(e.sdc_rate, 0.0);
  EXPECT_DOUBLE_EQ(e.due_rate, 0.0);
}

}  // namespace
}  // namespace aeep::fault
