// Tests for the telemetry subsystem (src/metrics/): the log2 bucket
// layout (bucket 0 = exact zeros, bucket i = [2^(i-1), 2^i), bucket 63
// saturates), percentile estimation at the degenerate ends (empty,
// one-sample), lossless merge and its associativity, interval diffs with
// reset detection, the JSON wire round-trip, registry reference
// stability, span timers, and a concurrent-record stress that the TSan CI
// job replays under the race detector.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "metrics/clock.hpp"
#include "metrics/histogram.hpp"
#include "metrics/registry.hpp"
#include "metrics/timer.hpp"

namespace aeep::metrics {
namespace {

// --------------------------------------------------------------------------
// Bucket layout

TEST(Buckets, IndexFollowsTheLog2Layout) {
  EXPECT_EQ(bucket_index(0), 0u);
  EXPECT_EQ(bucket_index(1), 1u);
  EXPECT_EQ(bucket_index(2), 2u);
  EXPECT_EQ(bucket_index(3), 2u);
  EXPECT_EQ(bucket_index(4), 3u);
  EXPECT_EQ(bucket_index(7), 3u);
  EXPECT_EQ(bucket_index(8), 4u);
  EXPECT_EQ(bucket_index(1023), 10u);
  EXPECT_EQ(bucket_index(1024), 11u);
}

TEST(Buckets, EveryPowerOfTwoOpensItsOwnBucket) {
  for (std::size_t i = 1; i < kHistogramBuckets - 1; ++i) {
    const u64 lo = u64{1} << (i - 1);
    EXPECT_EQ(bucket_index(lo), i) << "2^" << (i - 1);
    EXPECT_EQ(bucket_index(lo - 1), i - 1) << "2^" << (i - 1) << " - 1";
  }
}

TEST(Buckets, TopBucketSaturatesNothingIsDropped) {
  EXPECT_EQ(bucket_index(u64{1} << 62), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_index((u64{1} << 62) + 1), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_index(~u64{0}), kHistogramBuckets - 1);
}

TEST(Buckets, BoundsAgreeWithIndex) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(bucket_index(bucket_lower_bound(i)), i) << "bucket " << i;
    EXPECT_LE(bucket_lower_bound(i), bucket_upper_bound(i)) << "bucket " << i;
    if (i < kHistogramBuckets - 1) {
      EXPECT_EQ(bucket_index(bucket_upper_bound(i)), i) << "bucket " << i;
    }
  }
  EXPECT_EQ(bucket_upper_bound(kHistogramBuckets - 1), ~u64{0});
}

// --------------------------------------------------------------------------
// Snapshot semantics

TEST(Histogram, EmptyReportsZeroEverywhere) {
  Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_EQ(s.percentile(50.0), 0.0);
  EXPECT_EQ(s.percentile(100.0), 0.0);
}

TEST(Histogram, OneSampleIsExactAtEveryPercentile) {
  Histogram h;
  h.record(37);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 37u);
  EXPECT_EQ(s.min, 37u);
  EXPECT_EQ(s.max, 37u);
  EXPECT_EQ(s.mean(), 37.0);
  // Interpolation clamps against the exact min/max: a single sample is
  // reported exactly no matter which percentile is asked for.
  for (const double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(s.percentile(p), 37.0) << "p" << p;
}

TEST(Histogram, PercentilesAreOrderedAndBoundedByMinMax) {
  Histogram h;
  for (u64 v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  double prev = 0.0;
  for (const double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const double v = s.percentile(p);
    EXPECT_GE(v, static_cast<double>(s.min)) << "p" << p;
    EXPECT_LE(v, static_cast<double>(s.max)) << "p" << p;
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_EQ(s.percentile(0.0), 1.0);
  EXPECT_EQ(s.percentile(100.0), 1000.0);
}

TEST(Histogram, ZerosLandInBucketZeroAndHugeValuesSaturate) {
  Histogram h;
  h.record(0);
  h.record(0);
  h.record(u64{1} << 62);
  h.record(~u64{0});
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[kHistogramBuckets - 1], 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, ~u64{0});
}

TEST(Histogram, ResetReturnsToEmpty) {
  Histogram h;
  h.record(5);
  h.record(500);
  ASSERT_EQ(h.snapshot().count, 2u);
  h.reset();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.percentile(50.0), 0.0);
}

// --------------------------------------------------------------------------
// Merge and diff

HistogramSnapshot snap_of(std::initializer_list<u64> values) {
  Histogram h;
  for (const u64 v : values) h.record(v);
  return h.snapshot();
}

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i)
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
}

TEST(Merge, UnionIsLossless) {
  HistogramSnapshot a = snap_of({1, 10, 100});
  const HistogramSnapshot b = snap_of({5, 50, 5000});
  a.merge(b);
  expect_same(a, snap_of({1, 10, 100, 5, 50, 5000}));
}

TEST(Merge, IsAssociativeAndCommutative) {
  const HistogramSnapshot a = snap_of({0, 3, 900});
  const HistogramSnapshot b = snap_of({7, 7, 7, ~u64{0}});
  const HistogramSnapshot c = snap_of({42});

  HistogramSnapshot ab_c = a;  // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot bc = b;  // a + (b + c)
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  expect_same(ab_c, a_bc);

  HistogramSnapshot ba = b;  // b + a == a + b
  ba.merge(a);
  HistogramSnapshot ab = a;
  ab.merge(b);
  expect_same(ab, ba);
}

TEST(Merge, EmptyIsTheIdentity) {
  HistogramSnapshot a = snap_of({2, 4, 8});
  a.merge(HistogramSnapshot{});
  expect_same(a, snap_of({2, 4, 8}));

  HistogramSnapshot e;
  e.merge(snap_of({2, 4, 8}));
  expect_same(e, snap_of({2, 4, 8}));
}

TEST(Diff, IntervalCountsAreExact) {
  Histogram h;
  h.record(10);
  h.record(20);
  const HistogramSnapshot before = h.snapshot();
  h.record(30);
  h.record(3000);
  const HistogramSnapshot after = h.snapshot();

  const auto interval = after.diff_since(before);
  ASSERT_TRUE(interval.has_value());
  EXPECT_EQ(interval->count, 2u);
  EXPECT_EQ(interval->sum, 3030u);
  EXPECT_EQ(interval->buckets[bucket_index(30)], 1u);
  EXPECT_EQ(interval->buckets[bucket_index(3000)], 1u);
  // min/max of the interval population are re-derived from the occupied
  // bucket bounds: a conservative envelope around the true values.
  EXPECT_LE(interval->min, 30u);
  EXPECT_GE(interval->max, 3000u);
}

TEST(Diff, SelfDiffIsEmptyAndResetIsDetected) {
  Histogram h;
  h.record(100);
  h.record(200);
  const HistogramSnapshot s = h.snapshot();
  const auto empty = s.diff_since(s);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());

  // Reset between the snapshots: some bucket would go negative, so the
  // diff must refuse rather than fabricate an interval.
  h.reset();
  h.record(100);
  EXPECT_FALSE(h.snapshot().diff_since(s).has_value());
}

// --------------------------------------------------------------------------
// JSON wire round-trip

TEST(Json, SnapshotRoundTripsLosslessly) {
  const HistogramSnapshot s = snap_of({0, 1, 17, 17, 4096, ~u64{0}});
  const auto back = HistogramSnapshot::from_json(s.to_json());
  ASSERT_TRUE(back.has_value());
  expect_same(*back, s);
}

TEST(Json, EmptySnapshotRoundTripsAndForeignDocsAreRejected) {
  const auto back = HistogramSnapshot::from_json(HistogramSnapshot{}.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());

  EXPECT_FALSE(HistogramSnapshot::from_json(JsonValue::number(u64{7}))
                   .has_value());
  EXPECT_FALSE(HistogramSnapshot::from_json(JsonValue::object()).has_value());
}

// --------------------------------------------------------------------------
// Registry

TEST(Registry, SameNameSameInstrumentStableAddress) {
  Registry reg;
  Histogram& h1 = reg.histogram("test.alpha_us");
  Counter& c1 = reg.counter("test.events");
  // Force rebalancing inserts between the two resolutions.
  for (int i = 0; i < 64; ++i) {
    reg.histogram("test.filler_us." + std::to_string(i));
    reg.counter("test.filler." + std::to_string(i));
  }
  EXPECT_EQ(&reg.histogram("test.alpha_us"), &h1);
  EXPECT_EQ(&reg.counter("test.events"), &c1);

  h1.record(9);
  c1.add(3);
  EXPECT_EQ(reg.histogram("test.alpha_us").snapshot().count, 1u);
  EXPECT_EQ(reg.counter("test.events").value(), 3u);
}

TEST(Registry, SnapshotJsonCarriesEveryInstrument) {
  Registry reg;
  reg.histogram("a.latency_us").record(11);
  reg.counter("a.hits").add(5);

  const JsonValue doc = reg.snapshot_json();
  const JsonValue* hists = doc.find("histograms");
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(hists, nullptr);
  ASSERT_NE(counters, nullptr);
  const JsonValue* lat = hists->find("a.latency_us");
  ASSERT_NE(lat, nullptr);
  const auto back = HistogramSnapshot::from_json(*lat);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->count, 1u);
  EXPECT_EQ(back->sum, 11u);
  const JsonValue* hits = counters->find("a.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->as_u64(0), 5u);
}

TEST(Registry, ResetZeroesButKeepsNamesRegistered) {
  Registry reg;
  Histogram& h = reg.histogram("r.span_us");
  Counter& c = reg.counter("r.events");
  h.record(4);
  c.increment();
  reg.reset();
  EXPECT_TRUE(h.snapshot().empty());
  EXPECT_EQ(c.value(), 0u);
  // The references handed out before the reset are still the live ones.
  EXPECT_EQ(&reg.histogram("r.span_us"), &h);
  EXPECT_EQ(reg.histograms().size(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

// --------------------------------------------------------------------------
// Span timers

TEST(Timer, ScopeExitRecordsExactlyOnce) {
  Histogram h;
  { const ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Timer, StopRecordsEarlyAndDisarmsTheDestructor) {
  Histogram h;
  {
    ScopedTimer t(h);
    t.stop();
    EXPECT_EQ(h.snapshot().count, 1u);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(Timer, CancelRecordsNothing) {
  Histogram h;
  {
    ScopedTimer t(h);
    t.cancel();
  }
  EXPECT_TRUE(h.snapshot().empty());
}

TEST(Clock, BackwardsIntervalsClampToZero) {
  const TimePoint t0 = now();
  const TimePoint later = t0 + std::chrono::milliseconds(5);
  EXPECT_EQ(us_between(later, t0), 0u);
  EXPECT_EQ(us_between(t0, later), 5000u);
  EXPECT_EQ(ms_between(t0, later), 5.0);
}

// --------------------------------------------------------------------------
// Concurrency (re-run under TSan by the CI race-detector job)

TEST(Concurrency, ParallelRecordsAreAllAccountedFor) {
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 20'000;
  Histogram h;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (u64 i = 0; i < kPerThread; ++i)
        h.record(static_cast<u64>(t) * kPerThread + i);
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSnapshot s = h.snapshot();
  const u64 n = u64{kThreads} * kPerThread;
  EXPECT_EQ(s.count, n);
  EXPECT_EQ(s.sum, n * (n - 1) / 2);  // recorded 0..n-1 exactly once each
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, n - 1);
}

TEST(Concurrency, RegistryResolutionRacesAreBenign) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // All threads race to register the same names and record through
      // whichever reference they resolve; every record must land.
      for (int i = 0; i < 200; ++i) {
        reg.histogram("c.shared_us").record(static_cast<u64>(i));
        reg.counter("c.shared").increment();
        reg.histogram("c.other_us." + std::to_string(i % 4)).record(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.histogram("c.shared_us").snapshot().count,
            u64{kThreads} * 200);
  EXPECT_EQ(reg.counter("c.shared").value(), u64{kThreads} * 200);
  EXPECT_EQ(reg.snapshot_json().find("histograms")->members().size(), 5u);
}

}  // namespace
}  // namespace aeep::metrics
