// Tests for the memory substrate: sparse backing store semantics and the
// split-transaction bus timing (queuing, posted writes, latency math).
#include <gtest/gtest.h>

#include <vector>

#include "mem/bus.hpp"
#include "mem/memory_store.hpp"

namespace aeep::mem {
namespace {

TEST(MemoryStore, PristineContentIsDeterministic) {
  MemoryStore a, b;
  for (Addr addr = 0; addr < 1024; addr += 8) {
    EXPECT_EQ(a.read_word(addr), b.read_word(addr));
    EXPECT_EQ(a.read_word(addr), MemoryStore::pristine_word(addr));
  }
}

TEST(MemoryStore, PristineContentIsWellMixed) {
  unsigned distinct = 0;
  u64 prev = MemoryStore::pristine_word(0);
  for (Addr addr = 8; addr < 8 * 100; addr += 8) {
    const u64 w = MemoryStore::pristine_word(addr);
    if (w != prev) ++distinct;
    prev = w;
  }
  EXPECT_EQ(distinct, 99u);
}

TEST(MemoryStore, WritesPersist) {
  MemoryStore m;
  m.write_word(0x100, 0xABCD);
  EXPECT_EQ(m.read_word(0x100), 0xABCDu);
  EXPECT_EQ(m.dirty_words(), 1u);
  // Neighbouring words stay pristine.
  EXPECT_EQ(m.read_word(0x108), MemoryStore::pristine_word(0x108));
}

TEST(MemoryStore, LineRoundTrip) {
  MemoryStore m;
  std::vector<u64> in{1, 2, 3, 4, 5, 6, 7, 8};
  m.write_line(0x1000, in);
  std::vector<u64> out(8);
  m.read_line(0x1000, out);
  EXPECT_EQ(in, out);
}

TEST(Bus, ReadLatencyIsAccessPlusTransfer) {
  SplitTransactionBus bus({8, 100});
  // 64B line over an 8B bus = 8 beats; completes at start+100+8.
  EXPECT_EQ(bus.read(0, 0x0, 64), 108u);
  EXPECT_EQ(bus.stats().reads, 1u);
  EXPECT_EQ(bus.stats().bytes_read, 64u);
  EXPECT_EQ(bus.stats().busy_cycles, 8u);
}

TEST(Bus, BackToBackReadsQueue) {
  SplitTransactionBus bus({8, 100});
  const Cycle first = bus.read(0, 0x0, 64);
  // Second read at cycle 0 must wait for the 8 busy beats of the first.
  const Cycle second = bus.read(0, 0x40, 64);
  EXPECT_EQ(first, 108u);
  EXPECT_EQ(second, 8 + 100 + 8u);
  EXPECT_EQ(bus.stats().queue_delay_cycles, 8u);
}

TEST(Bus, PostedWritesDelayLaterReads) {
  SplitTransactionBus bus({8, 100});
  bus.write(0, 0x0, 64);  // occupies beats 0..7
  const Cycle read_done = bus.read(0, 0x40, 64);
  EXPECT_EQ(read_done, 8 + 100 + 8u);
  EXPECT_EQ(bus.stats().writes, 1u);
  EXPECT_EQ(bus.stats().bytes_written, 64u);
}

TEST(Bus, IdleBusDoesNotQueue) {
  SplitTransactionBus bus({8, 100});
  bus.read(0, 0x0, 64);
  // By cycle 50 the data beats (0..7) are long done.
  const Cycle second = bus.read(50, 0x40, 64);
  EXPECT_EQ(second, 50 + 100 + 8u);
  EXPECT_EQ(bus.stats().queue_delay_cycles, 0u);
}

TEST(Bus, PartialLineTransfers) {
  SplitTransactionBus bus({8, 100});
  EXPECT_EQ(bus.read(0, 0x0, 8), 101u);   // 1 beat
  EXPECT_EQ(bus.read(200, 0x0, 32), 304u); // 4 beats
}

TEST(Bus, WiderBusFewerBeats) {
  SplitTransactionBus bus({16, 100});
  EXPECT_EQ(bus.read(0, 0x0, 64), 104u);  // 4 beats
}

TEST(Bus, NextFreeReflectsOccupancy) {
  SplitTransactionBus bus({8, 100});
  EXPECT_EQ(bus.next_free(5), 5u);
  bus.write(5, 0x0, 64);
  EXPECT_EQ(bus.next_free(5), 13u);
  EXPECT_EQ(bus.next_free(20), 20u);
}

TEST(Bus, StatsReset) {
  SplitTransactionBus bus({8, 100});
  bus.read(0, 0, 64);
  bus.write(0, 0, 64);
  bus.reset_stats();
  EXPECT_EQ(bus.stats().reads, 0u);
  EXPECT_EQ(bus.stats().writes, 0u);
  EXPECT_EQ(bus.stats().busy_cycles, 0u);
}

}  // namespace
}  // namespace aeep::mem
