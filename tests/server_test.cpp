// Tests for the networked job service (src/server/): wire-protocol framing
// and JobSpec mapping, the JobServer's queueing/backpressure/timeout/drain
// semantics over real loopback TCP, and the load-bearing equivalence claim:
// a trace-replay job through the server returns bit-identical metrics to
// the same replay run in-process.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "metrics/histogram.hpp"
#include "server/client.hpp"
#include "server/registry.hpp"
#include "server/server.hpp"
#include "server/wire.hpp"
#include "sim/experiment.hpp"
#include "sim/result_json.hpp"

namespace aeep::server {
namespace {

std::string temp_trace(const char* name) {
  return testing::TempDir() + "aeep_server_test_" + name + ".aeept";
}

/// Capture a small gzip trace and return its path.
std::string capture_gzip(const char* name, u64 instructions = 30'000) {
  const std::string path = temp_trace(name);
  sim::ExperimentOptions eo;
  eo.instructions = instructions;
  eo.warmup_instructions = 5'000;
  eo.capture_path = path;
  sim::run_benchmark("gzip", eo);
  return path;
}

ServerErrorKind kind_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const ServerError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected a ServerError";
  return ServerErrorKind::kInternal;
}

// --- wire protocol (no sockets) -------------------------------------------

TEST(ServerWire, JobSpecRoundTripsThroughJson) {
  JobSpec spec;
  spec.benchmark = "mcf";
  spec.frontend = sim::Frontend::kTrace;
  spec.scheme = protect::SchemeKind::kSharedEccArray;
  spec.cleaning_policy = protect::CleaningPolicy::kDecayCounter;
  spec.cleaning_interval = 64 * 1024;
  spec.decay_threshold = 3;
  spec.ecc_entries_per_set = 2;
  spec.instructions = 123'456;
  spec.warmup = 7'890;
  spec.seed = 99;
  spec.maintain_codes = true;
  spec.trace = "mcf_long";
  spec.timeout_ms = 5'000;
  const JsonValue j = job_spec_to_json(spec);
  const JobSpec back = job_spec_from_json(j);
  EXPECT_EQ(job_spec_to_json(back).dump(0), j.dump(0));
  EXPECT_EQ(back.trace_name(), "mcf_long");
}

TEST(ServerWire, DefaultTraceNameIsTheBenchmark) {
  JobSpec spec;
  spec.benchmark = "swim";
  EXPECT_EQ(spec.trace_name(), "swim");
}

TEST(ServerWire, UnknownJobFieldIsBadRequest) {
  JsonValue j = JsonValue::object();
  j.set("benchmork", JsonValue::string("gzip"));  // typo must not be ignored
  EXPECT_EQ(kind_of([&] { job_spec_from_json(j); }),
            ServerErrorKind::kBadRequest);
}

TEST(ServerWire, BadEnumSpellingsAreBadRequests) {
  EXPECT_EQ(kind_of([] { scheme_from_string("parity"); }),
            ServerErrorKind::kBadRequest);
  EXPECT_EQ(kind_of([] { cleaning_policy_from_string("lazy"); }),
            ServerErrorKind::kBadRequest);
  EXPECT_EQ(kind_of([] { frontend_from_string("dramsim"); }),
            ServerErrorKind::kBadRequest);
}

TEST(ServerWire, WireCodesRoundTrip) {
  for (const auto kind :
       {ServerErrorKind::kIo, ServerErrorKind::kProtocol,
        ServerErrorKind::kBadRequest, ServerErrorKind::kBusy,
        ServerErrorKind::kNotFound, ServerErrorKind::kTimeout,
        ServerErrorKind::kShutdown, ServerErrorKind::kInternal})
    EXPECT_EQ(kind_from_wire_code(wire_code(kind)), kind);
}

TEST(ServerWire, CheckReplyRaisesTypedErrors) {
  const JsonValue busy = error_reply(ServerErrorKind::kBusy, "queue full");
  EXPECT_EQ(kind_of([&] { check_reply(busy); }), ServerErrorKind::kBusy);
  const JsonValue fine = ok_reply("pong");
  EXPECT_EQ(&check_reply(fine), &fine);  // ok passes through
}

// --- framing over a real socket pair --------------------------------------

TEST(ServerSocket, FramesRoundTripAndCleanCloseIsNullopt) {
  Listener listener("127.0.0.1", 0);
  JsonValue doc = JsonValue::object();
  doc.set("type", JsonValue::string("ping"));
  doc.set("n", JsonValue::number(u64{7}));
  std::thread peer([&] {
    Socket c = connect_to("127.0.0.1", listener.port());
    send_frame(c, doc);
    // destructor closes: the server side must see a clean end-of-stream
  });
  auto accepted = listener.accept(2'000);
  ASSERT_TRUE(accepted.has_value());
  const auto frame = recv_frame(*accepted, 2'000);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->dump(0), doc.dump(0));
  EXPECT_FALSE(recv_frame(*accepted, 2'000).has_value());
  peer.join();
}

TEST(ServerSocket, OversizedPrefixIsProtocolError) {
  Listener listener("127.0.0.1", 0);
  std::thread peer([&] {
    Socket c = connect_to("127.0.0.1", listener.port());
    const u8 huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2GB "frame"
    c.send_all(huge, sizeof(huge));
  });
  auto accepted = listener.accept(2'000);
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(kind_of([&] { recv_frame(*accepted, 2'000); }),
            ServerErrorKind::kProtocol);
  peer.join();
}

// --- registry --------------------------------------------------------------

TEST(ServerRegistry, UnknownNameIsNotFoundAndGarbageIsRejected) {
  TraceRegistry reg;
  EXPECT_EQ(kind_of([&] { reg.path_of("nope"); }), ServerErrorKind::kNotFound);
  EXPECT_EQ(kind_of([&] { reg.add("bad", "/does/not/exist.aeept"); }),
            ServerErrorKind::kIo);
  const std::string path = capture_gzip("registry", 5'000);
  reg.add("gzip", path);
  EXPECT_EQ(reg.path_of("gzip"), path);
  EXPECT_EQ(reg.names(), std::vector<std::string>{"gzip"});
  std::remove(path.c_str());
}

// --- the server end to end -------------------------------------------------

JobSpec small_exec_job(u64 instructions = 30'000) {
  JobSpec spec;
  spec.benchmark = "gzip";
  spec.instructions = instructions;
  spec.warmup = 5'000;
  return spec;
}

TEST(JobServer, PingSubmitStatusResultLifecycle) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  const JsonValue pong = client.ping();
  EXPECT_EQ(pong.get_string("type"), "pong");
  EXPECT_EQ(pong.get_u64("protocol"), 1u);

  const u64 id = client.submit(small_exec_job());
  EXPECT_GT(id, 0u);
  const JsonValue result = client.result(id, /*wait=*/true, 60'000);
  EXPECT_TRUE(result.get_bool("ready"));
  EXPECT_EQ(result.get_string("state"), "done");
  const JsonValue* metrics = result.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GT(metrics->get_u64("committed"), 0u);
  EXPECT_GT(metrics->get_double("ipc"), 0.0);

  const JsonValue status = client.status(id);
  EXPECT_EQ(status.get_string("state"), "done");

  EXPECT_EQ(kind_of([&] { client.status(id + 1000); }),
            ServerErrorKind::kNotFound);

  const ServerStats stats = served.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  served.drain();
}

TEST(JobServer, ResubmittedJobIsServedFromTheResultStore) {
  const std::string store_dir =
      testing::TempDir() + "aeep_server_test_store";
  std::filesystem::remove_all(store_dir);

  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  cfg.store_dir = store_dir;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  const u64 first = client.submit(small_exec_job());
  const JsonValue cold = client.result(first, /*wait=*/true, 60'000);
  EXPECT_EQ(cold.get_string("state"), "done");
  // The store insert happens after the job is observable as done (it runs
  // outside the server mutex); wait for the counter before resubmitting.
  for (int i = 0; i < 200 && served.stats().cache_stores == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(served.stats().cache_stores, 1u);

  // Same spec again: answered from the store, born terminal — no queue
  // time, no worker dispatch, and bit-identical metrics.
  const u64 second = client.submit(small_exec_job());
  EXPECT_NE(second, first);
  const JsonValue warm = client.result(second, /*wait=*/false);
  EXPECT_TRUE(warm.get_bool("ready"));
  EXPECT_EQ(warm.get_string("state"), "done");
  ASSERT_NE(warm.find("metrics"), nullptr);
  ASSERT_NE(cold.find("metrics"), nullptr);
  EXPECT_EQ(warm.find("metrics")->dump(0), cold.find("metrics")->dump(0));

  const ServerStats stats = served.stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_stores, 1u);
  EXPECT_EQ(stats.completed, 2u);  // a cache hit still counts as completed

  // The wire stats reply exposes the same counters plus the store gauges.
  const JsonValue wire = client.stats();
  EXPECT_EQ(wire.get_u64("cache_hits"), 1u);
  EXPECT_EQ(wire.get_u64("cache_misses"), 1u);
  EXPECT_EQ(wire.get_u64("store_entries"), 1u);
  EXPECT_GT(wire.get_u64("store_bytes"), 0u);
  served.drain();
}

TEST(JobServer, FullQueueAnswersBusyInsteadOfQueueingUnboundedly) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.queue_capacity = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  // One slow job to occupy the single worker...
  std::vector<u64> accepted;
  accepted.push_back(client.submit(small_exec_job(300'000)));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...then flood: with capacity 1, at most one more fits; the rest must
  // be answered `busy` — an explicit reply, not a hang or a drop.
  u64 busy = 0;
  for (int i = 0; i < 4; ++i) {
    try {
      accepted.push_back(client.submit(small_exec_job()));
    } catch (const ServerError& e) {
      ASSERT_EQ(e.kind(), ServerErrorKind::kBusy);
      ++busy;
    }
  }
  EXPECT_GE(busy, 3u);  // >= 3 of the 4 flooded submits bounced
  EXPECT_EQ(served.stats().busy_rejected, busy);
  for (const u64 id : accepted) {
    const JsonValue r = client.result(id, /*wait=*/true, 120'000);
    EXPECT_TRUE(r.get_bool("ready"));
  }
  served.drain();
}

TEST(JobServer, QueuedJobPastDeadlineTimesOutWithoutRunning) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  cfg.max_batch = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  client.submit(small_exec_job(300'000));  // occupies the worker
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  JobSpec hurried = small_exec_job();
  hurried.timeout_ms = 1;  // will expire while queued behind the slow job
  const u64 id = client.submit(hurried);
  EXPECT_EQ(kind_of([&] { client.result(id, /*wait=*/true, 120'000); }),
            ServerErrorKind::kTimeout);
  EXPECT_GE(served.stats().timed_out, 1u);
  served.drain();
}

TEST(JobServer, UnregisteredTraceNameIsNotFoundAtSubmitTime) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());
  JobSpec spec = small_exec_job();
  spec.frontend = sim::Frontend::kTrace;  // no such trace registered
  EXPECT_EQ(kind_of([&] { client.submit(spec); }),
            ServerErrorKind::kNotFound);
  served.drain();
}

TEST(JobServer, DrainFinishesAcceptedWorkAndRejectsNewSubmits) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());
  const u64 id = client.submit(small_exec_job());
  served.request_drain();
  EXPECT_TRUE(served.draining());
  EXPECT_EQ(kind_of([&] { client.submit(small_exec_job()); }),
            ServerErrorKind::kShutdown);
  // The job accepted before the drain still completes and is collectable
  // while the server winds down.
  const JsonValue r = client.result(id, /*wait=*/true, 120'000);
  EXPECT_TRUE(r.get_bool("ready"));
  EXPECT_EQ(served.drain(), 1u);
  EXPECT_EQ(served.stats().shutdown_rejected, 1u);
}

TEST(JobServer, TraceReplayThroughServerIsBitExactWithDirectReplay) {
  const std::string path = capture_gzip("equivalence");

  sim::ExperimentOptions ro;
  ro.instructions = 30'000;
  ro.warmup_instructions = 5'000;
  ro.frontend = sim::Frontend::kTrace;
  ro.trace_path = path;
  const sim::RunResult direct = sim::run_benchmark("gzip", ro);

  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.registry().add("gzip", path);
  served.start();
  Client client("127.0.0.1", served.port());
  JobSpec spec = small_exec_job();
  spec.frontend = sim::Frontend::kTrace;
  const JsonValue reply = client.run(spec);
  ASSERT_TRUE(reply.get_bool("ready"));
  const JsonValue* metrics = reply.find("metrics");
  ASSERT_NE(metrics, nullptr);
  // Same canonical rendering on both sides — byte equality, no tolerance.
  EXPECT_EQ(metrics->dump(0), sim::run_result_json(direct).dump(0));
  served.drain();
  std::remove(path.c_str());
}

TEST(JobServer, TokenGateRefusesEverythingButPing) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  cfg.token = "sekrit";
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  // Ping stays open so discovery works before credentials, and advertises
  // that everything else is gated.
  const JsonValue pong = client.ping();
  EXPECT_EQ(pong.get_string("type"), "pong");
  EXPECT_TRUE(pong.get_bool("auth_required"));

  // No token and a wrong token both get the typed refusal.
  EXPECT_EQ(kind_of([&] { client.metrics(); }),
            ServerErrorKind::kUnauthorized);
  client.set_token("wrong");
  EXPECT_EQ(kind_of([&] { client.submit(small_exec_job()); }),
            ServerErrorKind::kUnauthorized);

  // The right token unlocks the full protocol.
  client.set_token("sekrit");
  const u64 id = client.submit(small_exec_job());
  const JsonValue result = client.result(id, /*wait=*/true, 60'000);
  EXPECT_TRUE(result.get_bool("ready"));
  EXPECT_FALSE(client.metrics().find("metrics") == nullptr);

  const ServerStats stats = served.stats();
  EXPECT_EQ(stats.unauthorized, 2u);
  EXPECT_EQ(stats.completed, 1u);
  served.drain();
}

TEST(JobServer, MetricsEndpointStageCountsMatchTheWorkDone) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());

  // The registry is process-global (other tests in this binary have
  // already recorded into it), so assert on the interval this test adds,
  // not on absolute counts.
  const auto stage = [&](const JsonValue& reply, const char* name) {
    const JsonValue* hists = reply.find("metrics")->find("histograms");
    const JsonValue* doc = hists == nullptr ? nullptr : hists->find(name);
    if (doc == nullptr) return metrics::HistogramSnapshot{};
    const auto snap = metrics::HistogramSnapshot::from_json(*doc);
    return snap.value_or(metrics::HistogramSnapshot{});
  };
  const JsonValue before = client.metrics();
  EXPECT_GE(before.get_double("uptime_ms"), 0.0);

  constexpr u64 kJobs = 3;
  std::vector<u64> ids;
  for (u64 i = 0; i < kJobs; ++i) {
    JobSpec spec = small_exec_job();
    spec.seed = 100 + i;
    ids.push_back(client.submit(spec));
  }
  for (const u64 id : ids) client.result(id, /*wait=*/true, 60'000);
  const JsonValue after = client.metrics();

  // Every job passed through the queue exactly once, was replayed exactly
  // once, and closed out exactly one wall-clock span.
  for (const char* name :
       {"server.queue_wait_us", "server.replay_us", "server.job_wall_us"}) {
    const auto delta =
        stage(after, name).diff_since(stage(before, name));
    ASSERT_TRUE(delta.has_value()) << name;
    EXPECT_EQ(delta->count, kJobs) << name;
  }
  served.drain();
}

TEST(JobServer, FailedJobSurfacesAsTypedInternalError) {
  ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  JobServer served(cfg);
  served.start();
  Client client("127.0.0.1", served.port());
  JobSpec spec = small_exec_job();
  spec.benchmark = "no_such_benchmark";
  const u64 id = client.submit(spec);  // accepted: validated at run time
  EXPECT_EQ(kind_of([&] { client.result(id, /*wait=*/true, 60'000); }),
            ServerErrorKind::kInternal);
  EXPECT_EQ(served.stats().failed, 1u);
  served.drain();
}

}  // namespace
}  // namespace aeep::server
