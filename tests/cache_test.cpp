// Tests for the cache substrate: geometry slicing, probe/install/evict,
// replacement policies, dirty/written bookkeeping, payload access, and the
// coalescing write buffer.
#include <gtest/gtest.h>

#include <set>

#include "cache/cache.hpp"
#include "cache/write_buffer.hpp"

namespace aeep::cache {
namespace {

TEST(Geometry, PaperL2Shape) {
  const CacheGeometry g = kL2Geometry;
  EXPECT_EQ(g.num_sets(), 4096u);       // "there are 4K cache sets"
  EXPECT_EQ(g.total_lines(), 16384u);   // "a total of 16K cache lines"
  EXPECT_EQ(g.words_per_line(), 8u);
  EXPECT_EQ(g.offset_bits(), 6u);
  EXPECT_EQ(g.index_bits(), 12u);       // "the latch is 12 bits wide"
}

TEST(Geometry, AddressSlicingRoundTrips) {
  const CacheGeometry g = kL2Geometry;
  const Addr a = 0xDEADBEC0;
  EXPECT_EQ(g.line_base(a), a & ~Addr{63});
  const u64 set = g.set_index(a);
  const u64 tag = g.tag_of(a);
  EXPECT_EQ(g.addr_of(tag, set), g.line_base(a));
}

TEST(Geometry, ValidateRejectsBadShapes) {
  EXPECT_THROW((CacheGeometry{1000, 4, 64}.validate()), std::invalid_argument);
  EXPECT_THROW((CacheGeometry{1 * MiB, 3, 64}.validate()), std::invalid_argument);
  EXPECT_THROW((CacheGeometry{1 * MiB, 4, 4}.validate()), std::invalid_argument);
  EXPECT_NO_THROW(kL1IGeometry.validate());
}

class SmallCache : public ::testing::Test {
 protected:
  // 4 sets x 2 ways x 64B = 512B cache: easy to force conflicts.
  SmallCache() : c_(CacheGeometry{512, 2, 64}) {}

  Addr addr_for(u64 set, u64 tag) const {
    return c_.geometry().addr_of(tag, set);
  }

  Cache c_;
};

TEST_F(SmallCache, MissThenHit) {
  const Addr a = addr_for(1, 7);
  EXPECT_FALSE(c_.probe(a).hit);
  const auto v = c_.pick_victim(1);
  EXPECT_FALSE(v.valid);  // empty way available
  c_.install(1, v.way, a, 10);
  const auto pr = c_.probe(a);
  EXPECT_TRUE(pr.hit);
  EXPECT_EQ(pr.set, 1u);
  EXPECT_EQ(c_.stats().fills, 1u);
}

TEST_F(SmallCache, LruEvictsLeastRecentlyTouched) {
  const Addr a = addr_for(2, 1), b = addr_for(2, 2), x = addr_for(2, 3);
  c_.install(2, c_.pick_victim(2).way, a, 1);
  c_.install(2, c_.pick_victim(2).way, b, 2);
  c_.touch(c_.probe(a).set, c_.probe(a).way, 5);  // a most recent
  const auto v = c_.pick_victim(2);
  EXPECT_TRUE(v.valid);
  EXPECT_EQ(v.addr, b);  // b is LRU
  c_.install(2, v.way, x, 6);
  EXPECT_TRUE(c_.probe(a).hit);
  EXPECT_FALSE(c_.probe(b).hit);
  EXPECT_TRUE(c_.probe(x).hit);
  EXPECT_EQ(c_.stats().evictions, 1u);
}

TEST_F(SmallCache, FifoIgnoresTouches) {
  Cache f(CacheGeometry{512, 2, 64}, ReplacementPolicy::kFifo);
  const Addr a = f.geometry().addr_of(1, 0), b = f.geometry().addr_of(2, 0);
  f.install(0, f.pick_victim(0).way, a, 1);
  f.install(0, f.pick_victim(0).way, b, 2);
  f.touch(0, f.probe(a).way, 100);  // FIFO must not care
  EXPECT_EQ(f.pick_victim(0).addr, a);
}

TEST_F(SmallCache, DirtyCountTracksTransitions) {
  const Addr a = addr_for(0, 1), b = addr_for(1, 1);
  c_.install(0, c_.pick_victim(0).way, a, 1);
  c_.install(1, c_.pick_victim(1).way, b, 1);
  EXPECT_EQ(c_.dirty_count(), 0u);
  c_.mark_dirty(0, c_.probe(a).way);
  c_.mark_dirty(1, c_.probe(b).way);
  EXPECT_EQ(c_.dirty_count(), 2u);
  c_.mark_dirty(0, c_.probe(a).way);  // idempotent
  EXPECT_EQ(c_.dirty_count(), 2u);
  c_.clear_dirty(0, c_.probe(a).way);
  EXPECT_EQ(c_.dirty_count(), 1u);
  c_.clear_dirty(0, c_.probe(a).way);  // idempotent
  EXPECT_EQ(c_.dirty_count(), 1u);
}

TEST_F(SmallCache, InstallOverDirtyLineAdjustsCount) {
  const Addr a = addr_for(3, 1), b = addr_for(3, 2), x = addr_for(3, 9);
  c_.install(3, c_.pick_victim(3).way, a, 1);
  c_.install(3, c_.pick_victim(3).way, b, 2);
  c_.mark_dirty(3, c_.probe(a).way);
  EXPECT_EQ(c_.dirty_count(), 1u);
  const auto v = c_.pick_victim(3);  // a is LRU and dirty
  EXPECT_TRUE(v.dirty);
  c_.install(3, v.way, x, 3);
  EXPECT_EQ(c_.dirty_count(), 0u);
  EXPECT_EQ(c_.stats().dirty_evictions, 1u);
}

TEST_F(SmallCache, WrittenBitLifecycle) {
  const Addr a = addr_for(0, 5);
  c_.install(0, c_.pick_victim(0).way, a, 1);
  const unsigned way = c_.probe(a).way;
  EXPECT_FALSE(c_.meta(0, way).written);  // reset on fill (§3.2)
  c_.mark_dirty(0, way);
  c_.set_written(0, way, true);
  EXPECT_TRUE(c_.meta(0, way).written);
  // Re-install resets both bits.
  c_.install(0, way, addr_for(0, 6), 2);
  EXPECT_FALSE(c_.meta(0, way).dirty);
  EXPECT_FALSE(c_.meta(0, way).written);
}

TEST_F(SmallCache, FindDirtyWay) {
  const Addr a = addr_for(2, 1), b = addr_for(2, 2);
  c_.install(2, 0, a, 1);
  c_.install(2, 1, b, 2);
  EXPECT_FALSE(c_.find_dirty_way(2).has_value());
  c_.mark_dirty(2, 1);
  ASSERT_TRUE(c_.find_dirty_way(2).has_value());
  EXPECT_EQ(*c_.find_dirty_way(2), 1u);
  EXPECT_EQ(c_.count_dirty_in_set(2), 1u);
  c_.mark_dirty(2, 0);
  EXPECT_EQ(c_.count_dirty_in_set(2), 2u);
}

TEST_F(SmallCache, PayloadStorage) {
  const Addr a = addr_for(1, 3);
  std::vector<u64> payload{10, 20, 30, 40, 50, 60, 70, 80};
  c_.install(1, 0, a, 1, payload);
  const auto d = c_.data(1, 0);
  ASSERT_EQ(d.size(), 8u);
  EXPECT_EQ(d[0], 10u);
  EXPECT_EQ(d[7], 80u);
  c_.data(1, 0)[3] = 99;
  EXPECT_EQ(c_.data(1, 0)[3], 99u);
}

TEST_F(SmallCache, InvalidateDropsDirty) {
  const Addr a = addr_for(1, 4);
  c_.install(1, 0, a, 1);
  c_.mark_dirty(1, 0);
  c_.invalidate(1, 0);
  EXPECT_EQ(c_.dirty_count(), 0u);
  EXPECT_FALSE(c_.probe(a).hit);
}

TEST_F(SmallCache, ResetClearsEverything) {
  c_.install(0, 0, addr_for(0, 1), 1);
  c_.mark_dirty(0, 0);
  c_.reset();
  EXPECT_EQ(c_.dirty_count(), 0u);
  EXPECT_EQ(c_.stats().fills, 0u);
  EXPECT_FALSE(c_.probe(addr_for(0, 1)).hit);
}

TEST(CacheRandomRepl, EventuallyUsesAllWays) {
  Cache c(CacheGeometry{1024, 4, 64}, ReplacementPolicy::kRandom, 99);
  // Fill set 0 completely, then watch victims across many fills.
  for (unsigned t = 0; t < 4; ++t)
    c.install(0, c.pick_victim(0).way, c.geometry().addr_of(t, 0), t);
  std::set<unsigned> seen;
  for (unsigned t = 4; t < 40; ++t) {
    const auto v = c.pick_victim(0);
    seen.insert(v.way);
    c.install(0, v.way, c.geometry().addr_of(t, 0), t);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(CacheLarge, PaperConfigurationHolds16KLines) {
  Cache c(kL2Geometry);
  EXPECT_EQ(c.geometry().total_lines(), 16384u);
  // Fill one line in every set and verify dirty accounting at scale.
  for (u64 s = 0; s < c.geometry().num_sets(); ++s) {
    c.install(s, 0, c.geometry().addr_of(1, s), 1);
    c.mark_dirty(s, 0);
  }
  EXPECT_EQ(c.dirty_count(), 4096u);
}

// ---------------------------------------------------------------------------
// Write buffer
// ---------------------------------------------------------------------------

TEST(WriteBuffer, CoalescesStoresToSameLine) {
  WriteBuffer wb(16, 64);
  EXPECT_EQ(wb.push(0x100, 1), WriteBuffer::PushResult::kNew);
  EXPECT_EQ(wb.push(0x108, 2), WriteBuffer::PushResult::kCoalesced);
  EXPECT_EQ(wb.push(0x138, 3), WriteBuffer::PushResult::kCoalesced);
  ASSERT_EQ(wb.size(), 1u);
  const WriteBufferView e = wb.front();
  EXPECT_EQ(e.line, 0x100u);
  EXPECT_EQ(e.word_mask, 0b10000011u);
  EXPECT_EQ(e.words[0], 1u);
  EXPECT_EQ(e.words[1], 2u);
  EXPECT_EQ(e.words[7], 3u);
  EXPECT_EQ(wb.stats().coalesced, 2u);
}

TEST(WriteBuffer, LastWriteToWordWins) {
  WriteBuffer wb(16, 64);
  wb.push(0x200, 5);
  wb.push(0x200, 9);
  EXPECT_EQ(wb.front().words[0], 9u);
}

TEST(WriteBuffer, FifoDrainOrder) {
  WriteBuffer wb(16, 64);
  wb.push(0x000, 1);
  wb.push(0x040, 2);
  wb.push(0x080, 3);
  EXPECT_EQ(wb.pop().line, 0x000u);
  EXPECT_EQ(wb.pop().line, 0x040u);
  EXPECT_EQ(wb.pop().line, 0x080u);
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.stats().drains, 3u);
}

TEST(WriteBuffer, FullRejectsNewLinesButCoalesces) {
  WriteBuffer wb(2, 64);
  wb.push(0x000, 1);
  wb.push(0x040, 2);
  EXPECT_TRUE(wb.full());
  EXPECT_EQ(wb.push(0x080, 3), WriteBuffer::PushResult::kFull);
  EXPECT_EQ(wb.stats().full_events, 1u);
  // Same-line store still merges while full.
  EXPECT_EQ(wb.push(0x048, 4), WriteBuffer::PushResult::kCoalesced);
}

TEST(WriteBuffer, SixteenEntriesAsInPaper) {
  WriteBuffer wb;  // defaults
  EXPECT_EQ(wb.capacity(), 16u);
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_EQ(wb.push(i * 64, i), WriteBuffer::PushResult::kNew);
  EXPECT_EQ(wb.push(16 * 64, 0), WriteBuffer::PushResult::kFull);
}

TEST(WriteBuffer, StampsTrackEntryCreationNotCoalescing) {
  WriteBuffer wb(4, 64);
  wb.push(0x000, 1, /*now=*/10);
  wb.push(0x008, 2, /*now=*/25);  // coalesces; oldest store sets the age
  EXPECT_EQ(wb.front_stamp(), 10u);
  EXPECT_EQ(wb.view(0).stamp, 10u);
  wb.push(0x040, 3, /*now=*/30);
  EXPECT_EQ(wb.view(1).stamp, 30u);
}

TEST(WriteBuffer, RingWrapsAroundAfterDrains) {
  WriteBuffer wb(2, 64);
  wb.push(0x000, 1);
  wb.push(0x040, 2);
  EXPECT_EQ(wb.pop().line, 0x000u);
  // Reuses slot 0 while slot 1 still holds 0x040: FIFO order must survive
  // the wrap, and the CAM must still see both lines.
  wb.push(0x080, 3);
  EXPECT_EQ(wb.push(0x048, 4), WriteBuffer::PushResult::kCoalesced);
  EXPECT_EQ(wb.view(0).line, 0x040u);
  EXPECT_EQ(wb.view(1).line, 0x080u);
  EXPECT_EQ(wb.pop().line, 0x040u);
  EXPECT_EQ(wb.pop().line, 0x080u);
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, PopMaterialisesPayloadCopy) {
  WriteBuffer wb(2, 64);
  wb.push(0x100, 7);
  wb.push(0x118, 8);
  WriteBufferEntry e = wb.pop();
  EXPECT_EQ(e.line, 0x100u);
  EXPECT_EQ(e.word_mask, 0b1001u);
  ASSERT_EQ(e.words.size(), 8u);
  EXPECT_EQ(e.words[0], 7u);
  EXPECT_EQ(e.words[3], 8u);
  EXPECT_EQ(e.words[1], 0u);
  // Recycled storage is reused by the next pop without reallocating.
  const u64* stolen = e.words.data();
  wb.recycle(std::move(e));
  EXPECT_EQ(wb.free_list_size(), 1u);
  wb.push(0x200, 9);
  WriteBufferEntry e2 = wb.pop();
  EXPECT_EQ(e2.words.data(), stolen);
  EXPECT_EQ(e2.words[0], 9u);
}

TEST(WriteBuffer, ResetVariants) {
  WriteBuffer wb(4, 64);
  wb.push(0, 1);
  wb.reset_stats();
  EXPECT_EQ(wb.stats().stores, 0u);
  EXPECT_EQ(wb.size(), 1u);  // entries retained
  wb.reset();
  EXPECT_TRUE(wb.empty());
}

}  // namespace
}  // namespace aeep::cache
