// Tests for the width-parameterised SECDED codec across the granularities
// the ablation bench studies, including exhaustive single-bit sweeps and
// sampled double-bit detection at every width.
#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "ecc/secded.hpp"
#include "ecc/wide_secded.hpp"

namespace aeep::ecc {
namespace {

std::vector<u64> random_data(unsigned data_bits, Xorshift64Star& rng) {
  std::vector<u64> data((data_bits + 63) / 64);
  for (auto& w : data) w = rng.next();
  // Mask unused high bits for clean comparisons.
  const unsigned rem = data_bits % 64;
  if (rem) data.back() &= (u64{1} << rem) - 1;
  return data;
}

void flip(std::vector<u64>& data, unsigned bit) {
  data[bit / 64] ^= u64{1} << (bit % 64);
}

TEST(WideSecded, CheckBitCounts) {
  // r is the smallest with 2^r >= k + r + 1; +1 for the overall bit.
  EXPECT_EQ(WideSecdedCodec::check_bits_for(8), 5u);    // r=4
  EXPECT_EQ(WideSecdedCodec::check_bits_for(32), 7u);   // r=6
  EXPECT_EQ(WideSecdedCodec::check_bits_for(64), 8u);   // r=7: the paper's 12.5%
  EXPECT_EQ(WideSecdedCodec::check_bits_for(128), 9u);
  EXPECT_EQ(WideSecdedCodec::check_bits_for(256), 10u);
  EXPECT_EQ(WideSecdedCodec::check_bits_for(512), 11u);
}

TEST(WideSecded, OverheadShrinksWithWidth) {
  double prev = 1.0;
  for (unsigned w : {8u, 32u, 64u, 128u, 256u, 512u}) {
    const WideSecdedCodec codec(w);
    EXPECT_LT(codec.overhead(), prev);
    prev = codec.overhead();
  }
  EXPECT_NEAR(WideSecdedCodec(64).overhead(), 0.125, 1e-9);  // 12.5%
}

TEST(WideSecded, RejectsOutOfRangeWidths) {
  EXPECT_THROW(WideSecdedCodec(4), std::invalid_argument);
  EXPECT_THROW(WideSecdedCodec(5000), std::invalid_argument);
}

class WideSecdedWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(WideSecdedWidths, CleanDecodesOk) {
  const unsigned bits = GetParam();
  const WideSecdedCodec codec(bits);
  Xorshift64Star rng(bits * 7 + 1);
  for (int t = 0; t < 50; ++t) {
    auto data = random_data(bits, rng);
    u64 check = codec.encode(data);
    const auto golden = data;
    const auto r = codec.decode(data, check);
    EXPECT_EQ(r.status, DecodeStatus::kOk);
    EXPECT_EQ(data, golden);
  }
}

TEST_P(WideSecdedWidths, CorrectsEverySingleDataBit) {
  const unsigned bits = GetParam();
  const WideSecdedCodec codec(bits);
  Xorshift64Star rng(bits * 11 + 3);
  auto golden = random_data(bits, rng);
  const u64 check0 = codec.encode(golden);
  for (unsigned b = 0; b < bits; ++b) {
    auto data = golden;
    u64 check = check0;
    flip(data, b);
    const auto r = codec.decode(data, check);
    ASSERT_EQ(r.status, DecodeStatus::kCorrectedSingle) << "bit " << b;
    EXPECT_EQ(r.corrected_bit, b);
    EXPECT_EQ(data, golden);
    EXPECT_EQ(check, check0);
  }
}

TEST_P(WideSecdedWidths, CorrectsEverySingleCheckBit) {
  const unsigned bits = GetParam();
  const WideSecdedCodec codec(bits);
  Xorshift64Star rng(bits * 13 + 5);
  auto golden = random_data(bits, rng);
  const u64 check0 = codec.encode(golden);
  for (unsigned c = 0; c < codec.check_bits(); ++c) {
    auto data = golden;
    u64 check = check0 ^ (u64{1} << c);
    const auto r = codec.decode(data, check);
    ASSERT_EQ(r.status, DecodeStatus::kCorrectedSingle) << "check bit " << c;
    EXPECT_EQ(r.corrected_bit, bits + c);
    EXPECT_EQ(check, check0);
  }
}

TEST_P(WideSecdedWidths, DetectsSampledDoubleBits) {
  const unsigned bits = GetParam();
  const WideSecdedCodec codec(bits);
  Xorshift64Star rng(bits * 17 + 7);
  auto golden = random_data(bits, rng);
  const u64 check0 = codec.encode(golden);
  const int samples = bits <= 64 ? 500 : 200;
  for (int t = 0; t < samples; ++t) {
    const unsigned b1 = static_cast<unsigned>(rng.next_below(bits));
    unsigned b2 = b1;
    while (b2 == b1) b2 = static_cast<unsigned>(rng.next_below(bits));
    auto data = golden;
    u64 check = check0;
    flip(data, b1);
    flip(data, b2);
    const auto r = codec.decode(data, check);
    ASSERT_EQ(r.status, DecodeStatus::kDetectedDouble)
        << "bits " << b1 << "," << b2;
  }
}

TEST_P(WideSecdedWidths, DetectsDataPlusCheckDoubles) {
  const unsigned bits = GetParam();
  const WideSecdedCodec codec(bits);
  Xorshift64Star rng(bits * 19 + 9);
  auto golden = random_data(bits, rng);
  const u64 check0 = codec.encode(golden);
  for (int t = 0; t < 100; ++t) {
    const unsigned b = static_cast<unsigned>(rng.next_below(bits));
    const unsigned c = static_cast<unsigned>(rng.next_below(codec.check_bits()));
    auto data = golden;
    u64 check = check0 ^ (u64{1} << c);
    flip(data, b);
    EXPECT_EQ(codec.decode(data, check).status, DecodeStatus::kDetectedDouble);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WideSecdedWidths,
                         ::testing::Values(8u, 16u, 32u, 64u, 100u, 128u,
                                           247u, 256u, 512u));

TEST(WideSecded, MatchesFixedSecdedAt64) {
  // The generic codec at 64 bits and the fast fixed codec must agree on
  // status for the same corruptions (check-bit layouts may differ).
  const WideSecdedCodec wide(64);
  const SecdedCodec fixed;
  Xorshift64Star rng(101);
  for (int t = 0; t < 200; ++t) {
    const u64 word = rng.next();
    std::vector<u64> data{word};
    u64 wcheck = wide.encode(data);
    const u64 fcheck = fixed.encode(word);
    const unsigned b = static_cast<unsigned>(rng.next_below(64));
    data[0] = flip_bit(word, b);
    const auto wr = wide.decode(data, wcheck);
    const auto fr = fixed.decode(flip_bit(word, b), fcheck);
    EXPECT_EQ(wr.status, fr.status);
    EXPECT_EQ(data[0], word);
    EXPECT_EQ(fr.data, word);
  }
}

}  // namespace
}  // namespace aeep::ecc
