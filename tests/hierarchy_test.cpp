// Focused tests for sim::MemoryHierarchy: the write-through L1D + write
// buffer path, L1I/L1D fill-through-L2 timing, TLB penalties, and the
// drain policy (coalescing window, watermark).
#include <gtest/gtest.h>

#include "sim/hierarchy.hpp"

namespace aeep::sim {
namespace {

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  // Keep the Table-1 shape but a small L2 so conflict tests are cheap.
  cfg.l2.geometry = cache::CacheGeometry{64 * KiB, 4, 64};
  cfg.l2.scheme = protect::SchemeKind::kNonUniform;
  cfg.l2.maintain_codes = true;
  return cfg;
}

TEST(Hierarchy, L1DHitIsOneCycle) {
  MemoryHierarchy h(small_config());
  const Addr a = 0x1000;
  h.load(0, a);                      // cold miss warms L1D
  const Cycle t = h.load(500, a);    // now a hit
  EXPECT_EQ(t, 501u);
  EXPECT_EQ(h.l1d().stats().read_hits, 1u);
}

TEST(Hierarchy, L1DMissGoesThroughL2) {
  MemoryHierarchy h(small_config());
  const Cycle t = h.load(0, 0x2000);
  // 1 (L1) + 30 (cold DTLB) + 10 (L2 hit lat) + 100 (DRAM) + 8 beats.
  EXPECT_EQ(t, 1 + 30 + 10 + 100 + 8u);
  EXPECT_EQ(h.l2().cache_model().stats().reads, 1u);
}

TEST(Hierarchy, WarmTlbDropsPenalty) {
  MemoryHierarchy h(small_config());
  h.load(0, 0x3000);
  const Cycle t = h.load(1000, 0x3040);  // same page, different L1 line
  EXPECT_EQ(t, 1000 + 1 + 10 + 100 + 8u);
}

TEST(Hierarchy, FetchFillsL1I) {
  MemoryHierarchy h(small_config());
  const Addr pc = 0x400000;
  h.fetch(0, pc);
  EXPECT_EQ(h.l1i().stats().misses(), 1u);
  const Cycle t = h.fetch(500, pc + 16);  // same 32B block
  EXPECT_EQ(t, 501u);
  EXPECT_EQ(h.l1i().stats().read_hits, 1u);
}

TEST(Hierarchy, StoresNeverDirtyL1) {
  MemoryHierarchy h(small_config());
  h.load(0, 0x5000);  // bring into L1D
  EXPECT_TRUE(h.store(10, 0x5000, 0xBEEF));
  EXPECT_EQ(h.l1d().dirty_count(), 0u);  // write-through
  // The stored value landed in the L1D copy.
  const auto pr = h.l1d().probe(0x5000);
  ASSERT_TRUE(pr.hit);
  EXPECT_EQ(h.l1d().data(pr.set, pr.way)[0], 0xBEEFu);
}

TEST(Hierarchy, StoreMissDoesNotAllocateL1) {
  MemoryHierarchy h(small_config());
  EXPECT_TRUE(h.store(0, 0x6000, 1));
  EXPECT_FALSE(h.l1d().probe(0x6000).hit);  // write-no-allocate
}

TEST(Hierarchy, DrainAfterResidencyMakesL2LineDirty) {
  auto cfg = small_config();
  cfg.wb_min_residency = 16;
  MemoryHierarchy h(cfg);
  EXPECT_TRUE(h.store(0, 0x7000, 0x42));
  h.tick(1);
  EXPECT_FALSE(h.l2().cache_model().probe(0x7000).hit);  // not yet drained
  for (Cycle t = 2; t < 40; ++t) h.tick(t);
  const auto pr = h.l2().cache_model().probe(0x7000);
  ASSERT_TRUE(pr.hit);
  EXPECT_TRUE(h.l2().cache_model().meta(pr.set, pr.way).dirty);
  EXPECT_EQ(h.l2().cache_model().data(pr.set, pr.way)[0], 0x42u);
}

TEST(Hierarchy, WatermarkForcesEarlyDrain) {
  auto cfg = small_config();
  cfg.wb_min_residency = 1'000'000;  // residency alone would never drain
  cfg.wb_high_watermark = 2;
  MemoryHierarchy h(cfg);
  h.store(0, 0x0, 1);
  h.store(0, 0x40, 2);
  h.store(0, 0x80, 3);  // occupancy 3 > watermark 2
  h.tick(1);
  EXPECT_LE(h.write_buffer().size(), 2u);
}

TEST(Hierarchy, CoalescingWindowMergesStores) {
  auto cfg = small_config();
  cfg.wb_min_residency = 100;
  MemoryHierarchy h(cfg);
  h.store(0, 0x8000, 1);
  h.store(5, 0x8008, 2);   // same line: coalesces
  h.store(9, 0x8038, 3);
  EXPECT_EQ(h.write_buffer().size(), 1u);
  EXPECT_EQ(h.write_buffer().stats().coalesced, 2u);
  for (Cycle t = 10; t < 130; ++t) h.tick(t);
  // One L2 write carrying all three words.
  EXPECT_EQ(h.l2().cache_model().stats().writes, 1u);
  const auto pr = h.l2().cache_model().probe(0x8000);
  ASSERT_TRUE(pr.hit);
  const auto data = h.l2().cache_model().data(pr.set, pr.way);
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[1], 2u);
  EXPECT_EQ(data[7], 3u);
}

TEST(Hierarchy, FullBufferRejectsUntilDrained) {
  auto cfg = small_config();
  cfg.write_buffer_entries = 2;
  cfg.wb_min_residency = 50;
  MemoryHierarchy h(cfg);
  EXPECT_TRUE(h.store(0, 0x0, 1));
  EXPECT_TRUE(h.store(0, 0x40, 2));
  EXPECT_FALSE(h.store(0, 0x80, 3));  // full, distinct line
  EXPECT_TRUE(h.store(0, 0x48, 4));   // coalesces even when full
  for (Cycle t = 1; t < 200; ++t) h.tick(t);
  EXPECT_TRUE(h.store(200, 0x80, 3));
}

TEST(Hierarchy, FlushDrainsEverything) {
  MemoryHierarchy h(small_config());
  for (unsigned i = 0; i < 5; ++i) h.store(0, 0x9000 + i * 64, i);
  h.flush_write_buffer(10);
  EXPECT_TRUE(h.write_buffer().empty());
  EXPECT_EQ(h.l2().cache_model().stats().writes, 5u);
}

TEST(Hierarchy, StatsResetPreservesCacheContents) {
  MemoryHierarchy h(small_config());
  h.load(0, 0xA000);
  h.store(1, 0xA000, 7);
  h.flush_write_buffer(2);
  h.reset_stats(100);
  EXPECT_EQ(h.l1d().stats().accesses(), 0u);
  EXPECT_EQ(h.l2().wb_total(), 0u);
  EXPECT_TRUE(h.l1d().probe(0xA000).hit);  // contents intact
}

}  // namespace
}  // namespace aeep::sim
