// Tests for the correctness-tooling layer (src/verify): the runtime
// invariant auditor, the golden memory model, the deliberately-broken
// scheme fixtures, and the differential model checker with its shrinking
// counterexample machinery.
#include <gtest/gtest.h>

#include "cache/write_buffer.hpp"
#include "verify/auditor.hpp"
#include "verify/broken.hpp"
#include "verify/golden.hpp"
#include "verify/modelcheck.hpp"

using namespace aeep;
using protect::L2Config;
using protect::ProtectedL2;
using protect::SchemeKind;
using protect::WbCause;
using verify::Auditor;
using verify::BrokenKind;
using verify::ModelCheckConfig;
using verify::Op;
using verify::RunReport;

namespace {

bool has_rule(const Auditor& auditor, const std::string& rule) {
  for (const verify::Violation& v : auditor.violations())
    if (v.rule == rule) return true;
  return false;
}

std::vector<u64> line_of(u64 v, unsigned words = 8) {
  return std::vector<u64>(words, v);
}

}  // namespace

// ---------------------------------------------------------------------------
// Golden model
// ---------------------------------------------------------------------------

TEST(GoldenMemory, PristineMatchesMemoryStoreThenTracksNewest) {
  verify::GoldenMemory golden;
  EXPECT_EQ(golden.read(0x40), mem::MemoryStore::pristine_word(0x40));
  golden.write(0x40, 1);
  golden.write(0x40, 2);
  golden.write(0x48, 3);
  EXPECT_EQ(golden.read(0x40), 2u);
  EXPECT_EQ(golden.read(0x48), 3u);
  EXPECT_EQ(golden.words_written(), 2u);
  EXPECT_EQ(golden.read(0x50), mem::MemoryStore::pristine_word(0x50));
}

// ---------------------------------------------------------------------------
// Op encoding
// ---------------------------------------------------------------------------

TEST(OpCodec, RoundTrip) {
  const std::vector<Op> ops = {
      {Op::Kind::kRead, 14, 0, 0},
      {Op::Kind::kWrite, 3, 1, 0x7F},
      {Op::Kind::kTick, 0, 0, 0},
      {Op::Kind::kWrite, 0, 0, 0x00},
      {Op::Kind::kWrite, 255, 7, 0xAB},
  };
  const std::string text = verify::encode_ops(ops);
  EXPECT_EQ(text, "r14,w3.1:7f,t,w0.0:00,w255.7:ab");
  const auto decoded = verify::decode_ops(text);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ops);
}

TEST(OpCodec, RejectsMalformed) {
  for (const char* bad :
       {"x", "w3", "w3.1", "w3.1:", "w3.1:z7", "r1;t", "r", "w.1:00", ",r1"}) {
    EXPECT_FALSE(verify::decode_ops(bad).has_value()) << bad;
  }
  const auto empty = verify::decode_ops("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

// ---------------------------------------------------------------------------
// Auditor on a live ProtectedL2
// ---------------------------------------------------------------------------

class AuditorTest : public ::testing::Test {
 protected:
  L2Config config(SchemeKind scheme, Cycle interval = 0) {
    L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets
    cfg.scheme = scheme;
    cfg.cleaning_interval = interval;
    cfg.maintain_codes = true;
    return cfg;
  }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
};

TEST_F(AuditorTest, CleanUnderChurnForAllSchemes) {
  for (const SchemeKind kind : {SchemeKind::kUniformEcc,
                                SchemeKind::kNonUniform,
                                SchemeKind::kSharedEccArray}) {
    mem::SplitTransactionBus bus{{8, 100}};
    mem::MemoryStore memory;
    ProtectedL2 l2(config(kind, 1600), bus, memory);
    Auditor auditor(l2, {/*check_every=*/1});
    Xorshift64Star rng(7);
    Cycle t = 0;
    for (int i = 0; i < 2000; ++i) {
      t += 1 + rng.next_below(4);
      l2.tick(t);
      const Addr addr =
          l2.config().geometry.addr_of(rng.next_below(12), rng.next_below(16));
      if (rng.chance(0.5))
        l2.write(t, addr, u64{1} << rng.next_below(8), line_of(rng.next()));
      else
        l2.read(t, addr);
    }
    EXPECT_TRUE(auditor.clean()) << auditor.report();
    EXPECT_GE(auditor.ops_seen(), 2000u);
    EXPECT_GE(auditor.audits_run(), 2000u);
    EXPECT_EQ(auditor.report(), "");
  }
}

TEST_F(AuditorTest, CheckEveryNAuditsLess) {
  ProtectedL2 l2(config(SchemeKind::kSharedEccArray), bus_, memory_);
  Auditor auditor(l2, {/*check_every=*/10});
  for (int i = 0; i < 100; ++i)
    l2.write(static_cast<Cycle>(i) * 4, 0x0, 0x1, line_of(1));
  EXPECT_EQ(auditor.ops_seen(), 100u);
  EXPECT_EQ(auditor.audits_run(), 10u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST_F(AuditorTest, DetachesOnDestruction) {
  ProtectedL2 l2(config(SchemeKind::kNonUniform), bus_, memory_);
  {
    Auditor auditor(l2);
    l2.write(0, 0x0, 0x1, line_of(1));
    EXPECT_EQ(auditor.ops_seen(), 1u);
  }
  // The hook is gone; further ops must not touch the dead auditor.
  l2.write(100, 0x40, 0x1, line_of(2));
  Auditor second(l2);
  l2.read(200, 0x0);
  EXPECT_EQ(second.ops_seen(), 1u);
}

TEST_F(AuditorTest, CatchesOverCommittedDirtyLines) {
  auto cfg = config(SchemeKind::kSharedEccArray);
  cfg.scheme_factory = verify::broken_scheme_factory(BrokenKind::kOverCommit);
  ProtectedL2 l2(cfg, bus_, memory_);
  Auditor auditor(l2);
  const u64 set = 2;
  l2.write(0, cfg.geometry.addr_of(1, set), 0x1, line_of(0xA));
  l2.write(100, cfg.geometry.addr_of(2, set), 0x1, line_of(0xB));
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(has_rule(auditor, "dirty-per-set-exceeds-k")) << auditor.report();
  EXPECT_TRUE(has_rule(auditor, "dirty-without-entry")) << auditor.report();
}

TEST_F(AuditorTest, CatchesLeakedEccEntry) {
  auto cfg = config(SchemeKind::kSharedEccArray, /*interval=*/1600);
  cfg.scheme_factory = verify::broken_scheme_factory(BrokenKind::kLeakEntry);
  ProtectedL2 l2(cfg, bus_, memory_);
  Auditor auditor(l2);
  l2.write(0, 0x0, 0x1, line_of(0xC));
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  // Cleaning writes the line back; the broken scheme keeps the ECC entry,
  // leaving it owned by a clean line.
  for (Cycle t = 1; t <= 1700; ++t) l2.tick(t);
  ASSERT_EQ(l2.wb_count(WbCause::kCleaning), 1u);
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(has_rule(auditor, "entry-implies-dirty")) << auditor.report();
}

TEST_F(AuditorTest, CatchesStaleParity) {
  auto cfg = config(SchemeKind::kSharedEccArray);
  cfg.scheme_factory = verify::broken_scheme_factory(BrokenKind::kStaleParity);
  ProtectedL2 l2(cfg, bus_, memory_);
  Auditor auditor(l2);
  l2.write(0, 0x0, 0x1, line_of(0xD));
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(has_rule(auditor, "code-mismatch-parity")) << auditor.report();
  // The violation carries replay context.
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations()[0].op_seq, 1u);
  EXPECT_NE(auditor.violations()[0].to_string().find("code-mismatch-parity"),
            std::string::npos);
}

TEST_F(AuditorTest, WriteBufferConsistency) {
  ProtectedL2 l2(config(SchemeKind::kNonUniform), bus_, memory_);
  Auditor auditor(l2);
  cache::WriteBuffer wbuf(/*entries=*/4, /*line_bytes=*/64);
  EXPECT_EQ(auditor.audit_write_buffer(wbuf), 0u);
  // Two stores to one line coalesce; a third line entry stays separate.
  EXPECT_EQ(wbuf.push(0x100, 1), cache::WriteBuffer::PushResult::kNew);
  EXPECT_EQ(wbuf.push(0x108, 2), cache::WriteBuffer::PushResult::kCoalesced);
  EXPECT_EQ(wbuf.push(0x200, 3), cache::WriteBuffer::PushResult::kNew);
  EXPECT_EQ(auditor.audit_write_buffer(wbuf), 0u);
  EXPECT_TRUE(auditor.clean());
}

// ---------------------------------------------------------------------------
// Model checker
// ---------------------------------------------------------------------------

TEST(ModelCheck, CleanRandomSequencesForAllSchemes) {
  for (const SchemeKind kind : {SchemeKind::kUniformEcc,
                                SchemeKind::kNonUniform,
                                SchemeKind::kSharedEccArray}) {
    ModelCheckConfig cfg;
    cfg.scheme = kind;
    cfg.entries_per_set = kind == SchemeKind::kSharedEccArray ? 2 : 1;
    cfg.cleaning_interval = 400;
    const std::vector<Op> ops = verify::random_ops(cfg, 11, 2000);
    const RunReport report = verify::run_sequence(cfg, ops);
    EXPECT_TRUE(report.ok) << cfg.scheme_label() << ": "
                           << report.failure->detail;
    EXPECT_EQ(report.ops_run, 2000u);
    EXPECT_GT(report.audits, 0u);
  }
}

TEST(ModelCheck, FaultInjectionHealsEverything) {
  ModelCheckConfig cfg;
  cfg.scheme = SchemeKind::kSharedEccArray;
  cfg.entries_per_set = 2;
  cfg.inject_faults = true;
  cfg.fault_every = 5;
  cfg.seed = 3;
  const std::vector<Op> ops = verify::random_ops(cfg, 23, 3000);
  const RunReport report = verify::run_sequence(cfg, ops);
  EXPECT_TRUE(report.ok) << report.failure->detail;
  EXPECT_GT(report.faults_injected, 100u);
}

TEST(ModelCheck, EccWritebackAccountingBalances) {
  ModelCheckConfig cfg;
  cfg.scheme = SchemeKind::kSharedEccArray;
  cfg.entries_per_set = 1;
  // Alternate writes to two lines of the same set (4-set geometry: lines 0
  // and 4 both map to set 0) — every other write forces an ECC eviction.
  std::vector<Op> ops;
  for (u16 i = 0; i < 40; ++i)
    ops.push_back({Op::Kind::kWrite, static_cast<u16>((i % 2) * 4), 0,
                   static_cast<u8>(i)});
  const RunReport report = verify::run_sequence(cfg, ops);
  ASSERT_TRUE(report.ok) << report.failure->detail;
  const u64 ecc_wb = report.wb[static_cast<unsigned>(WbCause::kEccEviction)];
  EXPECT_GT(ecc_wb, 0u);
  EXPECT_EQ(ecc_wb, report.ecc_entry_evictions);
}

TEST(ModelCheck, DifferentialSchemesAgree) {
  ModelCheckConfig cfg;
  cfg.entries_per_set = 2;
  cfg.cleaning_interval = 400;
  const std::vector<Op> ops = verify::random_ops(cfg, 31, 1500);
  const verify::DiffReport diff = verify::run_differential(cfg, ops);
  EXPECT_TRUE(diff.ok) << diff.detail;
  ASSERT_EQ(diff.runs.size(), 3u);
  // Allocation behaviour is scheme-independent.
  EXPECT_EQ(diff.runs[0].cache.fills, diff.runs[1].cache.fills);
  EXPECT_EQ(diff.runs[0].cache.fills, diff.runs[2].cache.fills);
  // Only the shared scheme generates ECC-eviction traffic.
  const auto ecc = static_cast<unsigned>(WbCause::kEccEviction);
  EXPECT_EQ(diff.runs[0].wb[ecc], 0u);
  EXPECT_EQ(diff.runs[1].wb[ecc], 0u);
}

TEST(ModelCheck, ExhaustiveShortSequencesAreClean) {
  ModelCheckConfig cfg;
  cfg.scheme = SchemeKind::kSharedEccArray;
  const verify::ExhaustiveReport report =
      verify::exhaustive_check(cfg, /*alphabet_lines=*/2, /*len=*/3);
  EXPECT_FALSE(report.counterexample.has_value());
  // Alphabet: 2 reads + 2 writes + tick = 5 symbols; 5^3 sequences.
  EXPECT_EQ(report.sequences, 125u);
  EXPECT_EQ(report.ops, 375u);
}

TEST(ModelCheck, BrokenSchemesAreCaughtAndShrunk) {
  for (const BrokenKind kind : {BrokenKind::kOverCommit,
                                BrokenKind::kLeakEntry,
                                BrokenKind::kStaleParity}) {
    ModelCheckConfig cfg;
    cfg.scheme = SchemeKind::kSharedEccArray;
    cfg.cleaning_interval = 400;
    cfg.scheme_factory = verify::broken_scheme_factory(kind);
    cfg.label = std::string("broken-") + verify::to_string(kind);

    std::vector<Op> failing;
    for (u64 seed = 1; seed <= 8 && failing.empty(); ++seed) {
      std::vector<Op> ops = verify::random_ops(cfg, seed * 31 + 7, 400);
      if (!verify::run_sequence(cfg, ops).ok) failing = std::move(ops);
    }
    ASSERT_FALSE(failing.empty()) << cfg.label << " escaped the checker";

    const std::vector<Op> minimal = verify::shrink(cfg, failing);
    ASSERT_FALSE(minimal.empty());
    EXPECT_LE(minimal.size(), 4u) << cfg.label << ": "
                                  << verify::encode_ops(minimal);
    // The minimized sequence still fails, and survives a replay round-trip
    // through its textual encoding.
    EXPECT_FALSE(verify::run_sequence(cfg, minimal).ok);
    const auto replayed = verify::decode_ops(verify::encode_ops(minimal));
    ASSERT_TRUE(replayed.has_value());
    const RunReport report = verify::run_sequence(cfg, *replayed);
    ASSERT_FALSE(report.ok);
    EXPECT_EQ(report.failure->kind, "invariant");
  }
}

TEST(ModelCheck, ShrinkKeepsCorrectSequencesIntact) {
  // shrink()'s precondition is a failing sequence; on a passing one it must
  // return the input unchanged rather than loop.
  ModelCheckConfig cfg;
  const std::vector<Op> ops = verify::random_ops(cfg, 5, 50);
  ASSERT_TRUE(verify::run_sequence(cfg, ops).ok);
  EXPECT_EQ(verify::shrink(cfg, ops), ops);
}
