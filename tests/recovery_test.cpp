// Tests for the online recovery controller: the three recovery paths
// (scrub-correct, parity re-fetch with bounded retries, DUE policies), the
// outbound write-back validation, the MCA-style error log, and graceful
// way-retirement — plus the end-to-end determinism of a seeded strike run.
#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "fault/strike_process.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/protected_l2.hpp"
#include "protect/recovery.hpp"
#include "sim/experiment.hpp"
#include "sim/system.hpp"

namespace aeep::protect {
namespace {

// ---------------------------------------------------------------------------
// Unit-level paths on a small ProtectedL2 with online validation enabled.
// ---------------------------------------------------------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  L2Config small_config(SchemeKind scheme = SchemeKind::kNonUniform) {
    L2Config cfg;
    cfg.geometry = cache::CacheGeometry{4096, 4, 64};  // 16 sets x 4 ways
    cfg.hit_latency = 10;
    cfg.scheme = scheme;
    cfg.maintain_codes = true;
    cfg.recovery.check_on_access = true;
    return cfg;
  }

  std::vector<u64> line_of(u64 v) { return std::vector<u64>(8, v); }

  /// Make (set, way 0) a dirty resident line holding `v` in every word.
  Addr make_dirty(ProtectedL2& l2, u64 set, u64 v) {
    const Addr a = l2.config().geometry.addr_of(1, set);
    l2.write(0, a, ~u64{0}, line_of(v));
    return a;
  }

  /// Make (set, way 0) a clean resident line (demand fill from memory).
  Addr make_clean(ProtectedL2& l2, u64 set) {
    const Addr a = l2.config().geometry.addr_of(1, set);
    l2.read(0, a);
    return a;
  }

  mem::SplitTransactionBus bus_{{8, 100}};
  mem::MemoryStore memory_;
};

TEST_F(RecoveryTest, CleanCheckIsFreeAndUnlogged) {
  ProtectedL2 l2(small_config(), bus_, memory_);
  make_clean(l2, 0);
  const Cycle done = l2.read(200, l2.config().geometry.addr_of(1, 0));
  EXPECT_EQ(done, 210u);  // plain hit latency, no recovery surcharge
  EXPECT_EQ(l2.recovery().stats().checks, 1u);
  EXPECT_EQ(l2.recovery().stats().errors, 0u);
  EXPECT_TRUE(l2.recovery().error_log().empty());
}

TEST_F(RecoveryTest, CorrectedErrorScrubsAndChargesLatency) {
  ProtectedL2 l2(small_config(), bus_, memory_);
  const u64 set = 1;
  const Addr a = make_dirty(l2, set, 0xBEEF);
  const auto pr = l2.cache_model().probe(a);
  ASSERT_TRUE(pr.hit);
  l2.cache_model().data(pr.set, pr.way)[3] =
      flip_bit(l2.cache_model().data(pr.set, pr.way)[3], 11);

  const Cycle done = l2.read(200, a);
  EXPECT_EQ(done, 200 + 10 + l2.config().recovery.correction_latency);
  EXPECT_EQ(l2.cache_model().data(pr.set, pr.way)[3], 0xBEEFu);  // repaired
  const auto& st = l2.recovery().stats();
  EXPECT_EQ(st.errors, 1u);
  EXPECT_EQ(st.corrected, 1u);
  EXPECT_EQ(st.stall_cycles, l2.config().recovery.correction_latency);
  ASSERT_EQ(l2.recovery().error_log().size(), 1u);
  const auto e = l2.recovery().error_log()[0];
  EXPECT_EQ(e.action, RecoveryAction::kScrubCorrected);
  EXPECT_EQ(e.outcome, ReadOutcome::kCorrected);
  EXPECT_TRUE(e.was_dirty);
  EXPECT_EQ(e.set, set);
}

TEST_F(RecoveryTest, ParityFailChargesBusRoundTripAndRecovers) {
  ProtectedL2 l2(small_config(), bus_, memory_);
  const u64 set = 2;
  const Addr a = make_clean(l2, set);
  const auto pr = l2.cache_model().probe(a);
  ASSERT_TRUE(pr.hit);
  const u64 golden = memory_.read_word(a);
  l2.cache_model().data(pr.set, pr.way)[0] = flip_bit(golden, 5);

  const Cycle done = l2.read(500, a);
  EXPECT_GT(done, 510u);  // re-fetch added a bus round trip to the hit
  EXPECT_EQ(l2.cache_model().data(pr.set, pr.way)[0], golden);
  const auto& st = l2.recovery().stats();
  EXPECT_EQ(st.refetched, 1u);
  EXPECT_EQ(st.retries, 0u);  // transient: first re-fetch already verifies
  ASSERT_EQ(l2.recovery().error_log().size(), 1u);
  EXPECT_EQ(l2.recovery().error_log()[0].action, RecoveryAction::kRefetched);
  EXPECT_EQ(l2.recovery().error_log()[0].retries, 0u);
}

TEST_F(RecoveryTest, PersistentFaultExhaustsRetriesAndDropsLine) {
  auto cfg = small_config();
  cfg.recovery.max_refetch_retries = 3;
  ProtectedL2 l2(cfg, bus_, memory_);
  const u64 set = 3;
  const Addr a = make_clean(l2, set);
  const auto pr = l2.cache_model().probe(a);
  ASSERT_TRUE(pr.hit);

  // A stuck cell: every re-fetch is immediately re-corrupted.
  l2.recovery().set_reassert_hook([&](u64 s, unsigned w) {
    l2.cache_model().data(s, w)[0] = flip_bit(l2.cache_model().data(s, w)[0], 5);
  });
  l2.cache_model().data(pr.set, pr.way)[0] =
      flip_bit(l2.cache_model().data(pr.set, pr.way)[0], 5);

  l2.read(500, a);
  const auto& st = l2.recovery().stats();
  EXPECT_EQ(st.retry_exhausted, 1u);
  EXPECT_EQ(st.retries, 3u);
  EXPECT_EQ(st.lines_dropped, 1u);
  ASSERT_GE(l2.recovery().error_log().size(), 1u);
  const auto e = l2.recovery().error_log()[0];
  EXPECT_EQ(e.action, RecoveryAction::kRetryExhausted);
  EXPECT_EQ(e.retries, 3u);
  // The demand access restarted as a miss and re-filled the line (the
  // stuck cell only re-asserts inside the retry loop here).
  EXPECT_TRUE(l2.cache_model().probe(a).hit);
}

TEST_F(RecoveryTest, DuePolicyDropLosesDirtyDataButKeepsRunning) {
  ProtectedL2 l2(small_config(), bus_, memory_);
  const u64 set = 4;
  const Addr a = make_dirty(l2, set, 0x77);
  const u64 before = memory_.read_word(a);
  const auto pr = l2.cache_model().probe(a);
  ASSERT_TRUE(pr.hit);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b101;  // double bit: DUE

  l2.read(500, a);
  const auto& st = l2.recovery().stats();
  EXPECT_EQ(st.due_events, 1u);
  EXPECT_EQ(st.dirty_lines_lost, 1u);
  EXPECT_EQ(st.lines_dropped, 1u);
  EXPECT_FALSE(l2.recovery().panicked());
  // The line was re-filled clean from memory's (stale) copy — corrupt data
  // never survived, the dirty update is gone, the machine keeps running.
  const auto pr2 = l2.cache_model().probe(a);
  ASSERT_TRUE(pr2.hit);
  EXPECT_FALSE(l2.cache_model().meta(pr2.set, pr2.way).dirty);
  EXPECT_EQ(l2.cache_model().data(pr2.set, pr2.way)[0], before);
  ASSERT_EQ(l2.recovery().error_log().size(), 1u);
  EXPECT_EQ(l2.recovery().error_log()[0].action,
            RecoveryAction::kDroppedRefetch);
}

TEST_F(RecoveryTest, DuePolicyPanicLatchesMachineCheck) {
  auto cfg = small_config();
  cfg.recovery.due_policy = DuePolicy::kPanic;
  ProtectedL2 l2(cfg, bus_, memory_);
  const Addr a = make_dirty(l2, 5, 0x77);
  const auto pr = l2.cache_model().probe(a);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b11;

  l2.read(500, a);
  EXPECT_TRUE(l2.recovery().panicked());
  EXPECT_EQ(l2.recovery().stats().panics, 1u);
  ASSERT_EQ(l2.recovery().error_log().size(), 1u);
  EXPECT_EQ(l2.recovery().error_log()[0].action, RecoveryAction::kPanicked);
}

TEST_F(RecoveryTest, DuePolicyPoisonBrandsLineAndCountsConsumers) {
  auto cfg = small_config();
  cfg.recovery.due_policy = DuePolicy::kPoison;
  ProtectedL2 l2(cfg, bus_, memory_);
  const Addr a = make_dirty(l2, 6, 0x77);
  const auto pr = l2.cache_model().probe(a);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b11;

  l2.read(500, a);
  const auto& st = l2.recovery().stats();
  EXPECT_EQ(st.lines_poisoned, 1u);
  EXPECT_EQ(st.lines_dropped, 0u);
  EXPECT_TRUE(l2.recovery().poisoned(pr.set, pr.way));
  EXPECT_TRUE(l2.cache_model().meta(pr.set, pr.way).dirty);  // line stays

  // Every later read of the branded line is a counted propagation.
  l2.read(600, a);
  l2.read(700, a);
  EXPECT_EQ(l2.recovery().stats().poison_reads, 2u);
}

TEST_F(RecoveryTest, WritebackValidationBlocksCorruptDirtyData) {
  ProtectedL2 l2(small_config(), bus_, memory_);
  const auto& geom = l2.config().geometry;
  const u64 set = 7;
  const Addr a = make_dirty(l2, set, 0x42);
  const u64 golden = memory_.read_word(a);
  const auto pr = l2.cache_model().probe(a);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b11;  // DUE in dirty payload

  // Force eviction via conflict fills: the replacement write-back must be
  // vetoed so the corrupt data never reaches memory.
  for (unsigned k = 1; k <= 4; ++k) l2.read(1000 * k, geom.addr_of(50 + k, set));
  EXPECT_EQ(memory_.read_word(a), golden);
  EXPECT_EQ(l2.wb_count(WbCause::kReplacement), 0u);
  EXPECT_EQ(l2.recovery().stats().dirty_lines_lost, 1u);
}

TEST_F(RecoveryTest, PoisonPolicyWritesBackAnywayAndCountsIt) {
  auto cfg = small_config();
  cfg.recovery.due_policy = DuePolicy::kPoison;
  ProtectedL2 l2(cfg, bus_, memory_);
  const auto& geom = cfg.geometry;
  const u64 set = 8;
  const Addr a = make_dirty(l2, set, 0x42);
  const auto pr = l2.cache_model().probe(a);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b11;

  for (unsigned k = 1; k <= 4; ++k) l2.read(1000 * k, geom.addr_of(50 + k, set));
  EXPECT_EQ(l2.wb_count(WbCause::kReplacement), 1u);
  EXPECT_EQ(l2.recovery().stats().poisoned_writebacks, 1u);
}

TEST_F(RecoveryTest, RepeatOffenderWayIsRetired) {
  auto cfg = small_config();
  cfg.recovery.retirement_threshold = 2;
  ProtectedL2 l2(cfg, bus_, memory_);
  const auto& geom = cfg.geometry;
  const u64 set = 9;
  const Addr a = make_clean(l2, set);
  const auto pr = l2.cache_model().probe(a);
  const unsigned way = pr.way;

  // Two transient errors at the same site cross the threshold.
  for (int i = 0; i < 2; ++i) {
    l2.cache_model().data(set, way)[0] =
        flip_bit(l2.cache_model().data(set, way)[0], 9);
    l2.read(500 + 100 * i, a);
  }
  EXPECT_TRUE(l2.cache_model().is_retired(set, way));
  EXPECT_EQ(l2.cache_model().active_ways(set), 3u);
  EXPECT_EQ(l2.cache_model().retired_ways(), 1u);
  EXPECT_EQ(l2.recovery().stats().ways_retired, 1u);
  EXPECT_GT(l2.retired_capacity_fraction(), 0.0);
  // The access that triggered retirement still completed (re-filled into an
  // active way), and new allocations keep skipping the fused slot.
  EXPECT_TRUE(l2.cache_model().probe(a).hit);
  for (unsigned k = 1; k <= 8; ++k) l2.read(2000 + k, geom.addr_of(60 + k, set));
  EXPECT_FALSE(l2.cache_model().meta(set, way).valid);
}

TEST_F(RecoveryTest, LastActiveWayIsNeverRetired) {
  auto cfg = small_config();
  cfg.recovery.retirement_threshold = 1;
  ProtectedL2 l2(cfg, bus_, memory_);
  const auto& geom = cfg.geometry;
  const u64 set = 10;
  // Walk every way of the set into retirement; the last must survive.
  for (unsigned round = 0; round < 8; ++round) {
    const Addr a = geom.addr_of(100 + round, set);
    l2.read(round * 5000, a);
    const auto pr = l2.cache_model().probe(a);
    ASSERT_TRUE(pr.hit);
    l2.cache_model().data(pr.set, pr.way)[0] =
        flip_bit(l2.cache_model().data(pr.set, pr.way)[0], 3);
    l2.read(round * 5000 + 100, a);
  }
  EXPECT_EQ(l2.cache_model().retired_ways(), geom.ways - 1);
  EXPECT_EQ(l2.cache_model().active_ways(set), 1u);
  // The direct-mapped remnant still serves the set.
  const Addr a = geom.addr_of(200, set);
  l2.read(100000, a);
  EXPECT_TRUE(l2.cache_model().probe(a).hit);
}

TEST_F(RecoveryTest, WritebackPathFaultsRetireViaTick) {
  auto cfg = small_config();
  cfg.recovery.retirement_threshold = 1;
  cfg.cleaning_interval = 1600;  // 16 sets -> one inspection per 100 cycles
  ProtectedL2 l2(cfg, bus_, memory_);
  const u64 set = 0;
  const Addr a = make_dirty(l2, set, 0x99);
  const auto pr = l2.cache_model().probe(a);
  const unsigned way = pr.way;
  l2.cache_model().data(set, way)[2] =
      flip_bit(l2.cache_model().data(set, way)[2], 7);

  // The cleaning FSM writes the idle dirty line back; outbound validation
  // corrects it and tallies the fault, and the same tick drains the queued
  // retirement — the way fuses off without ever being demand-hit again.
  for (Cycle t = 1; t <= 1700; ++t) l2.tick(t);
  EXPECT_EQ(l2.recovery().stats().corrected, 1u);
  EXPECT_TRUE(l2.cache_model().is_retired(set, way));
  EXPECT_EQ(l2.recovery().stats().ways_retired, 1u);
  EXPECT_EQ(memory_.read_word(a + 2 * 8), 0x99u);  // corrected data landed
}

TEST_F(RecoveryTest, ErrorLogIsRingKeepingNewestWithDroppedCount) {
  auto cfg = small_config();
  cfg.recovery.error_log_capacity = 4;
  ProtectedL2 l2(cfg, bus_, memory_);
  const Addr a = make_dirty(l2, 11, 0x1);
  const auto pr = l2.cache_model().probe(a);
  for (int i = 0; i < 7; ++i) {
    l2.cache_model().data(pr.set, pr.way)[1] =
        flip_bit(l2.cache_model().data(pr.set, pr.way)[1], 30);
    l2.read(500 + 10 * i, a);
  }
  const auto log = l2.recovery().error_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(l2.recovery().error_log_dropped(), 3u);
  // Ring semantics: the *newest* four errors survive (cycles 530..560, in
  // chronological order), the first three were overwritten.
  for (std::size_t i = 0; i < log.size(); ++i)
    EXPECT_EQ(log[i].cycle, 530u + 10 * i);
}

TEST_F(RecoveryTest, ErrorLogStaysBoundedOverLongLivedProcess) {
  // A server process handles errors indefinitely; the log must never grow
  // past its capacity no matter how many arrive.
  auto cfg = small_config();
  cfg.recovery.error_log_capacity = 4;
  ProtectedL2 l2(cfg, bus_, memory_);
  const Addr a = make_dirty(l2, 11, 0x1);
  const auto pr = l2.cache_model().probe(a);
  constexpr int kErrors = 200;
  for (int i = 0; i < kErrors; ++i) {
    l2.cache_model().data(pr.set, pr.way)[1] =
        flip_bit(l2.cache_model().data(pr.set, pr.way)[1], 30);
    l2.read(500 + 10 * i, a);
    EXPECT_LE(l2.recovery().error_log().size(), 4u);
  }
  EXPECT_EQ(l2.recovery().stats().errors, u64{kErrors});
  EXPECT_EQ(l2.recovery().error_log().size(), 4u);
  EXPECT_EQ(l2.recovery().error_log_dropped(), u64{kErrors - 4});
  // Snapshot is chronological: strictly increasing cycles, ending at the
  // last error.
  const auto log = l2.recovery().error_log();
  for (std::size_t i = 1; i < log.size(); ++i)
    EXPECT_LT(log[i - 1].cycle, log[i].cycle);
  EXPECT_EQ(log.back().cycle, 500u + 10 * (kErrors - 1));
}

TEST_F(RecoveryTest, ResetStatsKeepsMachineState) {
  auto cfg = small_config();
  cfg.recovery.due_policy = DuePolicy::kPanic;
  ProtectedL2 l2(cfg, bus_, memory_);
  const Addr a = make_dirty(l2, 12, 0x1);
  const auto pr = l2.cache_model().probe(a);
  l2.cache_model().data(pr.set, pr.way)[0] ^= 0b11;
  l2.read(500, a);
  ASSERT_TRUE(l2.recovery().panicked());
  ASSERT_GT(l2.recovery().fault_count(pr.set, pr.way), 0u);

  l2.recovery().reset_stats();
  EXPECT_EQ(l2.recovery().stats(), RecoveryStats{});
  EXPECT_TRUE(l2.recovery().error_log().empty());
  // The fault map and the panic latch are machine state, not metrics.
  EXPECT_GT(l2.recovery().fault_count(pr.set, pr.way), 0u);
  EXPECT_TRUE(l2.recovery().panicked());
}

TEST_F(RecoveryTest, Names) {
  EXPECT_STREQ(to_string(DuePolicy::kPanic), "panic");
  EXPECT_STREQ(to_string(DuePolicy::kDropRefetch), "drop-refetch");
  EXPECT_STREQ(to_string(DuePolicy::kPoison), "poison");
  EXPECT_STREQ(to_string(RecoveryAction::kScrubCorrected), "scrub-corrected");
  EXPECT_STREQ(to_string(RecoveryAction::kRefetched), "refetched");
  EXPECT_STREQ(to_string(RecoveryAction::kRetryExhausted), "retry-exhausted");
  EXPECT_STREQ(to_string(RecoveryAction::kDroppedRefetch), "dropped-refetch");
  EXPECT_STREQ(to_string(RecoveryAction::kPoisoned), "poisoned");
  EXPECT_STREQ(to_string(RecoveryAction::kPanicked), "panicked");
  EXPECT_STREQ(to_string(RecoveryAction::kWayRetired), "way-retired");
}

// ---------------------------------------------------------------------------
// End-to-end: a seeded strike campaign on the full simulated system.
// ---------------------------------------------------------------------------

sim::SystemConfig campaign_config() {
  sim::ExperimentOptions eo;
  eo.scheme = SchemeKind::kSharedEccArray;
  eo.instructions = 400'000;
  eo.warmup_instructions = 0;  // stats from cycle 0: the early stuck-fault
                               // retries/retirements must stay visible
  eo.seed = 42;
  eo.cleaning_interval = u64{1} << 18;
  eo.strikes_enabled = true;
  eo.strike_rate_scale = 2e9;
  eo.strike_double_bit_fraction = 0.25;
  eo.retirement_threshold = 4;
  // A permanently stuck data cell in each of four sets: the repeat
  // offenders that must walk their sites over the retirement threshold.
  for (u64 set : {0u, 1u, 2u, 3u})
    eo.stuck_faults.push_back({fault::FaultTarget::kData, set, /*way=*/0,
                               /*bit=*/5, /*stuck_high=*/true, /*start=*/0,
                               /*period=*/0});
  return sim::make_system_config("gzip", eo);
}

TEST(StrikeCampaign, DemonstratesAllRecoveryPathsAndRetirement) {
  sim::System system(campaign_config());
  const sim::RunResult r = system.run();

  // The run completed with degraded capacity instead of aborting.
  EXPECT_GT(r.core.cycles, 0u);
  EXPECT_GT(r.ipc(), 0.0);
  EXPECT_FALSE(r.panicked);

  // All three recovery paths fired...
  EXPECT_GT(r.recovery.corrected, 0u);
  EXPECT_GT(r.recovery.refetched, 0u);
  EXPECT_GT(r.recovery.due_events, 0u);
  EXPECT_GT(r.recovery.retries, 0u);
  EXPECT_GT(r.strikes.strikes, 0u);
  EXPECT_GT(r.strikes.stuck_reasserts, 0u);

  // ...and the persistent stuck-at sites drove ways into retirement.
  EXPECT_GE(r.retired_ways, 1u);
  EXPECT_GT(r.retired_capacity_fraction, 0.0);
  EXPECT_EQ(r.retired_ways,
            system.hierarchy().l2().cache_model().retired_ways());
}

TEST(StrikeCampaign, SameSeedSameErrorLogAndStats) {
  sim::System a(campaign_config());
  sim::System b(campaign_config());
  const sim::RunResult ra = a.run();
  const sim::RunResult rb = b.run();

  EXPECT_EQ(ra.recovery, rb.recovery);
  EXPECT_EQ(ra.strikes, rb.strikes);
  EXPECT_EQ(ra.retired_ways, rb.retired_ways);
  EXPECT_EQ(ra.core.cycles, rb.core.cycles);
  const auto& la = a.hierarchy().l2().recovery().error_log();
  const auto& lb = b.hierarchy().l2().recovery().error_log();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
  EXPECT_EQ(a.hierarchy().l2().recovery().error_log_dropped(),
            b.hierarchy().l2().recovery().error_log_dropped());
}

TEST(StrikeCampaign, StrikeProcessScalesWithProvisionedBits) {
  sim::SystemConfig cfg = campaign_config();
  sim::System system(cfg);
  const auto* sp = system.hierarchy().strikes();
  ASSERT_NE(sp, nullptr);
  // 1MB L2 data alone is 8Mi bits; parity + shared ECC add more.
  EXPECT_GT(sp->provisioned_bits(), u64{8} * 1024 * 1024);
  EXPECT_GT(sp->strike_probability(), 0.0);
  EXPECT_LE(sp->strike_probability(), 1.0);
}

}  // namespace
}  // namespace aeep::protect
