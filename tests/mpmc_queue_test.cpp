// MpmcQueue: the bounded lock-free ring under the sweep pool and the job
// server. Edge cases (empty/full/wraparound, power-of-two enforcement) plus
// multi-producer/multi-consumer stress — the stress tests also run under
// the TSan CI job, which is what actually checks the memory orderings.
#include "common/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace aeep {
namespace {

TEST(MpmcQueue, StartsEmpty) {
  MpmcQueue<int> q(8);
  EXPECT_TRUE(q.approx_empty());
  EXPECT_EQ(q.approx_size(), 0u);
  EXPECT_EQ(q.capacity(), 8u);
  int v = 0;
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, CapacityMustBePowerOfTwoAtLeastTwo) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
  // Capacity 1 is rejected even though it is a power of two: the release
  // value a pop writes (pos + capacity) would equal the publish value a
  // push writes (pos + 1), so full/free states collide and the ring both
  // mis-admits a second push and livelocks the next pop.
  EXPECT_THROW(MpmcQueue<int>(1), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(3), std::invalid_argument);
  EXPECT_THROW(MpmcQueue<int>(12), std::invalid_argument);
  EXPECT_NO_THROW(MpmcQueue<int>(2));
  EXPECT_NO_THROW(MpmcQueue<int>(64));
}

TEST(MpmcQueue, FifoOrderSingleThread) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, PushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.approx_size(), 2u);
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_TRUE(q.try_push(3));  // slot freed, push admitted again
  EXPECT_FALSE(q.try_push(4));
}

TEST(MpmcQueue, WrapsAroundManyTimes) {
  MpmcQueue<int> q(4);
  // Drive the tickets far past the ring size so slot sequence numbers wrap
  // through several laps.
  for (int lap = 0; lap < 100; ++lap) {
    EXPECT_TRUE(q.try_push(lap));
    EXPECT_TRUE(q.try_push(lap + 1000));
    int a = 0, b = 0;
    EXPECT_TRUE(q.try_pop(a));
    EXPECT_TRUE(q.try_pop(b));
    EXPECT_EQ(a, lap);
    EXPECT_EQ(b, lap + 1000);
  }
  EXPECT_TRUE(q.approx_empty());
}

TEST(MpmcQueue, MinimumCapacityActsAsHandoffPair) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_TRUE(q.try_push(8));
  EXPECT_FALSE(q.try_push(9));
  int v = 0;
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.try_pop(v));
  EXPECT_EQ(v, 8);
  EXPECT_FALSE(q.try_pop(v));
}

TEST(MpmcQueue, MoveOnlyPayload) {
  MpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> p;
  EXPECT_TRUE(q.try_pop(p));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 42);
}

// Every pushed value is popped exactly once across competing producers and
// consumers, and the queue drains to empty. TSan validates the orderings.
TEST(MpmcQueue, MpmcStressEveryValueDeliveredOnce) {
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 4;
  constexpr std::size_t kPerProducer = 5000;
  MpmcQueue<std::size_t> q(256);
  std::atomic<std::size_t> produced{0};
  std::atomic<bool> done{false};
  std::vector<std::vector<std::size_t>> got(kConsumers);

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t v = p * kPerProducer + i;
        while (!q.try_push(v)) std::this_thread::yield();
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::size_t v = 0;
      while (true) {
        if (q.try_pop(v)) {
          got[c].push_back(v);
        } else if (done.load(std::memory_order_acquire)) {
          if (!q.try_pop(v)) break;  // final drain after producers stop
          got[c].push_back(v);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) threads[p].join();
  done.store(true, std::memory_order_release);
  for (unsigned c = 0; c < kConsumers; ++c) threads[kProducers + c].join();

  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& vec : got) {
    total += vec.size();
    for (const std::size_t v : vec) {
      EXPECT_TRUE(seen.insert(v).second) << "value " << v << " popped twice";
    }
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
  EXPECT_TRUE(q.approx_empty());
}

// Per-producer FIFO: a single consumer must see each producer's values in
// the order that producer pushed them (the queue is linearizable per slot;
// cross-producer interleaving is free, intra-producer order is not).
TEST(MpmcQueue, PerProducerOrderPreserved) {
  constexpr unsigned kProducers = 3;
  constexpr std::size_t kPerProducer = 4000;
  MpmcQueue<std::size_t> q(64);
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        while (!q.try_push(p * kPerProducer + i)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::size_t> next(kProducers, 0);
  std::size_t popped = 0;
  std::size_t v = 0;
  while (popped < kProducers * kPerProducer) {
    if (!q.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::size_t p = v / kPerProducer;
    const std::size_t i = v % kPerProducer;
    ASSERT_LT(p, kProducers);
    EXPECT_EQ(i, next[p]) << "producer " << p << " reordered";
    next[p] = i + 1;
    ++popped;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace aeep
