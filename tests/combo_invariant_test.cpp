// Cross-product invariant tests: every protection scheme under every
// cleaning policy, driven by randomized read/write/tick churn on a small
// L2. Asserts the invariants the paper's correctness rests on, in every
// combination:
//   - shared-ECC-array: never more than k dirty lines per set;
//   - write-backs always reach memory with the line's latest contents;
//   - with maintain_codes, no line ever fails validation absent injection;
//   - dirty-count bookkeeping stays exact under interleaved cleaning.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "mem/bus.hpp"
#include "mem/memory_store.hpp"
#include "protect/protected_l2.hpp"

namespace aeep::protect {
namespace {

using Combo = std::tuple<SchemeKind, CleaningPolicy>;

class ComboChurn : public ::testing::TestWithParam<Combo> {};

TEST_P(ComboChurn, InvariantsHoldUnderRandomChurn) {
  const auto [scheme, policy] = GetParam();
  L2Config cfg;
  cfg.geometry = cache::CacheGeometry{8192, 4, 64};  // 32 sets
  cfg.scheme = scheme;
  cfg.cleaning_interval = 6400;  // one set per 200 cycles
  cfg.cleaning_policy = policy;
  cfg.maintain_codes = true;
  cfg.ecc_entries_per_set = 1;

  mem::SplitTransactionBus bus({8, 100});
  mem::MemoryStore memory;
  ProtectedL2 l2(cfg, bus, memory);
  Xorshift64Star rng(static_cast<u64>(static_cast<int>(scheme)) * 31 +
                     static_cast<u64>(static_cast<int>(policy)) + 5);

  Cycle t = 0;
  std::vector<u64> words(8);
  for (int step = 0; step < 8000; ++step) {
    t += 1 + rng.next_below(5);
    l2.tick(t);
    const u64 set = rng.next_below(32);
    const Addr addr = cfg.geometry.addr_of(rng.next_below(10), set);
    if (rng.chance(0.45)) {
      for (auto& w : words) w = rng.next();
      l2.write(t, addr, rng.next() & 0xFF, words);
    } else {
      l2.read(t, addr);
    }

    if (step % 97 == 0) {
      // Recount dirty lines from scratch against the running counter.
      u64 recount = 0;
      for (u64 s = 0; s < 32; ++s) {
        const unsigned in_set = l2.cache_model().count_dirty_in_set(s);
        recount += in_set;
        if (scheme == SchemeKind::kSharedEccArray) {
          ASSERT_LE(in_set, cfg.ecc_entries_per_set) << "step " << step;
        }
      }
      ASSERT_EQ(recount, l2.cache_model().dirty_count()) << "step " << step;
    }
  }

  // Final validation: no line fails its codes; every clean line matches
  // memory word-for-word.
  u64 validated = 0;
  for (u64 s = 0; s < 32; ++s) {
    for (unsigned w = 0; w < 4; ++w) {
      const auto& m = l2.cache_model().meta(s, w);
      if (!m.valid) continue;
      ASSERT_EQ(l2.scheme().check_read(s, w, memory).outcome, ReadOutcome::kOk)
          << "set " << s << " way " << w;
      ++validated;
      if (!m.dirty) {
        const auto data = l2.cache_model().data(s, w);
        std::vector<u64> mem_line(8);
        memory.read_line(l2.cache_model().line_addr(s, w), mem_line);
        ASSERT_TRUE(std::equal(data.begin(), data.end(), mem_line.begin()));
      }
    }
  }
  EXPECT_GT(validated, 64u);
  // Cleaning must have produced activity (policies differ in how much).
  if (cfg.cleaning_interval != 0 && scheme != SchemeKind::kUniformEcc) {
    EXPECT_GT(l2.cleaning_inspections(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ComboChurn,
    ::testing::Combine(::testing::Values(SchemeKind::kUniformEcc,
                                         SchemeKind::kNonUniform,
                                         SchemeKind::kSharedEccArray),
                       ::testing::Values(CleaningPolicy::kWrittenBit,
                                         CleaningPolicy::kNaive,
                                         CleaningPolicy::kDecayCounter,
                                         CleaningPolicy::kEagerIdle)),
    [](const auto& info) {
      std::string n = std::string(to_string(std::get<0>(info.param))) + "_" +
                      to_string(std::get<1>(info.param));
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace aeep::protect
