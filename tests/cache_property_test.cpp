// Differential property test: the Cache implementation against a simple
// map-based reference model, under randomized operation streams across a
// sweep of geometries. Catches indexing, replacement-accounting and
// dirty-count bugs that unit tests with hand-picked addresses miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "common/rng.hpp"

namespace aeep::cache {
namespace {

/// Reference model: a map from set -> (tag -> line state), LRU by explicit
/// timestamp, mirroring the documented semantics of Cache.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheGeometry& geom) : geom_(geom) {}

  struct Line {
    bool dirty = false;
    bool written = false;
    Cycle last_touch = 0;
  };

  bool hit(Addr addr) const {
    const auto set_it = sets_.find(geom_.set_index(addr));
    if (set_it == sets_.end()) return false;
    return set_it->second.count(geom_.tag_of(addr)) != 0;
  }

  void touch(Addr addr, Cycle now) {
    sets_[geom_.set_index(addr)][geom_.tag_of(addr)].last_touch = now;
  }

  /// Returns the evicted line's dirtiness, if an eviction happened.
  std::optional<bool> fill(Addr addr, Cycle now) {
    auto& set = sets_[geom_.set_index(addr)];
    std::optional<bool> evicted_dirty;
    if (set.size() >= geom_.ways) {
      // Evict LRU.
      auto victim = set.begin();
      for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->second.last_touch < victim->second.last_touch) victim = it;
      }
      evicted_dirty = victim->second.dirty;
      set.erase(victim);
    }
    set[geom_.tag_of(addr)] = Line{false, false, now};
    return evicted_dirty;
  }

  void mark_dirty(Addr addr) {
    sets_[geom_.set_index(addr)][geom_.tag_of(addr)].dirty = true;
  }
  void clear_dirty(Addr addr) {
    sets_[geom_.set_index(addr)][geom_.tag_of(addr)].dirty = false;
  }

  u64 dirty_count() const {
    u64 n = 0;
    for (const auto& [s, set] : sets_)
      for (const auto& [t, line] : set)
        if (line.dirty) ++n;
    return n;
  }

 private:
  CacheGeometry geom_;
  std::map<u64, std::map<u64, Line>> sets_;
};

struct GeometryCase {
  u64 size;
  unsigned ways;
  unsigned line;
};

class CacheDifferential : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(CacheDifferential, MatchesReferenceUnderRandomOps) {
  const auto [size, ways, line] = GetParam();
  const CacheGeometry geom{size, ways, line};
  Cache cache(geom, ReplacementPolicy::kLru);
  ReferenceCache ref(geom);
  Xorshift64Star rng(size ^ (ways * 131) ^ line);

  const u64 addr_space = size * 4;  // 4x capacity: plenty of conflicts
  Cycle now = 0;
  for (int step = 0; step < 20000; ++step) {
    now += 1 + rng.next_below(3);
    const Addr addr =
        geom.line_base(rng.next_below(addr_space));
    const bool is_write = rng.chance(0.3);

    const ProbeResult pr = cache.probe(addr);
    ASSERT_EQ(pr.hit, ref.hit(addr)) << "step " << step;

    if (pr.hit) {
      cache.touch(pr.set, pr.way, now);
      ref.touch(addr, now);
      if (is_write) {
        cache.mark_dirty(pr.set, pr.way);
        ref.mark_dirty(addr);
      }
    } else {
      const Victim v = cache.pick_victim(pr.set);
      const auto ref_evicted = ref.fill(addr, now);
      ASSERT_EQ(v.valid, ref_evicted.has_value()) << "step " << step;
      if (v.valid) {
        ASSERT_EQ(v.dirty, *ref_evicted) << "step " << step;
      }
      cache.install(pr.set, v.way, addr, now);
      if (is_write) {
        cache.mark_dirty(pr.set, v.way);
        ref.mark_dirty(addr);
      }
    }
    if (step % 257 == 0) {
      ASSERT_EQ(cache.dirty_count(), ref.dirty_count()) << "step " << step;
    }
    // Occasionally clean a random resident line through both models.
    if (rng.chance(0.02)) {
      const u64 set = rng.next_below(geom.num_sets());
      if (auto way = cache.find_dirty_way(set)) {
        const Addr victim_addr = cache.line_addr(set, *way);
        cache.clear_dirty(set, *way);
        ref.clear_dirty(victim_addr);
      }
    }
  }
  EXPECT_EQ(cache.dirty_count(), ref.dirty_count());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(GeometryCase{4 * KiB, 1, 32},    // direct-mapped
                      GeometryCase{8 * KiB, 2, 32},
                      GeometryCase{16 * KiB, 4, 64},   // small L1-ish
                      GeometryCase{32 * KiB, 8, 64},   // high associativity
                      GeometryCase{64 * KiB, 4, 128},  // wide lines
                      GeometryCase{128 * KiB, 16, 64}),
    [](const auto& info) {
      return std::to_string(info.param.size / KiB) + "KB_" +
             std::to_string(info.param.ways) + "w_" +
             std::to_string(info.param.line) + "B";
    });

}  // namespace
}  // namespace aeep::cache
