// Tests for the CPU substrate: branch predictor learning, BTB, TLB,
// functional-unit structural hazards, and the out-of-order core's pipeline
// behaviour against a scripted micro-op source and a stub memory.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "cpu/branch_predictor.hpp"
#include "cpu/core.hpp"
#include "cpu/func_units.hpp"
#include "cpu/memory_iface.hpp"
#include "cpu/tlb.hpp"
#include "cpu/uop.hpp"

namespace aeep::cpu {
namespace {

// ---------------------------------------------------------------------------
// Branch predictor
// ---------------------------------------------------------------------------

TEST(BranchPredictor, LearnsAlwaysTakenBranch) {
  BranchPredictor bp;
  const Addr pc = 0x400100, target = 0x400040;
  // Warm until the global history register saturates (12 bits) so the
  // gshare index becomes stable, then the counter stays trained.
  for (int i = 0; i < 20; ++i) bp.update(pc, true, target);
  unsigned correct = 0;
  for (int i = 0; i < 100; ++i)
    if (bp.update(pc, true, target)) ++correct;
  EXPECT_EQ(correct, 100u);
}

TEST(BranchPredictor, LearnsShortLoopPattern) {
  // taken x3, not-taken, repeated: a 12-bit-history gshare learns this
  // perfectly after warm-up.
  BranchPredictor bp;
  const Addr pc = 0x400200, target = 0x4001C0;
  for (int warm = 0; warm < 200; ++warm)
    bp.update(pc, warm % 4 != 3, target);
  unsigned correct = 0;
  for (int i = 0; i < 400; ++i)
    if (bp.update(pc, i % 4 != 3, target)) ++correct;
  EXPECT_GT(correct, 390u);
}

TEST(BranchPredictor, BtbMissOnTakenIsMispredict) {
  BranchPredictor bp;
  const Addr pc = 0x400300;
  // Train direction without this PC ever entering the BTB... first taken
  // update must be a target mispredict.
  EXPECT_FALSE(bp.update(pc, true, 0x400000));
  // Once history saturates and the counter trains, prediction holds.
  for (int i = 0; i < 20; ++i) bp.update(pc, true, 0x400000);
  EXPECT_TRUE(bp.update(pc, true, 0x400000));
}

TEST(BranchPredictor, TargetChangeIsMispredict) {
  BranchPredictor bp;
  const Addr pc = 0x400400;
  for (int i = 0; i < 8; ++i) bp.update(pc, true, 0x400000);
  EXPECT_FALSE(bp.update(pc, true, 0x400080));  // new target
}

TEST(BranchPredictor, StatsAccumulate) {
  BranchPredictor bp;
  for (int i = 0; i < 50; ++i) bp.update(0x400500 + 4 * (i % 5), i % 2 == 0, 0x400000);
  EXPECT_EQ(bp.stats().lookups, 50u);
  EXPECT_GT(bp.stats().mispredicts(), 0u);
  EXPECT_GT(bp.stats().mispredict_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// TLB
// ---------------------------------------------------------------------------

TEST(TlbTest, MissThenHit) {
  Tlb tlb({64, 4, 4096, 30});
  EXPECT_EQ(tlb.access(0x12345000, 0), 30u);  // cold miss
  EXPECT_EQ(tlb.access(0x12345ABC, 1), 0u);   // same page hits
  EXPECT_EQ(tlb.stats().accesses, 2u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(TlbTest, LruReplacementWithinSet) {
  Tlb tlb({4, 4, 4096, 30});  // 1 set, 4 ways
  for (Addr p = 0; p < 4; ++p) tlb.access(p * 4096, p);
  tlb.access(0, 10);  // page 0 most recent
  tlb.access(4 * 4096, 11);  // evicts LRU = page 1
  EXPECT_EQ(tlb.access(0, 12), 0u);
  EXPECT_EQ(tlb.access(1 * 4096, 13), 30u);  // page 1 was evicted
}

TEST(TlbTest, Reach) {
  Tlb tlb({128, 4, 4096, 30});
  // 128 entries x 4KB pages = 512KB reach: all hit on second pass.
  for (Addr p = 0; p < 128; ++p) tlb.access(p * 4096, p);
  for (Addr p = 0; p < 128; ++p) EXPECT_EQ(tlb.access(p * 4096, 1000 + p), 0u);
}

// ---------------------------------------------------------------------------
// Functional units
// ---------------------------------------------------------------------------

TEST(FuncUnits, FourIntAlusPerCycle) {
  FuncUnitPool fu;
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 0), 0u);
  EXPECT_EQ(fu.try_issue(OpClass::kIntAlu, 0), 0u);  // 5th stalls
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 1), 0u);  // next cycle frees
}

TEST(FuncUnits, SingleFpMulIsStructuralHazard) {
  FuncUnitPool fu;
  EXPECT_GT(fu.try_issue(OpClass::kFpMul, 0), 0u);
  EXPECT_EQ(fu.try_issue(OpClass::kFpMul, 0), 0u);
}

TEST(FuncUnits, LatenciesMatchConfig) {
  FuPoolConfig cfg;
  FuncUnitPool fu(cfg);
  EXPECT_EQ(fu.try_issue(OpClass::kIntAlu, 10), 10 + cfg.int_alu.latency);
  EXPECT_EQ(fu.try_issue(OpClass::kIntMul, 10), 10 + cfg.int_mul.latency);
  EXPECT_EQ(fu.try_issue(OpClass::kFpAlu, 10), 10 + cfg.fp_alu.latency);
  EXPECT_EQ(fu.try_issue(OpClass::kFpMul, 10), 10 + cfg.fp_mul.latency);
}

TEST(FuncUnits, MemOpsUseIntAluSlots) {
  FuncUnitPool fu;
  EXPECT_GT(fu.try_issue(OpClass::kLoad, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kStore, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kBranch, 0), 0u);
  EXPECT_GT(fu.try_issue(OpClass::kIntAlu, 0), 0u);
  EXPECT_EQ(fu.try_issue(OpClass::kIntAlu, 0), 0u);
}

// ---------------------------------------------------------------------------
// Core, against stub memory and scripted sources
// ---------------------------------------------------------------------------

/// Perfect memory: everything is a 1-cycle hit, stores always accepted.
class PerfectMemory : public MemoryInterface {
 public:
  Cycle fetch(Cycle now, Addr) override { return now + 1; }
  Cycle load(Cycle now, Addr) override { return now + 1; }
  bool store(Cycle, Addr, u64) override {
    ++stores;
    return true;
  }
  void tick(Cycle) override {}
  u64 stores = 0;
};

/// Memory whose loads take a fixed latency.
class SlowLoadMemory : public PerfectMemory {
 public:
  explicit SlowLoadMemory(Cycle lat) : lat_(lat) {}
  Cycle load(Cycle now, Addr) override { return now + lat_; }

 private:
  Cycle lat_;
};

/// Memory that rejects the first `reject` stores.
class FullBufferMemory : public PerfectMemory {
 public:
  explicit FullBufferMemory(unsigned reject) : reject_(reject) {}
  bool store(Cycle now, Addr a, u64 v) override {
    if (reject_ > 0) {
      --reject_;
      return false;
    }
    return PerfectMemory::store(now, a, v);
  }

 private:
  unsigned reject_;
};

/// Repeats a fixed list of uops forever, advancing PCs sequentially.
class ScriptSource : public UopSource {
 public:
  explicit ScriptSource(std::vector<MicroOp> script)
      : script_(std::move(script)) {}
  MicroOp next() override {
    MicroOp op = script_[i_ % script_.size()];
    op.pc = 0x400000 + 4 * i_;
    ++i_;
    return op;
  }
  const char* name() const override { return "script"; }

 private:
  std::vector<MicroOp> script_;
  u64 i_ = 0;
};

MicroOp alu() { return MicroOp{}; }
MicroOp load_at(Addr a) {
  MicroOp op;
  op.cls = OpClass::kLoad;
  op.mem_addr = a;
  return op;
}
MicroOp store_at(Addr a, u64 v = 1) {
  MicroOp op;
  op.cls = OpClass::kStore;
  op.mem_addr = a;
  op.store_value = v;
  return op;
}

TEST(Core, IndependentAluStreamApproaches4Wide) {
  ScriptSource src({alu()});
  PerfectMemory mem;
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(40000);
  // 4-wide machine, no deps, no branches: IPC should approach the width.
  EXPECT_GT(s.ipc(), 3.5);
}

TEST(Core, SerialDependenceChainIsIpc1) {
  MicroOp dep = alu();
  dep.dep1 = 1;  // each op depends on its predecessor
  ScriptSource src({dep});
  PerfectMemory mem;
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(20000);
  EXPECT_LT(s.ipc(), 1.15);
  EXPECT_GT(s.ipc(), 0.85);
}

TEST(Core, FpMulStructuralHazardLimitsIpc) {
  MicroOp m;
  m.cls = OpClass::kFpMul;
  ScriptSource src({m});
  PerfectMemory mem;
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(20000);
  // Only one FP multiplier: at most ~1 per cycle despite 4-wide.
  EXPECT_LT(s.ipc(), 1.1);
}

TEST(Core, CommitCountsOpClasses) {
  ScriptSource src({alu(), load_at(0x1000), store_at(0x2000), alu()});
  PerfectMemory mem;
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(4000);
  EXPECT_EQ(s.committed, 4000u);
  EXPECT_NEAR(static_cast<double>(s.loads), 1000.0, 3.0);
  EXPECT_NEAR(static_cast<double>(s.stores), 1000.0, 3.0);
  EXPECT_EQ(s.loads_stores(), s.loads + s.stores);
  EXPECT_EQ(mem.stores, s.stores);
}

TEST(Core, SlowLoadsThrottleDependentChain) {
  // A pointer-chase: each load depends on the previous use, which depends
  // on the load — a serial chain that out-of-order execution cannot hide.
  MicroOp ld = load_at(0x1000);
  ld.dep1 = 1;
  MicroOp use = alu();
  use.dep1 = 1;  // consumes the load
  ScriptSource fast_src({ld, use});
  ScriptSource slow_src({ld, use});
  PerfectMemory fast_mem;
  SlowLoadMemory slow_mem(20);
  OutOfOrderCore fast(CoreConfig{}, fast_src, fast_mem);
  OutOfOrderCore slow(CoreConfig{}, slow_src, slow_mem);
  const double fast_ipc = fast.run(8000).ipc();
  const double slow_ipc = slow.run(8000).ipc();
  EXPECT_GT(fast_ipc, slow_ipc * 3.0);
}

TEST(Core, StoreToLoadForwardingHidesLatency) {
  // Load from the address a just-executed store wrote: forwarded, so even
  // with slow memory the chain stays fast.
  MicroOp st = store_at(0x3000, 7);
  MicroOp ld = load_at(0x3000);
  ScriptSource src({st, ld});
  SlowLoadMemory mem(50);
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(8000);
  EXPECT_GT(s.ipc(), 1.5);  // without forwarding this would be ~2/50
}

TEST(Core, FullWriteBufferStallsCommitThenRecovers) {
  ScriptSource src({store_at(0x100)});
  FullBufferMemory mem(50);
  OutOfOrderCore core({}, src, mem);
  const CoreStats s = core.run(2000);
  EXPECT_EQ(s.committed, 2000u);
  EXPECT_GE(s.commit_stall_wb_full, 50u);
}

TEST(Core, MispredictedBranchesCostFetchBubbles) {
  // Branch outcomes alternate with period 2 but carry a *random* element via
  // distinct PCs mapping to shifting history — use genuinely random outcomes
  // so no predictor can learn them.
  class RandomBranchSource : public UopSource {
   public:
    MicroOp next() override {
      MicroOp op;
      op.pc = 0x400000 + 4 * (i_ % 1024);
      if (i_ % 4 == 3) {
        op.cls = OpClass::kBranch;
        op.branch_taken = (rng_.next() & 1) != 0;
        op.branch_target = 0x400000;
      }
      ++i_;
      return op;
    }
    const char* name() const override { return "random-branches"; }

   private:
    u64 i_ = 0;
    Xorshift64Star rng_{77};
  };

  RandomBranchSource random_src;
  ScriptSource no_branch_src({alu()});
  PerfectMemory m1, m2;
  OutOfOrderCore with_branches({}, random_src, m1);
  OutOfOrderCore without({}, no_branch_src, m2);
  const CoreStats sb = with_branches.run(20000);
  const CoreStats sn = without.run(20000);
  EXPECT_GT(sb.bp.mispredicts(), 1000u);
  EXPECT_GT(sb.fetch_stall_cycles, 1000u);
  EXPECT_LT(sb.ipc(), sn.ipc() * 0.7);
}

TEST(Core, ResetStatsKeepsPipelineRunning) {
  ScriptSource src({alu()});
  PerfectMemory mem;
  OutOfOrderCore core({}, src, mem);
  core.run(1000);
  core.reset_stats();
  EXPECT_EQ(core.stats().committed, 0u);
  const CoreStats s = core.run(1000);
  EXPECT_EQ(s.committed, 1000u);
}

TEST(Core, LsqLimitRespected) {
  // A stream of loads that all miss for a long time would fill the LSQ;
  // the core must keep functioning and commit everything.
  ScriptSource src({load_at(0x100), load_at(0x200), load_at(0x300)});
  SlowLoadMemory mem(100);
  CoreConfig cfg;
  cfg.lsq_entries = 8;
  OutOfOrderCore core(cfg, src, mem);
  const CoreStats s = core.run(3000);
  EXPECT_EQ(s.committed, 3000u);
}

}  // namespace
}  // namespace aeep::cpu
