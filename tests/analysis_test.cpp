// aeep_lint self-test: the lexer (comments/strings/raw strings must not
// leak into code tokens) and every rule, driven from embedded fixture
// strings through the same lint_file() entry point the binary uses. The
// "grep false positive" fixtures are the point of the tool: each plants a
// banned pattern inside a comment or string literal — where the old
// tools/lint.sh grep rules fired — and asserts the token-level rule stays
// quiet.
#include "analysis/lexer.hpp"
#include "analysis/rules.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace aeep::analysis {
namespace {

std::vector<Token> code_tokens(const std::string& src) {
  std::vector<Token> out;
  for (const Token& t : lex(src))
    if (t.kind != TokenKind::kComment) out.push_back(t);
  return out;
}

std::vector<std::string> rules_fired(const std::string& path,
                                     const std::string& src) {
  std::vector<std::string> out;
  for (const Finding& f : lint_file(path, src)) out.push_back(f.rule);
  return out;
}

bool fired(const std::string& path, const std::string& src,
           const std::string& rule) {
  const auto fs = rules_fired(path, src);
  return std::find(fs.begin(), fs.end(), rule) != fs.end();
}

// --- lexer -----------------------------------------------------------------

TEST(Lexer, SplitsIdentifiersNumbersAndPunct) {
  const auto toks = lex("int x = 42;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[2].kind, TokenKind::kPunct);
  EXPECT_EQ(toks[3].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[3].text, "42");
}

TEST(Lexer, LineCommentIsOneToken) {
  const auto toks = lex("x; // rand( fread( new delete\ny;");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokenKind::kComment);
  EXPECT_EQ(toks[3].text, "y");
  EXPECT_EQ(toks[3].line, 2u);
}

TEST(Lexer, BlockCommentSpansLinesAndKeepsStartLine) {
  const auto toks = lex("a /* one\ntwo\nthree */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokenKind::kComment);
  EXPECT_EQ(toks[1].line, 1u);
  EXPECT_EQ(toks[2].text, "b");
  EXPECT_EQ(toks[2].line, 3u);
}

TEST(Lexer, StringWithEscapedQuoteStaysOneToken) {
  const auto toks = lex(R"(f("he said \"rand(\" loudly");)");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokenKind::kString);
  EXPECT_NE(toks[2].text.find("rand("), std::string::npos);
}

TEST(Lexer, RawStringWithCustomDelimiter) {
  const auto toks = lex("auto s = R\"xy(contains )\" and rand( )xy\";");
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == TokenKind::kString;
  });
  ASSERT_NE(it, toks.end());
  EXPECT_NE(it->text.find("rand("), std::string::npos);
  // Nothing after the raw string except the semicolon.
  EXPECT_EQ(toks.back().text, ";");
}

TEST(Lexer, PrefixedStringsAreStrings) {
  for (const char* src : {"u8\"x\"", "u\"x\"", "U\"x\"", "L\"x\"",
                          "LR\"(x)\"", "u8R\"(x)\""}) {
    const auto toks = lex(src);
    ASSERT_EQ(toks.size(), 1u) << src;
    EXPECT_EQ(toks[0].kind, TokenKind::kString) << src;
  }
}

TEST(Lexer, DigitSeparatorsStayOneNumber) {
  const auto toks = lex("x = 1'000'000;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokenKind::kNumber);
  EXPECT_EQ(toks[2].text, "1'000'000");
}

TEST(Lexer, ScopeAndArrowAreSingleTokens) {
  const auto toks = lex("std::foo(); p->bar();");
  EXPECT_EQ(toks[1].text, "::");
  EXPECT_EQ(toks[1].kind, TokenKind::kPunct);
  const auto it = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.text == "->";
  });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->kind, TokenKind::kPunct);
}

TEST(Lexer, CharLiteralWithEscape) {
  const auto toks = lex(R"(c = '\'')");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(toks[2].text, R"('\'')");
}

TEST(Lexer, UnterminatedLiteralDoesNotThrow) {
  EXPECT_NO_THROW(lex("auto s = \"never closed"));
  EXPECT_NO_THROW(lex("/* never closed"));
  EXPECT_NO_THROW(lex("auto s = R\"(never closed"));
}

TEST(Lexer, CommentStrippingLeavesOnlyCode) {
  const auto code = code_tokens("a // b\n/* c */ d");
  ASSERT_EQ(code.size(), 2u);
  EXPECT_EQ(code[0].text, "a");
  EXPECT_EQ(code[1].text, "d");
}

// --- raw-rand --------------------------------------------------------------

TEST(RawRand, FiresOnCallAndReportsLine) {
  const auto fs = lint_file("src/x.cpp", "void f() {\n  int v = rand();\n}");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-rand");
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_EQ(fs[0].file, "src/x.cpp");
}

TEST(RawRand, FiresOnSrand) {
  EXPECT_TRUE(fired("src/x.cpp", "srand(42);", "raw-rand"));
}

TEST(RawRand, GrepFalsePositiveInCommentIsQuiet) {
  // The old grep rule fired on this exact line.
  EXPECT_FALSE(fired("src/x.cpp", "// never call rand() here\nint x;",
                     "raw-rand"));
}

TEST(RawRand, GrepFalsePositiveInStringIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "const char* msg = \"rand() is banned\";", "raw-rand"));
}

TEST(RawRand, IdentifierContainingRandIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp", "int operand(int x);", "raw-rand"));
  EXPECT_FALSE(fired("src/x.cpp", "int rand_like = 3;", "raw-rand"));
}

// --- unchecked-optional-value ----------------------------------------------

TEST(OptionalValue, FiresOnUncheckedDeref) {
  EXPECT_TRUE(fired("src/x.cpp", "auto v = parse(text).value();",
                    "unchecked-optional-value"));
}

TEST(OptionalValue, CounterAndGaugeAccessorsExempt) {
  EXPECT_FALSE(fired("src/x.cpp", "auto v = reg.counter(\"hits\").value();",
                     "unchecked-optional-value"));
  EXPECT_FALSE(fired("src/x.cpp", "auto v = reg.gauge(\"depth\").value();",
                     "unchecked-optional-value"));
}

TEST(OptionalValue, NestedParensInsideCounterCallStillExempt) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "auto v = reg.counter(name(a, b)).value();",
                     "unchecked-optional-value"));
}

TEST(OptionalValue, GrepFalsePositiveInStringIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "const char* s = \"call opt(x).value() carefully\";",
                     "unchecked-optional-value"));
}

// --- stats-reset -----------------------------------------------------------

TEST(StatsReset, HeaderWithStatsStructAndNoResetFires) {
  EXPECT_TRUE(fired("src/foo/bar.hpp", "struct FooStats { int hits = 0; };",
                    "stats-reset"));
}

TEST(StatsReset, ResetStatsSatisfies) {
  EXPECT_FALSE(fired("src/foo/bar.hpp",
                     "struct FooStats { int hits = 0; };\n"
                     "class Foo { void reset_stats(); };",
                     "stats-reset"));
}

TEST(StatsReset, ResetMetricsSatisfies) {
  EXPECT_FALSE(fired("src/foo/bar.hpp",
                     "struct FooStats {};\nvoid reset_metrics();",
                     "stats-reset"));
}

TEST(StatsReset, MutableStatsAccessorSatisfies) {
  EXPECT_FALSE(fired("src/foo/bar.hpp",
                     "struct FooStats {};\n"
                     "class Foo { FooStats& stats() { return s_; } };",
                     "stats-reset"));
}

TEST(StatsReset, OnlyAppliesToSrcHeaders) {
  const std::string src = "struct FooStats { int hits = 0; };";
  EXPECT_FALSE(fired("src/foo/bar.cpp", src, "stats-reset"));
  EXPECT_FALSE(fired("tests/bar.hpp", src, "stats-reset"));
  EXPECT_FALSE(fired("bench/bar.hpp", src, "stats-reset"));
}

TEST(StatsReset, GrepFalsePositiveInCommentIsQuiet) {
  // The old grep rule keyed off the words `struct ...Stats` anywhere.
  EXPECT_FALSE(fired("src/foo/bar.hpp",
                     "// mirrors struct FooStats in sibling header\nint x;",
                     "stats-reset"));
}

// --- ecc-allocating-codec --------------------------------------------------

TEST(EccAlloc, FiresOnVectorReturningEncodeInEcc) {
  EXPECT_TRUE(fired("src/ecc/parity.hpp",
                    "std::vector<u8> encode(const u8* in);",
                    "ecc-allocating-codec"));
}

TEST(EccAlloc, QualifiedDefinitionFires) {
  EXPECT_TRUE(fired("src/ecc/parity.cpp",
                    "std::vector<u8> Codec::decode(Span in) { return {}; }",
                    "ecc-allocating-codec"));
}

TEST(EccAlloc, NestedTemplateArgsHandled) {
  EXPECT_TRUE(fired("src/ecc/parity.hpp",
                    "std::vector<std::pair<u8, u8>> encode(Span in);",
                    "ecc-allocating-codec"));
}

TEST(EccAlloc, AllocSuffixAndOtherNamesQuiet) {
  EXPECT_FALSE(fired("src/ecc/parity.hpp",
                     "std::vector<u8> encode_alloc(const u8* in);",
                     "ecc-allocating-codec"));
  EXPECT_FALSE(fired("src/ecc/parity.hpp",
                     "std::vector<u8> syndromes(const u8* in);",
                     "ecc-allocating-codec"));
}

TEST(EccAlloc, OutsideEccIsQuiet) {
  EXPECT_FALSE(fired("src/trace/codec.hpp",
                     "std::vector<u8> encode(const u8* in);",
                     "ecc-allocating-codec"));
}

// --- raw-file-io -----------------------------------------------------------

TEST(RawFileIo, FiresInSrcAndTools) {
  EXPECT_TRUE(fired("src/x.cpp", "fread(buf, 1, n, f);", "raw-file-io"));
  EXPECT_TRUE(
      fired("tools/x.cpp", "std::fwrite(buf, 1, n, f);", "raw-file-io"));
}

TEST(RawFileIo, TraceIoAndTestsExempt) {
  EXPECT_FALSE(
      fired("src/trace/io.cpp", "fread(buf, 1, n, f);", "raw-file-io"));
  EXPECT_FALSE(
      fired("tests/trace_test.cpp", "fwrite(buf, 1, n, f);", "raw-file-io"));
}

TEST(RawFileIo, GrepFalsePositiveInCommentIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp", "// fread( would be wrong here\nint x;",
                     "raw-file-io"));
}

// --- raw-socket ------------------------------------------------------------

TEST(RawSocket, FiresOnGlobalCalls) {
  EXPECT_TRUE(fired("src/x.cpp", "int fd = socket(AF_INET, 0, 0);",
                    "raw-socket"));
  EXPECT_TRUE(fired("src/x.cpp", "::send(fd, p, n, 0);", "raw-socket"));
  EXPECT_TRUE(fired("tests/x.cpp", "recv(fd, p, n, 0);", "raw-socket"));
}

TEST(RawSocket, MemberCallsExempt) {
  // The grep rule's `[^._[:alnum:]]` guard, kept: sock.send(...) is a
  // helper method, not the libc call.
  EXPECT_FALSE(fired("src/x.cpp", "sock.send(frame);", "raw-socket"));
  EXPECT_FALSE(fired("src/x.cpp", "sock->recv(frame);", "raw-socket"));
}

TEST(RawSocket, SocketWrapperFilesExempt) {
  EXPECT_FALSE(fired("src/server/socket.cpp", "::send(fd, p, n, 0);",
                     "raw-socket"));
  EXPECT_FALSE(fired("src/server/socket.hpp", "recv(fd, p, n, 0);",
                     "raw-socket"));
}

TEST(RawSocket, GrepFalsePositiveInStringIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "const char* m = \"socket(...) failed\";", "raw-socket"));
}

// --- mutex-guard -----------------------------------------------------------

TEST(MutexGuard, StdMutexMemberWithoutGuardFires) {
  const std::string src =
      "class Q {\n"
      "  std::mutex mutex_;\n"
      "  int jobs_ = 0;\n"
      "};";
  const auto fs = lint_file("src/x.hpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "mutex-guard");
  EXPECT_EQ(fs[0].line, 2u);
}

TEST(MutexGuard, AeepMutexMemberWithoutGuardFires) {
  EXPECT_TRUE(fired("src/x.hpp",
                    "class Q {\n  aeep::Mutex mutex_;\n  int jobs_;\n};",
                    "mutex-guard"));
}

TEST(MutexGuard, GuardedSiblingSatisfies) {
  EXPECT_FALSE(fired("src/x.hpp",
                     "class Q {\n"
                     "  aeep::Mutex mutex_;\n"
                     "  int jobs_ AEEP_GUARDED_BY(mutex_) = 0;\n"
                     "};",
                     "mutex-guard"));
}

TEST(MutexGuard, PtGuardedSatisfies) {
  EXPECT_FALSE(fired("src/x.hpp",
                     "class Q {\n"
                     "  std::mutex mutex_;\n"
                     "  Foo* p_ AEEP_PT_GUARDED_BY(mutex_) = nullptr;\n"
                     "};",
                     "mutex-guard"));
}

TEST(MutexGuard, NestedClassesTrackedIndependently) {
  const std::string src =
      "class Outer {\n"
      "  struct Inner {\n"
      "    std::mutex m;\n"
      "    int x AEEP_GUARDED_BY(m);\n"
      "  };\n"
      "  std::mutex mutex_;\n"  // line 6: unguarded
      "  int y;\n"
      "};";
  const auto fs = lint_file("src/x.hpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 6u);
}

TEST(MutexGuard, LocalMutexInFunctionIsQuiet) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "void f() {\n  std::mutex m;\n  int x = 0;\n}",
                     "mutex-guard"));
}

TEST(MutexGuard, OnlyAppliesInSrc) {
  const std::string src = "class Q {\n  std::mutex m_;\n  int x_;\n};";
  EXPECT_FALSE(fired("tests/x.cpp", src, "mutex-guard"));
  EXPECT_FALSE(fired("tools/x.cpp", src, "mutex-guard"));
}

TEST(MutexGuard, MutexWrapperHeaderItselfExempt) {
  // src/common/mutex.hpp's Mutex holds the raw std::mutex it wraps.
  EXPECT_FALSE(fired("src/common/mutex.hpp",
                     "class Mutex {\n  std::mutex impl_;\n};",
                     "mutex-guard"));
}

// --- thread-detach ---------------------------------------------------------

TEST(ThreadDetach, FiresOnDetach) {
  EXPECT_TRUE(fired("src/x.cpp", "t.detach();", "thread-detach"));
  EXPECT_TRUE(fired("tools/x.cpp", "worker->detach();", "thread-detach"));
}

TEST(ThreadDetach, DetachWordElsewhereQuiet) {
  EXPECT_FALSE(fired("src/x.cpp", "void detach_all();", "thread-detach"));
  EXPECT_FALSE(fired("src/x.cpp", "// never t.detach() a worker\nint x;",
                     "thread-detach"));
}

// --- naked-new-delete ------------------------------------------------------

TEST(NakedNew, FiresOnNewAndDelete) {
  EXPECT_TRUE(fired("src/x.cpp", "auto* p = new Foo();", "naked-new-delete"));
  EXPECT_TRUE(fired("src/x.cpp", "delete p;", "naked-new-delete"));
}

TEST(NakedNew, DeletedFunctionsAndOperatorOverloadsQuiet) {
  EXPECT_FALSE(
      fired("src/x.hpp", "Foo(const Foo&) = delete;", "naked-new-delete"));
  EXPECT_FALSE(fired("src/x.hpp", "void* operator new(std::size_t);",
                     "naked-new-delete"));
  EXPECT_FALSE(fired("src/x.hpp", "void operator delete(void*) noexcept;",
                     "naked-new-delete"));
}

TEST(NakedNew, GrepFalsePositivesQuiet) {
  // The real repo's only grep hits were in comments and strings.
  EXPECT_FALSE(fired("src/x.cpp", "// allocate a new entry per connection\n",
                     "naked-new-delete"));
  EXPECT_FALSE(fired("src/x.cpp",
                     "const char* m = \"new trace replaces the old\";",
                     "naked-new-delete"));
}

TEST(NakedNew, OnlyAppliesInSrc) {
  EXPECT_FALSE(fired("tests/x.cpp", "auto* p = new Foo();",
                     "naked-new-delete"));
  EXPECT_FALSE(fired("bench/x.cpp", "delete p;", "naked-new-delete"));
}

TEST(NakedNew, AllowCommentForFreeListCode) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "// aeep-lint: allow(naked-new-delete)\n"
                     "auto* node = new Node();",
                     "naked-new-delete"));
}

// --- sleep-in-src ----------------------------------------------------------

TEST(SleepInSrc, FiresInSrcOnly) {
  const std::string src =
      "std::this_thread::sleep_for(std::chrono::milliseconds(10));";
  EXPECT_TRUE(fired("src/x.cpp", src, "sleep-in-src"));
  EXPECT_FALSE(fired("tests/x.cpp", src, "sleep-in-src"));
  EXPECT_FALSE(fired("tools/x.cpp", src, "sleep-in-src"));
}

TEST(SleepInSrc, SleepUntilAlsoFires) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "std::this_thread::sleep_until(deadline);",
                    "sleep-in-src"));
}

// --- deque-in-hot-path -----------------------------------------------------

TEST(HotQueue, FiresOnDequeAndQueueInSimAndServer) {
  EXPECT_TRUE(fired("src/sim/x.hpp", "std::deque<Cycle> ages_;",
                    "deque-in-hot-path"));
  EXPECT_TRUE(fired("src/server/x.hpp", "std::queue<Job> pending_;",
                    "deque-in-hot-path"));
  EXPECT_TRUE(fired("src/sim/x.cpp", "std::deque<u64> local;",
                    "deque-in-hot-path"));
}

TEST(HotQueue, OtherDirsAndOtherContainersQuiet) {
  // The ban is scoped to the lock-free hot paths, not the whole tree.
  EXPECT_FALSE(fired("src/trace/x.hpp", "std::deque<Record> backlog_;",
                     "deque-in-hot-path"));
  EXPECT_FALSE(fired("tests/x.cpp", "std::queue<int> q;",
                     "deque-in-hot-path"));
  EXPECT_FALSE(fired("src/sim/x.hpp", "std::vector<Cycle> stamps_;",
                     "deque-in-hot-path"));
  // priority_queue is a different beast (no MpmcQueue equivalent).
  EXPECT_FALSE(fired("src/sim/x.hpp", "std::priority_queue<Ev> evq_;",
                     "deque-in-hot-path"));
}

TEST(HotQueue, GrepFalsePositivesQuiet) {
  EXPECT_FALSE(fired("src/sim/x.cpp",
                     "// the old std::deque<Entry> FIFO is gone\n",
                     "deque-in-hot-path"));
  EXPECT_FALSE(fired("src/sim/x.cpp", "#include <deque>\n",
                     "deque-in-hot-path"));
}

TEST(HotQueue, AllowCommentSuppresses) {
  EXPECT_FALSE(fired("src/server/x.hpp",
                     "// aeep-lint: allow(deque-in-hot-path)\n"
                     "std::deque<Cold> cold_path_;",
                     "deque-in-hot-path"));
}

// --- allow-comments --------------------------------------------------------

TEST(Allow, TrailingCommentSuppressesSameLine) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "int v = rand();  // aeep-lint: allow(raw-rand)",
                     "raw-rand"));
}

TEST(Allow, PrecedingLineSuppressesNextLine) {
  EXPECT_FALSE(fired("src/x.cpp",
                     "// aeep-lint: allow(raw-rand)\nint v = rand();",
                     "raw-rand"));
}

TEST(Allow, ListedRulesAllSuppressed) {
  const std::string src =
      "// aeep-lint: allow(raw-rand, raw-file-io)\n"
      "int v = rand(); fread(b, 1, n, f);";
  EXPECT_FALSE(fired("src/x.cpp", src, "raw-rand"));
  EXPECT_FALSE(fired("src/x.cpp", src, "raw-file-io"));
}

TEST(Allow, WrongRuleDoesNotSuppress) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "// aeep-lint: allow(raw-file-io)\nint v = rand();",
                    "raw-rand"));
}

TEST(Allow, DoesNotLeakPastOneLine) {
  EXPECT_TRUE(fired("src/x.cpp",
                    "// aeep-lint: allow(raw-rand)\nint a;\nint v = rand();",
                    "raw-rand"));
}

// --- raw-fs-call -----------------------------------------------------------

TEST(RawFsCall, FiresOnBareAndStdQualifiedCalls) {
  EXPECT_TRUE(fired("src/server/x.cpp", "void f() { fopen(\"a\", \"r\"); }",
                    "raw-fs-call"));
  EXPECT_TRUE(fired("src/server/x.cpp",
                    "void f() { std::rename(\"a\", \"b\"); }", "raw-fs-call"));
  EXPECT_TRUE(fired("tools/x.cpp", "void f() { remove(p.c_str()); }",
                    "raw-fs-call"));
}

TEST(RawFsCall, StoreTraceAndTestsAreExempt) {
  const std::string src = "void f() { std::fopen(\"a\", \"r\"); }";
  EXPECT_FALSE(fired("src/store/result_store.cpp", src, "raw-fs-call"));
  EXPECT_FALSE(fired("src/trace/io.cpp", src, "raw-fs-call"));
  EXPECT_FALSE(fired("tests/store_test.cpp", src, "raw-fs-call"));
  EXPECT_TRUE(fired("src/server/x.cpp", src, "raw-fs-call"));
}

TEST(RawFsCall, MemberAndCheckedWrapperCallsAreQuiet) {
  // Someone else's API, not the libc call.
  EXPECT_FALSE(fired("src/server/x.cpp", "void f() { log_.open(path); }",
                     "raw-fs-call"));
  // std::filesystem::rename is the checked wrapper the store itself uses.
  EXPECT_FALSE(fired("src/server/x.cpp",
                     "void f() { std::filesystem::rename(a, b, ec); }",
                     "raw-fs-call"));
  // A declaration, not a call.
  EXPECT_FALSE(fired("src/server/x.hpp", "struct L { void open(int fd); };",
                     "raw-fs-call"));
}

TEST(RawFsCall, AlgorithmStdRemoveFiresAndNeedsAllowComment) {
  // Token-wise the algorithm std::remove is the libc file call; the
  // erase-remove idiom therefore needs an allow comment (the tree uses
  // std::erase / explicit loops instead, so none exist today).
  EXPECT_TRUE(fired("src/server/x.cpp",
                    "void f(std::vector<int>& v) {\n"
                    "  v.erase(std::remove(v.begin(), v.end(), 3), v.end());\n"
                    "}",
                    "raw-fs-call"));
}

TEST(RawFsCall, AllowCommentSuppresses) {
  EXPECT_FALSE(fired(
      "src/server/x.cpp",
      "FILE* f = std::fopen(p, \"w\");  // aeep-lint: allow(raw-fs-call)",
      "raw-fs-call"));
}

TEST(RawFsCall, GrepFalsePositiveInCommentOrStringIsQuiet) {
  EXPECT_FALSE(fired("src/server/x.cpp",
                     "// fopen(\"x\") would be wrong here\n"
                     "const char* kMsg = \"rename (file) failed\";\n",
                     "raw-fs-call"));
}

// --- raw-clock -------------------------------------------------------------

TEST(RawClock, FiresOnSteadyClockInSrcOutsideMetrics) {
  const std::string src =
      "const auto t0 = std::chrono::steady_clock::now();";
  EXPECT_TRUE(fired("src/server/x.cpp", src, "raw-clock"));
  EXPECT_TRUE(fired("src/sim/x.cpp", src, "raw-clock"));
  EXPECT_TRUE(fired("src/fabric/x.hpp",
                    "using Clock = std::chrono::steady_clock;", "raw-clock"));
  EXPECT_TRUE(fired("src/x.cpp",
                    "auto t = std::chrono::high_resolution_clock::now();",
                    "raw-clock"));
}

TEST(RawClock, MetricsTestsAndToolsAreExempt) {
  const std::string src =
      "const auto t0 = std::chrono::steady_clock::now();";
  // src/metrics/clock.hpp is the one sanctioned wrapper; tests and tools
  // measure whatever they like.
  EXPECT_FALSE(fired("src/metrics/clock.hpp", src, "raw-clock"));
  EXPECT_FALSE(fired("tests/x.cpp", src, "raw-clock"));
  EXPECT_FALSE(fired("bench/x.cpp", src, "raw-clock"));
}

TEST(RawClock, MetricsHelpersAndCommentsAreQuiet) {
  EXPECT_FALSE(fired("src/server/x.cpp",
                     "const auto t0 = metrics::now();\n"
                     "h.record(metrics::us_since(t0));\n"
                     "// steady_clock would be banned here\n",
                     "raw-clock"));
}

TEST(RawClock, AllowCommentSuppresses) {
  EXPECT_FALSE(fired("src/server/x.cpp",
                     "auto t = std::chrono::steady_clock::now();"
                     "  // aeep-lint: allow(raw-clock)",
                     "raw-clock"));
}

// --- reporting surface -----------------------------------------------------

TEST(Report, FormatFindingIsFileLineRuleMessage) {
  const Finding f{"raw-rand", "src/x.cpp", 7, "message text"};
  EXPECT_EQ(format_finding(f), "src/x.cpp:7: [raw-rand] message text");
}

TEST(Report, CatalogNamesAreUniqueAndNonEmpty) {
  const auto& catalog = rule_catalog();
  EXPECT_EQ(catalog.size(), 13u);
  std::vector<std::string> names;
  for (const auto& r : catalog) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.description.empty());
    names.push_back(r.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Report, CleanFileHasNoFindings) {
  EXPECT_TRUE(lint_file("src/x.cpp",
                        "#include <memory>\n"
                        "auto p = std::make_unique<int>(3);\n")
                  .empty());
}

}  // namespace
}  // namespace aeep::analysis
